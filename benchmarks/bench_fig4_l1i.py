"""Fig. 4 — faulty behavior classification, L1 instruction cache.

Paper shape: highly vulnerable (like the L1D) but with far fewer SDCs;
the trend flips versus Fig. 3 — MaFIN reports a *more* vulnerable L1I
than GeFIN — and the dominant non-masked class differs by tool:
**Assert** on MaFIN (MARSS's dense assertion checking fires on corrupted
encodings) versus **Crash** on GeFIN (gem5 lets garbage flow until the
process/system/simulator dies) — Remark 8.
"""

import _figures
from repro.core.outcome import ASSERT, CRASH, MASKED


def test_fig4_l1i(benchmark, results_dir):
    def run():
        return _figures.run_and_render("l1i", results_dir, "fig4_l1i")

    fig, text = benchmark.pedantic(run, rounds=1, iterations=1)
    print(text)
    avg = _figures.averages(fig)
    benchmark.extra_info.update(
        {f"avg_vuln_{k}": round(v, 2) for k, v in avg.items()})

    # Remark 8: MaFIN's non-masked profile leans Assert, GeFIN's Crash.
    # The class-mix checks need enough samples to be stable.
    statistically_stable = _figures.bench_injections() >= 20
    mafin = fig.average("MaFIN-x86")
    gefin = fig.average("GeFIN-x86")
    if statistically_stable and avg["MaFIN-x86"] > 5.0:
        assert mafin.get(ASSERT, 0.0) > 0.0
        assert mafin.get(ASSERT, 0.0) >= mafin.get(CRASH, 0.0) - 3.0
    if statistically_stable and avg["GeFIN-x86"] > 5.0:
        assert gefin.get(CRASH, 0.0) > 0.0
        assert gefin.get(CRASH, 0.0) >= gefin.get(ASSERT, 0.0)
    # GeFIN never asserts (gem5 checks sparsely) — this is structural
    # and holds at any scale.
    assert gefin.get(ASSERT, 0.0) == 0.0
