"""Remarks 1/3/5/6/7 — the runtime statistics behind the explanations.

The paper explains every MaFIN/GeFIN divergence with golden-run
statistics.  This bench regenerates those ratios:

* Remark 3: MaFIN issues substantially more loads than it commits
  (aggressive issue + replay) while GeFIN's issued ≈ committed; MaFIN
  delegates system memory traffic to the hypervisor, GeFIN runs it
  through the caches.
* Remark 5: the ISAs differ in store counts / write misses per
  benchmark.
* Remark 6: the two front ends mispredict differently (PC-indexed vs
  history-indexed tournament choosers).
* Remark 7: ARM's larger code causes more L1I replacement traffic than
  x86 on GeFIN.
"""

import _figures
from repro.core.report import golden_stats
from repro.bench import suite


def test_remark_statistics(benchmark, results_dir):
    benches = _figures.bench_benchmarks()

    def collect():
        return golden_stats(benchmarks=benches)

    stats = benchmark.pedantic(collect, rounds=1, iterations=1)
    lines = ["Runtime statistics behind the paper's remarks",
             f"  {'bench':<8s}{'issued/committed loads':>24s}"
             f"{'M-x86 hyper':>12s}{'G-x86 kernel$':>14s}"
             f"{'mispred M/G':>12s}{'L1I repl ARM/x86':>18s}"]
    ratios = {"issue": [], "l1i_repl": []}
    for bench in benches:
        m = stats[(bench, "MaFIN-x86")]
        gx = stats[(bench, "GeFIN-x86")]
        ga = stats[(bench, "GeFIN-ARM")]
        m_ratio = m["issued_loads"] / max(m["committed_loads"], 1)
        g_ratio = gx["issued_loads"] / max(gx["committed_loads"], 1)
        ratios["issue"].append((m_ratio, g_ratio))
        l1i_ratio = (ga["l1i_replacements"] + 1) / \
            (gx["l1i_replacements"] + 1)
        ratios["l1i_repl"].append(l1i_ratio)
        mispred = (m["branch_mispredicts"] + 1) / \
            (gx["branch_mispredicts"] + 1)
        lines.append(
            f"  {bench:<8s}{m_ratio:>11.2f} vs {g_ratio:<10.2f}"
            f"{m['hypervisor_ops']:>12d}{gx['kernel_cache_accesses']:>14d}"
            f"{mispred:>12.2f}{l1i_ratio:>18.2f}")
    text = "\n".join(lines)
    (results_dir / "remark_stats.txt").write_text(text)
    print(text)

    # Remark 3: MaFIN's issued/committed load ratio exceeds GeFIN's on
    # every benchmark (aggressive issue + memory-order replays).
    assert all(m >= g for m, g in ratios["issue"])
    assert any(m > g + 0.05 for m, g in ratios["issue"])
    # Remark 3 (hypervisor): MaFIN does hypervisor ops, GeFIN none.
    assert all(stats[(b, "MaFIN-x86")]["hypervisor_ops"] > 0
               for b in benches)
    assert all(stats[(b, "GeFIN-x86")]["hypervisor_ops"] == 0
               for b in benches)
    assert all(stats[(b, "GeFIN-x86")]["kernel_cache_accesses"] > 0
               for b in benches)
    # Remark 7: ARM suffers at least as many L1I replacements as x86 on
    # most benchmarks (larger fixed-width code).
    assert sum(1 for r in ratios["l1i_repl"] if r >= 1.0) >= \
        len(benches) * 0.5
    # Code-size mechanism behind Remark 7.
    assert all(suite.program(b, "arm").code_size >
               suite.program(b, "x86").code_size for b in benches)
