"""Fig. 6 — faulty behavior classification, load/store queue data field.

Paper shape: like the register file, the LSQ holds short-lived data and
stays under ~3 % vulnerable, with mixed non-masked classes.  Remark 1:
MaFIN runs about a point *above* GeFIN because MARSS's unified queue
exposes load data fields too, while in gem5 only the store queue holds
data (half the injected bits land in data-less load-queue slots).
"""

import _figures


def test_fig6_lsq(benchmark, results_dir):
    def run():
        return _figures.run_and_render("lsq", results_dir, "fig6_lsq")

    fig, text = benchmark.pedantic(run, rounds=1, iterations=1)
    print(text)
    avg = _figures.averages(fig)
    benchmark.extra_info.update(
        {f"avg_vuln_{k}": round(v, 2) for k, v in avg.items()})

    # LSQ stays low-vulnerability everywhere.
    for setup, vuln in avg.items():
        assert vuln <= 25.0, (setup, vuln)
