"""§III.B(2) — campaign speed optimizations.

The paper reports that stopping a run immediately when (i) the fault
lands in an invalid/unused entry or (ii) the faulty entry is overwritten
before ever being read yields a **30 %-70 % speedup of each individual
run** (in simulated work) across benchmarks and components.  This bench
replays the same fault sets with the optimizations on and off and
measures both the simulated-cycle savings and the wall-clock effect.
"""

import time

import _figures
from repro.core.dispatcher import InjectorDispatcher
from repro.core.fault import FaultSet
from repro.core.maskgen import FaultMaskGenerator, StructureInfo
from repro.sim.config import setup_config
from repro.sim.gem5 import build_sim
from repro.bench import suite


def _measure(structure: str, n: int):
    config = setup_config("MaFIN-x86")
    program = suite.program("sha", "x86")
    dispatcher = InjectorDispatcher(config, program)
    golden = dispatcher.run_golden()
    sim = build_sim(program, config)
    info = StructureInfo.of_site(sim.fault_sites()[structure])
    sets = FaultMaskGenerator(_figures.bench_seed()).generate(
        info, golden.cycles, count=n)

    def run(early_stop: bool):
        # Both variants restore from the same checkpoints, so comparing
        # end-of-run cycle counts compares the simulated work directly.
        t0 = time.time()
        cycles = 0
        for fs in sets:
            rec = dispatcher.inject(fs, early_stop=early_stop)
            cycles += rec.cycles
        return cycles, time.time() - t0

    fast_cycles, fast_wall = run(True)
    slow_cycles, slow_wall = run(False)
    return fast_cycles, slow_cycles, fast_wall, slow_wall


def test_early_stop_speedup(benchmark, results_dir):
    n = max(_figures.bench_injections(), 10)

    def measure():
        return {s: _measure(s, n) for s in ("l1d", "int_rf")}

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = ["§III.B — early-stop optimization speedup "
             f"({n} injections, sha, MaFIN-x86)",
             f"  {'structure':<10s}{'cycles (opt)':>14s}"
             f"{'cycles (full)':>15s}{'saved':>8s}{'wall speedup':>14s}"]
    for structure, (fc, sc, fw, sw) in results.items():
        saved = 100.0 * (1 - fc / max(sc, 1))
        lines.append(f"  {structure:<10s}{fc:>14,d}{sc:>15,d}"
                     f"{saved:>7.1f}%{sw / max(fw, 1e-9):>13.2f}x")
    lines.append("  paper: 30%-70% per-run speedup across benchmarks "
                 "and components")
    text = "\n".join(lines)
    (results_dir / "speedup.txt").write_text(text)
    print(text)

    for structure, (fc, sc, fw, sw) in results.items():
        assert fc <= sc  # optimizations never add work
    # Somewhere in the study the savings are substantial.
    best = max(1 - fc / max(sc, 1) for fc, sc, _, _ in results.values())
    assert best >= 0.20
