"""§III.B(2) — campaign speed optimizations.

The paper reports that stopping a run immediately when (i) the fault
lands in an invalid/unused entry or (ii) the faulty entry is overwritten
before ever being read yields a **30 %-70 % speedup of each individual
run** (in simulated work) across benchmarks and components.  This bench
replays the same fault sets with the optimizations on and off and
measures both the simulated-cycle savings and the wall-clock effect.

``test_prune_speedup`` benches the static counterpart (``repro.prune``):
the same campaign with pruning off / analyze / collapse, asserting the
classification is invariant and the campaign-phase wall clock drops by
at least the paper's 30 % floor somewhere in the grid.  Results land in
``results/bench/BENCH_prune.json``.
"""

import json
import time

import _figures
from repro.core.campaign import InjectionCampaign
from repro.core.dispatcher import InjectorDispatcher
from repro.core.fault import FaultSet
from repro.core.maskgen import FaultMaskGenerator, StructureInfo
from repro.sim.config import setup_config
from repro.sim.gem5 import build_sim
from repro.bench import suite


def _measure(structure: str, n: int):
    config = setup_config("MaFIN-x86")
    program = suite.program("sha", "x86")
    dispatcher = InjectorDispatcher(config, program)
    golden = dispatcher.run_golden()
    sim = build_sim(program, config)
    info = StructureInfo.of_site(sim.fault_sites()[structure])
    sets = FaultMaskGenerator(_figures.bench_seed()).generate(
        info, golden.cycles, count=n)

    def run(early_stop: bool):
        # Both variants restore from the same checkpoints, so comparing
        # end-of-run cycle counts compares the simulated work directly.
        t0 = time.time()
        cycles = 0
        for fs in sets:
            rec = dispatcher.inject(fs, early_stop=early_stop)
            cycles += rec.cycles
        return cycles, time.time() - t0

    fast_cycles, fast_wall = run(True)
    slow_cycles, slow_wall = run(False)
    return fast_cycles, slow_cycles, fast_wall, slow_wall


def test_early_stop_speedup(benchmark, results_dir):
    n = max(_figures.bench_injections(), 10)

    def measure():
        return {s: _measure(s, n) for s in ("l1d", "int_rf")}

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = ["§III.B — early-stop optimization speedup "
             f"({n} injections, sha, MaFIN-x86)",
             f"  {'structure':<10s}{'cycles (opt)':>14s}"
             f"{'cycles (full)':>15s}{'saved':>8s}{'wall speedup':>14s}"]
    for structure, (fc, sc, fw, sw) in results.items():
        saved = 100.0 * (1 - fc / max(sc, 1))
        lines.append(f"  {structure:<10s}{fc:>14,d}{sc:>15,d}"
                     f"{saved:>7.1f}%{sw / max(fw, 1e-9):>13.2f}x")
    lines.append("  paper: 30%-70% per-run speedup across benchmarks "
                 "and components")
    text = "\n".join(lines)
    (results_dir / "speedup.txt").write_text(text)
    print(text)

    for structure, (fc, sc, fw, sw) in results.items():
        assert fc <= sc  # optimizations never add work
    # Somewhere in the study the savings are substantial.
    best = max(1 - fc / max(sc, 1) for fc, sc, _, _ in results.values())
    assert best >= 0.20


PRUNE_CELLS = (("MaFIN-x86", "sha", "l1d"),
               ("MaFIN-x86", "qsort", "int_rf"))
PRUNE_POLICIES = ("off", "analyze", "collapse")


def _measure_prune(setup: str, bench_name: str, structure: str, n: int):
    """One cell, all policies: campaign-phase wall time + classes."""
    config = setup_config(setup)
    rows = {}
    for policy in PRUNE_POLICIES:
        program = suite.program(bench_name, config.isa)
        campaign = InjectionCampaign(config, program, bench_name,
                                     structure,
                                     seed=_figures.bench_seed(),
                                     prune=policy)
        campaign.prepare(injections=n)
        t0 = time.time()
        result = campaign.run()
        wall = time.time() - t0
        row = {"run_wall_s": wall, "counts": result.classify()}
        if result.prune is not None:
            row["prune"] = {k: result.prune[k] for k in
                            ("masked", "collapsed", "classes",
                             "simulated", "rules", "by_structure")}
            row["prune_rate"] = ((result.prune["masked"]
                                  + result.prune["collapsed"]) / n)
        rows[policy] = row
    return rows


def test_prune_speedup(benchmark, results_dir):
    n = max(_figures.bench_injections(), 12)

    def measure():
        return {f"{s}/{b}/{st}": _measure_prune(s, b, st, n)
                for s, b, st in PRUNE_CELLS}

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    payload = {"injections": n, "seed": _figures.bench_seed(),
               "paper_claim": "30-70% campaign speedup (§III.B)",
               "cells": {}}
    lines = ["repro.prune — golden-trace pruning speedup "
             f"({n} injections per cell)",
             f"  {'cell':<24s}{'policy':<10s}{'wall':>9s}"
             f"{'reduction':>11s}{'prune rate':>12s}"]
    best = 0.0
    for cell, rows in results.items():
        base = rows["off"]["run_wall_s"]
        cell_out = {}
        for policy in PRUNE_POLICIES:
            row = dict(rows[policy])
            reduction = (1 - row["run_wall_s"] / max(base, 1e-9)
                         if policy != "off" else 0.0)
            row["wall_reduction"] = reduction
            best = max(best, reduction)
            cell_out[policy] = row
            lines.append(
                f"  {cell:<24s}{policy:<10s}"
                f"{row['run_wall_s']:>8.2f}s"
                f"{100 * reduction:>10.1f}%"
                f"{100 * row.get('prune_rate', 0.0):>11.1f}%")
            # Pruning must be invisible to the Parser.
            assert row["counts"] == rows["off"]["counts"], \
                f"{cell}/{policy} changed the classification"
        payload["cells"][cell] = cell_out
    lines.append("  paper: 30%-70% campaign speedup; pruning must beat "
                 "the 30% floor somewhere")
    text = "\n".join(lines)
    (results_dir / "BENCH_prune.json").write_text(
        json.dumps(payload, indent=1, sort_keys=True))
    (results_dir / "prune_speedup.txt").write_text(text)
    print(text)
    assert best >= 0.30, f"best wall-clock reduction {best:.0%} < 30%"
