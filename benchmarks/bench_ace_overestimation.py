"""§I — ACE analysis over-estimates what fault injection measures.

The paper's case for injection-based studies rests on prior findings
that ACE-style analysis over-estimates vulnerability — [14] reports 7x,
[45] up to 3x even after refinement.  This bench runs both tools on the
same cells: the single-pass occupancy (ACE-style) estimator versus the
measured fault-injection vulnerability, and checks that the conservative
estimate indeed bounds — and substantially exceeds — the measurement.
"""

import _figures
from repro.core.ace import AceEstimator
from repro.core.campaign import run_campaign
from repro.sim.config import setup_config
from repro.bench import suite


def test_ace_overestimates_fault_injection(benchmark, results_dir):
    setup = "GeFIN-x86"
    bench_names = _figures.bench_benchmarks()[:2]
    structures = ("int_rf", "l1d", "lsq")
    n = _figures.bench_injections()

    def measure():
        rows = []
        for bench in bench_names:
            config = setup_config(setup)
            ace = AceEstimator(config, suite.program(bench, config.isa),
                               structures=structures).run()
            for structure in structures:
                fi = run_campaign(setup, bench, structure, injections=n,
                                  seed=_figures.bench_seed())
                rows.append((bench, structure, 100 * ace.avf(structure),
                             100 * fi.vulnerability()))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [f"ACE-style estimate vs fault injection ({setup}, "
             f"{n} injections/cell)",
             f"  {'bench':<8s}{'structure':<9s}{'ACE est.':>10s}"
             f"{'FI meas.':>10s}{'over-estimation':>17s}"]
    for bench, structure, ace_pct, fi_pct in rows:
        ratio = ace_pct / max(fi_pct, 0.5)
        lines.append(f"  {bench:<8s}{structure:<9s}{ace_pct:>9.1f}%"
                     f"{fi_pct:>9.1f}%{ratio:>15.1f}x")
    lines.append("  paper context: ACE over-estimation of 3x-7x is the "
                 "motivation for injection")
    text = "\n".join(lines)
    (results_dir / "ace_overestimation.txt").write_text(text)
    print(text)

    # The conservative bound must hold on average, with real slack.
    total_ace = sum(r[2] for r in rows)
    total_fi = sum(r[3] for r in rows)
    assert total_ace >= total_fi
    assert total_ace >= 1.5 * max(total_fi, 1.0)
