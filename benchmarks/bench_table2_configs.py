"""Table II — the three simulator configurations, regenerated live.

Prints the MARSS/x86, Gem5/x86 and Gem5/ARM parameter columns from the
actual ``SimConfig`` objects and asserts the paper's values.
"""

from repro.sim.config import paper_config


def test_table2_simulator_configurations(benchmark, results_dir):
    def build():
        return {
            "MARSS/x86": paper_config("marss", "x86"),
            "Gem5/x86": paper_config("gem5", "x86"),
            "Gem5/ARM": paper_config("gem5", "arm"),
        }

    configs = benchmark(build)
    summaries = {name: cfg.summary() for name, cfg in configs.items()}
    params = list(next(iter(summaries.values())).keys())
    width = 44
    lines = ["Table II — simulator configurations",
             "  " + f"{'Parameter':<28s}" +
             "".join(f"{name:<{width}s}" for name in summaries)]
    for param in params:
        lines.append("  " + f"{param:<28s}" +
                     "".join(f"{summaries[n][param]:<{width}s}"
                             for n in summaries))
    text = "\n".join(lines)
    (results_dir / "table2_configs.txt").write_text(text)
    print(text)

    marss, g5x, g5a = configs.values()
    # Table II row checks.
    assert marss.rob_size == 64 and g5x.rob_size == 40
    assert marss.lsq_unified and marss.lsq_size == 32
    assert not g5x.lsq_unified and g5x.lsq_size == 16
    assert marss.phys_fp_regs == 256 and g5x.phys_fp_regs == 128
    assert g5x.int_alus == 6 and g5a.int_alus == 2
    for cfg in configs.values():
        assert cfg.iq_size == 32
        assert cfg.l1i.size == 32 * 1024 and cfg.l1i.assoc == 4
        assert cfg.l1d.sets == 128
        assert cfg.l2.size == 1024 * 1024 and cfg.l2.assoc == 16
        assert cfg.ras_entries == 16
    assert marss.btb_direct.entries == 1024 and \
        marss.btb_indirect.entries == 512
    assert g5x.btb_direct.entries == 2048 and g5x.btb_indirect is None
    assert marss.predictor_scheme == "pc" and \
        g5x.predictor_scheme == "history"
