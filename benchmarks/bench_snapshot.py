"""Snapshot-engine microbenchmark: structured save/restore vs deepcopy.

The checkpoint engine replaced whole-machine ``copy.deepcopy`` with the
structured ``snapshot()``/``restore(state)`` protocol (flat containers
copied at C speed, immutable objects shared by reference).  This bench
measures both paths on the same warmed-up machine state — checkpoint
*take* and checkpoint *restore* separately — and records the speedup in
``results/bench/BENCH_snapshot.json``.

Run under pytest (``pytest benchmarks/bench_snapshot.py``) or as a CLI
smoke check (used by the CI perf-smoke job, which fails the build when
snapshot restore stops being measurably cheaper than deepcopy)::

    PYTHONPATH=src python benchmarks/bench_snapshot.py \
        --rounds 5 --min-speedup 1.5 --out BENCH_snapshot.json
"""

from __future__ import annotations

import argparse
import copy
import json
import sys
import time
from pathlib import Path

from repro.bench import suite
from repro.core.checkpoint import state_nbytes
from repro.sim.config import setup_config
from repro.sim.gem5 import build_sim
from repro.sim.kernel import ProcessExit


def _timed(fn, rounds: int) -> float:
    """Mean seconds per call over *rounds* calls."""
    t0 = time.perf_counter()
    for _ in range(rounds):
        fn()
    return (time.perf_counter() - t0) / rounds


def measure(setup: str = "MaFIN-x86", benchmark: str = "sha",
            warm_cycles: int = 3000, rounds: int = 10,
            scale: int = 1) -> dict:
    """Deepcopy vs snapshot timings on one warmed-up machine."""
    config = setup_config(setup)
    program = suite.program(benchmark, config.isa, scale)
    sim = build_sim(program, config)
    try:
        for _ in range(warm_cycles):
            sim.step()
    except ProcessExit:
        pass  # tiny cells may finish early; the state is still a machine

    # Baseline: what checkpointing used to cost.  Take = deepcopy the
    # machine; restore = deepcopy the stored machine again (the old
    # CheckpointStore.restore_before).
    deep_state = copy.deepcopy(sim)
    deepcopy_take_s = _timed(lambda: copy.deepcopy(sim), rounds)
    deepcopy_restore_s = _timed(lambda: copy.deepcopy(deep_state), rounds)

    # Snapshot engine: take = sim.snapshot(); restore = load the blob
    # into an existing machine in place.
    state = sim.snapshot()
    snapshot_take_s = _timed(sim.snapshot, rounds)
    scratch = build_sim(program, config)
    snapshot_restore_s = _timed(lambda: scratch.restore(state), rounds)

    # Sanity: the restored machine must continue exactly like the source.
    ref = sim.run()
    out = scratch.run()
    if (ref.cycles, ref.output, ref.exit_code) != \
            (out.cycles, out.output, out.exit_code):
        raise AssertionError("restored run diverged from the source run")

    deep_total = deepcopy_take_s + deepcopy_restore_s
    snap_total = snapshot_take_s + snapshot_restore_s
    return {
        "setup": setup,
        "benchmark": benchmark,
        "warm_cycles": warm_cycles,
        "rounds": rounds,
        "checkpoint_bytes": state_nbytes(state),
        "deepcopy_take_s": deepcopy_take_s,
        "deepcopy_restore_s": deepcopy_restore_s,
        "snapshot_take_s": snapshot_take_s,
        "snapshot_restore_s": snapshot_restore_s,
        "speedup_take": deepcopy_take_s / snapshot_take_s,
        "speedup_restore": deepcopy_restore_s / snapshot_restore_s,
        "speedup_total": deep_total / snap_total,
    }


def render(results: dict) -> str:
    lines = [
        "snapshot engine vs deepcopy checkpointing "
        f"({results['benchmark']}, {results['setup']}, "
        f"{results['warm_cycles']} warm cycles, "
        f"{results['rounds']} rounds)",
        f"  {'path':<22s}{'take':>12s}{'restore':>12s}",
        f"  {'deepcopy (old)':<22s}"
        f"{1e3 * results['deepcopy_take_s']:>10.2f}ms"
        f"{1e3 * results['deepcopy_restore_s']:>10.2f}ms",
        f"  {'snapshot (new)':<22s}"
        f"{1e3 * results['snapshot_take_s']:>10.2f}ms"
        f"{1e3 * results['snapshot_restore_s']:>10.2f}ms",
        f"  speedup  take {results['speedup_take']:.1f}x | "
        f"restore {results['speedup_restore']:.1f}x | "
        f"take+restore {results['speedup_total']:.1f}x",
        f"  checkpoint blob {results['checkpoint_bytes']:,} bytes",
    ]
    return "\n".join(lines)


def test_snapshot_engine_speedup(benchmark, results_dir):
    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    text = render(results)
    (results_dir / "BENCH_snapshot.json").write_text(
        json.dumps(results, indent=2) + "\n")
    (results_dir / "snapshot.txt").write_text(text)
    print(text)
    # Acceptance bar: checkpoint take+restore at least 3x faster than
    # the deepcopy baseline it replaced.
    assert results["speedup_total"] >= 3.0
    assert results["speedup_restore"] >= 3.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--setup", default="MaFIN-x86")
    parser.add_argument("--benchmark", default="sha")
    parser.add_argument("--warm-cycles", type=int, default=3000)
    parser.add_argument("--rounds", type=int, default=10)
    parser.add_argument("--min-speedup", type=float, default=1.5,
                        help="fail unless take+restore beats deepcopy "
                             "by this factor (CI smoke bar)")
    parser.add_argument("--out", default=None,
                        help="write the JSON results here")
    args = parser.parse_args(argv)

    results = measure(setup=args.setup, benchmark=args.benchmark,
                      warm_cycles=args.warm_cycles, rounds=args.rounds)
    print(render(results))
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {out}")
    if results["speedup_total"] < args.min_speedup:
        print(f"FAIL: take+restore speedup {results['speedup_total']:.2f}x "
              f"< required {args.min_speedup:.2f}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
