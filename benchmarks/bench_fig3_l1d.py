"""Fig. 3 — faulty behavior classification, L1 data cache (data arrays).

Paper shape: the most vulnerable structure together with the L1I; SDC is
the dominant non-masked class (3-5x the rest summed); MaFIN reports a
*less* vulnerable L1D than GeFIN (≈7 points at full scale) because of
the QEMU-hypervisor masking window and the aggressive load issue, while
the two GeFIN ISAs sit close together.
"""

import _figures
from repro.core.outcome import MASKED, SDC


def test_fig3_l1d(benchmark, results_dir):
    def run():
        return _figures.run_and_render("l1d", results_dir, "fig3_l1d")

    fig, text = benchmark.pedantic(run, rounds=1, iterations=1)
    print(text)
    avg = _figures.averages(fig)
    benchmark.extra_info.update(
        {f"avg_vuln_{k}": round(v, 2) for k, v in avg.items()})

    # Shape check 1: L1D is substantially vulnerable somewhere.
    assert max(avg.values()) >= 5.0
    # Shape check 2: SDC dominates the non-masked classes on average.
    for setup in fig.setups:
        classes = fig.average(setup)
        non_masked = {k: v for k, v in classes.items() if k != MASKED}
        if sum(non_masked.values()) > 1.0:
            assert non_masked.get(SDC, 0.0) == max(non_masked.values()), \
                (setup, non_masked)
    # Shape check 3 (Remark 3 direction): MaFIN ≤ GeFIN-x86 on average.
    assert avg["MaFIN-x86"] <= avg["GeFIN-x86"] + 6.0
