"""Fig. 1 — the MaFIN/GeFIN framework flow, exercised end to end.

Mask generator → masks repository → campaign controller → injector
dispatcher → logs repository → parser.  This bench drives the whole
pipeline through its on-disk form (JSONL repositories) and measures the
per-injection cost.
"""

import _figures
from repro.core.campaign import InjectionCampaign
from repro.core.parser import ParserPolicy, classify_all
from repro.core.repository import LogsRepository, MasksRepository
from repro.sim.config import setup_config
from repro.bench import suite


def test_fig1_framework_flow(benchmark, results_dir, tmp_path):
    config = setup_config("GeFIN-x86")
    program = suite.program("sha", "x86")
    n = max(_figures.bench_injections() // 2, 5)

    def flow():
        campaign = InjectionCampaign(
            config, program, "sha", "int_rf", seed=_figures.bench_seed(),
            masks_path=tmp_path / "masks.jsonl",
            logs_path=tmp_path / "logs.jsonl")
        campaign.prepare(injections=n)
        return campaign.run()

    result = benchmark.pedantic(flow, rounds=1, iterations=1)

    # Step 3 of the flow: the parser replays the *stored* logs, twice,
    # with different policies — no re-injection.
    logs = LogsRepository(tmp_path / "logs.jsonl")
    assert len(logs) == n and logs.golden is not None
    default = classify_all(logs.records, logs.golden)
    coarse = classify_all(logs.records, logs.golden,
                          ParserPolicy(coarse=True))
    masks = MasksRepository(tmp_path / "masks.jsonl")
    assert len(masks) == n

    text = "\n".join([
        "Fig. 1 — framework flow (mask gen -> controller/dispatcher -> "
        "parser)",
        f"  masks repository:   {len(masks)} fault sets (JSONL)",
        f"  logs repository:    {len(logs)} raw records + golden "
        "reference",
        f"  parser (default):   {default}",
        f"  parser (coarse):    {coarse}",
        f"  early stops:        {result.early_stops}/{result.injections}",
    ])
    (results_dir / "fig1_flow.txt").write_text(text)
    print(text)

    assert sum(default.values()) == n
    assert coarse["Masked"] == default["Masked"]
