"""Table III — the three single-bit fault models, demonstrated live.

Injects one transient, one intermittent and one permanent fault at the
storage-array level and verifies each model's defining behaviour: a
transient is a one-shot flip; an intermittent pins a bit only inside its
window; a permanent pins it for the whole run.
"""

from repro.core.fault import FAULT_MODEL_DESCRIPTIONS
from repro.uarch.array import WordArray


def _demonstrate():
    observations = {}
    # Transient: flip now, value stays flipped until overwritten.
    arr = WordArray("demo", 4, 32)
    arr.write(0, 0)
    arr.flip(0, 3)
    flipped = arr.read(0, cycle=1)
    arr.write(0, 0)
    observations["transient"] = (flipped == 0b1000 and
                                 arr.read(0, cycle=99) == 0)
    # Intermittent: stuck-at-1 during [10, 20) only.
    arr = WordArray("demo", 4, 32)
    arr.set_stuck(1, 0, 1, start=10, end=20)
    observations["intermittent"] = (arr.read(1, cycle=9) == 0 and
                                    arr.read(1, cycle=15) == 1 and
                                    arr.read(1, cycle=25) == 0)
    # Permanent: stuck-at-0 forever, even across rewrites.
    arr = WordArray("demo", 4, 32)
    arr.write(2, 0xFF)
    arr.set_stuck(2, 0, 0)
    arr.write(2, 0xFF)
    observations["permanent"] = (arr.read(2, cycle=10 ** 12) == 0xFE)
    return observations


def test_table3_fault_models(benchmark, results_dir):
    observations = benchmark(_demonstrate)
    lines = ["Table III — fault models"]
    for model, desc in FAULT_MODEL_DESCRIPTIONS.items():
        status = "demonstrated" if observations[model] else "FAILED"
        lines.append(f"  {model:<13s} [{status}]")
        lines.append(f"      {desc}")
    text = "\n".join(lines)
    (results_dir / "table3_fault_models.txt").write_text(text)
    print(text)
    assert all(observations.values())
