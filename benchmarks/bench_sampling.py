"""§IV.A — statistical fault sampling (Leveugle et al. numbers).

The paper: 99 % confidence and 3 % error margin give **1843** required
injections for every structure/benchmark pair; the authors round up to
**2000**, corresponding to a **2.88 %** margin; relaxing to 5 % drops
the requirement to **663** (≈3x less campaign time).
"""

import pytest

from repro.core.sampling import (achieved_error_margin, fault_space,
                                 required_injections)
from repro.sim.config import scaled_config
from repro.sim.gem5 import build_sim
from repro.bench import suite


def test_sampling_paper_numbers(benchmark, results_dir):
    def compute():
        return {
            "n(99%, 3%)": required_injections(None, 0.99, 0.03),
            "n(99%, 5%)": required_injections(None, 0.99, 0.05),
            "margin(n=2000)": achieved_error_margin(2000, None, 0.99),
        }

    numbers = benchmark(compute)
    lines = ["§IV.A — statistical fault sampling",
             f"  99% confidence, 3% error margin : "
             f"{numbers['n(99%, 3%)']} injections (paper: 1843)",
             f"  rounded campaign size 2000      : "
             f"{100 * numbers['margin(n=2000)']:.2f}% margin "
             "(paper: 2.88%)",
             f"  99% confidence, 5% error margin : "
             f"{numbers['n(99%, 5%)']} injections (paper: 663, ~3x "
             "faster)"]

    # The formula also covers finite fault populations: show one example
    # cell (sha on GeFIN-x86, L1D bits x golden cycles).
    sim = build_sim(suite.program("sha", "x86"),
                    scaled_config("gem5", "x86"))
    outcome = sim.run()
    bits = sim.fault_sites()["l1d"].total_bits
    population = fault_space(bits, outcome.cycles)
    n_finite = required_injections(population, 0.99, 0.03)
    lines.append(f"  example finite population (sha/L1D): "
                 f"{population:,} bit-cycles -> {n_finite} injections")
    text = "\n".join(lines)
    (results_dir / "sampling.txt").write_text(text)
    print(text)

    assert numbers["n(99%, 3%)"] == 1843
    assert numbers["n(99%, 5%)"] == 663
    assert numbers["margin(n=2000)"] == pytest.approx(0.0288, abs=1e-4)
    assert n_finite <= 1843
