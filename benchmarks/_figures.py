"""Shared driver and scale knobs for the Fig. 2-6 reproduction benches.

Scale knobs (environment variables):

``REPRO_BENCH_INJECTIONS``
    Injections per (benchmark, setup) cell.  Default 12 — enough for
    shape comparison in minutes.  The paper used 2000 per cell.
``REPRO_BENCH_BENCHMARKS``
    Comma-separated benchmark subset (default ``sha,qsort,search``;
    ``all`` = the full MiBench-like ten, slow on one core).
``REPRO_BENCH_SEED``
    Campaign seed (default 1).
"""

from __future__ import annotations

import os

from repro.core.report import run_figure

# Paper shape expectations from §IV.C, used for soft qualitative checks
# (they hold at full scale; at bench scale we only print them alongside).
PAPER_AVG_VULN = {
    # structure: (MaFIN-x86 %, GeFIN-x86 %, GeFIN-ARM %)
    "int_rf": (2.0, 2.0, 2.0),      # "almost always less than 3%"
    "lsq": (3.0, 2.0, 2.0),         # <3%, MaFIN ~1pp above GeFIN
    "l1d": (14.6, 21.8, 22.3),      # <15% vs >22%
    "l1i": (19.0, 15.0, 13.0),      # ~19% vs >14%
    "l2": (6.5, 6.9, 6.8),          # 6-7% everywhere
}


def bench_injections() -> int:
    return int(os.environ.get("REPRO_BENCH_INJECTIONS", "12"))


def bench_benchmarks() -> tuple[str, ...]:
    raw = os.environ.get("REPRO_BENCH_BENCHMARKS", "sha,qsort,search")
    if raw.strip().lower() == "all":
        from repro.bench import suite
        return suite.benchmark_names()
    return tuple(b.strip() for b in raw.split(",") if b.strip())


def bench_seed() -> int:
    return int(os.environ.get("REPRO_BENCH_SEED", "1"))


def run_and_render(structure: str, results_dir, fig_name: str):
    """Run one figure's campaigns; write and return the rendering."""
    fig = run_figure(structure, benchmarks=bench_benchmarks(),
                     injections=bench_injections(), seed=bench_seed())
    text = fig.render()
    paper = PAPER_AVG_VULN.get(structure)
    if paper is not None:
        text += ("\n  paper full-scale average vulnerability: "
                 f"M-x86 {paper[0]}%  G-x86 {paper[1]}%  "
                 f"G-ARM {paper[2]}%\n")
    (results_dir / f"{fig_name}.txt").write_text(text)
    return fig, text


def averages(fig):
    return {setup: fig.average_vulnerability(setup)
            for setup in fig.setups}
