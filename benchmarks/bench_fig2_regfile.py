"""Fig. 2 — faulty behavior classification, integer physical regfile.

Paper shape: the register file is the *least* vulnerable reported
structure — under ~3 % everywhere, with mixed non-masked classes —
because physical registers hold short-lived values (most injected bits
sit in free or dead registers).
"""

import _figures


def test_fig2_int_regfile(benchmark, results_dir):
    def run():
        return _figures.run_and_render("int_rf", results_dir, "fig2_int_rf")

    fig, text = benchmark.pedantic(run, rounds=1, iterations=1)
    print(text)
    avg = _figures.averages(fig)
    benchmark.extra_info.update(
        {f"avg_vuln_{k}": round(v, 2) for k, v in avg.items()})
    # Paper: RF vulnerability is small in every setup.
    for setup, vuln in avg.items():
        assert vuln <= 20.0, (setup, vuln)
