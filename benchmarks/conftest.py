"""Pytest fixtures for the paper-reproduction bench harness.

See ``benchmarks/_figures.py`` for the scale knobs.  Rendered tables
land in ``results/bench/`` and in each bench's ``extra_info``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results" / "bench"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR
