"""Table I — state-of-the-art vs this work's injector capabilities.

Rebuilds the feature matrix from live capability introspection of the
two injectors (rather than hard-coded strings), checking every claim the
paper makes for MaFIN/GeFIN.
"""

from repro.injectors.gefin import GeFIN
from repro.injectors.mafin import MaFIN

STATE_OF_THE_ART = {
    "Injection framework targeting all major structures":
        "None ([14]: int RF and ROB only; [48]: no cache levels)",
    "Comparison between ISAs (x86 vs ARM)": "None",
    "Comparison between OoO microarchitectures": "None",
    "Comparison between simulators for same ISA": "None",
    "Full system fault injection": "[32] Gem5; [48] M5; [21][22] GEMS",
    "New microarchitectural structures added": "None",
    "Transient/intermittent/permanent fault models":
        "[48] (not all hardware structures)",
}


def _this_work(mafin, gefin_x86, gefin_arm):
    rows = {}
    rows["Injection framework targeting all major structures"] = (
        f"MaFIN: {len(mafin.structures())} structures; "
        f"GeFIN: {len(gefin_x86.structures())} structures")
    isas = sorted(set(GeFIN.isas_supported()))
    rows["Comparison between ISAs (x86 vs ARM)"] = \
        f"GeFIN ({' vs '.join(isas)})"
    rows["Comparison between OoO microarchitectures"] = "MaFIN and GeFIN"
    rows["Comparison between simulators for same ISA"] = \
        "MaFIN and GeFIN (x86)"
    rows["Full system fault injection"] = (
        "Both" if mafin.features()["full_system"] and
        gefin_arm.features()["full_system"] else "No")
    new = sorted(set(mafin.structures()) - set(gefin_x86.structures()))
    rows["New microarchitectural structures added"] = \
        f"MaFIN: {', '.join(new)}"
    models = sorted(set(mafin.features()["fault_models"]) &
                    set(gefin_arm.features()["fault_models"]))
    rows["Transient/intermittent/permanent fault models"] = \
        f"Both: {', '.join(models)}"
    return rows


def test_table1_feature_matrix(benchmark, results_dir):
    def build():
        mafin, gx, ga = MaFIN(), GeFIN("x86"), GeFIN("arm")
        return _this_work(mafin, gx, ga)

    rows = benchmark(build)
    lines = ["Table I — state-of-the-art and contributions",
             f"  {'Aspect':<55s}| This work"]
    for aspect, ours in rows.items():
        lines.append(f"  {aspect:<55s}| {ours}")
        lines.append(f"  {'':55s}| (prior: "
                     f"{STATE_OF_THE_ART[aspect]})")
    text = "\n".join(lines)
    (results_dir / "table1_features.txt").write_text(text)
    print(text)

    # The paper's claims, verified against live capabilities.
    assert "prefetcher" in " ".join(
        rows["New microarchitectural structures added"]) or "pref" in \
        rows["New microarchitectural structures added"]
    isa_row = rows["Comparison between ISAs (x86 vs ARM)"].lower()
    assert "x86" in isa_row and "arm" in isa_row
    assert rows["Full system fault injection"] == "Both"
    for model in ("transient", "intermittent", "permanent"):
        assert model in \
            rows["Transient/intermittent/permanent fault models"]
