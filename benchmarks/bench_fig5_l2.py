"""Fig. 5 — faulty behavior classification, L2 cache (data arrays).

Paper shape: intermediate vulnerability — a few points above the
register file and LSQ, well below the first-level caches (6-7 % at full
scale) — and the two tools agree within about a point.  Because the L2
is unified (code + data), the non-masked outcomes balance SDCs against
crash-type classes (Remark 9).
"""

import _figures


def test_fig5_l2(benchmark, results_dir):
    def run():
        return _figures.run_and_render("l2", results_dir, "fig5_l2")

    fig, text = benchmark.pedantic(run, rounds=1, iterations=1)
    print(text)
    avg = _figures.averages(fig)
    benchmark.extra_info.update(
        {f"avg_vuln_{k}": round(v, 2) for k, v in avg.items()})

    # L2 must be consistently less vulnerable than the L1D was measured
    # to be in the same session (Figs. 3 vs 5 ordering).  Here we only
    # check L2 stays moderate and the tools roughly agree.
    assert max(avg.values()) <= 40.0
    assert abs(avg["MaFIN-x86"] - avg["GeFIN-x86"]) <= 15.0
