"""Table IV — MaFIN and GeFIN enhancements (injectable structures).

Regenerates the per-tool structure inventory from the live fault-site
registries and checks the paper's Existing/Modified/New split: both
tools cover the major array structures; MaFIN additionally carries the
cache data arrays bolted onto MARSS, the dual BTB, and the new L1D/L1I
prefetchers.
"""

from repro.injectors.gefin import GeFIN
from repro.injectors.mafin import MaFIN


def test_table4_injectable_structures(benchmark, results_dir):
    def build():
        return MaFIN().structures(), GeFIN("x86").structures(), \
            GeFIN("arm").structures()

    mafin, gefin_x86, gefin_arm = benchmark(build)

    lines = ["Table IV — injectable structures per tool",
             f"  {'structure':<12s}{'MaFIN-x86':<50s}{'GeFIN-x86/ARM'}"]
    for name in sorted(set(mafin) | set(gefin_x86)):
        left = mafin.get(name, "—")
        right = gefin_x86.get(name, "—")
        lines.append(f"  {name:<12s}{left:<50s}{right}")
    text = "\n".join(lines)
    (results_dir / "table4_structures.txt").write_text(text)
    print(text)

    # Existing rows (both tools).
    for name in ("lsq", "iq", "int_rf", "fp_rf", "l1d_tag", "l1i_tag",
                 "l2_tag", "dtlb", "itlb", "btb"):
        assert name in mafin and name in gefin_x86

    # Cache data arrays exist in both: gem5 had them; the paper *added*
    # them to MARSS (the "Modified" rows).
    for name in ("l1d", "l1i", "l2"):
        assert name in mafin and name in gefin_x86

    # "New" rows: prefetchers only on MaFIN, plus MARSS's indirect BTB.
    for name in ("l1d_pref", "l1i_pref", "btb_ind"):
        assert name in mafin and name not in gefin_x86

    # The two GeFIN ISAs expose identical structures.
    assert set(gefin_x86) == set(gefin_arm)
