"""Ablation: which MARSS trait causes the L1D masking gap (Remark 3)?

The paper attributes MaFIN's lower L1D vulnerability to (a) the QEMU
hypervisor bypassing the cache data arrays for system activity and
(b) the aggressive load-issue policy; the mirror-mode data arrays (the
way the paper bolted data storage onto MARSS) discard resident faults on
eviction too.  Because every trait is a config knob here, we can ablate
them one at a time — the causal check the paper itself cannot run.
"""

from dataclasses import replace

import _figures
from repro.core.campaign import InjectionCampaign
from repro.sim.config import setup_config
from repro.bench import suite

ABLATIONS = {
    "MaFIN (full)": {},
    "- hypervisor": {"hypervisor": False},
    "- aggressive loads": {"aggressive_loads": False},
    "- mirror caches": {"mirror_caches": False},
    "- prefetchers": {"prefetchers": False},
}


def test_ablate_marss_traits_on_l1d(benchmark, results_dir):
    bench_name = _figures.bench_benchmarks()[0]
    n = _figures.bench_injections()
    program = suite.program(bench_name, "x86")

    def measure():
        rows = {}
        for label, overrides in ABLATIONS.items():
            config = replace(setup_config("MaFIN-x86"), **overrides)
            campaign = InjectionCampaign(config, program, bench_name,
                                         "l1d", seed=_figures.bench_seed())
            campaign.prepare(injections=n)
            result = campaign.run()
            rows[label] = (100 * result.vulnerability(),
                           result.classify())
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [f"Remark 3 ablation — L1D vulnerability on '{bench_name}' "
             f"({n} injections each)",
             f"  {'variant':<22s}{'vuln':>8s}  classes"]
    for label, (vuln, classes) in rows.items():
        short = {k[:4]: v for k, v in classes.items() if v}
        lines.append(f"  {label:<22s}{vuln:>7.1f}%  {short}")
    lines.append("  paper: hypervisor masking + aggressive loads explain "
                 "MaFIN's ~7pp lower L1D")
    text = "\n".join(lines)
    (results_dir / "ablation_l1d.txt").write_text(text)
    print(text)

    # Sanity only: each ablated variant still completes and classifies.
    for label, (vuln, classes) in rows.items():
        assert sum(classes.values()) == n, label
        assert 0.0 <= vuln <= 100.0
