"""Quickstart: one fault-injection campaign, start to finish.

Runs a transient single-bit campaign with MaFIN (the MARSS-based
injector) on the L1 data cache while the `sha` benchmark executes, then
prints the paper-style fault-effect classification.

Usage::

    python examples/quickstart.py [injections]
"""

import sys
import time

from repro import MaFIN


def main() -> int:
    injections = int(sys.argv[1]) if len(sys.argv) > 1 else 30
    injector = MaFIN()

    print("MaFIN — MARSS-based fault injector")
    print(f"  ISA: {injector.isa}")
    print(f"  injectable structures: {', '.join(sorted(injector.structures()))}")
    print()
    print(f"Injecting {injections} transient single-bit faults into the "
          f"L1D data array while 'sha' runs...")

    t0 = time.time()
    result = injector.campaign("sha", "l1d", injections=injections, seed=1)
    elapsed = time.time() - t0

    print(f"\nDone in {elapsed:.1f}s "
          f"({result.early_stops}/{result.injections} runs early-stopped "
          f"by the §III.B optimizations).")
    print("\nFault-effect classification:")
    counts = result.classify()
    for cls, count in counts.items():
        pct = 100.0 * count / max(result.injections, 1)
        print(f"  {cls:<8s} {count:4d}  ({pct:5.1f}%)  {'*' * count}")
    print(f"\nVulnerability (non-masked share): "
          f"{100 * result.vulnerability():.1f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
