"""Cross-ISA reliability study on GeFIN (x86 vs ARM).

The paper's second axis: keep the simulator fixed (gem5) and vary the
ISA.  This example compares structure vulnerabilities between GeFIN-x86
and GeFIN-ARM and prints the workload statistics that explain the
differences (code size, loads/stores, L1I replacements — Remarks 5/7).

Usage::

    python examples/isa_comparison.py [injections]
"""

import sys

from repro import GeFIN, golden_stats
from repro.bench import suite


def main() -> int:
    injections = int(sys.argv[1]) if len(sys.argv) > 1 else 20
    benches = ["sha", "fft", "caes"]
    structures = ["int_rf", "l1d", "l1i"]

    x86 = GeFIN("x86")
    arm = GeFIN("arm")

    print("Workload shape per ISA (same MiniC source, two backends):")
    print(f"  {'bench':8s}{'x86 code':>10s}{'arm code':>10s}"
          f"{'x86 loads':>11s}{'arm loads':>11s}")
    stats = golden_stats(benchmarks=benches,
                         setups=("GeFIN-x86", "GeFIN-ARM"))
    for bench in benches:
        px = suite.program(bench, "x86")
        pa = suite.program(bench, "arm")
        sx = stats[(bench, "GeFIN-x86")]
        sa = stats[(bench, "GeFIN-ARM")]
        print(f"  {bench:8s}{px.code_size:>9d}B{pa.code_size:>9d}B"
              f"{sx['committed_loads']:>11d}{sa['committed_loads']:>11d}")
    print()

    print(f"Vulnerability per structure ({injections} injections/cell):")
    print(f"  {'bench':8s}{'structure':10s}{'GeFIN-x86':>10s}"
          f"{'GeFIN-ARM':>10s}{'delta':>8s}")
    for bench in benches:
        for structure in structures:
            vx = 100 * x86.campaign(bench, structure,
                                    injections=injections).vulnerability()
            va = 100 * arm.campaign(bench, structure,
                                    injections=injections).vulnerability()
            print(f"  {bench:8s}{structure:10s}{vx:>9.1f}%{va:>9.1f}%"
                  f"{vx - va:>+7.1f}%")
    print("\nThe paper's observation: ISA-to-ISA differences on the same "
          "simulator are\nsmaller than simulator-to-simulator differences "
          "on the same ISA.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
