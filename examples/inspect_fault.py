"""Looking a fault in the eye: disassembly of corrupted code.

Injects one bit flip into a hot L1I line and shows what the corrupted
bytes decode to — the mechanism behind the L1I figures: sometimes a
different valid instruction (silent behaviour change), sometimes a
reserved encoding (MaFIN assert), sometimes an undefined opcode
(GeFIN process crash).

Usage::

    python examples/inspect_fault.py [bit]
"""

import sys

from repro.bench import suite
from repro.isa.disasm import disassemble_range
from repro.sim.config import setup_config
from repro.sim.gem5 import build_sim


def main() -> int:
    bit = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    config = setup_config("MaFIN-x86")
    program = suite.program("sha", "x86")
    sim = build_sim(program, config)

    # Warm the pipeline so the entry code is resident in the L1I.
    for _ in range(400):
        sim.step()
    site = sim.fault_sites()["l1i"]
    line = next(i for i in range(site.array.entries) if site.live(i))
    addr = sim.l1i.addr_of_line(line)

    before = site.array.peek_line(line)
    site.array.flip(line, bit)
    after = site.array.peek_line(line)

    print(f"L1I line {line} (address {addr:#x}), bit {bit} flipped\n")
    print(f"{'addr':>9s}  {'before':<24s}{'after'}")
    before_dis = list(disassemble_range(before, addr, "x86"))
    after_dis = list(disassemble_range(after, addr, "x86"))
    for i in range(max(len(before_dis), len(after_dis))):
        b = before_dis[i][2] if i < len(before_dis) else ""
        a = after_dis[i][2] if i < len(after_dis) else ""
        pc = (before_dis[i][0] if i < len(before_dis)
              else after_dis[i][0])
        marker = "   <-- changed" if a != b else ""
        print(f"{pc:>9x}  {b:<24s}{a}{marker}")

    print("\nResuming execution with the corrupted line...")
    outcome = sim.run()
    print(f"outcome: {outcome.reason}"
          + (f" ({outcome.detail})" if outcome.detail else "")
          + (f" signal={outcome.signal}" if outcome.signal else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
