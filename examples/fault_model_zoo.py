"""Beyond the paper's figures: the other fault models of Table III.

The reported study uses single-bit transients; the tools also support
permanent and intermittent faults plus multi-bit/multi-structure
populations (§III.A).  This example exercises all of them on one
benchmark and compares the damage profiles.

Usage::

    python examples/fault_model_zoo.py [runs_per_model]
"""

import sys

from repro import INTERMITTENT, PERMANENT, TRANSIENT, MaFIN
from repro.core.maskgen import FaultMaskGenerator, StructureInfo
from repro.sim.gem5 import build_sim
from repro.bench import suite


def main() -> int:
    runs = int(sys.argv[1]) if len(sys.argv) > 1 else 15
    injector = MaFIN()
    bench, structure = "qsort", "int_rf"

    print(f"Fault-model comparison on {structure} while '{bench}' runs "
          f"({runs} runs per model)\n")
    header = f"  {'model':14s}{'Masked':>8s}{'SDC':>6s}{'DUE':>6s}" \
             f"{'Timeout':>9s}{'Crash':>7s}{'Assert':>8s}{'vuln':>8s}"
    print(header)
    for model in (TRANSIENT, INTERMITTENT, PERMANENT):
        result = injector.campaign(bench, structure, injections=runs,
                                   seed=7, fault_type=model)
        c = result.classify()
        print(f"  {model:14s}{c['Masked']:>8d}{c['SDC']:>6d}{c['DUE']:>6d}"
              f"{c['Timeout']:>9d}{c['Crash']:>7d}{c['Assert']:>8d}"
              f"{100 * result.vulnerability():>7.1f}%")

    # Multi-bit faults need the lower-level campaign API.
    print("\nMulti-bit transients (2 flips in the same register file "
          "entry per run):")
    campaign = injector.build_campaign(bench, structure, seed=7)
    golden = campaign.dispatcher.run_golden()
    campaign.logs.set_golden(golden)
    sim = build_sim(suite.program(bench, injector.isa), injector.config)
    info = StructureInfo.of_site(sim.fault_sites()[structure])
    gen = FaultMaskGenerator(7)
    campaign.masks.add_all(gen.generate_multi(
        [info], golden.cycles, count=runs, faults_per_run=2,
        same_entry=True))
    result = campaign.run()
    c = result.classify()
    print(f"  {'2-bit burst':14s}{c['Masked']:>8d}{c['SDC']:>6d}"
          f"{c['DUE']:>6d}{c['Timeout']:>9d}{c['Crash']:>7d}"
          f"{c['Assert']:>8d}{100 * result.vulnerability():>7.1f}%")
    print("\nPermanent/intermittent faults pin a bit for long windows, so "
          "they dominate\nthe transient profile — the motivation for "
          "separate H-AVF/IVF metrics in the literature.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
