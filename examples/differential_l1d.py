"""The paper's headline study in miniature: differential L1D injection.

Runs the same L1D transient campaign on all three setups — MaFIN-x86,
GeFIN-x86 and GeFIN-ARM — for a few benchmarks and prints the
side-by-side classification, reproducing the *shape* of Fig. 3: MaFIN
reports a less vulnerable L1D than GeFIN (hypervisor masking + mirror
caches + aggressive load issue), while the two GeFIN ISAs sit close
together.

Usage::

    python examples/differential_l1d.py [injections] [bench1,bench2,...]
"""

import sys

from repro import run_figure


def main() -> int:
    injections = int(sys.argv[1]) if len(sys.argv) > 1 else 25
    benches = (sys.argv[2].split(",") if len(sys.argv) > 2
               else ["sha", "qsort", "cjpeg"])

    print(f"L1D differential study: {injections} injections per cell, "
          f"benchmarks: {', '.join(benches)}")

    def progress(bench, setup, result):
        print(f"  {bench:7s} {setup:10s} "
              f"vuln={100 * result.vulnerability():5.1f}%  "
              f"(early-stopped {result.early_stops}/{result.injections})")

    fig = run_figure("l1d", benchmarks=benches, injections=injections,
                     seed=1, progress=progress)
    print()
    print(fig.render())

    m = fig.average_vulnerability("MaFIN-x86")
    gx = fig.average_vulnerability("GeFIN-x86")
    ga = fig.average_vulnerability("GeFIN-ARM")
    print(f"Average L1D vulnerability: MaFIN-x86 {m:.1f}%  "
          f"GeFIN-x86 {gx:.1f}%  GeFIN-ARM {ga:.1f}%")
    print(f"Tool difference (GeFIN-x86 - MaFIN-x86): {gx - m:+.1f} points "
          f"(the paper reports +7.2 at full scale)")
    print(f"ISA difference (GeFIN-x86 - GeFIN-ARM): {gx - ga:+.1f} points "
          f"(the paper reports +0.55)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
