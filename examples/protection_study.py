"""Using the injector the way §I motivates: sizing error protection.

Fault-injection numbers feed protection decisions: parity detects (and
with a clean line, recovers) single-bit errors; SEC-DED corrects them.
This example measures per-structure vulnerability, then computes what
each protection option would buy — converting each structure's
classification into a residual-failure estimate — so a designer can see
where parity is worth its overhead and where it isn't.

Usage::

    python examples/protection_study.py [injections]
"""

import sys

from repro import GeFIN, MASKED


# Rough per-option cost in extra storage bits (per protected word/line),
# in the spirit of the paper's memory-protection cost range (1 %-125 %).
PROTECTION = {
    "none": {"detects": 0.0, "overhead": "0%"},
    "parity": {"detects": 1.0, "overhead": "~3% (1 bit / 32)"},
    "SEC-DED": {"detects": 1.0, "overhead": "~22% (7 bits / 32)"},
}


def main() -> int:
    injections = int(sys.argv[1]) if len(sys.argv) > 1 else 25
    injector = GeFIN("x86")
    bench = "qsort"
    structures = ["int_rf", "lsq", "l1d", "l1i", "l2"]

    print(f"Protection study on GeFIN-x86 / '{bench}' "
          f"({injections} injections per structure)\n")
    print(f"  {'structure':10s}{'bits':>10s}{'vuln':>8s}"
          f"{'parity residual':>17s}{'verdict':>24s}")

    rows = []
    for structure in structures:
        result = injector.campaign(bench, structure,
                                   injections=injections, seed=13)
        counts = result.classify()
        total = sum(counts.values())
        vuln = 100.0 * result.vulnerability()
        # Parity on a storage array detects the flipped bit at read time;
        # with an invalid/clean-refetchable copy the access recovers, so
        # detected single-bit errors stop being SDCs.  Model the residual
        # as the timeout/assert share that fires before any read check.
        residual = 100.0 * counts.get("Timeout", 0) / max(total, 1)
        verdict = ("protect (parity pays off)" if vuln >= 10.0 else
                   "protect selectively" if vuln >= 3.0 else
                   "skip (guard-band waste)")
        rows.append((structure, vuln, verdict))
        bits = f"{injector.config.l1d.size * 8:,}" if structure == "l1d" \
            else "-"
        print(f"  {structure:10s}{bits:>10s}{vuln:>7.1f}%"
              f"{residual:>16.1f}%{verdict:>24s}")

    print("\nReading the table the way §I suggests:")
    for structure, vuln, verdict in rows:
        print(f"  - {structure}: measured vulnerability {vuln:.1f}% → "
              f"{verdict}")
    print("\nOver-protecting everything (the straightforward guard-band) "
          "would spend SEC-DED\noverhead on structures whose measured "
          "vulnerability is already ~0 — exactly the\nexcessive-cost "
          "trap the paper warns about.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
