"""CI gate for the pruner's soundness contract.

Runs a small campaign through the CLI with ``--prune collapse`` and an
audit sample, and fails unless (i) the audit re-simulated pruned masks
with zero classification divergences and an intact pristine digest,
(ii) the campaign actually pruned something, and (iii) the pruned
classification equals the same campaign with pruning off.  Usage:

    PYTHONPATH=src python scripts/ci_prune_audit.py [workdir]
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

CELL = ["MaFIN-x86", "qsort", "l1d"]
ARGS = ["--injections", "24", "--seed", "7", "--json"]
CLI = [sys.executable, "-m", "repro.tools", "campaign"]


def run_campaign_cli(extra: list) -> dict:
    proc = subprocess.run([*CLI, *CELL, *ARGS, *extra],
                          capture_output=True, text=True)
    assert proc.returncode == 0, \
        f"campaign exited {proc.returncode}:\n{proc.stderr}"
    return json.loads(proc.stdout)


def main() -> None:
    work = Path(sys.argv[1]) if len(sys.argv) > 1 else \
        Path(tempfile.mkdtemp(prefix="prune-ci-"))
    cache = work / "traces"

    baseline = run_campaign_cli(["--prune", "off"])
    pruned = run_campaign_cli(["--prune", "collapse", "--audit", "8",
                               "--trace-cache", str(cache)])

    assert pruned["counts"] == baseline["counts"], \
        f"pruning changed the classification:\n{pruned['counts']}\n" \
        f"vs\n{baseline['counts']}"

    stats = pruned["prune"]
    assert stats is not None, "--prune collapse produced no prune stats"
    n_pruned = stats["masked"] + stats["collapsed"]
    rate = n_pruned / stats["masks"]
    assert n_pruned > 0, f"campaign pruned nothing: {stats}"
    assert stats["simulated"] + n_pruned == stats["masks"], stats

    audit = stats["audit"]
    assert audit["checked"] > 0, "audit re-simulated nothing"
    assert not audit["divergences"], \
        f"prune audit diverged: {audit['divergences']}"
    assert audit["pristine_digest_ok"], \
        "pristine state digest changed across the audit"

    # Second run must hit the trace cache and agree bit-for-bit.
    again = run_campaign_cli(["--prune", "collapse", "--audit", "8",
                              "--trace-cache", str(cache)])
    assert again["prune"]["trace_source"] == "cache", \
        f"expected a trace cache hit, got {again['prune']['trace_source']}"
    assert again["prune"]["trace_digest"] == stats["trace_digest"], \
        "cached trace digest diverged from the recorded one"
    assert again["counts"] == pruned["counts"]

    print(f"prune audit OK: {n_pruned}/{stats['masks']} masks pruned "
          f"({100 * rate:.0f}%), audit {audit['checked']} re-simulated, "
          f"0 divergences, trace cache hit verified")


if __name__ == "__main__":
    main()
