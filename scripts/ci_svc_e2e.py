"""CI gate for the campaign service's end-to-end contract.

Starts ``repro.tools svc serve`` as a real subprocess, submits two
studies from two tenants over HTTP, SIGTERM-kills the service once the
first unit lands, restarts it over the same root, streams both
``/events`` NDJSON feeds to their deterministic ``study_complete``
terminator, renders both study reports (plain-text endpoint + HTML
file), and fails unless

* every accepted unit finished exactly once (no unit lost, none run
  twice — counted straight from the per-study sched journals),
* each study's resumed tally/injection totals equal what
  ``repro.tools sched status --json`` reads from the same study
  directory, and
* the restarted fleet's cross-study golden cache recorded at least one
  hit (both tenants target the same setup × benchmark).

Usage::

    PYTHONPATH=src python scripts/ci_svc_e2e.py [workdir]
"""

import json
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

CLI = [sys.executable, "-m", "repro.tools", "svc", "serve"]
READY_RE = re.compile(r"http://([\d.]+):(\d+)/status")

# Both tenants target MaFIN-x86 × sha so the second study's golden
# state must come from the fleet's cross-study cache, not a re-run.
SPECS = {
    "alice": {"setups": ["MaFIN-x86"], "benchmarks": ["sha"],
              "structures": ["int_rf", "l1d"], "injections": 3,
              "seed": 11, "n_checkpoints": 2},
    "bob": {"setups": ["MaFIN-x86"], "benchmarks": ["sha"],
            "structures": ["l1i", "lsq"], "injections": 3,
            "seed": 13, "n_checkpoints": 2},
}


def start_service(root: Path) -> tuple[subprocess.Popen, str]:
    """Launch ``svc serve`` on an ephemeral port; return (proc, url)."""
    proc = subprocess.Popen(
        [*CLI, "--root", str(root), "--port", "0", "--workers", "1",
         "--tenant", "alice:weight=3", "--tenant", "bob:weight=1"],
        stdout=subprocess.PIPE, text=True)
    line = proc.stdout.readline()
    match = READY_RE.search(line)
    assert match, f"no ready line from svc serve, got {line!r}"
    return proc, f"http://{match.group(1)}:{match.group(2)}"


def http(url: str, method: str = "GET", payload=None, timeout_s=60):
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(url, data=data, method=method)
    with urllib.request.urlopen(req, timeout=timeout_s) as resp:
        return json.loads(resp.read())


def stream_events(url: str) -> dict:
    """Read one /events NDJSON stream to EOF; return the terminator."""
    with urllib.request.urlopen(url, timeout=300) as resp:
        lines = [json.loads(ln) for ln in resp.read().splitlines()]
    assert lines, f"empty event stream from {url}"
    final = lines[-1]
    assert final["name"] == "study_complete", final
    return final


def wait_first_done(root: Path, deadline_s: float = 180.0) -> None:
    """Block until any study journal records its first finished unit."""
    deadline = time.time() + deadline_s
    studies = root / "studies"
    while time.time() < deadline:
        for journal in studies.glob("*/journal.jsonl"):
            if '"done"' in journal.read_text():
                return
        time.sleep(0.05)
    sys.exit("no unit finished before the kill deadline")


def done_counts(journal: Path) -> dict:
    """unit id -> number of DONE records in one study's sched journal."""
    counts: dict = {}
    for line in journal.read_text().splitlines():
        row = json.loads(line)
        if row.get("state") == "done" and "unit" in row:
            counts[row["unit"]] = counts.get(row["unit"], 0) + 1
    return counts


def sched_status(study_dir: Path) -> dict:
    out = subprocess.run(
        [sys.executable, "-m", "repro.tools", "sched", "status",
         str(study_dir), "--json"],
        check=True, capture_output=True, text=True).stdout
    return json.loads(out)


def main() -> None:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else \
        Path(tempfile.mkdtemp(prefix="svc-ci-"))

    proc, url = start_service(root)
    ids = {}
    for tenant, spec in SPECS.items():
        body = http(f"{url}/studies", "POST",
                    {"tenant": tenant, "spec": spec})
        ids[tenant] = body["id"]
        print(f"accepted {body['id']} for {tenant}")

    # Kill the whole service the moment the first unit completes —
    # the rest must survive as journal state only.
    wait_first_done(root)
    proc.send_signal(signal.SIGTERM)
    assert proc.wait(timeout=60) == 130, "svc serve should exit 130"
    pending = sum(
        len(json.loads((root / "studies" / sid / "journal.jsonl")
                       .read_text().splitlines()[0])["units"])
        - sum(done_counts(root / "studies" / sid / "journal.jsonl")
              .values())
        for sid in ids.values())
    print(f"service killed mid-run ({pending} units still pending)")
    assert pending >= 2, "kill landed too late to exercise resume"

    # Restart over the same root: both studies must resume losslessly
    # and run to completion; streaming /events blocks until they do.
    proc, url = start_service(root)
    try:
        for tenant, sid in ids.items():
            final = stream_events(f"{url}/studies/{sid}/events")
            assert final["complete"] and final["state"] == "done", final

            journal = root / "studies" / sid / "journal.jsonl"
            per_unit = done_counts(journal)
            snap = sched_status(root / "studies" / sid)
            assert set(per_unit) == {c["unit"] for c in snap["cells"]}, \
                f"{sid}: lost units {snap['tally']}"
            assert all(n == 1 for n in per_unit.values()), \
                f"{sid}: unit run twice: {per_unit}"

            row = http(f"{url}/studies/{sid}/status")
            for key in ("injections_done", "units"):
                assert row[key] == snap[key], \
                    f"{sid}.{key}: service {row[key]!r} != " \
                    f"sched status {snap[key]!r}"
            # The service tally counts units/done/quarantined/pending;
            # sched status breaks pending into pending/leased/failed.
            for key in ("done", "quarantined", "pending"):
                assert row["tally"][key] == snap["tally"][key], \
                    f"{sid}.tally.{key}: service {row['tally']!r} != " \
                    f"sched status {snap['tally']!r}"
            assert final["tally"] == snap["tally"], final
            print(f"{sid} ({tenant}): resumed totals match "
                  f"sched status --json: {row['tally']}")

            report = urllib.request.urlopen(
                f"{url}/studies/{sid}/report", timeout=60).read()
            assert b"outcome" in report.lower(), "empty service report"
            html_out = root / f"report-{sid}.html"
            subprocess.run(
                [sys.executable, "-m", "repro.tools", "obs", "report",
                 "--study-dir", str(root / "studies" / sid),
                 "--out", str(html_out)],
                check=True)
            assert html_out.stat().st_size > 1024, "HTML report too small"

        status = http(f"{url}/status")
        assert status["studies"].get("done") == len(ids), status["studies"]
        cache = status["golden_cache"]
        assert cache["hits"] >= 1, \
            f"no cross-study golden cache hit after resume: {cache}"
        print(f"golden cache after resume: {cache['hits']} hits / "
              f"{cache['misses']} misses over {cache['entries']} entries")
    finally:
        proc.send_signal(signal.SIGTERM)
    assert proc.wait(timeout=60) == 130
    print("svc e2e: submit, kill, resume, stream, report — all good")


if __name__ == "__main__":
    main()
