"""CI gate for the live observability layer.

Points the status server and the HTML report at a finished study —
in CI, the kill-and-resume shard that scripts/ci_sched_kill_resume.py
leaves behind, so the observability stack is exercised against a
journal with real failure/resume history.  Fails unless:

* ``GET /status`` answers 200 with a complete, internally consistent
  snapshot;
* ``GET /events`` streams ordered NDJSON to EOF and its final
  ``study_complete`` per-unit counts equal ``sched status --json``;
* ``obs report`` renders byte-stable HTML whose outcome table is
  non-empty (per-structure stacked bars with Wilson intervals).

Usage:

    PYTHONPATH=src python scripts/ci_obs_report.py STUDY_DIR [REPORT]
"""

import json
import subprocess
import sys
import threading
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.server import StatusServer

CLI = [sys.executable, "-m", "repro.tools"]


def http_get(url: str) -> tuple[int, bytes]:
    with urllib.request.urlopen(url, timeout=30) as resp:
        return resp.getcode(), resp.read()


def check_server(study_dir: Path, status_cli: dict) -> None:
    server = StatusServer(study_dir, port=0)
    ready = threading.Event()
    thread = threading.Thread(
        target=server.serve_forever,
        kwargs=dict(on_ready=lambda s: ready.set()), daemon=True)
    thread.start()
    assert ready.wait(30), "status server never bound"
    base = f"http://127.0.0.1:{server.port}"
    try:
        code, body = http_get(base + "/status")
        assert code == 200, f"/status answered {code}"
        snap = json.loads(body)
        assert snap["complete"], f"study not complete: {snap['tally']}"
        assert snap["units"] > 0 and snap["cells"], "empty snapshot"
        assert snap["tally"] == status_cli["tally"], \
            f"/status tally {snap['tally']} != CLI {status_cli['tally']}"
        print(f"/status ok: {snap['units']} units, "
              f"{snap['injections_done']} injections, "
              f"{snap['progress']['converged_cells']} converged cells")

        code, body = http_get(base + "/events")
        assert code == 200, f"/events answered {code}"
        rows = [json.loads(line) for line in body.decode().splitlines()]
        assert rows, "/events streamed nothing"
        final = rows[-1]
        assert final.get("name") == "study_complete", \
            f"stream did not terminate cleanly: {final}"
        seqs = [r["seq"] for r in rows[:-1]]
        assert seqs == sorted(seqs), "transition stream out of order"
        cli_counts = {c["unit"]: c["counts"] for c in status_cli["cells"]}
        assert final["units"] == cli_counts, \
            f"/events final counts disagree with sched status --json:\n" \
            f"{final['units']}\nvs\n{cli_counts}"
        print(f"/events ok: {len(rows) - 1} transitions, final counts "
              "match sched status --json")
    finally:
        server.stop()
        thread.join(30)


def check_report(study_dir: Path, report_path: Path) -> None:
    rc = subprocess.run([*CLI, "obs", "report", "--study-dir",
                         str(study_dir), "--out",
                         str(report_path)]).returncode
    assert rc == 0, f"obs report failed with exit {rc}"
    html = report_path.read_text()
    assert "Outcome proportions by structure" in html, \
        "report is missing the outcome section"
    assert '<div class="bar">' in html and "99% CI" in html, \
        "outcome table has no stacked bars / Wilson intervals"
    assert "converged" in html, "report carries no convergence flags"
    for token in ("<script", "src=", "href="):
        assert token not in html, f"report is not self-contained: {token}"
    again = subprocess.run([*CLI, "obs", "report", "--study-dir",
                            str(study_dir)], capture_output=True,
                           text=True)
    assert again.returncode == 0
    assert again.stdout.strip() == html.strip(), \
        "re-rendering the same study was not byte-stable"
    print(f"report ok: {report_path} ({len(html.encode())} bytes, "
          "byte-stable, self-contained)")


def main() -> None:
    if len(sys.argv) < 2:
        sys.exit(__doc__)
    study_dir = Path(sys.argv[1])
    report_path = (Path(sys.argv[2]) if len(sys.argv) > 2
                   else study_dir / "report.html")
    proc = subprocess.run([*CLI, "sched", "status", str(study_dir),
                           "--json"], capture_output=True, text=True)
    assert proc.returncode == 0, \
        f"sched status failed: {proc.stderr.strip()}"
    status_cli = json.loads(proc.stdout)
    check_server(study_dir, status_cli)
    check_report(study_dir, report_path)
    print("observability gate passed")


if __name__ == "__main__":
    main()
