"""CI gate for the fleet trust layer (``repro.svc.attest``).

A remote worker is a claim, not a fact.  This drill runs the same study
twice — once all-locally for a baseline, once on a ``--workers 0``
service fed by one honest ``svc worker`` and one *liar*: a patched
agent that corrupts its completions.  The liar tells both kinds of lie:

* a **crude** lie (cooked classification counts) that ingest validation
  must 422 on the spot, and
* a **self-consistent** lie (a flipped ``output_hex`` with counts
  recomputed to match) that only the sampled re-execution audit can
  catch.

The drill fails unless the liar is caught and distrusted, its voided
units re-run by the honest worker, every unit finished exactly once in
the replayed journal, the final record files byte-identical to the
all-local baseline — and ``repro.tools fsck`` exits 0 on the surviving
root, 3 on a deliberately corrupted copy, and repairs a torn tail.

Usage::

    PYTHONPATH=src python scripts/ci_lying_worker.py [workdir]
"""

import hashlib
import json
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

SERVE = [sys.executable, "-m", "repro.tools", "svc", "serve"]
WORKER = [sys.executable, "-m", "repro.tools", "svc", "worker"]
FSCK = [sys.executable, "-m", "repro.tools", "fsck"]
READY_RE = re.compile(r"http://([\d.]+):(\d+)/status")

TOKEN = "ci-attest-secret"
LIAR = "liar-w1"
HONEST = "honest-w1"

SPEC = {"setups": ["MaFIN-x86"], "benchmarks": ["sha"],
        "structures": ["int_rf", "l1d", "l1i", "lsq"],
        "injections": 2, "seed": 11, "n_checkpoints": 2}

#: The liar: the stock WorkerAgent with its ``/fleet/complete`` bodies
#: tampered in flight.  Executions stay honest — only the report lies —
#: so everything the drill catches was caught by the *server*.
LIAR_SOURCE = '''\
"""svc worker that lies about its completions (CI drill helper)."""
import json
import sys

from repro.core.outcome import GoldenReference, InjectionRecord
from repro.core.parser import classify_all
from repro.svc.fleet import pack_text, unpack_text
from repro.svc.remote import WorkerAgent


class LyingAgent(WorkerAgent):
    lies = 0

    def _call(self, path, body):
        if path == "/fleet/complete" and "logs" in body \\
                and body.get("result", {}).get("ok"):
            body = self._corrupt(dict(body))
        return super()._call(path, body)

    def _corrupt(self, body):
        LyingAgent.lies += 1
        result = dict(body["result"])
        if LyingAgent.lies == 1:
            # Crude lie: cook the claimed counts.  The server recomputes
            # them from the shipped records, so this must be a 422.
            counts = dict(result.get("counts") or {})
            counts["Masked"] = counts.get("Masked", 0) + 999
            result["counts"] = counts
            kind = "crude"
        else:
            # Self-consistent lie: flip one record's observed output and
            # recompute the counts to match.  Ingest has nothing to
            # object to; only a re-execution can tell.
            rows = [json.loads(line) for line in
                    unpack_text(body["logs"]).splitlines()]
            golden, records, flipped = None, [], False
            for row in rows:
                if row["kind"] == "golden":
                    golden = GoldenReference.from_dict(row["data"])
                elif row["kind"] == "injection":
                    if not flipped:
                        row["data"]["output_hex"] = (
                            "deadbeef" + (row["data"].get("output_hex")
                                          or ""))
                        flipped = True
                    records.append(InjectionRecord.from_dict(row["data"]))
            result["counts"] = classify_all(records, golden)
            body["logs"] = pack_text(
                "".join(json.dumps(r) + "\\n" for r in rows))
            kind = "smart"
        body["result"] = result
        print(f"liar: sent {kind} lie #{LyingAgent.lies}", flush=True)
        return body


def main():
    url, name, scratch, token = sys.argv[1:5]
    agent = LyingAgent(url, name=name, token=token, workers=2,
                       scratch_dir=scratch, fsync=False)
    print(f"worker {name} -> {url} (liar armed)", flush=True)
    try:
        agent.run()
    except RuntimeError as exc:
        print(f"liar: expelled ({exc})", flush=True)
        sys.exit(86)


if __name__ == "__main__":
    main()
'''


def start_service(root: Path, workers: int, extra=(), token=None):
    cmd = [*SERVE, "--root", str(root), "--port", "0",
           "--workers", str(workers),
           "--lease-heartbeat-s", "1", "--miss-budget", "3",
           "--backoff-s", "0.1", *extra]
    if token:
        cmd += ["--token", token]
    proc = subprocess.Popen(cmd, stdout=subprocess.PIPE, text=True)
    line = proc.stdout.readline()
    match = READY_RE.search(line)
    assert match, f"no ready line from svc serve, got {line!r}"
    return proc, f"http://{match.group(1)}:{match.group(2)}"


def http(url, method="GET", payload=None, token=None, timeout_s=60):
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(url, data=data, method=method)
    if token:
        req.add_header("Authorization", f"Bearer {token}")
    with urllib.request.urlopen(req, timeout=timeout_s) as resp:
        return json.loads(resp.read())


def stream_to_complete(url, token=None, timeout_s=900):
    req = urllib.request.Request(url)
    if token:
        req.add_header("Authorization", f"Bearer {token}")
    deadline = time.time() + timeout_s
    with urllib.request.urlopen(req, timeout=timeout_s) as resp:
        for raw in resp:
            assert time.time() < deadline, "study never completed"
            row = json.loads(raw)
            if row.get("name") == "study_complete":
                return row
    sys.exit(f"event stream from {url} ended without study_complete")


def record_digests(study_dir: Path) -> dict:
    out = {}
    for sub in ("logs", "masks"):
        for path in sorted((study_dir / sub).glob("*.jsonl")):
            out[f"{sub}/{path.name}"] = hashlib.sha256(
                path.read_bytes()).hexdigest()
    return out


def sched_status(study_dir: Path) -> dict:
    out = subprocess.run(
        [sys.executable, "-m", "repro.tools", "sched", "status",
         str(study_dir), "--json"],
        check=True, capture_output=True, text=True).stdout
    return json.loads(out)


def fsck(path: Path, *flags) -> tuple[int, str]:
    proc = subprocess.run([*FSCK, *flags, str(path)],
                          capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


def main() -> None:
    base = Path(sys.argv[1]) if len(sys.argv) > 1 else \
        Path(tempfile.mkdtemp(prefix="lying-worker-"))
    local_root, fleet_root = base / "local", base / "fleet"

    # -- phase 1: all-local baseline --------------------------------------
    proc, url = start_service(local_root, workers=2)
    try:
        sid = http(f"{url}/studies", "POST",
                   {"tenant": "alice", "spec": SPEC})["id"]
        final = stream_to_complete(f"{url}/studies/{sid}/events")
        assert final["complete"] and final["state"] == "done", final
    finally:
        proc.send_signal(signal.SIGTERM)
    assert proc.wait(timeout=60) == 130
    golden = record_digests(local_root / "studies" / sid)
    assert len(golden) == 2 * len(SPEC["structures"]), golden
    print(f"baseline {sid}: {len(golden)} record files fingerprinted")

    # -- phase 2: honest worker vs liar, full audit -----------------------
    liar_py = base / "liar.py"
    liar_py.write_text(LIAR_SOURCE)
    proc, url = start_service(
        fleet_root, workers=0, token=TOKEN,
        extra=["--challenge", "--audit-fraction", "1.0",
               "--audit-seed", "7", "--reject-limit", "3",
               "--retries", "5"])
    liar = honest = None
    try:
        liar = subprocess.Popen(
            [sys.executable, str(liar_py), url, LIAR,
             str(base / "liar-scratch"), TOKEN],
            stdout=subprocess.PIPE, text=True)
        assert "liar armed" in liar.stdout.readline()
        honest = subprocess.Popen(
            [*WORKER, "--connect", url, "--name", HONEST,
             "--workers", "1", "--scratch-dir", str(base / "honest"),
             "--no-fsync", "--token", TOKEN],
            stdout=subprocess.PIPE, text=True)
        assert honest.stdout.readline().startswith(f"worker {HONEST}")

        rid = http(f"{url}/studies", "POST",
                   {"tenant": "alice", "spec": SPEC}, token=TOKEN)["id"]
        assert rid == sid, f"study ids diverged: {rid} vs {sid}"
        final = stream_to_complete(f"{url}/studies/{rid}/events",
                                   token=TOKEN)
        assert final["complete"] and final["state"] == "done", final

        # The liar was expelled: registration now refused, agent exits.
        assert liar.wait(timeout=120) == 86, "liar was never expelled"
        lied = liar.stdout.read()
        assert "distrusted" in lied, f"liar exit without distrust: {lied}"

        status = http(f"{url}/status", token=TOKEN)
        attest = status["attest"]
        assert attest["rejected"] + attest["audits_diverged"] >= 1, attest
        assert attest["distrusted"] >= 1, attest
        assert attest["audits_ok"] >= 1, attest
        assert attest["workers"][LIAR]["state"] == "distrusted", attest
        assert attest["workers"][HONEST]["state"] == "ok", attest
        assert LIAR not in status["remote"]["workers"], status["remote"]
        caught = ("ingest" if attest["rejected"] else "") + (
            "+audit" if attest["audits_diverged"] else "")
        print(f"liar caught ({caught.strip('+')}): "
              f"{attest['rejected']} rejected, "
              f"{attest['audits_diverged']} diverged, "
              f"{attest['voided']} voided, scorecard distrusted")

        snap = sched_status(fleet_root / "studies" / rid)
        assert snap["tally"]["done"] == len(SPEC["structures"]), snap
        assert snap["tally"]["quarantined"] == 0, snap
        row = http(f"{url}/studies/{rid}/status", token=TOKEN)
        for key in ("done", "quarantined", "pending"):
            assert row["tally"][key] == snap["tally"][key], \
                f"tally.{key}: {row['tally']!r} != {snap['tally']!r}"
        print(f"fleet study {rid}: every unit done exactly once after "
              f"voiding ({row['tally']})")
    finally:
        for agent in (liar, honest):
            if agent is not None and agent.poll() is None:
                agent.send_signal(signal.SIGTERM)
        proc.send_signal(signal.SIGTERM)
    if honest is not None:
        assert honest.wait(timeout=120) == 130, "honest worker exit code"
    assert proc.wait(timeout=60) == 130

    # -- the verdict: byte-identical to the all-local run ------------------
    fleet = record_digests(fleet_root / "studies" / sid)
    assert fleet == golden, (
        "records diverged despite attestation:\n"
        + "\n".join(f"  {path}: local {golden.get(path, '<missing>')[:12]} "
                    f"fleet {fleet.get(path, '<missing>')[:12]}"
                    for path in sorted(set(golden) | set(fleet))
                    if golden.get(path) != fleet.get(path)))
    print(f"all {len(golden)} record files byte-identical to the "
          f"all-local baseline — the lies changed nothing")

    # -- phase 3: fsck the surviving root, then a corrupted copy ----------
    code, out = fsck(fleet_root)
    assert code == 0, f"fsck on the surviving root: exit {code}\n{out}"
    print("fsck: surviving service root is clean (exit 0)")

    torn = base / "torn-copy"
    shutil.copytree(fleet_root, torn)
    journal = next((torn / "studies").glob("*/journal.jsonl"))
    journal.write_text(journal.read_text() + '{"kind": "unit", "st')
    code, out = fsck(torn)
    assert code == 3 and "journal-parse" in out, (code, out)
    code, out = fsck(torn, "--repair")
    assert code == 0, f"torn tail not repaired: exit {code}\n{out}"
    code, _ = fsck(torn)
    assert code == 0, "repair did not stick"
    print("fsck: torn journal tail found (exit 3) and repaired (exit 0)")

    forged = base / "forged-copy"
    shutil.copytree(fleet_root, forged)
    logs = next((forged / "studies").glob("*/logs/*.jsonl"))
    lines = logs.read_text().splitlines()
    dup = next(line for line in lines
               if json.loads(line)["kind"] == "injection")
    logs.write_text("".join(line + "\n" for line in lines) + dup + "\n")
    code, out = fsck(forged, "--repair")
    assert code == 3 and "duplicate-set-id" in out, (code, out)
    print("fsck: forged duplicate record named and not repaired (exit 3)")
    print("lying-worker drill: challenge, lie, catch, void, re-run, "
          "verify, fsck — all good")


if __name__ == "__main__":
    main()
