"""CI gate for the scheduler's durability contract.

Runs a tiny two-shard study, SIGTERMs shard 0 mid-flight, resumes it,
merges both shards, and fails unless the merged classification equals
an uninterrupted run of the same spec.  Usage:

    PYTHONPATH=src python scripts/ci_sched_kill_resume.py [workdir]
"""

import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.sched import (DONE, StudySpec, load_journal, merge_studies,
                         run_study)

# int_rf + l1i split 2/2 under CRC-32 mod 2 for these setups.
SPEC = StudySpec(setups=("MaFIN-x86", "GeFIN-x86"), benchmarks=("sha",),
                 structures=("int_rf", "l1i"), injections=6, seed=7)
CLI = [sys.executable, "-m", "repro.tools", "sched"]
RUN_ARGS = ["--benchmarks", "sha", "--structures", "int_rf", "l1i",
            "--injections", "6", "--seed", "7", "--workers", "1"]


def run_shard_killed(study: Path) -> None:
    """Start shard 0, SIGTERM it once its first unit lands, resume it."""
    proc = subprocess.Popen([*CLI, "run", "--out", str(study),
                             "--shard", "0/2", *RUN_ARGS])
    journal = study / "journal.jsonl"
    deadline = time.time() + 120
    while time.time() < deadline:
        if journal.exists() and '"done"' in journal.read_text():
            break
        time.sleep(0.05)
    else:
        proc.kill()
        sys.exit("shard 0 never completed a unit")
    proc.send_signal(signal.SIGTERM)
    rc = proc.wait(timeout=60)
    print(f"shard 0 killed mid-flight (exit {rc})")
    if rc != 0:                          # 0 means it won the race
        assert rc == 130, f"expected exit 130 after SIGTERM, got {rc}"
        rc = subprocess.run([*CLI, "resume", str(study),
                             "--workers", "1"]).returncode
        assert rc == 0, f"resume failed with exit {rc}"
        print("shard 0 resumed to completion")
    state = load_journal(journal)
    assert state.tally()[DONE] == len(state.unit_ids), state.tally()


def main() -> None:
    work = Path(sys.argv[1]) if len(sys.argv) > 1 else \
        Path(tempfile.mkdtemp(prefix="sched-ci-"))
    baseline = run_study(SPEC, work / "baseline", workers=2)
    assert baseline.ok, "uninterrupted baseline study failed"

    run_shard_killed(work / "shard0")
    rc = subprocess.run([*CLI, "run", "--out", str(work / "shard1"),
                         "--shard", "1/2", *RUN_ARGS]).returncode
    assert rc == 0, f"shard 1 failed with exit {rc}"

    merged = merge_studies([work / "shard0", work / "shard1"])
    assert merged["complete"], f"merge incomplete: {merged['missing']}"
    assert merged["units"] == baseline.classifications(), \
        f"per-unit mismatch:\n{merged['units']}\nvs\n" \
        f"{baseline.classifications()}"
    assert merged["totals"] == baseline.totals(), \
        f"totals mismatch: {merged['totals']} vs {baseline.totals()}"
    print("kill-and-resume merge equals uninterrupted run:",
          merged["totals"])


if __name__ == "__main__":
    main()
