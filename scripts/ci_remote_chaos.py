"""CI gate for the distributed fleet under transport chaos.

The paper's own methodology turned on our orchestration: inject faults
into the worker⇄service transport and diff the outcome against a
golden (all-local) run.  The script

* runs one study entirely locally (``svc serve --workers 2``) and
  fingerprints every logs/masks record file it produces,
* re-runs the same study on a ``--workers 0`` service whose only
  compute is two ``svc worker`` subprocesses, with ``REPRO_SVC_CHAOS``
  arming drops, duplicates, delays and server-side disconnects on both
  sides, and a shared-secret token on every call,
* SIGKILLs one worker the moment the first unit lands (its leases must
  be revoked by miss-budget and re-run by the survivor),
* and fails unless the chaos study completes with every unit DONE
  exactly once, its logs/masks files byte-identical to the local run,
  its totals equal to what ``sched status --json`` reads from the same
  study directory, and unauthenticated requests rejected with 401.

Usage::

    PYTHONPATH=src python scripts/ci_remote_chaos.py [workdir]
"""

import hashlib
import json
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

SERVE = [sys.executable, "-m", "repro.tools", "svc", "serve"]
WORKER = [sys.executable, "-m", "repro.tools", "svc", "worker"]
READY_RE = re.compile(r"http://([\d.]+):(\d+)/status")
WORKER_READY_RE = re.compile(r"^worker \S+ -> ")

TOKEN = "ci-fleet-secret"
CHAOS = "drop=0.1,dup=0.15,delay=0.02,disconnect=0.15,seed=5"

SPEC = {"setups": ["MaFIN-x86"], "benchmarks": ["sha"],
        "structures": ["int_rf", "l1d", "l1i", "lsq"],
        "injections": 3, "seed": 11, "n_checkpoints": 2}


def start_service(root: Path, workers: int, env=None,
                  token: str | None = None):
    cmd = [*SERVE, "--root", str(root), "--port", "0",
           "--workers", str(workers),
           "--lease-heartbeat-s", "1", "--miss-budget", "2"]
    if token:
        cmd += ["--token", token]
    proc = subprocess.Popen(cmd, stdout=subprocess.PIPE, text=True,
                            env=env)
    line = proc.stdout.readline()
    match = READY_RE.search(line)
    assert match, f"no ready line from svc serve, got {line!r}"
    return proc, f"http://{match.group(1)}:{match.group(2)}"


def start_worker(url: str, name: str, scratch: Path, env=None):
    proc = subprocess.Popen(
        [*WORKER, "--connect", url, "--name", name, "--workers", "1",
         "--scratch-dir", str(scratch), "--no-fsync", "--token", TOKEN],
        stdout=subprocess.PIPE, text=True, env=env)
    line = proc.stdout.readline()
    assert WORKER_READY_RE.search(line), \
        f"no ready line from svc worker, got {line!r}"
    return proc


def http(url, method="GET", payload=None, token=None, timeout_s=60):
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(url, data=data, method=method)
    if token:
        req.add_header("Authorization", f"Bearer {token}")
    with urllib.request.urlopen(req, timeout=timeout_s) as resp:
        return json.loads(resp.read())


def stream_to_complete(url, token=None, timeout_s=600):
    """Follow one /events NDJSON stream to its study_complete line."""
    req = urllib.request.Request(url)
    if token:
        req.add_header("Authorization", f"Bearer {token}")
    deadline = time.time() + timeout_s
    with urllib.request.urlopen(req, timeout=timeout_s) as resp:
        for raw in resp:
            assert time.time() < deadline, "study never completed"
            row = json.loads(raw)
            if row.get("name") == "study_complete":
                return row
    sys.exit(f"event stream from {url} ended without study_complete")


def record_digests(study_dir: Path) -> dict:
    """relative path -> sha256 for every logs/masks record file."""
    out = {}
    for sub in ("logs", "masks"):
        for path in sorted((study_dir / sub).glob("*.jsonl")):
            out[f"{sub}/{path.name}"] = hashlib.sha256(
                path.read_bytes()).hexdigest()
    return out


def done_counts(journal: Path) -> dict:
    counts: dict = {}
    for line in journal.read_text().splitlines():
        row = json.loads(line)
        if row.get("state") == "done" and "unit" in row:
            counts[row["unit"]] = counts.get(row["unit"], 0) + 1
    return counts


def wait_first_done(root: Path, deadline_s=240.0) -> None:
    deadline = time.time() + deadline_s
    while time.time() < deadline:
        for journal in (root / "studies").glob("*/journal.jsonl"):
            if '"done"' in journal.read_text():
                return
        time.sleep(0.05)
    sys.exit("no unit finished before the worker-kill deadline")


def sched_status(study_dir: Path) -> dict:
    out = subprocess.run(
        [sys.executable, "-m", "repro.tools", "sched", "status",
         str(study_dir), "--json"],
        check=True, capture_output=True, text=True).stdout
    return json.loads(out)


def main() -> None:
    import os
    base = Path(sys.argv[1]) if len(sys.argv) > 1 else \
        Path(tempfile.mkdtemp(prefix="remote-chaos-"))
    local_root, remote_root = base / "local", base / "remote"

    # -- golden run: the same study, all local, no chaos ------------------
    proc, url = start_service(local_root, workers=2)
    try:
        sid = http(f"{url}/studies", "POST",
                   {"tenant": "alice", "spec": SPEC})["id"]
        final = stream_to_complete(f"{url}/studies/{sid}/events")
        assert final["complete"] and final["state"] == "done", final
    finally:
        proc.send_signal(signal.SIGTERM)
    assert proc.wait(timeout=60) == 130
    golden = record_digests(local_root / "studies" / sid)
    assert len(golden) == 2 * len(SPEC["structures"]), golden
    print(f"local baseline {sid}: {len(golden)} record files "
          f"fingerprinted")

    # -- chaos run: zero local slots, two remote workers, one murdered ---
    chaos_env = {**os.environ, "REPRO_SVC_CHAOS": CHAOS}
    proc, url = start_service(remote_root, workers=0, env=chaos_env,
                              token=TOKEN)
    w1 = w2 = None
    try:
        # Authentication is the front door: no token, no service.
        try:
            http(f"{url}/status")
        except urllib.error.HTTPError as exc:
            body = json.loads(exc.read())
            assert exc.code == 401 and body["reason"] == "unauthorized"
        else:
            sys.exit("unauthenticated /status was not rejected")
        print("401 probe: unauthenticated requests rejected")

        w1 = start_worker(url, "chaos-w1", base / "w1", env=chaos_env)
        w2 = start_worker(url, "chaos-w2", base / "w2", env=chaos_env)
        rid = http(f"{url}/studies", "POST",
                   {"tenant": "alice", "spec": SPEC}, token=TOKEN)["id"]
        assert rid == sid, f"study ids diverged: {rid} vs {sid}"

        # SIGKILL one worker as soon as the first unit lands: no
        # goodbye heartbeat, no terminate — its leases must be revoked
        # by miss-budget and re-run losslessly by the survivor.
        wait_first_done(remote_root)
        w1.kill()
        w1.wait(timeout=30)
        print("chaos-w1 SIGKILLed mid-study; chaos-w2 carries on")

        final = stream_to_complete(f"{url}/studies/{rid}/events",
                                   token=TOKEN)
        assert final["complete"] and final["state"] == "done", final

        journal = remote_root / "studies" / rid / "journal.jsonl"
        per_unit = done_counts(journal)
        snap = sched_status(remote_root / "studies" / rid)
        assert set(per_unit) == {c["unit"] for c in snap["cells"]}, \
            f"lost units: {snap['tally']}"
        assert all(n == 1 for n in per_unit.values()), \
            f"unit completed twice despite chaos: {per_unit}"

        row = http(f"{url}/studies/{rid}/status", token=TOKEN)
        for key in ("injections_done", "units"):
            assert row[key] == snap[key], \
                f"{key}: service {row[key]!r} != sched {snap[key]!r}"
        for key in ("done", "quarantined", "pending"):
            assert row["tally"][key] == snap["tally"][key], \
                f"tally.{key}: {row['tally']!r} != {snap['tally']!r}"
        assert row["tally"]["done"] == len(SPEC["structures"]), row
        print(f"chaos study {rid}: {row['tally']} matches "
              f"sched status --json")

        status = http(f"{url}/status", token=TOKEN)
        remote = status["remote"]
        assert "chaos-w1" not in remote["workers"], remote
        print(f"remote snapshot: epoch {remote['epoch']}, "
              f"workers {sorted(remote['workers'])}")
    finally:
        for worker in (w1, w2):
            if worker is not None and worker.poll() is None:
                worker.send_signal(signal.SIGTERM)
        proc.send_signal(signal.SIGTERM)
    if w2 is not None:
        assert w2.wait(timeout=120) == 130, "surviving worker exit code"
        stats = w2.stdout.read()
        print(f"chaos-w2 exit: {stats.strip().splitlines()[-1]}")
    assert proc.wait(timeout=60) == 130

    # -- the verdict: byte-identical study records ------------------------
    chaotic = record_digests(remote_root / "studies" / sid)
    assert chaotic == golden, (
        "records diverged under chaos:\n"
        + "\n".join(f"  {path}: local {golden.get(path, '<missing>')[:12]} "
                    f"remote {chaotic.get(path, '<missing>')[:12]}"
                    for path in sorted(set(golden) | set(chaotic))
                    if golden.get(path) != chaotic.get(path)))
    print(f"all {len(golden)} record files byte-identical to the "
          f"all-local run — chaos changed nothing")
    print("remote chaos e2e: register, lease, kill, revoke, resume, "
          "verify — all good")


if __name__ == "__main__":
    main()
