"""CI gate for the guard's contamination-defense contract.

Runs one campaign cell clean and unguarded to establish the reference
classification, then re-runs it with a deliberate state leak injected
into the shared golden stores mid-campaign (``REPRO_GUARD_CHAOS``) under
``--guard strict``, on both the serial and the parallel path.  Fails
unless the guard detected the leak (condemn → rebuild → re-run fired at
least once) *and* the guarded campaigns' classifications are identical
to the clean run — i.e. the contamination left no statistical trace.
Usage:

    PYTHONPATH=src python scripts/ci_guard_contamination.py
"""

import json
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import MetricsRegistry, run_campaign, run_campaign_parallel

# iq on this cell yields a mixed Masked/Timeout/Crash distribution, so
# the equality check would notice even a single perturbed record.
SETUP, BENCHMARK, STRUCTURE = "MaFIN-x86", "sha", "iq"
INJECTIONS, SEED = 12, 5


def records_of(result) -> str:
    return json.dumps([r.to_dict() for r in result.records],
                      sort_keys=True)


def main() -> None:
    os.environ.pop("REPRO_GUARD_CHAOS", None)
    clean = run_campaign(SETUP, BENCHMARK, STRUCTURE,
                         injections=INJECTIONS, seed=SEED,
                         early_stop=False, guard="off")
    reference = clean.classify()
    reference_records = records_of(clean)
    print(f"clean unguarded reference: {reference}")

    # Leak a mutation into the pristine/checkpoint stores just before
    # the 4th restore; strict integrity cadence must catch it before it
    # contaminates a single record.
    os.environ["REPRO_GUARD_CHAOS"] = "leak:4"
    try:
        metrics = MetricsRegistry()
        drilled = run_campaign(SETUP, BENCHMARK, STRUCTURE,
                               injections=INJECTIONS, seed=SEED,
                               early_stop=False, guard="strict",
                               metrics=metrics)
        contaminations = metrics.counter_value("guard.contamination")
        assert contaminations >= 1, \
            "serial drill: the deliberate leak was never detected"
        assert drilled.classify() == reference, \
            f"serial drill classification drifted: " \
            f"{drilled.classify()} vs {reference}"
        assert records_of(drilled) == reference_records, \
            "serial drill records are not byte-identical to clean run"
        print(f"serial drill: {contaminations} contamination(s) "
              f"condemned and rebuilt; classifications match clean run")

        par_metrics = MetricsRegistry()
        par = run_campaign_parallel(SETUP, BENCHMARK, STRUCTURE,
                                    injections=INJECTIONS, seed=SEED,
                                    early_stop=False, guard="strict",
                                    workers=2, metrics=par_metrics)
        par_contam = par_metrics.counter_value("guard.contamination")
        assert par_contam >= 1, \
            "parallel drill: no worker detected the deliberate leak"
        assert par.classify() == reference, \
            f"parallel drill classification drifted: " \
            f"{par.classify()} vs {reference}"
        assert records_of(par) == reference_records, \
            "parallel drill records are not byte-identical to clean run"
        print(f"parallel drill: {par_contam} contamination(s) across "
              f"2 workers; classifications match clean run")
    finally:
        os.environ.pop("REPRO_GUARD_CHAOS", None)

    print("contamination drill: condemn/rebuild/re-run leaves zero "
          "statistical trace:", reference)


if __name__ == "__main__":
    main()
