"""AST node definitions for MiniC.

Plain dataclass-style nodes; :mod:`repro.lang.sema` decorates them with
symbol references, and both the interpreter (:mod:`repro.lang.interp`)
and the code generators traverse them.
"""

from __future__ import annotations


class Node:
    __slots__ = ("line",)

    def __init__(self, line: int = 0):
        self.line = line


# -- expressions -------------------------------------------------------------

class Num(Node):
    __slots__ = ("value",)

    def __init__(self, value: int, line=0):
        super().__init__(line)
        self.value = value


class Name(Node):
    """A scalar reference (local, param or global); ``sym`` set by sema."""

    __slots__ = ("ident", "sym")

    def __init__(self, ident: str, line=0):
        super().__init__(line)
        self.ident = ident
        self.sym = None


class Index(Node):
    """``array[expr]``; ``sym`` set by sema."""

    __slots__ = ("ident", "index", "sym")

    def __init__(self, ident: str, index, line=0):
        super().__init__(line)
        self.ident = ident
        self.index = index
        self.sym = None


class Unary(Node):
    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand, line=0):
        super().__init__(line)
        self.op = op
        self.operand = operand


class Binary(Node):
    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left, right, line=0):
        super().__init__(line)
        self.op = op
        self.left = left
        self.right = right


class Call(Node):
    __slots__ = ("ident", "args", "sym")

    def __init__(self, ident: str, args, line=0):
        super().__init__(line)
        self.ident = ident
        self.args = args
        self.sym = None


# -- statements ---------------------------------------------------------------

class VarDecl(Node):
    __slots__ = ("ident", "init", "sym")

    def __init__(self, ident: str, init, line=0):
        super().__init__(line)
        self.ident = ident
        self.init = init
        self.sym = None


class Assign(Node):
    """``target = value`` where target is a :class:`Name` or :class:`Index`."""

    __slots__ = ("target", "value")

    def __init__(self, target, value, line=0):
        super().__init__(line)
        self.target = target
        self.value = value


class If(Node):
    __slots__ = ("cond", "then", "orelse")

    def __init__(self, cond, then, orelse, line=0):
        super().__init__(line)
        self.cond = cond
        self.then = then
        self.orelse = orelse


class While(Node):
    __slots__ = ("cond", "body")

    def __init__(self, cond, body, line=0):
        super().__init__(line)
        self.cond = cond
        self.body = body


class For(Node):
    __slots__ = ("init", "cond", "step", "body")

    def __init__(self, init, cond, step, body, line=0):
        super().__init__(line)
        self.init = init
        self.cond = cond
        self.step = step
        self.body = body


class Return(Node):
    __slots__ = ("value",)

    def __init__(self, value, line=0):
        super().__init__(line)
        self.value = value


class Out(Node):
    __slots__ = ("value",)

    def __init__(self, value, line=0):
        super().__init__(line)
        self.value = value


class Break(Node):
    __slots__ = ()


class Continue(Node):
    __slots__ = ()


class ExprStmt(Node):
    __slots__ = ("expr",)

    def __init__(self, expr, line=0):
        super().__init__(line)
        self.expr = expr


class Block(Node):
    __slots__ = ("stmts",)

    def __init__(self, stmts, line=0):
        super().__init__(line)
        self.stmts = stmts


# -- top level ----------------------------------------------------------------

class Global(Node):
    """``int x;`` / ``int x = v;`` / ``int a[n] = {..};``"""

    __slots__ = ("ident", "size", "init", "sym")

    def __init__(self, ident: str, size, init, line=0):
        super().__init__(line)
        self.ident = ident
        self.size = size          # None for scalars, element count for arrays
        self.init = init          # int, list of ints, or None
        self.sym = None


class FuncDef(Node):
    __slots__ = ("ident", "params", "body", "sym")

    def __init__(self, ident: str, params, body, line=0):
        super().__init__(line)
        self.ident = ident
        self.params = params
        self.body = body
        self.sym = None


class Module(Node):
    __slots__ = ("globals", "funcs")

    def __init__(self, globals_, funcs, line=0):
        super().__init__(line)
        self.globals = globals_
        self.funcs = funcs
