"""Semantic analysis for MiniC: symbol resolution and checks.

Decorates AST nodes with symbol objects that the interpreter and the
code generators share.  The 4-argument limit keeps the ARM calling
convention register-only (r0-r3), as on the real ISA.
"""

from __future__ import annotations

from repro.errors import CompileError
from repro.lang import ast

MAX_PARAMS = 4


class GlobalSym:
    __slots__ = ("name", "is_array", "size", "init", "label")

    def __init__(self, name, is_array, size, init):
        self.name = name
        self.is_array = is_array
        self.size = size if is_array else 1
        self.init = init
        self.label = f"g_{name}"


class LocalSym:
    """A scalar local or parameter; ``index`` orders params first."""

    __slots__ = ("name", "index", "is_param")

    def __init__(self, name, index, is_param):
        self.name = name
        self.index = index
        self.is_param = is_param


class FuncSym:
    __slots__ = ("name", "params", "locals", "label", "node")

    def __init__(self, name, params):
        self.name = name
        self.params = params
        self.locals: list[LocalSym] = []
        self.label = f"f_{name}"
        self.node = None


class _FuncScope:
    def __init__(self, sym: FuncSym):
        self.sym = sym
        self.names: dict[str, LocalSym] = {}
        self.loop_depth = 0


def analyze(module: ast.Module) -> dict:
    """Resolve names in *module*; returns ``{"globals": .., "funcs": ..}``.

    Raises :class:`CompileError` on any semantic violation.
    """
    globals_: dict[str, GlobalSym] = {}
    funcs: dict[str, FuncSym] = {}

    for g in module.globals:
        if g.ident in globals_:
            raise CompileError(f"line {g.line}: duplicate global {g.ident!r}")
        is_array = g.size is not None
        if is_array and g.size <= 0:
            raise CompileError(f"line {g.line}: bad array size for {g.ident!r}")
        if is_array and isinstance(g.init, int):
            raise CompileError(
                f"line {g.line}: array {g.ident!r} needs a list initializer")
        if not is_array and isinstance(g.init, list):
            raise CompileError(
                f"line {g.line}: scalar {g.ident!r} cannot take a list")
        if isinstance(g.init, list) and len(g.init) > g.size:
            raise CompileError(
                f"line {g.line}: too many initializers for {g.ident!r}")
        sym = GlobalSym(g.ident, is_array, g.size, g.init)
        g.sym = sym
        globals_[g.ident] = sym

    for f in module.funcs:
        if f.ident in funcs or f.ident in globals_:
            raise CompileError(f"line {f.line}: duplicate name {f.ident!r}")
        if len(f.params) > MAX_PARAMS:
            raise CompileError(
                f"line {f.line}: {f.ident!r} exceeds {MAX_PARAMS} parameters")
        sym = FuncSym(f.ident, list(f.params))
        sym.node = f
        f.sym = sym
        funcs[f.ident] = sym

    if "main" not in funcs:
        raise CompileError("missing function 'main'")
    if funcs["main"].params:
        raise CompileError("'main' takes no parameters")

    for f in module.funcs:
        _analyze_func(f, globals_, funcs)

    return {"globals": globals_, "funcs": funcs}


def _analyze_func(f: ast.FuncDef, globals_, funcs) -> None:
    scope = _FuncScope(f.sym)
    for i, p in enumerate(f.params):
        if p in scope.names:
            raise CompileError(f"line {f.line}: duplicate parameter {p!r}")
        sym = LocalSym(p, i, is_param=True)
        scope.names[p] = sym
        f.sym.locals.append(sym)
    _stmt(f.body, scope, globals_, funcs)


def _stmt(node, scope, globals_, funcs) -> None:
    if isinstance(node, ast.Block):
        for s in node.stmts:
            _stmt(s, scope, globals_, funcs)
    elif isinstance(node, ast.VarDecl):
        if node.ident in scope.names:
            raise CompileError(
                f"line {node.line}: duplicate local {node.ident!r}")
        if node.init is not None:
            _expr(node.init, scope, globals_, funcs)
        sym = LocalSym(node.ident, len(scope.sym.locals), is_param=False)
        scope.names[node.ident] = sym
        scope.sym.locals.append(sym)
        node.sym = sym
    elif isinstance(node, ast.Assign):
        _expr(node.value, scope, globals_, funcs)
        target = node.target
        if isinstance(target, ast.Name):
            _resolve_name(target, scope, globals_, write=True)
        elif isinstance(target, ast.Index):
            _expr(target.index, scope, globals_, funcs)
            _resolve_index(target, globals_)
        else:
            raise CompileError(f"line {node.line}: bad assignment target")
    elif isinstance(node, ast.If):
        _expr(node.cond, scope, globals_, funcs)
        _stmt(node.then, scope, globals_, funcs)
        if node.orelse is not None:
            _stmt(node.orelse, scope, globals_, funcs)
    elif isinstance(node, ast.While):
        _expr(node.cond, scope, globals_, funcs)
        scope.loop_depth += 1
        _stmt(node.body, scope, globals_, funcs)
        scope.loop_depth -= 1
    elif isinstance(node, ast.For):
        if node.init is not None:
            _stmt(node.init, scope, globals_, funcs)
        if node.cond is not None:
            _expr(node.cond, scope, globals_, funcs)
        if node.step is not None:
            _stmt(node.step, scope, globals_, funcs)
        scope.loop_depth += 1
        _stmt(node.body, scope, globals_, funcs)
        scope.loop_depth -= 1
    elif isinstance(node, ast.Return):
        if node.value is not None:
            _expr(node.value, scope, globals_, funcs)
    elif isinstance(node, ast.Out):
        _expr(node.value, scope, globals_, funcs)
    elif isinstance(node, (ast.Break, ast.Continue)):
        if scope.loop_depth == 0:
            raise CompileError(f"line {node.line}: break/continue outside loop")
    elif isinstance(node, ast.ExprStmt):
        _expr(node.expr, scope, globals_, funcs)
    else:
        raise CompileError(f"unknown statement {type(node).__name__}")


def _expr(node, scope, globals_, funcs) -> None:
    if isinstance(node, ast.Num):
        return
    if isinstance(node, ast.Name):
        _resolve_name(node, scope, globals_, write=False)
        return
    if isinstance(node, ast.Index):
        _expr(node.index, scope, globals_, funcs)
        _resolve_index(node, globals_)
        return
    if isinstance(node, ast.Unary):
        _expr(node.operand, scope, globals_, funcs)
        return
    if isinstance(node, ast.Binary):
        _expr(node.left, scope, globals_, funcs)
        _expr(node.right, scope, globals_, funcs)
        return
    if isinstance(node, ast.Call):
        sym = funcs.get(node.ident)
        if sym is None:
            raise CompileError(
                f"line {node.line}: call to unknown function {node.ident!r}")
        if len(node.args) != len(sym.params):
            raise CompileError(
                f"line {node.line}: {node.ident!r} expects "
                f"{len(sym.params)} args, got {len(node.args)}")
        node.sym = sym
        for a in node.args:
            _expr(a, scope, globals_, funcs)
        return
    raise CompileError(f"unknown expression {type(node).__name__}")


def _resolve_name(node: ast.Name, scope, globals_, write: bool) -> None:
    sym = scope.names.get(node.ident)
    if sym is None:
        gsym = globals_.get(node.ident)
        if gsym is None:
            raise CompileError(
                f"line {node.line}: undefined variable {node.ident!r}")
        if gsym.is_array:
            raise CompileError(
                f"line {node.line}: array {node.ident!r} used as scalar")
        node.sym = gsym
        return
    node.sym = sym


def _resolve_index(node: ast.Index, globals_) -> None:
    gsym = globals_.get(node.ident)
    if gsym is None or not gsym.is_array:
        raise CompileError(
            f"line {node.line}: {node.ident!r} is not a global array")
    node.sym = gsym
