"""Tokenizer for MiniC, the small workload language.

MiniC is the single-source form of the 10 MiBench-like benchmark kernels;
one source compiles to both toy ISAs so the differential study runs the
same algorithm everywhere (the paper's setup).
"""

from __future__ import annotations

import re

from repro.errors import CompileError

KEYWORDS = {"int", "func", "var", "if", "else", "while", "for", "return",
            "out", "break", "continue"}

# Longest-match-first operator list.
_OPERATORS = [
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">",
    "=", "(", ")", "{", "}", "[", "]", ",", ";",
]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<num>0[xX][0-9a-fA-F]+|\d+)
  | (?P<ident>[A-Za-z_]\w*)
  | (?P<op>%s)
    """ % "|".join(re.escape(op) for op in _OPERATORS),
    re.VERBOSE | re.DOTALL,
)


class Token:
    __slots__ = ("kind", "value", "line")

    def __init__(self, kind: str, value, line: int):
        self.kind = kind      # "num" | "ident" | "kw" | "op" | "eof"
        self.value = value
        self.line = line

    def __repr__(self):
        return f"Token({self.kind}, {self.value!r}, line {self.line})"


def tokenize(source: str) -> list[Token]:
    """Tokenize MiniC *source*; raises :class:`CompileError` on bad input."""
    tokens: list[Token] = []
    pos, line = 0, 1
    while pos < len(source):
        m = _TOKEN_RE.match(source, pos)
        if not m:
            raise CompileError(
                f"line {line}: unexpected character {source[pos]!r}")
        text = m.group(0)
        line += text.count("\n")
        pos = m.end()
        if m.lastgroup in ("ws", "comment"):
            continue
        if m.lastgroup == "num":
            tokens.append(Token("num", int(text, 0), line))
        elif m.lastgroup == "ident":
            kind = "kw" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line))
        else:
            tokens.append(Token("op", text, line))
    tokens.append(Token("eof", None, line))
    return tokens
