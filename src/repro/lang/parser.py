"""Recursive-descent parser for MiniC (C-like precedence)."""

from __future__ import annotations

from repro.errors import CompileError
from repro.lang import ast
from repro.lang.lexer import Token, tokenize

# Binary operator precedence, loosest first.
_PRECEDENCE = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]


class Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ------------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def error(self, msg: str):
        tok = self.peek()
        raise CompileError(f"line {tok.line}: {msg} (got {tok.kind} "
                           f"{tok.value!r})")

    def expect_op(self, op: str) -> Token:
        tok = self.peek()
        if tok.kind != "op" or tok.value != op:
            self.error(f"expected {op!r}")
        return self.next()

    def expect_kw(self, kw: str) -> Token:
        tok = self.peek()
        if tok.kind != "kw" or tok.value != kw:
            self.error(f"expected keyword {kw!r}")
        return self.next()

    def expect_ident(self) -> Token:
        tok = self.peek()
        if tok.kind != "ident":
            self.error("expected identifier")
        return self.next()

    def at_op(self, op: str) -> bool:
        tok = self.peek()
        return tok.kind == "op" and tok.value == op

    def at_kw(self, kw: str) -> bool:
        tok = self.peek()
        return tok.kind == "kw" and tok.value == kw

    def accept_op(self, op: str) -> bool:
        if self.at_op(op):
            self.next()
            return True
        return False

    # -- top level ------------------------------------------------------------

    def parse_module(self) -> ast.Module:
        globals_, funcs = [], []
        while self.peek().kind != "eof":
            if self.at_kw("int"):
                globals_.append(self.parse_global())
            elif self.at_kw("func"):
                funcs.append(self.parse_func())
            else:
                self.error("expected 'int' or 'func' at top level")
        return ast.Module(globals_, funcs)

    def parse_global(self) -> ast.Global:
        line = self.expect_kw("int").line
        name = self.expect_ident().value
        size = None
        if self.accept_op("["):
            tok = self.peek()
            if tok.kind != "num":
                self.error("expected array size")
            size = self.next().value
            self.expect_op("]")
        init = None
        if self.accept_op("="):
            if self.accept_op("{"):
                init = []
                while not self.at_op("}"):
                    neg = self.accept_op("-")
                    tok = self.peek()
                    if tok.kind != "num":
                        self.error("expected number in initializer")
                    v = self.next().value
                    init.append(-v if neg else v)
                    if not self.accept_op(","):
                        break
                self.expect_op("}")
            else:
                neg = self.accept_op("-")
                tok = self.peek()
                if tok.kind != "num":
                    self.error("expected number initializer")
                v = self.next().value
                init = -v if neg else v
        self.expect_op(";")
        return ast.Global(name, size, init, line)

    def parse_func(self) -> ast.FuncDef:
        line = self.expect_kw("func").line
        name = self.expect_ident().value
        self.expect_op("(")
        params = []
        if not self.at_op(")"):
            params.append(self.expect_ident().value)
            while self.accept_op(","):
                params.append(self.expect_ident().value)
        self.expect_op(")")
        body = self.parse_block()
        return ast.FuncDef(name, params, body, line)

    # -- statements -------------------------------------------------------------

    def parse_block(self) -> ast.Block:
        line = self.expect_op("{").line
        stmts = []
        while not self.at_op("}"):
            stmts.append(self.parse_stmt())
        self.expect_op("}")
        return ast.Block(stmts, line)

    def parse_stmt(self) -> ast.Node:
        tok = self.peek()
        if tok.kind == "kw":
            if tok.value == "var":
                return self.parse_var()
            if tok.value == "if":
                return self.parse_if()
            if tok.value == "while":
                return self.parse_while()
            if tok.value == "for":
                return self.parse_for()
            if tok.value == "return":
                self.next()
                value = None
                if not self.at_op(";"):
                    value = self.parse_expr()
                self.expect_op(";")
                return ast.Return(value, tok.line)
            if tok.value == "out":
                self.next()
                self.expect_op("(")
                value = self.parse_expr()
                self.expect_op(")")
                self.expect_op(";")
                return ast.Out(value, tok.line)
            if tok.value == "break":
                self.next()
                self.expect_op(";")
                return ast.Break(tok.line)
            if tok.value == "continue":
                self.next()
                self.expect_op(";")
                return ast.Continue(tok.line)
            self.error("unexpected keyword")
        stmt = self.parse_simple()
        self.expect_op(";")
        return stmt

    def parse_var(self) -> ast.VarDecl:
        line = self.expect_kw("var").line
        name = self.expect_ident().value
        init = None
        if self.accept_op("="):
            init = self.parse_expr()
        self.expect_op(";")
        return ast.VarDecl(name, init, line)

    def parse_simple(self) -> ast.Node:
        """Assignment or expression statement (no trailing ';')."""
        start = self.pos
        tok = self.peek()
        if tok.kind == "ident":
            self.next()
            if self.accept_op("="):
                target = ast.Name(tok.value, tok.line)
                value = self.parse_expr()
                return ast.Assign(target, value, tok.line)
            if self.at_op("["):
                # Could be `a[i] = e` or an expression starting with index.
                self.next()
                index = self.parse_expr()
                self.expect_op("]")
                if self.accept_op("="):
                    target = ast.Index(tok.value, index, tok.line)
                    value = self.parse_expr()
                    return ast.Assign(target, value, tok.line)
            # Not an assignment: re-parse as expression.
            self.pos = start
        expr = self.parse_expr()
        return ast.ExprStmt(expr, tok.line)

    def parse_if(self) -> ast.If:
        line = self.expect_kw("if").line
        self.expect_op("(")
        cond = self.parse_expr()
        self.expect_op(")")
        then = self.parse_block()
        orelse = None
        if self.at_kw("else"):
            self.next()
            if self.at_kw("if"):
                orelse = ast.Block([self.parse_if()], self.peek().line)
            else:
                orelse = self.parse_block()
        return ast.If(cond, then, orelse, line)

    def parse_while(self) -> ast.While:
        line = self.expect_kw("while").line
        self.expect_op("(")
        cond = self.parse_expr()
        self.expect_op(")")
        body = self.parse_block()
        return ast.While(cond, body, line)

    def parse_for(self) -> ast.For:
        line = self.expect_kw("for").line
        self.expect_op("(")
        init = None
        if not self.at_op(";"):
            init = self.parse_simple()
        self.expect_op(";")
        cond = None
        if not self.at_op(";"):
            cond = self.parse_expr()
        self.expect_op(";")
        step = None
        if not self.at_op(")"):
            step = self.parse_simple()
        self.expect_op(")")
        body = self.parse_block()
        return ast.For(init, cond, step, body, line)

    # -- expressions --------------------------------------------------------------

    def parse_expr(self, level: int = 0) -> ast.Node:
        if level >= len(_PRECEDENCE):
            return self.parse_unary()
        left = self.parse_expr(level + 1)
        ops = _PRECEDENCE[level]
        while self.peek().kind == "op" and self.peek().value in ops:
            op = self.next().value
            right = self.parse_expr(level + 1)
            left = ast.Binary(op, left, right, self.peek().line)
        return left

    def parse_unary(self) -> ast.Node:
        tok = self.peek()
        if tok.kind == "op" and tok.value in ("-", "!", "~"):
            self.next()
            return ast.Unary(tok.value, self.parse_unary(), tok.line)
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Node:
        tok = self.peek()
        if tok.kind == "num":
            self.next()
            return ast.Num(tok.value, tok.line)
        if tok.kind == "op" and tok.value == "(":
            self.next()
            expr = self.parse_expr()
            self.expect_op(")")
            return expr
        if tok.kind == "ident":
            self.next()
            if self.at_op("("):
                self.next()
                args = []
                if not self.at_op(")"):
                    args.append(self.parse_expr())
                    while self.accept_op(","):
                        args.append(self.parse_expr())
                self.expect_op(")")
                return ast.Call(tok.value, args, tok.line)
            if self.at_op("["):
                self.next()
                index = self.parse_expr()
                self.expect_op("]")
                return ast.Index(tok.value, index, tok.line)
            return ast.Name(tok.value, tok.line)
        self.error("expected expression")


def parse(source: str) -> ast.Module:
    """Parse MiniC *source* into a :class:`~repro.lang.ast.Module`."""
    return Parser(tokenize(source)).parse_module()
