"""Top-level MiniC compilation pipeline.

``compile_source`` goes source → assembly text; ``compile_program`` goes
all the way to a linked :class:`~repro.isa.common.Program` image ready to
run on the functional or timing simulators.
"""

from __future__ import annotations

from repro.isa.assembler import assemble
from repro.isa.common import Program
from repro.lang.codegen import generate
from repro.lang.parser import parse


def compile_source(source: str, isa: str) -> str:
    """Compile MiniC *source* to assembly text for *isa*."""
    module = parse(source)
    return generate(module, isa)


def compile_program(source: str, isa: str) -> Program:
    """Compile MiniC *source* to a linked program image for *isa*."""
    return assemble(compile_source(source, isa), isa)
