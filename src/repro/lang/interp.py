"""Direct AST interpreter for MiniC — the compiler's test oracle.

Implements exactly the 32-bit semantics of the µop executor
(:func:`repro.isa.common.alu_exec`): wrap-around arithmetic, shift counts
masked to 5 bits, division truncating toward zero.  Compiled programs run
on the functional/timing simulators must produce the same ``out()``
stream this interpreter does.
"""

from __future__ import annotations

import struct

from repro.errors import CompileError
from repro.lang import ast
from repro.lang.parser import parse
from repro.lang.sema import GlobalSym, LocalSym, analyze

MASK32 = 0xFFFFFFFF


def _s32(x: int) -> int:
    x &= MASK32
    return x - 0x100000000 if x & 0x80000000 else x


class _Return(Exception):
    def __init__(self, value: int):
        self.value = value


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class MiniCError(CompileError):
    """Runtime error during interpretation (bad index, div by zero)."""


class Interpreter:
    def __init__(self, module: ast.Module, max_steps: int = 100_000_000):
        self.module = module
        self.info = analyze(module)
        self.max_steps = max_steps
        self.steps = 0
        self.globals: dict[str, int | list[int]] = {}
        for g in module.globals:
            sym = g.sym
            if sym.is_array:
                vals = [v & MASK32 for v in (g.init or [])]
                vals += [0] * (sym.size - len(vals))
                self.globals[sym.name] = vals
            else:
                self.globals[sym.name] = (g.init or 0) & MASK32
        self.output: list[int] = []

    # -- public API ------------------------------------------------------------

    def run(self) -> int:
        """Execute ``main()``; returns its exit value."""
        main = self.info["funcs"]["main"]
        return self._call(main, [])

    def output_bytes(self) -> bytes:
        return b"".join(struct.pack("<I", v & MASK32) for v in self.output)

    # -- execution ---------------------------------------------------------------

    def _tick(self, node) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise MiniCError(f"line {node.line}: step limit exceeded")

    def _call(self, fsym, args) -> int:
        frame = [0] * len(fsym.locals)
        for i, a in enumerate(args):
            frame[i] = a & MASK32
        try:
            self._exec(fsym.node.body, frame)
        except _Return as r:
            return r.value & MASK32
        return 0

    def _exec(self, node, frame) -> None:
        self._tick(node)
        if isinstance(node, ast.Block):
            for s in node.stmts:
                self._exec(s, frame)
        elif isinstance(node, ast.VarDecl):
            frame[node.sym.index] = (
                self._eval(node.init, frame) if node.init is not None else 0)
        elif isinstance(node, ast.Assign):
            value = self._eval(node.value, frame)
            target = node.target
            if isinstance(target, ast.Name):
                if isinstance(target.sym, LocalSym):
                    frame[target.sym.index] = value
                else:
                    self.globals[target.sym.name] = value
            else:
                arr = self.globals[target.sym.name]
                idx = _s32(self._eval(target.index, frame))
                if not 0 <= idx < len(arr):
                    raise MiniCError(
                        f"line {node.line}: index {idx} out of bounds "
                        f"for {target.ident!r}")
                arr[idx] = value
        elif isinstance(node, ast.If):
            if self._eval(node.cond, frame):
                self._exec(node.then, frame)
            elif node.orelse is not None:
                self._exec(node.orelse, frame)
        elif isinstance(node, ast.While):
            while self._eval(node.cond, frame):
                self._tick(node)
                try:
                    self._exec(node.body, frame)
                except _Break:
                    break
                except _Continue:
                    continue
        elif isinstance(node, ast.For):
            if node.init is not None:
                self._exec(node.init, frame)
            while node.cond is None or self._eval(node.cond, frame):
                self._tick(node)
                try:
                    self._exec(node.body, frame)
                except _Break:
                    break
                except _Continue:
                    pass
                if node.step is not None:
                    self._exec(node.step, frame)
        elif isinstance(node, ast.Return):
            raise _Return(self._eval(node.value, frame)
                          if node.value is not None else 0)
        elif isinstance(node, ast.Out):
            self.output.append(self._eval(node.value, frame))
        elif isinstance(node, ast.Break):
            raise _Break()
        elif isinstance(node, ast.Continue):
            raise _Continue()
        elif isinstance(node, ast.ExprStmt):
            self._eval(node.expr, frame)
        else:
            raise MiniCError(f"unknown statement {type(node).__name__}")

    def _eval(self, node, frame) -> int:
        self._tick(node)
        if isinstance(node, ast.Num):
            return node.value & MASK32
        if isinstance(node, ast.Name):
            if isinstance(node.sym, LocalSym):
                return frame[node.sym.index]
            return self.globals[node.sym.name]
        if isinstance(node, ast.Index):
            arr = self.globals[node.sym.name]
            idx = _s32(self._eval(node.index, frame))
            if not 0 <= idx < len(arr):
                raise MiniCError(
                    f"line {node.line}: index {idx} out of bounds for "
                    f"{node.ident!r}")
            return arr[idx]
        if isinstance(node, ast.Unary):
            v = self._eval(node.operand, frame)
            if node.op == "-":
                return (-v) & MASK32
            if node.op == "~":
                return ~v & MASK32
            if node.op == "!":
                return 0 if v else 1
            raise MiniCError(f"unknown unary {node.op!r}")
        if isinstance(node, ast.Binary):
            op = node.op
            if op == "&&":
                return 1 if (self._eval(node.left, frame) and
                             self._eval(node.right, frame)) else 0
            if op == "||":
                return 1 if (self._eval(node.left, frame) or
                             self._eval(node.right, frame)) else 0
            a = self._eval(node.left, frame)
            b = self._eval(node.right, frame)
            return _binop(op, a, b, node.line)
        if isinstance(node, ast.Call):
            args = [self._eval(a, frame) for a in node.args]
            return self._call(node.sym, args)
        raise MiniCError(f"unknown expression {type(node).__name__}")


def _binop(op: str, a: int, b: int, line: int) -> int:
    if op == "+":
        return (a + b) & MASK32
    if op == "-":
        return (a - b) & MASK32
    if op == "*":
        return (a * b) & MASK32
    if op in ("/", "%"):
        sa, sb = _s32(a), _s32(b)
        if sb == 0:
            raise MiniCError(f"line {line}: division by zero")
        q = abs(sa) // abs(sb)
        if (sa < 0) != (sb < 0):
            q = -q
        if op == "/":
            return q & MASK32
        return (sa - q * sb) & MASK32
    if op == "&":
        return a & b
    if op == "|":
        return a | b
    if op == "^":
        return a ^ b
    if op == "<<":
        return (a << (b & 31)) & MASK32
    if op == ">>":
        return (a & MASK32) >> (b & 31)
    if op == "==":
        return 1 if a == b else 0
    if op == "!=":
        return 1 if a != b else 0
    if op == "<":
        return 1 if _s32(a) < _s32(b) else 0
    if op == "<=":
        return 1 if _s32(a) <= _s32(b) else 0
    if op == ">":
        return 1 if _s32(a) > _s32(b) else 0
    if op == ">=":
        return 1 if _s32(a) >= _s32(b) else 0
    raise MiniCError(f"line {line}: unknown operator {op!r}")


def interpret(source: str) -> tuple[int, bytes]:
    """Parse, analyze and run MiniC *source*; returns (exit, output)."""
    interp = Interpreter(parse(source))
    code = interp.run()
    return code, interp.output_bytes()
