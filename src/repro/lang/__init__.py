"""MiniC: the workload language (lexer, parser, sema, interpreter,
two code generators).  One benchmark source compiles to both ISAs so
the differential study always runs the same algorithm.
"""
