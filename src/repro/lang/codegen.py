"""MiniC code generators for the two toy ISAs.

Both backends share an accumulator evaluation model (result in ``r0``,
deep subexpressions spilled to the stack) but differ exactly where the
real ISAs differ, which is what drives the paper's x86-vs-ARM workload
divergences:

* **x86**: two-address ALU, locals always live in the stack frame
  (register-starved), frame pointer ``r14``, arguments pushed through
  memory, load-op instructions (``addm``/``subm``/``mulm``) fold frame
  accesses into ALU work, hardware ``push``/``pop``/``call``/``ret``.
* **ARM**: three-address ALU, up to 8 locals promoted to ``r4..r11``,
  arguments in ``r0..r3``, explicit ``sub sp``/``str`` stack idioms,
  large constants and global addresses cost ``mov``+``movt`` pairs,
  ``%`` is synthesized from ``div``/``mul``/``sub`` (no hardware mod).
"""

from __future__ import annotations

from repro.errors import CompileError
from repro.lang import ast
from repro.lang.sema import GlobalSym, LocalSym, analyze

_CMP_OPS = {"==": "eq", "!=": "ne", "<": "lt", "<=": "le",
            ">": "gt", ">=": "ge"}
_NEG_COND = {"eq": "ne", "ne": "eq", "lt": "ge", "ge": "lt",
             "le": "gt", "gt": "le", "ult": "uge", "uge": "ult",
             "ule": "ugt", "ugt": "ule"}
_ALU_BINOPS = {"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "mod",
               "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "shr"}

OUTBUF = "g___outbuf"


def _is_leaf(e) -> bool:
    return isinstance(e, (ast.Num, ast.Name))


class CodeGen:
    """Backend-independent skeleton; subclasses fill in the ISA idioms."""

    isa = "?"

    def __init__(self):
        self.lines: list[str] = []
        self._label_n = 0
        self._loop_stack: list[tuple[str, str]] = []  # (break, continue)
        self.func: ast.FuncDef | None = None

    # -- helpers -------------------------------------------------------------

    def emit(self, line: str) -> None:
        self.lines.append("  " + line)

    def emit_label(self, label: str) -> None:
        self.lines.append(label + ":")

    def newlabel(self, prefix: str) -> str:
        self._label_n += 1
        return f".L{prefix}{self._label_n}"

    # -- top level ------------------------------------------------------------

    def compile(self, module: ast.Module) -> str:
        info = analyze(module)
        self.lines = [".text"]
        self.gen_start()
        for f in module.funcs:
            self.gen_func(f)
        self.lines.append(".data")
        self.emit_label(OUTBUF)
        self.emit(".space 4")
        for g in module.globals:
            self.emit_label(g.sym.label)
            if g.sym.is_array:
                init = list(g.init or [])
                if init:
                    # Chunk long initializers for readable assembly.
                    for i in range(0, len(init), 16):
                        chunk = init[i:i + 16]
                        self.emit(".word " + ", ".join(str(v) for v in chunk))
                rest = g.sym.size - len(init)
                if rest:
                    self.emit(f".space {4 * rest}")
            else:
                val = g.init or 0
                self.emit(f".word {val}")
        return "\n".join(self.lines) + "\n"

    def gen_func(self, f: ast.FuncDef) -> None:
        self.func = f
        self._epilogue_label = self.newlabel("ret")
        self.emit_label(f.sym.label)
        self.gen_prologue(f)
        self.gen_stmt(f.body)
        # Fall-through return of 0.
        self.emit_imm_to_acc(0)
        self.emit_label(self._epilogue_label)
        self.gen_epilogue(f)
        self.func = None

    # -- statements -------------------------------------------------------------

    def gen_stmt(self, node) -> None:
        if isinstance(node, ast.Block):
            for s in node.stmts:
                self.gen_stmt(s)
        elif isinstance(node, ast.VarDecl):
            if node.init is not None:
                self.gen_expr(node.init)
                self.store_local(node.sym)
        elif isinstance(node, ast.Assign):
            self.gen_assign(node)
        elif isinstance(node, ast.If):
            else_l = self.newlabel("else")
            end_l = self.newlabel("endif")
            self.gen_cond_false(node.cond, else_l)
            self.gen_stmt(node.then)
            if node.orelse is not None:
                self.gen_jump(end_l)
                self.emit_label(else_l)
                self.gen_stmt(node.orelse)
                self.emit_label(end_l)
            else:
                self.emit_label(else_l)
        elif isinstance(node, ast.While):
            top = self.newlabel("while")
            end = self.newlabel("wend")
            self.emit_label(top)
            self.gen_cond_false(node.cond, end)
            self._loop_stack.append((end, top))
            self.gen_stmt(node.body)
            self._loop_stack.pop()
            self.gen_jump(top)
            self.emit_label(end)
        elif isinstance(node, ast.For):
            top = self.newlabel("for")
            step_l = self.newlabel("fstep")
            end = self.newlabel("fend")
            if node.init is not None:
                self.gen_stmt(node.init)
            self.emit_label(top)
            if node.cond is not None:
                self.gen_cond_false(node.cond, end)
            self._loop_stack.append((end, step_l))
            self.gen_stmt(node.body)
            self._loop_stack.pop()
            self.emit_label(step_l)
            if node.step is not None:
                self.gen_stmt(node.step)
            self.gen_jump(top)
            self.emit_label(end)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                self.gen_expr(node.value)
            else:
                self.emit_imm_to_acc(0)
            self.gen_jump(self._epilogue_label)
        elif isinstance(node, ast.Out):
            self.gen_expr(node.value)
            self.gen_out()
        elif isinstance(node, ast.Break):
            self.gen_jump(self._loop_stack[-1][0])
        elif isinstance(node, ast.Continue):
            self.gen_jump(self._loop_stack[-1][1])
        elif isinstance(node, ast.ExprStmt):
            self.gen_expr(node.expr)
        else:
            raise CompileError(f"cannot generate {type(node).__name__}")

    def gen_assign(self, node: ast.Assign) -> None:
        target = node.target
        if isinstance(target, ast.Name):
            self.gen_expr(node.value)
            if isinstance(target.sym, LocalSym):
                self.store_local(target.sym)
            else:
                self.store_global(target.sym)
        else:
            # a[i] = e : evaluate e, stash, compute address, store.
            self.gen_expr(node.value)
            self.push_acc()
            self.gen_array_addr(target)            # address in r0
            self.pop_into_r1()                     # value in r1
            self.emit_store_r1_at_acc()

    # -- conditions ----------------------------------------------------------------

    def gen_cond_false(self, expr, target: str) -> None:
        """Branch to *target* when *expr* is false."""
        self._gen_cond(expr, target, jump_if=False)

    def gen_cond_true(self, expr, target: str) -> None:
        self._gen_cond(expr, target, jump_if=True)

    def _gen_cond(self, expr, target: str, jump_if: bool) -> None:
        if isinstance(expr, ast.Unary) and expr.op == "!":
            self._gen_cond(expr.operand, target, not jump_if)
            return
        if isinstance(expr, ast.Binary) and expr.op in _CMP_OPS:
            cond = _CMP_OPS[expr.op]
            if not jump_if:
                cond = _NEG_COND[cond]
            self.gen_compare(expr.left, expr.right)
            self.gen_cond_jump(cond, target)
            return
        if isinstance(expr, ast.Binary) and expr.op == "&&":
            if jump_if:
                skip = self.newlabel("and")
                self._gen_cond(expr.left, skip, False)
                self._gen_cond(expr.right, target, True)
                self.emit_label(skip)
            else:
                self._gen_cond(expr.left, target, False)
                self._gen_cond(expr.right, target, False)
            return
        if isinstance(expr, ast.Binary) and expr.op == "||":
            if jump_if:
                self._gen_cond(expr.left, target, True)
                self._gen_cond(expr.right, target, True)
            else:
                skip = self.newlabel("or")
                self._gen_cond(expr.left, skip, True)
                self._gen_cond(expr.right, target, False)
                self.emit_label(skip)
            return
        # General expression: compare accumulator against zero.
        self.gen_expr(expr)
        self.gen_acc_cmp_zero()
        self.gen_cond_jump("ne" if jump_if else "eq", target)

    # -- expressions ---------------------------------------------------------------

    def gen_expr(self, node) -> None:
        """Evaluate *node* into the accumulator (r0)."""
        if isinstance(node, ast.Num):
            self.emit_imm_to_acc(node.value)
        elif isinstance(node, ast.Name):
            if isinstance(node.sym, LocalSym):
                self.load_local(node.sym)
            else:
                self.load_global(node.sym)
        elif isinstance(node, ast.Index):
            self.gen_array_addr(node)
            self.emit_load_acc_from_acc()
        elif isinstance(node, ast.Unary):
            if node.op == "!":
                self.gen_bool(node)
            else:
                self.gen_expr(node.operand)
                self.gen_unary(node.op)
        elif isinstance(node, ast.Binary):
            if node.op in _CMP_OPS or node.op in ("&&", "||"):
                self.gen_bool(node)
            else:
                self.gen_binary(node)
        elif isinstance(node, ast.Call):
            self.gen_call(node)
        else:
            raise CompileError(f"cannot evaluate {type(node).__name__}")

    def gen_bool(self, node) -> None:
        """Materialize a boolean expression as 0/1 in the accumulator."""
        true_l = self.newlabel("bt")
        end_l = self.newlabel("bend")
        self.gen_cond_true(node, true_l)
        self.emit_imm_to_acc(0)
        self.gen_jump(end_l)
        self.emit_label(true_l)
        self.emit_imm_to_acc(1)
        self.emit_label(end_l)

    def gen_binary(self, node: ast.Binary) -> None:
        op = _ALU_BINOPS[node.op]
        if _is_leaf(node.right):
            self.gen_expr(node.left)
            self.gen_alu_with_leaf(op, node.right)
        else:
            self.gen_expr(node.left)
            self.push_acc()
            self.gen_expr(node.right)
            self.acc_to_r1()
            self.pop_acc()
            self.gen_alu_r1(op)

    def gen_compare(self, left, right) -> None:
        """Emit a compare of *left* and *right* (sets FLAGS)."""
        if _is_leaf(right):
            self.gen_expr(left)
            self.gen_cmp_with_leaf(right)
        else:
            self.gen_expr(left)
            self.push_acc()
            self.gen_expr(right)
            self.acc_to_r1()
            self.pop_acc()
            self.gen_cmp_r1()

    def gen_array_addr(self, node: ast.Index) -> None:
        """Leave the byte address of ``arr[index]`` in the accumulator."""
        self.gen_expr(node.index)
        self.gen_scale4()
        self.gen_add_label(node.sym.label)

    # -- hooks for the backends ------------------------------------------------------

    def gen_start(self):
        raise NotImplementedError

    def gen_prologue(self, f):
        raise NotImplementedError

    def gen_epilogue(self, f):
        raise NotImplementedError

    def emit_imm_to_acc(self, value):
        raise NotImplementedError

    def load_local(self, sym):
        raise NotImplementedError

    def store_local(self, sym):
        raise NotImplementedError

    def load_global(self, sym):
        raise NotImplementedError

    def store_global(self, sym):
        raise NotImplementedError

    def push_acc(self):
        raise NotImplementedError

    def pop_acc(self):
        raise NotImplementedError

    def pop_into_r1(self):
        raise NotImplementedError

    def acc_to_r1(self):
        raise NotImplementedError

    def gen_alu_r1(self, op):
        raise NotImplementedError

    def gen_alu_with_leaf(self, op, leaf):
        raise NotImplementedError

    def gen_cmp_r1(self):
        raise NotImplementedError

    def gen_cmp_with_leaf(self, leaf):
        raise NotImplementedError

    def gen_acc_cmp_zero(self):
        raise NotImplementedError

    def gen_cond_jump(self, cond, target):
        raise NotImplementedError

    def gen_jump(self, target):
        raise NotImplementedError

    def gen_unary(self, op):
        raise NotImplementedError

    def gen_scale4(self):
        raise NotImplementedError

    def gen_add_label(self, label):
        raise NotImplementedError

    def emit_load_acc_from_acc(self):
        raise NotImplementedError

    def emit_store_r1_at_acc(self):
        raise NotImplementedError

    def gen_call(self, node):
        raise NotImplementedError

    def gen_out(self):
        raise NotImplementedError


class X86CodeGen(CodeGen):
    """Register-starved, stack-frame backend (see module docstring)."""

    isa = "x86"

    def gen_start(self) -> None:
        self.emit_label("_start")
        self.emit("call f_main")
        self.emit("mov r1, r0")
        self.emit("li r0, 2")
        self.emit("syscall")

    # Frame layout: [r14+8+4i] param i, [r14-4(j+1)] local j (non-param).
    def _local_ref(self, sym: LocalSym) -> str:
        if sym.is_param:
            return f"[r14+{8 + 4 * sym.index}]"
        nparams = len(self.func.sym.params)
        j = sym.index - nparams
        return f"[r14-{4 * (j + 1)}]"

    def gen_prologue(self, f) -> None:
        nlocals = len(f.sym.locals) - len(f.sym.params)
        self.emit("push r14")
        self.emit("mov r14, sp")
        if nlocals:
            self.emit(f"sub sp, {4 * nlocals}")

    def gen_epilogue(self, f) -> None:
        self.emit("mov sp, r14")
        self.emit("pop r14")
        self.emit("ret")

    def emit_imm_to_acc(self, value) -> None:
        self.emit(f"li r0, {value}")

    def load_local(self, sym) -> None:
        self.emit(f"load r0, {self._local_ref(sym)}")

    def store_local(self, sym) -> None:
        self.emit(f"store {self._local_ref(sym)}, r0")

    def load_global(self, sym) -> None:
        self.emit(f"li r1, ={sym.label}")
        self.emit("load r0, [r1+0]")

    def store_global(self, sym) -> None:
        self.emit(f"li r1, ={sym.label}")
        self.emit("store [r1+0], r0")

    def push_acc(self) -> None:
        self.emit("push r0")

    def pop_acc(self) -> None:
        self.emit("pop r0")

    def pop_into_r1(self) -> None:
        self.emit("pop r1")

    def acc_to_r1(self) -> None:
        self.emit("mov r1, r0")

    def gen_alu_r1(self, op) -> None:
        self.emit(f"{op} r0, r1")

    def gen_alu_with_leaf(self, op, leaf) -> None:
        if isinstance(leaf, ast.Num):
            if op in ("div", "mod"):
                self.emit(f"li r1, {leaf.value}")
                self.emit(f"{op} r0, r1")
            else:
                self.emit(f"{op} r0, {leaf.value}")
            return
        sym = leaf.sym
        if isinstance(sym, LocalSym):
            if op in ("add", "sub", "mul"):
                # Load-op instruction straight against the frame slot.
                self.emit(f"{op}m r0, {self._local_ref(sym)}")
            else:
                self.emit(f"load r1, {self._local_ref(sym)}")
                self.emit(f"{op} r0, r1")
        else:
            self.emit(f"li r1, ={sym.label}")
            if op in ("add", "sub", "mul"):
                self.emit(f"{op}m r0, [r1+0]")
            else:
                self.emit("load r1, [r1+0]")
                self.emit(f"{op} r0, r1")

    def gen_cmp_r1(self) -> None:
        self.emit("cmp r0, r1")

    def gen_cmp_with_leaf(self, leaf) -> None:
        if isinstance(leaf, ast.Num):
            self.emit(f"cmp r0, {leaf.value}")
            return
        sym = leaf.sym
        if isinstance(sym, LocalSym):
            self.emit(f"load r1, {self._local_ref(sym)}")
        else:
            self.emit(f"li r1, ={sym.label}")
            self.emit("load r1, [r1+0]")
        self.emit("cmp r0, r1")

    def gen_acc_cmp_zero(self) -> None:
        self.emit("cmp r0, 0")

    def gen_cond_jump(self, cond, target) -> None:
        self.emit(f"j{cond} {target}")

    def gen_jump(self, target) -> None:
        self.emit(f"jmp {target}")

    def gen_unary(self, op) -> None:
        self.emit(f"{'not' if op == '~' else 'neg'} r0")

    def gen_scale4(self) -> None:
        self.emit("shl r0, 2")

    def gen_add_label(self, label) -> None:
        self.emit(f"li r1, ={label}")
        self.emit("add r0, r1")

    def emit_load_acc_from_acc(self) -> None:
        self.emit("load r0, [r0+0]")

    def emit_store_r1_at_acc(self) -> None:
        self.emit("store [r0+0], r1")

    def gen_call(self, node) -> None:
        for arg in reversed(node.args):
            self.gen_expr(arg)
            self.push_acc()
        self.emit(f"call {node.sym.label}")
        if node.args:
            self.emit(f"add sp, {4 * len(node.args)}")

    def gen_out(self) -> None:
        self.emit(f"li r1, ={OUTBUF}")
        self.emit("store [r1+0], r0")
        self.emit("li r0, 1")
        self.emit("li r2, 4")
        self.emit("syscall")


class ArmCodeGen(CodeGen):
    """Register-rich, load/store backend (see module docstring)."""

    isa = "arm"
    REG_LOCALS = 8  # locals promoted to r4..r11

    def gen_start(self) -> None:
        self.emit_label("_start")
        self.emit("bl f_main")
        self.emit("mov r1, r0")
        self.emit("li r0, 2")
        self.emit("svc")

    # Frame layout: [sp+0] lr, [sp+4..] saved r4.., then overflow locals.
    # Expression temporaries are pushed below sp, so sp-relative offsets
    # to frame slots must be corrected by the static push depth
    # (``self._pushed``), which is invariant at every control-flow join.
    def _setup_frame(self, f) -> None:
        total = len(f.sym.locals)
        self._nreg = min(total, self.REG_LOCALS)
        self._noverflow = total - self._nreg
        self._save_bytes = 4 * (1 + self._nreg)
        self._frame = self._save_bytes + 4 * self._noverflow
        self._pushed = 0

    def _local_home(self, sym: LocalSym):
        """(kind, where): ("reg", rN) or ("mem", offset-from-sp)."""
        if sym.index < self._nreg:
            return ("reg", 4 + sym.index)
        off = self._save_bytes + 4 * (sym.index - self._nreg) + self._pushed
        return ("mem", off)

    def gen_prologue(self, f) -> None:
        self._setup_frame(f)
        self.emit(f"sub sp, sp, {self._frame}")
        self.emit("str lr, [sp+0]")
        for i in range(self._nreg):
            self.emit(f"str r{4 + i}, [sp+{4 * (i + 1)}]")
        for i, _p in enumerate(f.sym.params):
            kind, where = self._local_home(f.sym.locals[i])
            if kind == "reg":
                self.emit(f"mov r{where}, r{i}")
            else:
                self.emit(f"str r{i}, [sp+{where}]")

    def gen_epilogue(self, f) -> None:
        self.emit("ldr lr, [sp+0]")
        for i in range(self._nreg):
            self.emit(f"ldr r{4 + i}, [sp+{4 * (i + 1)}]")
        self.emit(f"add sp, sp, {self._frame}")
        self.emit("bx lr")

    def _li(self, reg: str, value) -> None:
        self.emit(f"li {reg}, {value}")

    def emit_imm_to_acc(self, value) -> None:
        self._li("r0", value)

    def load_local(self, sym) -> None:
        kind, where = self._local_home(sym)
        if kind == "reg":
            self.emit(f"mov r0, r{where}")
        else:
            self.emit(f"ldr r0, [sp+{where}]")

    def store_local(self, sym) -> None:
        kind, where = self._local_home(sym)
        if kind == "reg":
            self.emit(f"mov r{where}, r0")
        else:
            self.emit(f"str r0, [sp+{where}]")

    def load_global(self, sym) -> None:
        self._li("r1", f"={sym.label}")
        self.emit("ldr r0, [r1+0]")

    def store_global(self, sym) -> None:
        self._li("r1", f"={sym.label}")
        self.emit("str r0, [r1+0]")

    def push_acc(self) -> None:
        self.emit("sub sp, sp, 4")
        self.emit("str r0, [sp+0]")
        self._pushed += 4

    def pop_acc(self) -> None:
        self.emit("ldr r0, [sp+0]")
        self.emit("add sp, sp, 4")
        self._pushed -= 4

    def pop_into_r1(self) -> None:
        self.emit("ldr r1, [sp+0]")
        self.emit("add sp, sp, 4")
        self._pushed -= 4

    def acc_to_r1(self) -> None:
        self.emit("mov r1, r0")

    def _alu3(self, op: str, dst: str, a: str, b: str) -> None:
        if op == "mod":
            self.emit(f"div r2, {a}, {b}")
            self.emit(f"mul r2, r2, {b}")
            self.emit(f"sub {dst}, {a}, r2")
        else:
            self.emit(f"{op} {dst}, {a}, {b}")

    def gen_alu_r1(self, op) -> None:
        self._alu3(op, "r0", "r0", "r1")

    def _leaf_to_r1(self, leaf) -> bool:
        """Load *leaf* into r1; returns True if it became an immediate."""
        if isinstance(leaf, ast.Num):
            if -32768 <= leaf.value <= 32767:
                return True
            self._li("r1", leaf.value)
            return False
        sym = leaf.sym
        if isinstance(sym, LocalSym):
            kind, where = self._local_home(sym)
            if kind == "reg":
                self.emit(f"mov r1, r{where}")
            else:
                self.emit(f"ldr r1, [sp+{where}]")
        else:
            self._li("r1", f"={sym.label}")
            self.emit("ldr r1, [r1+0]")
        return False

    def gen_alu_with_leaf(self, op, leaf) -> None:
        if isinstance(leaf, ast.Num) and op not in ("mul", "div", "mod") \
                and -32768 <= leaf.value <= 32767:
            self.emit(f"{op} r0, r0, {leaf.value}")
            return
        # Register-homed locals feed the ALU directly (no r1 copy needed).
        if isinstance(leaf, ast.Name) and isinstance(leaf.sym, LocalSym):
            kind, where = self._local_home(leaf.sym)
            if kind == "reg":
                self._alu3(op, "r0", "r0", f"r{where}")
                return
        self._leaf_to_r1(leaf)
        if isinstance(leaf, ast.Num) and -32768 <= leaf.value <= 32767:
            self._li("r1", leaf.value)
        self._alu3(op, "r0", "r0", "r1")

    def gen_cmp_r1(self) -> None:
        self.emit("cmp r0, r1")

    def gen_cmp_with_leaf(self, leaf) -> None:
        if isinstance(leaf, ast.Num) and -32768 <= leaf.value <= 32767:
            self.emit(f"cmp r0, {leaf.value}")
            return
        if isinstance(leaf, ast.Name) and isinstance(leaf.sym, LocalSym):
            kind, where = self._local_home(leaf.sym)
            if kind == "reg":
                self.emit(f"cmp r0, r{where}")
                return
        self._leaf_to_r1(leaf)
        self.emit("cmp r0, r1")

    def gen_acc_cmp_zero(self) -> None:
        self.emit("cmp r0, 0")

    def gen_cond_jump(self, cond, target) -> None:
        self.emit(f"b{cond} {target}")

    def gen_jump(self, target) -> None:
        self.emit(f"b {target}")

    def gen_unary(self, op) -> None:
        if op == "~":
            self.emit("mvn r0, r0")
        else:
            # -x == ~x + 1 (two plain instructions, no scratch register).
            self.emit("mvn r0, r0")
            self.emit("add r0, r0, 1")

    def gen_scale4(self) -> None:
        self.emit("shl r0, r0, 2")

    def gen_add_label(self, label) -> None:
        self._li("r1", f"={label}")
        self.emit("add r0, r0, r1")

    def emit_load_acc_from_acc(self) -> None:
        self.emit("ldr r0, [r0+0]")

    def emit_store_r1_at_acc(self) -> None:
        self.emit("str r1, [r0+0]")

    def gen_call(self, node) -> None:
        n = len(node.args)
        for arg in node.args:
            self.gen_expr(arg)
            self.push_acc()
        # Args were pushed left-to-right: arg i sits at [sp + 4*(n-1-i)].
        for i in range(n):
            self.emit(f"ldr r{i}, [sp+{4 * (n - 1 - i)}]")
        if n:
            self.emit(f"add sp, sp, {4 * n}")
            self._pushed -= 4 * n
        self.emit(f"bl {node.sym.label}")

    def gen_out(self) -> None:
        self._li("r1", f"={OUTBUF}")
        self.emit("str r0, [r1+0]")
        self._li("r0", 1)
        self._li("r2", 4)
        self.emit("svc")


_BACKENDS = {"x86": X86CodeGen, "arm": ArmCodeGen}


def generate(module: ast.Module, isa: str) -> str:
    """Generate assembly text for *module* targeting *isa*."""
    if isa not in _BACKENDS:
        raise CompileError(f"unknown ISA {isa!r}")
    return _BACKENDS[isa]().compile(module)
