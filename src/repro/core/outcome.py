"""Fault-effect classes and raw injection records.

The six classes of §III.A — Masked, SDC, DUE, Timeout, Crash, Assert —
plus the sub-classes the paper mentions (true/false DUE; process, system
and simulator crashes; deadlock vs livelock timeouts).  Raw records keep
every observable so the Parser can be reconfigured without re-running a
campaign.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

MASKED = "Masked"
SDC = "SDC"
DUE = "DUE"
TIMEOUT = "Timeout"
CRASH = "Crash"
ASSERT = "Assert"

CLASSES = (MASKED, SDC, DUE, TIMEOUT, CRASH, ASSERT)

# Sub-classes recorded in the logs (classification granularity is the
# Parser's business; see §III.B's re-grouping examples).
SUB_TRUE_DUE = "true-DUE"
SUB_FALSE_DUE = "false-DUE"
SUB_CRASH_PROCESS = "process"
SUB_CRASH_SYSTEM = "system"
SUB_CRASH_SIMULATOR = "simulator"
SUB_TIMEOUT_DEADLOCK = "deadlock"
SUB_TIMEOUT_LIVELOCK = "livelock"


@dataclass
class GoldenReference:
    """Fault-free reference behaviour of one (setup, benchmark) pair."""

    cycles: int
    exit_code: int | None
    output_hex: str
    events: list = field(default_factory=list)
    stats: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return asdict(self)

    @staticmethod
    def from_dict(d: dict) -> "GoldenReference":
        return GoldenReference(**d)


@dataclass
class InjectionRecord:
    """Raw observables of one injection run (one log-repository row)."""

    set_id: int
    masks: list                      # list of FaultMask dicts
    reason: str                      # exit|killed|panic|deadlock|
                                     # cycle-limit|wall-clock|op-budget|
                                     # assert|sim-crash
    exit_code: int | None = None
    output_hex: str = ""
    events: list = field(default_factory=list)
    signal: str | None = None
    detail: str = ""
    cycles: int = 0
    early_stop: str | None = None    # "invalid-entry"|"overwritten"|None
    injected: bool = True            # False when early-stopped pre-run
    invariant: str | None = None     # guard invariant name on Asserts
    elapsed_s: float = 0.0           # wall time, Timeout-reason runs only
    pruned: str | None = None        # repro.prune provenance: "dead-entry"|
                                     # "write-before-read"|"never-read"|
                                     # "equivalent"|None (really simulated)

    def to_dict(self) -> dict:
        return asdict(self)

    @staticmethod
    def from_dict(d: dict) -> "InjectionRecord":
        return InjectionRecord(**d)
