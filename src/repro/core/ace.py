"""ACE-style occupancy analysis — the baseline the paper argues against.

§I: probabilistic/ACE (Architecturally Correct Execution) methods
estimate a structure's AVF from a single run by counting the bits whose
corruption *could* matter, and are known to **over-estimate** versus
fault injection — [14] reports 7x, [45] up to 3x even refined — because
they must conservatively treat every live bit as ACE (they cannot see
dynamic dead values, overwrites before reads, or lucky masking).

This module implements exactly that conservative estimator on our
simulators: it samples each structure's *live-bit fraction* over a
golden run.  Every allocated register, valid cache line and occupied
queue slot counts as ACE for its whole residency.  Comparing the result
with the injectors' measured vulnerability reproduces the over-estimation
gap that motivates fault injection in the first place
(``benchmarks/bench_ace_overestimation.py``).
"""

from __future__ import annotations

from repro.sim.gem5 import build_sim
from repro.sim.kernel import KernelPanic, ProcessExit, ProcessKilled


class AceResult:
    """Per-structure ACE estimates for one (config, program) pair."""

    def __init__(self, estimates: dict[str, float], samples: int,
                 cycles: int):
        self.estimates = estimates     # structure -> AVF upper bound [0,1]
        self.samples = samples
        self.cycles = cycles

    def avf(self, structure: str) -> float:
        return self.estimates[structure]

    def __repr__(self):
        inner = ", ".join(f"{k}={v:.3f}" for k, v in
                          sorted(self.estimates.items()))
        return f"AceResult({inner})"


class AceEstimator:
    """Single-pass occupancy sampler (the 'fast but conservative' tool).

    ``structures`` defaults to the five structures of the paper's
    figures.  The estimate for a structure is the time-average of its
    live-entry fraction — the probability that a uniformly random
    (bit, cycle) fault lands in state an ACE analysis must assume
    matters.
    """

    DEFAULT_STRUCTURES = ("int_rf", "l1d", "l1i", "l2", "lsq")

    def __init__(self, config, program, structures=None,
                 sample_interval: int = 200,
                 max_cycles: int = 2_000_000):
        self.config = config
        self.program = program
        self.structures = tuple(structures or self.DEFAULT_STRUCTURES)
        self.sample_interval = sample_interval
        self.max_cycles = max_cycles

    def run(self) -> AceResult:
        sim = build_sim(self.program, self.config)
        sites = sim.fault_sites()
        for name in self.structures:
            if name not in sites:
                raise KeyError(f"{self.config.label} has no structure "
                               f"{name!r}")
        totals = dict.fromkeys(self.structures, 0.0)
        samples = 0
        try:
            while sim.cycle < self.max_cycles:
                sim.step()
                if sim.cycle % self.sample_interval == 0:
                    for name in self.structures:
                        totals[name] += self._occupancy(sites[name])
                    samples += 1
        except (ProcessExit, ProcessKilled, KernelPanic):
            pass
        if samples == 0:
            # Very short runs: take one final sample.
            for name in self.structures:
                totals[name] += self._occupancy(sites[name])
            samples = 1
        estimates = {name: totals[name] / samples
                     for name in self.structures}
        return AceResult(estimates, samples, sim.cycle)

    @staticmethod
    def _occupancy(site) -> float:
        entries = site.array.entries
        live = sum(1 for e in range(entries) if site.live(e))
        return live / max(entries, 1)


def ace_avf(setup: str, benchmark: str, structures=None,
            scaled: bool = True) -> AceResult:
    """Convenience wrapper matching :func:`repro.core.campaign.run_campaign`."""
    from repro.bench import suite
    from repro.sim.config import setup_config
    config = setup_config(setup, scaled=scaled)
    program = suite.program(benchmark, config.isa)
    return AceEstimator(config, program, structures=structures).run()
