"""Parser — the third module of MaFIN/GeFIN (Fig. 1).

Classifies raw injection records into the fault-effect classes of
§III.A.  The classification is *reconfigurable without re-running the
campaign* (the raw logs keep every observable): the paper's examples —
coarse Masked/Non-masked grouping, splitting DUE into true/false,
re-grouping simulator crashes with Asserts — are all policy knobs here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.outcome import (ASSERT, CLASSES, CRASH, DUE, MASKED, SDC,
                                SUB_CRASH_PROCESS, SUB_CRASH_SIMULATOR,
                                SUB_CRASH_SYSTEM, SUB_FALSE_DUE,
                                SUB_TIMEOUT_DEADLOCK, SUB_TIMEOUT_LIVELOCK,
                                SUB_TRUE_DUE, TIMEOUT, GoldenReference,
                                InjectionRecord)


@dataclass(frozen=True)
class ParserPolicy:
    """Classification policy (§III.B's Parser reconfiguration knobs)."""

    coarse: bool = False                  # only Masked / Non-Masked
    split_due: bool = False               # report true-DUE / false-DUE
    sim_crash_as_assert: bool = False     # regroup simulator malfunctions
    split_crash: bool = False             # process/system/simulator crash
    split_timeout: bool = False           # deadlock / livelock

    def classes(self) -> tuple:
        if self.coarse:
            return (MASKED, "Non-Masked")
        out = [MASKED, SDC]
        out.extend([f"{DUE} ({SUB_TRUE_DUE})", f"{DUE} ({SUB_FALSE_DUE})"]
                   if self.split_due else [DUE])
        out.extend([f"{TIMEOUT} ({SUB_TIMEOUT_DEADLOCK})",
                    f"{TIMEOUT} ({SUB_TIMEOUT_LIVELOCK})"]
                   if self.split_timeout else [TIMEOUT])
        if self.split_crash:
            out.extend([f"{CRASH} ({SUB_CRASH_PROCESS})",
                        f"{CRASH} ({SUB_CRASH_SYSTEM})"])
            if not self.sim_crash_as_assert:
                out.append(f"{CRASH} ({SUB_CRASH_SIMULATOR})")
        else:
            out.append(CRASH)
        out.append(ASSERT)
        return tuple(out)


DEFAULT_POLICY = ParserPolicy()


def classify(record: InjectionRecord, golden: GoldenReference,
             policy: ParserPolicy = DEFAULT_POLICY) -> str:
    """Map one raw record to a fault-effect class under *policy*."""
    base, sub = _base_class(record, golden)
    if policy.coarse:
        return MASKED if base == MASKED else "Non-Masked"
    if base == CRASH and sub == SUB_CRASH_SIMULATOR and \
            policy.sim_crash_as_assert:
        return ASSERT
    if base == DUE and policy.split_due:
        return f"{DUE} ({sub})"
    if base == TIMEOUT and policy.split_timeout:
        return f"{TIMEOUT} ({sub})"
    if base == CRASH and policy.split_crash:
        return f"{CRASH} ({sub})"
    return base


def _base_class(record: InjectionRecord,
                golden: GoldenReference) -> tuple[str, str | None]:
    """(class, sub-class) before any policy regrouping."""
    reason = record.reason
    if record.early_stop is not None:
        # Early-stopped runs are guaranteed masked (§III.B rules i/ii).
        return MASKED, None
    if reason == "assert":
        return ASSERT, None
    if reason == "sim-crash":
        return CRASH, SUB_CRASH_SIMULATOR
    if reason == "panic":
        return CRASH, SUB_CRASH_SYSTEM
    if reason == "killed":
        return CRASH, SUB_CRASH_PROCESS
    if reason == "deadlock":
        return TIMEOUT, SUB_TIMEOUT_DEADLOCK
    if reason in ("cycle-limit", "livelock", "wall-clock", "op-budget"):
        # "wall-clock" is the dispatcher's per-injection wall-clock
        # budget (``timeout_s``) expiring — a hung faulty run policed by
        # real time rather than simulated cycles.  "op-budget" is the
        # guard's Python-op budget running out: same livelock semantics,
        # policed by interpreter work instead of time.
        return TIMEOUT, SUB_TIMEOUT_LIVELOCK
    if reason == "exit":
        same_output = (record.output_hex == golden.output_hex and
                       record.exit_code == golden.exit_code)
        same_events = record.events == golden.events
        if same_output and same_events:
            return MASKED, None
        if same_events:
            return SDC, None
        # Extra/changed exception events: a Detected Unrecoverable Error
        # — the run completed but with error indications.
        return DUE, SUB_FALSE_DUE if same_output else SUB_TRUE_DUE
    raise ValueError(f"unknown record reason {reason!r}")


def classify_all(records, golden: GoldenReference,
                 policy: ParserPolicy = DEFAULT_POLICY) -> dict:
    """Class → count over a whole log repository."""
    counts = {cls: 0 for cls in policy.classes()}
    for rec in records:
        counts[classify(rec, golden, policy)] += 1
    return counts


def vulnerability(counts: dict) -> float:
    """The paper's *vulnerability*: share of all non-masked outcomes."""
    total = sum(counts.values())
    if total == 0:
        return 0.0
    return (total - counts.get(MASKED, 0)) / total
