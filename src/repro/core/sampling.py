"""Statistical fault sampling (Leveugle et al., DATE 2009) — §IV.A.

Given the fault-space size (bits × cycles), a confidence level and an
error margin, compute how many injections a campaign needs.  The paper's
numbers fall straight out of the formula: 1843 injections at 99 %
confidence / 3 % error (rounded up to 2000, i.e. 2.88 % error), and 663
at a 5 % error margin.
"""

from __future__ import annotations

import math

# Two-sided normal quantiles for common confidence levels.
_Z = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758, 0.999: 3.2905}


def z_score(confidence: float) -> float:
    """Normal quantile for a two-sided confidence level."""
    if confidence in _Z:
        return _Z[confidence]
    if not 0.5 < confidence < 1.0:
        raise ValueError(f"confidence {confidence} out of range (0.5, 1)")
    # Beasley-Springer-Moro style rational approximation via the error
    # function inverse: z = sqrt(2) * erfinv(confidence).
    return math.sqrt(2.0) * _erfinv(confidence)


def _erfinv(y: float) -> float:
    # Winitzki's approximation, accurate to ~2e-3 relative; refined with
    # two Newton steps on erf for the precision the sampler needs.
    a = 0.147
    ln1my2 = math.log(1 - y * y)
    first = 2 / (math.pi * a) + ln1my2 / 2
    x = math.copysign(math.sqrt(math.sqrt(first * first - ln1my2 / a)
                                - first), y)
    for _ in range(2):
        err = math.erf(x) - y
        x -= err / (2 / math.sqrt(math.pi) * math.exp(-x * x))
    return x


def required_injections(population: int | None = None,
                        confidence: float = 0.99,
                        error_margin: float = 0.03,
                        p: float = 0.5) -> int:
    """Number of injection runs for a statistical campaign.

    ``population`` is the fault-space size (structure bits × execution
    cycles); ``None`` means the infinite-population limit.  ``p`` is the
    assumed proportion (0.5 is the conservative worst case).
    """
    if not 0 < error_margin < 1:
        raise ValueError("error margin must be in (0, 1)")
    t = z_score(confidence)
    n_inf = t * t * p * (1 - p) / (error_margin * error_margin)
    if population is None:
        # Round to nearest, matching the paper's arithmetic (1843 at
        # 99 %/3 %, 663 at 99 %/5 %).
        return int(n_inf + 0.5)
    if population <= 0:
        raise ValueError("population must be positive")
    n = population / (1 + error_margin * error_margin * (population - 1) /
                      (t * t * p * (1 - p)))
    return min(int(n + 0.5), population)


def achieved_error_margin(n: int, population: int | None = None,
                          confidence: float = 0.99, p: float = 0.5) -> float:
    """Error margin obtained with *n* injections (inverse of the above).

    The paper: 2000 injections correspond to a 2.88 % margin at 99 %
    confidence.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    t = z_score(confidence)
    if population is None or population <= n:
        return t * math.sqrt(p * (1 - p) / n)
    return t * math.sqrt(p * (1 - p) * (population - n) /
                         (n * (population - 1)))


def fault_space(total_bits: int, cycles: int) -> int:
    """Size of the (bit, cycle) transient-fault population."""
    return total_bits * cycles
