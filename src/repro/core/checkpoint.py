"""Checkpointing support (§III: "employ the check-pointing features of
the simulators … to speed up the injection campaigns").

Snapshots are structured state blobs from ``OoOCore.snapshot()`` — flat
copies of the mutable machine state that share immutable objects
(decoded instructions, µops, program image) by reference.  The golden
run drops evenly spaced snapshots; each injection run restores the
latest snapshot at or before its injection cycle *in place* into the
dispatcher's reusable machine (``sim.restore``), skipping the fault-free
prefix entirely without ever paying for a whole-machine ``deepcopy``.
"""

from __future__ import annotations

import pickle
import time
from bisect import bisect_right


def state_nbytes(state) -> int:
    """Serialized size of one snapshot blob (telemetry, worker shipping)."""
    return len(pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL))


class CheckpointStore:
    """Machine snapshots taken during the golden run.

    The golden runtime is unknown up front, so spacing adapts: snapshots
    start at ``interval`` cycles apart and, whenever the budget of
    ``max_snaps`` fills up, every other snapshot is dropped and the
    interval doubles — one pass, bounded memory, roughly even coverage.
    """

    def __init__(self, interval: int = 512, max_snaps: int = 12):
        if interval <= 0:
            raise ValueError("checkpoint interval must be positive")
        if max_snaps < 2:
            raise ValueError("need at least two snapshot slots")
        self.interval = interval
        self.max_snaps = max_snaps
        self._snaps: list[tuple[int, object]] = []
        self._next_due = interval
        self.snapshot_s = 0.0     # wall time spent taking snapshots
        self._nbytes: int | None = None

    def maybe_take(self, sim) -> None:
        """Snapshot *sim* if it just crossed an interval boundary."""
        if sim.cycle < self._next_due:
            return
        self.take(sim)
        if len(self._snaps) >= self.max_snaps:
            self._snaps = self._snaps[1::2]
            self.interval *= 2
        # Space the next snapshot from the one just taken.  With an odd
        # budget the thinning pass above drops the *newest* snapshot, so
        # deriving the due point from the last retained one would lag the
        # schedule by up to a full interval.
        self._next_due = sim.cycle + self.interval

    def take(self, sim) -> None:
        t0 = time.perf_counter()
        state = sim.snapshot()
        self.snapshot_s += time.perf_counter() - t0
        self._snaps.append((sim.cycle, state))
        self._nbytes = None

    def state_before(self, cycle: int):
        """Latest ``(snap_cycle, state)`` at or before *cycle*, or None."""
        idx = bisect_right(self._snaps, cycle, key=lambda snap: snap[0])
        if idx == 0:
            return None
        return self._snaps[idx - 1]

    def restore_before(self, cycle: int, sim):
        """Restore the latest snapshot at or before *cycle* into *sim*.

        Returns *sim* (positioned at the snapshot cycle), or ``None``
        when no snapshot qualifies — the caller starts from reset
        instead.
        """
        snap = self.state_before(cycle)
        if snap is None:
            return None
        sim.restore(snap[1])
        return sim

    @property
    def count(self) -> int:
        return len(self._snaps)

    @property
    def cycles(self) -> list[int]:
        return [c for c, _ in self._snaps]

    @property
    def snapshots(self) -> list[tuple[int, object]]:
        """The stored ``(cycle, state)`` pairs (shipped to workers)."""
        return list(self._snaps)

    @property
    def nbytes(self) -> int:
        """Total serialized size of the stored snapshots (telemetry)."""
        if self._nbytes is None:
            self._nbytes = sum(state_nbytes(state)
                               for _, state in self._snaps)
        return self._nbytes

    @classmethod
    def from_snapshots(cls, snaps, interval: int = 512,
                       max_snaps: int = 12) -> "CheckpointStore":
        """Rebuild a store around already-taken snapshots.

        Used by parallel workers, which receive the parent's golden-run
        checkpoints instead of re-running the golden execution.
        """
        store = cls(interval=interval, max_snaps=max_snaps)
        store._snaps = sorted(snaps, key=lambda snap: snap[0])
        if store._snaps:
            store._next_due = store._snaps[-1][0] + interval
        return store
