"""Checkpointing support (§III: "employ the check-pointing features of
the simulators … to speed up the injection campaigns").

Snapshots are deep copies of the whole machine (decoded instructions and
µops are shared — they are immutable).  The golden run drops evenly
spaced snapshots; each injection run restores the latest snapshot at or
before its injection cycle, skipping the fault-free prefix entirely.
"""

from __future__ import annotations

import copy


class CheckpointStore:
    """Machine snapshots taken during the golden run.

    The golden runtime is unknown up front, so spacing adapts: snapshots
    start at ``interval`` cycles apart and, whenever the budget of
    ``max_snaps`` fills up, every other snapshot is dropped and the
    interval doubles — one pass, bounded memory, roughly even coverage.
    """

    def __init__(self, interval: int = 512, max_snaps: int = 12):
        if interval <= 0:
            raise ValueError("checkpoint interval must be positive")
        if max_snaps < 2:
            raise ValueError("need at least two snapshot slots")
        self.interval = interval
        self.max_snaps = max_snaps
        self._snaps: list[tuple[int, object]] = []
        self._next_due = interval

    def maybe_take(self, sim) -> None:
        """Snapshot *sim* if it just crossed an interval boundary."""
        if sim.cycle < self._next_due:
            return
        self._snaps.append((sim.cycle, copy.deepcopy(sim)))
        if len(self._snaps) >= self.max_snaps:
            self._snaps = self._snaps[1::2]
            self.interval *= 2
        self._next_due = self._snaps[-1][0] + self.interval \
            if self._snaps else self.interval

    def take(self, sim) -> None:
        self._snaps.append((sim.cycle, copy.deepcopy(sim)))

    def restore_before(self, cycle: int):
        """A fresh copy of the latest snapshot taken at or before *cycle*.

        Returns ``None`` when no snapshot qualifies (caller starts from
        reset instead).
        """
        best = None
        for snap_cycle, snap in self._snaps:
            if snap_cycle <= cycle:
                best = snap
            else:
                break
        if best is None:
            return None
        return copy.deepcopy(best)

    @property
    def count(self) -> int:
        return len(self._snaps)

    @property
    def cycles(self) -> list[int]:
        return [c for c, _ in self._snaps]
