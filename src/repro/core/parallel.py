"""Parallel campaign execution.

The paper's 300 000-injection study ran on ten workstations (~100
threads) for a month; the unit of parallelism is the *injection run* —
runs share nothing but the golden reference and the masks repository.
This module fans a campaign's fault sets over worker processes.

The parent runs the golden execution once, serializes its pristine
state and checkpoint snapshots (the blobs are plain picklable
containers), and ships them compressed to every worker through the pool
initializer.  Workers adopt the shipped golden run instead of re-running
it, so a worker's first injection starts as fast as its last.

Feature parity with the serial path: *fault_type* selects the fault
model, *progress* fires per completed injection (in mask order, as
results stream back from ``imap``), *logs_path* persists the golden
reference and every record to a :class:`LogsRepository`, and telemetry
flows the same way — each worker ships its per-run
:class:`~repro.obs.profile.InjectionSample` *and* its trace events
(``inject_start``/``checkpoint_restored``/``cold_start``/``early_stop``/
``inject_end``) home with the record; the parent folds the samples into
its metrics registry and replays the events into its own sink, so both
the merged metrics and an ``obs summarize`` report match the serial
campaign's.

On a single-core host this adds no speed but is exercised by the tests
for correctness (parallel == serial classification).
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import time
import zlib
from dataclasses import dataclass

from repro.core.campaign import (CampaignResult, default_injections,
                                 golden_with_trace)
from repro.core.checkpoint import CheckpointStore
from repro.core.dispatcher import InjectorDispatcher
from repro.core.fault import TRANSIENT, FaultSet
from repro.core.maskgen import FaultMaskGenerator, StructureInfo
from repro.core.outcome import GoldenReference, InjectionRecord
from repro.core.repository import LogsRepository
from repro.guard import GuardPolicy, OFF as GUARD_OFF
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import (CampaignTelemetry, InjectionSample,
                               record_golden, record_injection,
                               record_maskgen, record_prune_plan,
                               record_pruned)
from repro.obs.trace import JSONLSink, NULL_TRACER, TraceEvent, Tracer
from repro.prune import (PRUNE_OFF, PRUNE_POLICIES, AccessTrace, audit_plan,
                         build_prune_plan, clone_record,
                         synthetic_masked_record)
from repro.sim.config import setup_config

_WORKER_STATE: dict = {}


@dataclass(frozen=True)
class _CellSpec:
    setup: str
    benchmark: str
    structure: str
    scaled: bool
    early_stop: bool
    scale: int
    n_checkpoints: int
    timeout_s: float | None = None
    guard: GuardPolicy = GUARD_OFF


class _ListSink:
    """Collects events as dicts so a worker can ship them home."""

    def __init__(self):
        self.rows: list[dict] = []

    def write(self, event: TraceEvent) -> None:
        self.rows.append(event.to_dict())

    def close(self) -> None:
        pass


def build_golden_payload(dispatcher: InjectorDispatcher,
                         include_trace: bool = False) -> bytes:
    """Serialize a dispatcher's golden run as one compressed blob.

    The blob carries the golden reference, the pristine (cycle-0)
    snapshot and every checkpoint — everything another process needs to
    serve injections without re-running the golden execution.  Consumed
    by :func:`adopt_golden_payload`; used by the pool initializer here
    and by ``repro.sched``'s per-unit workers.

    With *include_trace*, the pruner's access trace (when the golden
    run recorded one) rides along, so a scheduler unit that adopts the
    blob can prune without re-recording.  Pool workers here never need
    it — pruning happens in the parent, workers only simulate.
    """
    store = dispatcher.checkpoints
    payload = {
        "golden": dispatcher.golden.to_dict(),
        "pristine": dispatcher._pristine,
        "snapshots": store.snapshots,
        "interval": store.interval,
        "max_snaps": store.max_snaps,
    }
    trace = getattr(dispatcher, "access_trace", None)
    if include_trace and trace is not None:
        payload["trace"] = trace.to_dict()
    return zlib.compress(
        pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL), 1)


def adopt_golden_payload(dispatcher: InjectorDispatcher,
                         blob: bytes) -> None:
    """Install a :func:`build_golden_payload` blob into *dispatcher*."""
    payload = pickle.loads(zlib.decompress(blob))
    dispatcher.adopt_golden(
        GoldenReference.from_dict(payload["golden"]),
        payload["pristine"],
        CheckpointStore.from_snapshots(payload["snapshots"],
                                       interval=payload["interval"],
                                       max_snaps=payload["max_snaps"]))
    if "trace" in payload:
        dispatcher.access_trace = AccessTrace.from_dict(payload["trace"])


# Backwards-compatible internal alias.
_build_payload = build_golden_payload


def _worker_init(spec: _CellSpec, blob: bytes) -> None:
    from repro.bench import suite
    config = setup_config(spec.setup, scaled=spec.scaled)
    program = suite.program(spec.benchmark, config.isa, spec.scale)
    sink = _ListSink()
    dispatcher = InjectorDispatcher(config, program,
                                    n_checkpoints=spec.n_checkpoints,
                                    tracer=Tracer(sink),
                                    timeout_s=spec.timeout_s,
                                    guard=spec.guard)
    adopt_golden_payload(dispatcher, blob)
    _WORKER_STATE["dispatcher"] = dispatcher
    _WORKER_STATE["sink"] = sink
    _WORKER_STATE["early_stop"] = spec.early_stop


def _worker_run(fault_set_dict: dict) -> dict:
    dispatcher = _WORKER_STATE["dispatcher"]
    sink = _WORKER_STATE["sink"]
    sink.rows.clear()
    fault_set = FaultSet.from_dict(fault_set_dict)
    try:
        record = dispatcher.inject(fault_set,
                                   early_stop=_WORKER_STATE["early_stop"])
        sample = dispatcher.last_sample
    except Exception as exc:
        # A worker must never take down (or hang) the pool: anything the
        # dispatcher did not already classify becomes a simulator-crash
        # record, so the run is counted instead of lost and the merge
        # stream stays in mask order.
        record = InjectionRecord(
            set_id=fault_set.set_id,
            masks=[m.to_dict() for m in fault_set.masks],
            reason="sim-crash",
            detail=f"worker: {type(exc).__name__}: {exc}")
        sample = InjectionSample(set_id=fault_set.set_id)
    return {"record": record.to_dict(),
            "sample": sample.to_dict(),
            "events": list(sink.rows)}


def run_campaign_parallel(setup: str, benchmark: str, structure: str,
                          injections: int | None = None, seed: int = 1,
                          workers: int = 2, fault_type: str = TRANSIENT,
                          early_stop: bool = True, scaled: bool = True,
                          scale: int = 1, n_checkpoints: int = 10,
                          logs_path=None, progress=None, tracer=None,
                          metrics=None, events_path=None,
                          timeout_s: float | None = None,
                          guard=None, prune: str = PRUNE_OFF,
                          trace_cache=None, audit: int = 0) -> CampaignResult:
    """Like :func:`repro.core.campaign.run_campaign`, with a process pool.

    The masks are generated up front (deterministic in *seed*), split
    across *workers* processes, and the raw records merged back in mask
    order — so the result is bit-identical to the serial campaign.
    Deterministic telemetry (injection counts, outcome and early-stop
    distributions, simulated/saved cycles) also matches the serial
    campaign; wall times are, of course, the parallel run's own.
    *timeout_s* is the serial path's per-injection wall-clock budget,
    enforced inside each worker.  *guard* is the serial path's
    hardening policy, installed in every worker's dispatcher — each
    worker seals its own integrity digests over the shipped golden
    payload, so contamination defense covers the parallel path too.

    *prune*/*trace_cache*/*audit* mirror the serial campaign's pruner
    knobs.  Pruning happens entirely in the parent — the trace is
    recorded (or cache-loaded) with the golden run, the plan built
    after mask generation, and only the surviving sets are shipped to
    the pool; pruned records are synthesized in mask order as the
    worker stream merges back, so the pruned parallel result equals
    the pruned serial one record-for-record.  The *audit* sample is
    simulated in the parent after the pool drains.
    """
    from repro.bench import suite

    if prune not in PRUNE_POLICIES:
        raise ValueError(f"unknown prune policy {prune!r}; "
                         f"choose from {PRUNE_POLICIES}")
    if injections is None:
        injections = default_injections()
    own_tracer = None
    if tracer is None and events_path is not None:
        tracer = own_tracer = Tracer(JSONLSink(events_path))
    if tracer is None:
        tracer = NULL_TRACER
    if metrics is None:
        metrics = MetricsRegistry()
    spec = _CellSpec(setup, benchmark, structure, scaled, early_stop,
                     scale, n_checkpoints, timeout_s, GuardPolicy.of(guard))

    try:
        # Golden + masks in the parent (also validates the structure name).
        config = setup_config(setup, scaled=scaled)
        program = suite.program(benchmark, config.isa, scale)
        dispatcher = InjectorDispatcher(config, program,
                                        n_checkpoints=n_checkpoints,
                                        tracer=tracer,
                                        timeout_s=timeout_s,
                                        guard=guard)
        golden, trace, trace_source = golden_with_trace(
            dispatcher, benchmark, prune, trace_cache, tracer)
        record_golden(metrics, dispatcher.golden_sample)
        logs = LogsRepository(logs_path)
        logs.set_golden(golden)
        sites = dispatcher.fault_sites()
        if structure not in sites:
            raise KeyError(f"{setup} has no structure {structure!r}")
        info = StructureInfo.of_site(sites[structure])
        tracer.emit("maskgen_start", structure=structure, seed=seed)
        t0 = time.perf_counter()
        sets = FaultMaskGenerator(seed).generate(info, golden.cycles,
                                                 count=injections,
                                                 fault_type=fault_type)
        maskgen_s = time.perf_counter() - t0
        record_maskgen(metrics, maskgen_s, len(sets))
        tracer.emit("maskgen_end", structure=structure, masks=len(sets),
                    wall_s=maskgen_s)
        plan = None
        if prune != PRUNE_OFF:
            plan = build_prune_plan(sets, trace, prune)
            stats = plan.stats()
            stats["trace_source"] = trace_source
            record_prune_plan(metrics, stats)
            tracer.emit("prune_plan", structure=structure, policy=prune,
                        masks=stats["masks"], masked=stats["masked"],
                        collapsed=stats["collapsed"],
                        classes=stats["classes"],
                        simulated=stats["simulated"])
        # Only the surviving sets travel to the pool; pruned ones are
        # synthesized parent-side while the stream merges back.
        to_run = [fs for fs in sets
                  if plan is None or plan.decision(fs.set_id) is None]
        blob = _build_payload(dispatcher)

        t_run = time.perf_counter()
        tracer.emit("campaign_start", setup=setup, benchmark=benchmark,
                    structure=structure, masks=len(sets), workers=workers)
        result = CampaignResult(setup=setup, benchmark=benchmark,
                                structure=structure, golden=golden,
                                _tracer=tracer, _metrics=metrics)
        sets_by_id = {fs.set_id: fs for fs in sets}
        by_id: dict[int, InjectionRecord] = {}
        ctx = mp.get_context("spawn" if mp.get_start_method(True) == "spawn"
                             else "fork")
        with ctx.Pool(processes=workers, initializer=_worker_init,
                      initargs=(spec, blob)) as pool:
            rows = pool.imap(_worker_run, [fs.to_dict() for fs in to_run],
                             chunksize=max(len(to_run) // (workers * 4), 1))
            # to_run preserves mask order, so one pass over the full set
            # list — consuming a pool row per simulated set and
            # synthesizing pruned records in place — reproduces the
            # serial stream exactly (a class representative always
            # precedes its clones).
            for i, fault_set in enumerate(sets):
                decision = plan.decision(fault_set.set_id) \
                    if plan is not None else None
                if decision is None:
                    row = next(rows)
                    record = InjectionRecord.from_dict(row["record"])
                    sample = InjectionSample.from_dict(row["sample"])
                    record_injection(metrics, record, sample)
                    if tracer.enabled:
                        # Replay the worker's own trace (restore/cold-
                        # start/early-stop detail included), original
                        # stamps kept.
                        for ev in row["events"]:
                            tracer.sink.write(TraceEvent.from_dict(ev))
                    if record.early_stop is not None:
                        result.early_stops += 1
                elif decision[0] == "masked":
                    record = synthetic_masked_record(fault_set, golden,
                                                     decision[1])
                    record_pruned(metrics, record)
                    tracer.emit("pruned", set_id=fault_set.set_id,
                                rule=decision[1])
                else:
                    record = clone_record(by_id[decision[1]], fault_set)
                    record_pruned(metrics, record)
                    tracer.emit("pruned", set_id=fault_set.set_id,
                                rule="equivalent", rep=decision[1])
                by_id[record.set_id] = record
                logs.add(record)
                result.records.append(record)
                if progress is not None:
                    progress(i + 1, len(sets), record)
        if plan is not None:
            result.prune = plan.stats()
            result.prune["trace_source"] = trace_source
            if audit:
                # The parent dispatcher holds the golden run and all
                # checkpoints — audit injections run here, after the
                # pool has drained.
                verdict = audit_plan(dispatcher, sets_by_id, by_id, plan,
                                     golden, audit, seed,
                                     early_stop=early_stop)
                result.prune["audit"] = verdict
                tracer.emit("prune_audit", checked=verdict["checked"],
                            divergences=len(verdict["divergences"]),
                            digest_ok=verdict["pristine_digest_ok"])
        wall_s = time.perf_counter() - t_run
        result.telemetry = CampaignTelemetry.from_metrics(metrics,
                                                          wall_s=wall_s)
        tracer.emit("campaign_end", setup=setup, benchmark=benchmark,
                    structure=structure, injections=result.injections,
                    early_stops=result.early_stops, wall_s=wall_s,
                    workers=workers)
        return result
    finally:
        if own_tracer is not None:
            own_tracer.close()
