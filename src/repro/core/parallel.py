"""Parallel campaign execution.

The paper's 300 000-injection study ran on ten workstations (~100
threads) for a month; the unit of parallelism is the *injection run* —
runs share nothing but the golden reference and the masks repository.
This module fans a campaign's fault sets over worker processes.  Each
worker builds its own dispatcher (golden run + checkpoints) once, then
services its share of the masks; results merge order-independently.

On a single-core host this adds no speed but is exercised by the tests
for correctness (parallel == serial classification).
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass

from repro.core.campaign import CampaignResult, default_injections
from repro.core.dispatcher import InjectorDispatcher
from repro.core.fault import TRANSIENT, FaultSet
from repro.core.maskgen import FaultMaskGenerator, StructureInfo
from repro.sim.config import setup_config
from repro.sim.gem5 import build_sim

_WORKER_STATE: dict = {}


@dataclass(frozen=True)
class _CellSpec:
    setup: str
    benchmark: str
    structure: str
    scaled: bool
    early_stop: bool
    scale: int


def _worker_init(spec: _CellSpec) -> None:
    from repro.bench import suite
    config = setup_config(spec.setup, scaled=spec.scaled)
    program = suite.program(spec.benchmark, config.isa, spec.scale)
    dispatcher = InjectorDispatcher(config, program)
    dispatcher.run_golden()
    _WORKER_STATE["dispatcher"] = dispatcher
    _WORKER_STATE["early_stop"] = spec.early_stop


def _worker_run(fault_set_dict: dict) -> dict:
    dispatcher = _WORKER_STATE["dispatcher"]
    record = dispatcher.inject(FaultSet.from_dict(fault_set_dict),
                               early_stop=_WORKER_STATE["early_stop"])
    return record.to_dict()


def run_campaign_parallel(setup: str, benchmark: str, structure: str,
                          injections: int | None = None, seed: int = 1,
                          workers: int = 2, early_stop: bool = True,
                          scaled: bool = True,
                          scale: int = 1) -> CampaignResult:
    """Like :func:`repro.core.campaign.run_campaign`, with a process pool.

    The masks are generated up front (deterministic in *seed*), split
    across *workers* processes, and the raw records merged back in mask
    order — so the result is bit-identical to the serial campaign.
    """
    from repro.bench import suite
    from repro.core.outcome import InjectionRecord

    if injections is None:
        injections = default_injections()
    spec = _CellSpec(setup, benchmark, structure, scaled, early_stop, scale)

    # Golden + masks in the parent (also validates the structure name).
    config = setup_config(setup, scaled=scaled)
    program = suite.program(benchmark, config.isa, scale)
    dispatcher = InjectorDispatcher(config, program)
    golden = dispatcher.run_golden()
    sim = build_sim(program, config)
    sites = sim.fault_sites()
    if structure not in sites:
        raise KeyError(f"{setup} has no structure {structure!r}")
    info = StructureInfo.of_site(sites[structure])
    sets = FaultMaskGenerator(seed).generate(info, golden.cycles,
                                             count=injections,
                                             fault_type=TRANSIENT)

    ctx = mp.get_context("spawn" if mp.get_start_method(True) == "spawn"
                         else "fork")
    result = CampaignResult(setup=setup, benchmark=benchmark,
                            structure=structure, golden=golden)
    with ctx.Pool(processes=workers, initializer=_worker_init,
                  initargs=(spec,)) as pool:
        raw = pool.map(_worker_run, [fs.to_dict() for fs in sets],
                       chunksize=max(len(sets) // (workers * 4), 1))
    for row in raw:
        record = InjectionRecord.from_dict(row)
        result.records.append(record)
        if record.early_stop is not None:
            result.early_stops += 1
    return result
