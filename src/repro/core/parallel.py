"""Parallel campaign execution.

The paper's 300 000-injection study ran on ten workstations (~100
threads) for a month; the unit of parallelism is the *injection run* —
runs share nothing but the golden reference and the masks repository.
This module fans a campaign's fault sets over worker processes.  Each
worker builds its own dispatcher (golden run + checkpoints) once, then
services its share of the masks; results merge order-independently.

Feature parity with the serial path: *fault_type* selects the fault
model, *progress* fires per completed injection (in mask order, as
results stream back from ``imap``), *logs_path* persists the golden
reference and every record to a :class:`LogsRepository`, and telemetry
flows the same way — each worker ships its per-run
:class:`~repro.obs.profile.InjectionSample` home with the record, and
the parent folds both into its metrics registry exactly as the serial
loop would, so the merged metrics equal the serial campaign's.

On a single-core host this adds no speed but is exercised by the tests
for correctness (parallel == serial classification).
"""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import dataclass

from repro.core.campaign import CampaignResult, default_injections
from repro.core.dispatcher import InjectorDispatcher
from repro.core.fault import TRANSIENT, FaultSet
from repro.core.maskgen import FaultMaskGenerator, StructureInfo
from repro.core.repository import LogsRepository
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import (CampaignTelemetry, InjectionSample,
                               record_golden, record_injection,
                               record_maskgen)
from repro.obs.trace import JSONLSink, NULL_TRACER, Tracer
from repro.sim.config import setup_config
from repro.sim.gem5 import build_sim

_WORKER_STATE: dict = {}


@dataclass(frozen=True)
class _CellSpec:
    setup: str
    benchmark: str
    structure: str
    scaled: bool
    early_stop: bool
    scale: int
    n_checkpoints: int


def _worker_init(spec: _CellSpec) -> None:
    from repro.bench import suite
    config = setup_config(spec.setup, scaled=spec.scaled)
    program = suite.program(spec.benchmark, config.isa, spec.scale)
    dispatcher = InjectorDispatcher(config, program,
                                    n_checkpoints=spec.n_checkpoints)
    dispatcher.run_golden()
    _WORKER_STATE["dispatcher"] = dispatcher
    _WORKER_STATE["early_stop"] = spec.early_stop


def _worker_run(fault_set_dict: dict) -> dict:
    dispatcher = _WORKER_STATE["dispatcher"]
    record = dispatcher.inject(FaultSet.from_dict(fault_set_dict),
                               early_stop=_WORKER_STATE["early_stop"])
    return {"record": record.to_dict(),
            "sample": dispatcher.last_sample.to_dict()}


def run_campaign_parallel(setup: str, benchmark: str, structure: str,
                          injections: int | None = None, seed: int = 1,
                          workers: int = 2, fault_type: str = TRANSIENT,
                          early_stop: bool = True, scaled: bool = True,
                          scale: int = 1, n_checkpoints: int = 10,
                          logs_path=None, progress=None, tracer=None,
                          metrics=None,
                          events_path=None) -> CampaignResult:
    """Like :func:`repro.core.campaign.run_campaign`, with a process pool.

    The masks are generated up front (deterministic in *seed*), split
    across *workers* processes, and the raw records merged back in mask
    order — so the result is bit-identical to the serial campaign.
    Deterministic telemetry (injection counts, outcome and early-stop
    distributions, simulated/saved cycles) also matches the serial
    campaign; wall times are, of course, the parallel run's own.
    """
    from repro.bench import suite
    from repro.core.outcome import InjectionRecord

    if injections is None:
        injections = default_injections()
    own_tracer = None
    if tracer is None and events_path is not None:
        tracer = own_tracer = Tracer(JSONLSink(events_path))
    if tracer is None:
        tracer = NULL_TRACER
    if metrics is None:
        metrics = MetricsRegistry()
    spec = _CellSpec(setup, benchmark, structure, scaled, early_stop,
                     scale, n_checkpoints)

    try:
        # Golden + masks in the parent (also validates the structure name).
        config = setup_config(setup, scaled=scaled)
        program = suite.program(benchmark, config.isa, scale)
        dispatcher = InjectorDispatcher(config, program,
                                        n_checkpoints=n_checkpoints,
                                        tracer=tracer)
        golden = dispatcher.run_golden()
        record_golden(metrics, dispatcher.golden_sample)
        logs = LogsRepository(logs_path)
        logs.set_golden(golden)
        sim = build_sim(program, config)
        sites = sim.fault_sites()
        if structure not in sites:
            raise KeyError(f"{setup} has no structure {structure!r}")
        info = StructureInfo.of_site(sites[structure])
        tracer.emit("maskgen_start", structure=structure, seed=seed)
        t0 = time.perf_counter()
        sets = FaultMaskGenerator(seed).generate(info, golden.cycles,
                                                 count=injections,
                                                 fault_type=fault_type)
        maskgen_s = time.perf_counter() - t0
        record_maskgen(metrics, maskgen_s, len(sets))
        tracer.emit("maskgen_end", structure=structure, masks=len(sets),
                    wall_s=maskgen_s)

        t_run = time.perf_counter()
        tracer.emit("campaign_start", setup=setup, benchmark=benchmark,
                    structure=structure, masks=len(sets), workers=workers)
        result = CampaignResult(setup=setup, benchmark=benchmark,
                                structure=structure, golden=golden,
                                _tracer=tracer, _metrics=metrics)
        ctx = mp.get_context("spawn" if mp.get_start_method(True) == "spawn"
                             else "fork")
        with ctx.Pool(processes=workers, initializer=_worker_init,
                      initargs=(spec,)) as pool:
            rows = pool.imap(_worker_run, [fs.to_dict() for fs in sets],
                             chunksize=max(len(sets) // (workers * 4), 1))
            for i, row in enumerate(rows):
                record = InjectionRecord.from_dict(row["record"])
                sample = InjectionSample.from_dict(row["sample"])
                record_injection(metrics, record, sample)
                tracer.emit("inject_end", set_id=record.set_id,
                            reason=record.reason,
                            early_stop=record.early_stop,
                            cycles=record.cycles,
                            sim_cycles=sample.sim_cycles,
                            saved_cycles=sample.restore_cycle,
                            wall_s=sample.wall_s)
                logs.add(record)
                result.records.append(record)
                if record.early_stop is not None:
                    result.early_stops += 1
                if progress is not None:
                    progress(i + 1, len(sets), record)
        wall_s = time.perf_counter() - t_run
        result.telemetry = CampaignTelemetry.from_metrics(metrics,
                                                          wall_s=wall_s)
        tracer.emit("campaign_end", setup=setup, benchmark=benchmark,
                    structure=structure, injections=result.injections,
                    early_stops=result.early_stops, wall_s=wall_s,
                    workers=workers)
        return result
    finally:
        if own_tracer is not None:
            own_tracer.close()
