"""Masks repository and logs repository (Fig. 1).

Both are JSONL-backed so campaigns can be split across processes or
machines (the paper ran on 10 workstations) and so the Parser can be
re-run with a different classification policy without re-injecting.
In-memory operation (``path=None``) is the default for tests and small
studies.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.fault import FaultSet
from repro.core.outcome import GoldenReference, InjectionRecord


class MasksRepository:
    """Stores generated fault sets for a campaign."""

    def __init__(self, path: str | Path | None = None):
        self.path = Path(path) if path is not None else None
        self._sets: list[FaultSet] = []
        if self.path is not None and self.path.exists():
            with open(self.path) as fh:
                for line in fh:
                    line = line.strip()
                    if line:
                        self._sets.append(FaultSet.from_dict(
                            json.loads(line)))

    def add_all(self, fault_sets) -> None:
        fault_sets = list(fault_sets)
        self._sets.extend(fault_sets)
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a") as fh:
                for fs in fault_sets:
                    fh.write(json.dumps(fs.to_dict()) + "\n")

    def __iter__(self):
        return iter(self._sets)

    def __len__(self) -> int:
        return len(self._sets)


class LogsRepository:
    """Stores raw injection records plus the golden reference."""

    def __init__(self, path: str | Path | None = None):
        self.path = Path(path) if path is not None else None
        self.golden: GoldenReference | None = None
        self._records: list[InjectionRecord] = []
        if self.path is not None and self.path.exists():
            with open(self.path) as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    row = json.loads(line)
                    if row.get("kind") == "golden":
                        self.golden = GoldenReference.from_dict(row["data"])
                    else:
                        self._records.append(
                            InjectionRecord.from_dict(row["data"]))

    def set_golden(self, golden: GoldenReference) -> None:
        self.golden = golden
        self._write({"kind": "golden", "data": golden.to_dict()})

    def add(self, record: InjectionRecord) -> None:
        self._records.append(record)
        self._write({"kind": "injection", "data": record.to_dict()})

    def _write(self, row: dict) -> None:
        if self.path is None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a") as fh:
            fh.write(json.dumps(row) + "\n")

    @property
    def records(self) -> list[InjectionRecord]:
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)
