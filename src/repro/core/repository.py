"""Masks repository and logs repository (Fig. 1).

Both are JSONL-backed so campaigns can be split across processes or
machines (the paper ran on 10 workstations) and so the Parser can be
re-run with a different classification policy without re-injecting.
In-memory operation (``path=None``) is the default for tests and small
studies.

Attach semantics: reopening an existing file and re-adding records is
*idempotent* — both repositories key their contents by ``set_id`` and
silently skip duplicates, so a process that re-attaches after a crash
(the ``repro.sched`` resume path) can regenerate its deterministic
masks, replay its campaign loop, and only genuinely new records reach
the file.  Pass ``fsync=True`` to force every append to stable storage
before returning — the durability contract the scheduler's write-ahead
journal and unit logs rely on.

Crash tolerance matches the journals: a worker SIGKILLed mid-append
leaves a torn *final* line, which reopening repairs — the tail is
truncated away (so later appends stay line-aligned) and replay
continues from the records before it.  Corruption anywhere else still
raises; that is a damaged file, not an interrupted write.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path

from repro.core.fault import FaultSet
from repro.core.outcome import GoldenReference, InjectionRecord
from repro.errors import CampaignError


def _load_rows(path: Path) -> list[dict]:
    """Parse a repository JSONL file, repairing a torn trailing line.

    Returns the parsed rows.  If the final line does not parse (the
    write a crash interrupted), it is truncated off the file so the
    next append produces a well-formed line; a bad line *followed by*
    good lines is real corruption and raises.
    """
    rows: list[dict] = []
    data = path.read_bytes()
    offset = 0
    torn_at: int | None = None
    for n, raw in enumerate(data.splitlines(keepends=True), 1):
        line = raw.strip()
        if torn_at is not None and line:
            raise ValueError(f"{path}:{n - 1}: corrupt repository line "
                             f"(complete lines follow it)")
        if line:
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError:
                torn_at = offset
        offset += len(raw)
    if torn_at is not None:
        warnings.warn(
            f"{path}: dropping torn trailing line — writer was killed "
            f"mid-append", RuntimeWarning, stacklevel=3)
        with open(path, "r+b") as fh:
            fh.truncate(torn_at)
    return rows


def _append_rows(path: Path, rows, fsync: bool) -> None:
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "a") as fh:
            for row in rows:
                fh.write(json.dumps(row) + "\n")
            if fsync:
                fh.flush()
                os.fsync(fh.fileno())
    except OSError as exc:
        raise CampaignError(
            f"cannot append to repository {path}: {exc} — records are "
            f"not durable; free space or fix permissions, then run "
            f"`repro.tools fsck --repair` to trim any torn tail before "
            f"resuming") from exc


class MasksRepository:
    """Stores generated fault sets for a campaign (keyed by ``set_id``)."""

    def __init__(self, path: str | Path | None = None,
                 fsync: bool = False):
        self.path = Path(path) if path is not None else None
        self.fsync = fsync
        self._sets: list[FaultSet] = []
        self._ids: set[int] = set()
        if self.path is not None and self.path.exists():
            for row in _load_rows(self.path):
                self._remember(FaultSet.from_dict(row))

    def _remember(self, fs: FaultSet) -> bool:
        if fs.set_id in self._ids:
            return False
        self._sets.append(fs)
        self._ids.add(fs.set_id)
        return True

    def add_all(self, fault_sets) -> None:
        """Add fault sets, skipping ``set_id``s already present.

        A second process attaching to the same file and regenerating the
        same (deterministic) masks therefore appends nothing.
        """
        fresh = [fs for fs in fault_sets if self._remember(fs)]
        if self.path is not None and fresh:
            _append_rows(self.path, [fs.to_dict() for fs in fresh],
                         self.fsync)

    def __contains__(self, set_id: int) -> bool:
        return set_id in self._ids

    def __iter__(self):
        return iter(self._sets)

    def __len__(self) -> int:
        return len(self._sets)


class LogsRepository:
    """Stores raw injection records plus the golden reference."""

    def __init__(self, path: str | Path | None = None,
                 fsync: bool = False):
        self.path = Path(path) if path is not None else None
        self.fsync = fsync
        self.golden: GoldenReference | None = None
        self._records: list[InjectionRecord] = []
        self._ids: set[int] = set()
        if self.path is not None and self.path.exists():
            for row in _load_rows(self.path):
                if row.get("kind") == "golden":
                    self.golden = GoldenReference.from_dict(row["data"])
                else:
                    rec = InjectionRecord.from_dict(row["data"])
                    if rec.set_id not in self._ids:
                        self._records.append(rec)
                        self._ids.add(rec.set_id)

    def set_golden(self, golden: GoldenReference) -> None:
        """Record the golden reference (idempotent on re-attach).

        Re-setting an identical golden after loading it from the file
        writes nothing; a *different* golden appends a new row (last row
        wins on load), which keeps the file append-only.
        """
        if self.golden == golden:
            self.golden = golden
            return
        self.golden = golden
        self._write({"kind": "golden", "data": golden.to_dict()})

    def add(self, record: InjectionRecord) -> None:
        """Append one record; duplicates (same ``set_id``) are skipped."""
        if record.set_id in self._ids:
            return
        self._records.append(record)
        self._ids.add(record.set_id)
        self._write({"kind": "injection", "data": record.to_dict()})

    @property
    def set_ids(self) -> set:
        """``set_id``s already recorded (the sched resume skip-list)."""
        return set(self._ids)

    def __contains__(self, set_id: int) -> bool:
        return set_id in self._ids

    def _write(self, row: dict) -> None:
        if self.path is None:
            return
        _append_rows(self.path, [row], self.fsync)

    @property
    def records(self) -> list[InjectionRecord]:
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)
