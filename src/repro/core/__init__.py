"""The fault-injection framework (Fig. 1 of the paper): fault models,
mask generation, statistical sampling, campaign control, dispatch,
checkpointing, logging, classification and reporting.
"""
