"""Injection Campaign Controller — the second module of Fig. 1.

Reads fault masks from the masks repository, sends injection requests to
the per-simulator Injector Dispatcher, and stores the raw results in the
logs repository for the Parser.  ``run_campaign`` is the one-call user
entry point for a (setup, benchmark, structure) cell of the study.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.core.dispatcher import InjectorDispatcher
from repro.core.fault import TRANSIENT
from repro.core.maskgen import FaultMaskGenerator, StructureInfo
from repro.core.outcome import GoldenReference, InjectionRecord
from repro.core.parser import DEFAULT_POLICY, ParserPolicy, classify_all, \
    vulnerability
from repro.core.repository import LogsRepository, MasksRepository
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import (CampaignTelemetry, record_classify,
                               record_golden, record_injection,
                               record_maskgen, record_prune_plan,
                               record_pruned)
from repro.obs.trace import JSONLSink, NULL_TRACER, Tracer
from repro.prune import (PRUNE_OFF, PRUNE_POLICIES, TraceCache, audit_plan,
                         build_prune_plan, clone_record,
                         synthetic_masked_record)
from repro.sim.config import SimConfig, setup_config


@dataclass
class CampaignResult:
    """Everything a campaign produced, ready for the Parser/reports.

    ``telemetry`` carries the campaign's observability summary
    (:class:`repro.obs.profile.CampaignTelemetry`); it is excluded from
    equality so instrumented and uninstrumented results compare equal.
    """

    setup: str
    benchmark: str
    structure: str
    golden: GoldenReference
    records: list = field(default_factory=list)
    early_stops: int = 0
    #: ``repro.prune`` plan statistics + audit verdict (None = prune off).
    #: Deterministic, so serial and parallel pruned campaigns compare
    #: equal — including the trace digest.
    prune: dict | None = None
    telemetry: CampaignTelemetry | None = field(default=None,
                                                compare=False, repr=False)
    _tracer: object = field(default=None, compare=False, repr=False)
    _metrics: object = field(default=None, compare=False, repr=False)

    def classify(self, policy: ParserPolicy = DEFAULT_POLICY) -> dict:
        t0 = time.perf_counter()
        counts = classify_all(self.records, self.golden, policy)
        wall_s = time.perf_counter() - t0
        if self._metrics is not None:
            record_classify(self._metrics, wall_s)
        if self.telemetry is not None:
            self.telemetry.classify_s += wall_s
        if self._tracer is not None:
            self._tracer.emit("classify", wall_s=wall_s, **counts)
        return counts

    def vulnerability(self) -> float:
        return vulnerability(self.classify())

    @property
    def injections(self) -> int:
        return len(self.records)


def golden_with_trace(dispatcher: InjectorDispatcher, benchmark: str,
                      prune: str, trace_cache=None, tracer=NULL_TRACER):
    """Golden run, recording or loading the pruner's access trace.

    Returns ``(golden, trace, source)`` where *source* is ``"recorded"``
    or ``"cache"`` (both None when *prune* is off).  A cached trace
    whose cycle count disagrees with the fresh golden run is stale —
    the simulator or workload changed — and is silently re-recorded,
    never trusted.  Shared by the serial campaign, the parallel parent
    and the scheduler's unit workers.
    """
    if prune == PRUNE_OFF:
        return dispatcher.run_golden(), None, None
    if trace_cache is not None and not isinstance(trace_cache, TraceCache):
        trace_cache = TraceCache(trace_cache)
    label = dispatcher.config.label
    cached = (trace_cache.load(label, benchmark)
              if trace_cache is not None else None)
    dispatcher.record_trace = cached is None
    golden = dispatcher.run_golden()
    if cached is not None and cached.cycles != golden.cycles:
        cached = None
        dispatcher.record_trace = True
        golden = dispatcher.run_golden()
    if cached is not None:
        tracer.emit("trace_cache_hit", setup=label, benchmark=benchmark,
                    events=cached.n_events)
        return golden, cached, "cache"
    trace = dispatcher.access_trace
    trace.benchmark = benchmark
    if trace_cache is not None:
        trace_cache.store(trace)
    tracer.emit("trace_recorded", setup=label, benchmark=benchmark,
                events=trace.n_events)
    return golden, trace, "recorded"


class InjectionCampaign:
    """One campaign: a fault model × structure × benchmark × setup."""

    def __init__(self, config: SimConfig, program, benchmark_name: str,
                 structure: str, seed: int = 1,
                 fault_type: str = TRANSIENT,
                 early_stop: bool = True, n_checkpoints: int = 10,
                 masks_path=None, logs_path=None,
                 tracer=None, metrics=None, timeout_s: float | None = None,
                 guard=None, prune: str = PRUNE_OFF, trace_cache=None,
                 audit: int = 0):
        if prune not in PRUNE_POLICIES:
            raise ValueError(f"unknown prune policy {prune!r}; "
                             f"choose from {PRUNE_POLICIES}")
        self.config = config
        self.program = program
        self.benchmark_name = benchmark_name
        self.structure = structure
        self.seed = seed
        self.fault_type = fault_type
        self.early_stop = early_stop
        self.prune = prune
        self.audit = audit
        if trace_cache is not None and not isinstance(trace_cache,
                                                      TraceCache):
            trace_cache = TraceCache(trace_cache)
        self.trace_cache = trace_cache
        self._trace = None
        self._trace_source = None
        self._plan = None
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.dispatcher = InjectorDispatcher(config, program,
                                             n_checkpoints=n_checkpoints,
                                             tracer=self.tracer,
                                             timeout_s=timeout_s,
                                             guard=guard)
        self.masks = MasksRepository(masks_path)
        self.logs = LogsRepository(logs_path)

    def prepare(self, injections: int | None = None,
                confidence: float = 0.99, error_margin: float = 0.03,
                duration_range: tuple[int, int] = (10, 1000)) -> int:
        """Golden run + mask generation; returns the mask count."""
        golden, self._trace, self._trace_source = golden_with_trace(
            self.dispatcher, self.benchmark_name, self.prune,
            self.trace_cache, self.tracer)
        record_golden(self.metrics, self.dispatcher.golden_sample)
        self.logs.set_golden(golden)
        # The dispatcher's machine already exists; no throwaway simulator.
        sites = self.dispatcher.fault_sites()
        if self.structure not in sites:
            raise KeyError(
                f"{self.config.label} has no structure "
                f"{self.structure!r}; available: {sorted(sites)}")
        info = StructureInfo.of_site(sites[self.structure])
        gen = FaultMaskGenerator(self.seed)
        self.tracer.emit("maskgen_start", structure=self.structure,
                         seed=self.seed)
        t0 = time.perf_counter()
        sets = gen.generate(info, golden.cycles, count=injections,
                            fault_type=self.fault_type,
                            confidence=confidence,
                            error_margin=error_margin,
                            duration_range=duration_range)
        wall_s = time.perf_counter() - t0
        record_maskgen(self.metrics, wall_s, len(sets))
        self.tracer.emit("maskgen_end", structure=self.structure,
                         masks=len(sets), wall_s=wall_s)
        self.masks.add_all(sets)
        if self.prune != PRUNE_OFF:
            self._plan = build_prune_plan(sets, self._trace, self.prune)
            stats = self._plan.stats()
            stats["trace_source"] = self._trace_source
            record_prune_plan(self.metrics, stats)
            self.tracer.emit("prune_plan", structure=self.structure,
                            policy=self.prune, masks=stats["masks"],
                            masked=stats["masked"],
                            collapsed=stats["collapsed"],
                            classes=stats["classes"],
                            simulated=stats["simulated"])
        return len(sets)

    def run(self, progress=None) -> CampaignResult:
        """Dispatch every mask set; returns the aggregated result."""
        if self.dispatcher.golden is None:
            raise RuntimeError("call prepare() before run()")
        t0 = time.perf_counter()
        self.tracer.emit("campaign_start", setup=self.config.label,
                         benchmark=self.benchmark_name,
                         structure=self.structure, masks=len(self.masks))
        result = CampaignResult(setup=self.config.label,
                                benchmark=self.benchmark_name,
                                structure=self.structure,
                                golden=self.dispatcher.golden,
                                _tracer=self.tracer,
                                _metrics=self.metrics)
        plan = self._plan
        golden = self.dispatcher.golden
        by_id: dict[int, InjectionRecord] = {}
        sets_by_id = {}
        for i, fault_set in enumerate(self.masks):
            sets_by_id[fault_set.set_id] = fault_set
            decision = plan.decision(fault_set.set_id) \
                if plan is not None else None
            if decision is None:
                record = self.dispatcher.inject(fault_set,
                                                early_stop=self.early_stop)
                record_injection(self.metrics, record,
                                 self.dispatcher.last_sample)
                if record.early_stop is not None:
                    result.early_stops += 1
            elif decision[0] == "masked":
                record = synthetic_masked_record(fault_set, golden,
                                                 decision[1])
                record_pruned(self.metrics, record)
                self.tracer.emit("pruned", set_id=fault_set.set_id,
                                 rule=decision[1])
            else:
                record = clone_record(by_id[decision[1]], fault_set)
                record_pruned(self.metrics, record)
                self.tracer.emit("pruned", set_id=fault_set.set_id,
                                 rule="equivalent", rep=decision[1])
            by_id[record.set_id] = record
            self.logs.add(record)
            result.records.append(record)
            if progress is not None:
                progress(i + 1, len(self.masks), record)
        if plan is not None:
            result.prune = self._plan.stats()
            result.prune["trace_source"] = self._trace_source
            if self.audit:
                verdict = audit_plan(self.dispatcher, sets_by_id, by_id,
                                     plan, golden, self.audit, self.seed,
                                     early_stop=self.early_stop)
                result.prune["audit"] = verdict
                self.tracer.emit("prune_audit",
                                 checked=verdict["checked"],
                                 divergences=len(verdict["divergences"]),
                                 digest_ok=verdict["pristine_digest_ok"])
        wall_s = time.perf_counter() - t0
        result.telemetry = CampaignTelemetry.from_metrics(self.metrics,
                                                          wall_s=wall_s)
        self.tracer.emit("campaign_end", setup=self.config.label,
                         benchmark=self.benchmark_name,
                         structure=self.structure,
                         injections=result.injections,
                         early_stops=result.early_stops, wall_s=wall_s)
        return result


def default_injections() -> int:
    """Per-cell injection count; overridable via ``REPRO_INJECTIONS``."""
    return int(os.environ.get("REPRO_INJECTIONS", "40"))


def run_campaign(setup: str, benchmark: str, structure: str,
                 injections: int | None = None, seed: int = 1,
                 fault_type: str = TRANSIENT, early_stop: bool = True,
                 scaled: bool = True, scale: int = 1,
                 logs_path=None, progress=None, tracer=None,
                 metrics=None, events_path=None,
                 timeout_s: float | None = None,
                 guard=None, prune: str = PRUNE_OFF, trace_cache=None,
                 audit: int = 0) -> CampaignResult:
    """One-call campaign for a (setup, benchmark, structure) cell.

    *setup* is a paper label: ``MaFIN-x86``, ``GeFIN-x86``, ``GeFIN-ARM``.
    *injections* defaults to ``REPRO_INJECTIONS`` (40) — the paper used
    2000 per cell; pass ``injections=2000`` (or set the env var) to match.

    *timeout_s* bounds each injection run's wall-clock time; runs that
    exceed it are recorded with reason ``"wall-clock"`` and classified
    as Timeouts (CLI: ``repro.tools campaign --timeout-s``).

    *guard* selects the hardening policy — ``"off"``/``"basic"``/
    ``"strict"`` or a :class:`repro.guard.GuardPolicy` — covering
    invariant checks on faulty runs, crash containment and restore
    integrity verification (CLI: ``repro.tools campaign --guard``); see
    docs/robustness.md.

    *prune* selects the campaign pruner (``repro.prune``):
    ``"analyze"`` pre-classifies provably-Masked masks from the golden
    access trace; ``"collapse"`` additionally simulates one
    representative per fault-equivalence class.  *trace_cache* (a
    directory or :class:`~repro.prune.TraceCache`) persists the access
    trace per (setup, benchmark).  *audit* > 0 really simulates that
    many pruned masks and reports classification divergences in
    ``result.prune["audit"]`` — see docs/performance.md.

    Observability: pass a :class:`repro.obs.Tracer` via *tracer*, or just
    *events_path* to capture the event stream as JSONL for
    ``repro.tools obs summarize``; the returned result carries a
    :class:`~repro.obs.profile.CampaignTelemetry` either way.
    """
    from repro.bench import suite
    own_tracer = None
    if tracer is None and events_path is not None:
        tracer = own_tracer = Tracer(JSONLSink(events_path))
    try:
        config = setup_config(setup, scaled=scaled)
        program = suite.program(benchmark, config.isa, scale)
        campaign = InjectionCampaign(config, program, benchmark, structure,
                                     seed=seed, fault_type=fault_type,
                                     early_stop=early_stop,
                                     logs_path=logs_path,
                                     tracer=tracer, metrics=metrics,
                                     timeout_s=timeout_s, guard=guard,
                                     prune=prune, trace_cache=trace_cache,
                                     audit=audit)
        campaign.prepare(injections=injections if injections is not None
                         else default_injections())
        return campaign.run(progress=progress)
    finally:
        if own_tracer is not None:
            own_tracer.close()
