"""Small filesystem utilities shared across the stack.

:func:`atomic_write_text` is the write path for *derived* outputs —
merged study JSON, HTML reports, figure renderings, stats dumps.
Unlike the append-only journals (which get torn-tail-tolerant replay
instead), a derived file is rewritten whole, so a crash mid-write must
never leave a half-file behind for a consumer (CI, a dashboard, a
later merge) to misread: write to a temporary file in the same
directory, flush, ``fsync``, then ``os.replace`` — atomic on POSIX.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path


def atomic_write_text(path, text: str, fsync: bool = True) -> None:
    """Replace *path* with *text* atomically (tmp file + ``os.replace``).

    The temporary file lives in *path*'s directory so the final rename
    never crosses a filesystem boundary.  Readers see either the old
    content or the new content, never a prefix.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent,
                               prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
            fh.flush()
            if fsync:
                os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


__all__ = ["atomic_write_text"]
