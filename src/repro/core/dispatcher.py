"""Injector Dispatcher — the module that talks to the simulator (Fig. 1).

One dispatcher owns one (simulator configuration, program) pair.  It
runs the golden (fault-free) execution once — collecting the reference
behaviour, runtime statistics and checkpoints — and then services
injection requests from the campaign controller: restore a checkpoint,
run to the injection cycle, apply the fault masks, observe the outcome.

The dispatcher builds exactly one machine and reuses it for every run:
checkpoints are structured state blobs (``OoOCore.snapshot()``) restored
*in place*, so the per-injection setup cost is a few flat-container
copies rather than a whole-machine ``deepcopy``.  Parallel workers skip
even the golden run: :meth:`InjectorDispatcher.adopt_golden` installs a
parent's golden reference, pristine state and checkpoints directly.

The dispatcher also implements the two §III.B early-stop optimizations
for transient faults: (i) faults landing in invalid/unused entries are
masked immediately, and (ii) a run stops as soon as the faulty entry is
overwritten before ever being read.
"""

from __future__ import annotations

import time

from repro.errors import CampaignError, SimAssertError, SimCrashError
from repro.core.checkpoint import CheckpointStore, state_nbytes
from repro.core.fault import INTERMITTENT, PERMANENT, TRANSIENT, FaultSet
from repro.core.outcome import GoldenReference, InjectionRecord
from repro.guard import GuardPolicy
from repro.guard.containment import (OpBudgetExceeded, WatchdogTimeout,
                                     contained)
from repro.guard.integrity import (IntegrityVerifier, chaos_leak,
                                   chaos_leak_due)
from repro.guard.invariants import InvariantViolation, check_invariants
from repro.obs.profile import GoldenSample, InjectionSample
from repro.obs.trace import NULL_TRACER
from repro.sim.base import RunOutcome
from repro.sim.gem5 import build_sim
from repro.sim.kernel import KernelPanic, ProcessExit, ProcessKilled


class InjectorDispatcher:
    """Drives one simulated machine for a fault-injection campaign."""

    def __init__(self, config, program, n_checkpoints: int = 8,
                 timeout_factor: int = 3, deadlock_window: int = 20_000,
                 max_golden_cycles: int = 5_000_000, tracer=None,
                 timeout_s: float | None = None, guard=None,
                 record_trace: bool = False):
        self.config = config
        self.program = program
        self.n_checkpoints = n_checkpoints
        self.timeout_factor = timeout_factor
        self.deadlock_window = deadlock_window
        self.max_golden_cycles = max_golden_cycles
        #: Per-injection wall-clock budget in seconds (None = unlimited).
        #: Runs that exceed it finish with reason ``"wall-clock"``, which
        #: the Parser classifies as a Timeout (livelock) — the knob that
        #: polices hung faulty runs in long unattended campaigns.
        self.timeout_s = timeout_s
        #: Hardening policy (``repro.guard``): preset name, policy
        #: object or None.  Controls invariant checking on faulty runs,
        #: crash containment around the drive loop and integrity
        #: verification of restores.
        self.guard = GuardPolicy.of(guard)
        self._integrity = (IntegrityVerifier(self.guard.integrity_every)
                           if self.guard.integrity_every else None)
        self._restores_seen = 0
        self._checks_base = 0
        self._contam_base = 0
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: When set before :meth:`run_golden`, the golden run records the
        #: per-entry access trace of the paper structures for the
        #: campaign pruner (``repro.prune``); the result lands in
        #: :attr:`access_trace`.  Adds nothing to injection runs — the
        #: recorder shadows array methods only while golden executes.
        self.record_trace = record_trace
        self.access_trace = None
        self.golden: GoldenReference | None = None
        self.golden_outcome: RunOutcome | None = None
        self.golden_sample: GoldenSample | None = None
        self.last_sample: InjectionSample | None = None
        self.checkpoints: CheckpointStore | None = None
        self.checkpoint_bytes = 0
        self._sim = None          # the one reusable machine
        self._pristine = None     # cycle-0 snapshot state of that machine
        self._restore_cycle = 0
        self._restore_s = 0.0
        self._inject_t0 = 0.0

    # -- golden run -----------------------------------------------------------

    def run_golden(self) -> GoldenReference:
        """Fault-free reference run; collects checkpoints along the way."""
        t0 = time.perf_counter()
        tracer = self.tracer
        tracer.emit("golden_start", label=self.config.label)
        sim = self._sim = build_sim(self.program, self.config)
        t_snap = time.perf_counter()
        self._pristine = sim.snapshot()
        pristine_s = time.perf_counter() - t_snap
        store = CheckpointStore(max_snaps=max(self.n_checkpoints, 2))
        recorder = None
        if self.record_trace:
            from repro.prune.trace import TraceRecorder
            recorder = TraceRecorder(sim)
        outcome = None
        try:
            while sim.cycle < self.max_golden_cycles:
                sim.step()
                if tracer.enabled:
                    n_before = store.count
                    store.maybe_take(sim)
                    if store.count > n_before:
                        tracer.emit("checkpoint_taken", cycle=sim.cycle,
                                    snapshots=store.count)
                else:
                    store.maybe_take(sim)
                if sim.cycle - sim.last_commit_cycle > self.deadlock_window:
                    raise CampaignError("golden run deadlocked")
        except ProcessExit as ex:
            outcome = sim._outcome("exit", exit_code=ex.code)
        finally:
            if recorder is not None:
                recorder.detach()
        if outcome is None:
            raise CampaignError("golden run exceeded the cycle limit")
        if recorder is not None:
            self.access_trace = recorder.finish(
                self.config.label, getattr(self.program, "name", ""),
                outcome.cycles)
        self.golden_outcome = outcome
        self.golden = GoldenReference(
            cycles=outcome.cycles, exit_code=outcome.exit_code,
            output_hex=outcome.output.hex(), events=list(outcome.events),
            stats=dict(outcome.stats))
        self.checkpoints = store
        self.checkpoint_bytes = store.nbytes + state_nbytes(self._pristine)
        wall_s = time.perf_counter() - t0
        snapshot_s = pristine_s + store.snapshot_s
        self.golden_sample = GoldenSample(
            wall_s=wall_s, cycles=outcome.cycles, checkpoints=store.count,
            snapshot_s=snapshot_s, checkpoint_bytes=self.checkpoint_bytes)
        if self._integrity is not None:
            self._integrity.seal(self._pristine, store)
        tracer.emit("golden_end", cycles=outcome.cycles, wall_s=wall_s,
                    checkpoints=store.count, snapshot_s=snapshot_s,
                    checkpoint_bytes=self.checkpoint_bytes)
        return self.golden

    def adopt_golden(self, golden: GoldenReference, pristine_state,
                     checkpoints: CheckpointStore) -> None:
        """Install a golden run performed elsewhere (parallel workers).

        The worker builds its machine once and serves injections straight
        from the parent's shipped checkpoints — no golden re-run, no
        per-worker checkpoint collection.
        """
        self._sim = build_sim(self.program, self.config)
        self.golden = golden
        self._pristine = pristine_state
        self.checkpoints = checkpoints
        self.checkpoint_bytes = checkpoints.nbytes + \
            state_nbytes(pristine_state)
        if self._integrity is not None:
            self._integrity.seal(pristine_state, checkpoints)

    def fault_sites(self):
        """The reusable machine's injectable structures (cached per sim)."""
        if self._sim is None:
            raise CampaignError(
                "run_golden() or adopt_golden() must precede fault_sites()")
        return self._sim.fault_sites()

    def _restore(self, start_cycle: int):
        """Position ``self._sim`` at or before *start_cycle*."""
        t0 = time.perf_counter()
        if self.checkpoints is not None:
            sim = self.checkpoints.restore_before(start_cycle, self._sim)
            if sim is not None:
                self._restore_cycle = sim.cycle
                self._restore_s = time.perf_counter() - t0
                self.tracer.emit("checkpoint_restored",
                                 target_cycle=start_cycle, cycle=sim.cycle)
                return sim
        self._restore_cycle = 0
        sim = self._sim.restore(self._pristine)
        self._restore_s = time.perf_counter() - t0
        self.tracer.emit("cold_start", target_cycle=start_cycle)
        return sim

    def _condemn(self, start_cycle: int) -> None:
        """Contaminated stores detected: rebuild machine and state.

        The machine is replaced outright (``build_sim``) and the
        pristine/checkpoint stores reinstalled from the integrity
        vault, so whatever leaked cannot survive into later runs.
        """
        pristine, store = self._integrity.rebuild()
        self.tracer.emit("guard.contamination", target_cycle=start_cycle,
                         restores=self._restores_seen,
                         contaminations=self._integrity.contaminations)
        self._sim = build_sim(self.program, self.config)
        self._pristine = pristine
        self.checkpoints = store
        self.checkpoint_bytes = store.nbytes + state_nbytes(pristine)

    def _fresh_sim(self, start_cycle: int):
        """The reusable machine, positioned at or before *start_cycle*.

        With integrity checking on, the restored machine's digest is
        compared (at the policy's cadence) against the sealed digest of
        its restore source; on drift the machine is condemned, rebuilt
        from the vault, and the restore redone from clean state — the
        caller's run then proceeds untainted (the affected record is
        effectively re-run before it starts).
        """
        self._restores_seen += 1
        if chaos_leak_due(self._restores_seen):
            chaos_leak(self._pristine, self.checkpoints)
        sim = self._restore(start_cycle)
        if self._integrity is not None and self._integrity.sealed and \
                self._integrity.due():
            if not self._integrity.verify(sim):
                self._condemn(start_cycle)
                sim = self._restore(start_cycle)
                if not self._integrity.verify(sim):
                    raise CampaignError(
                        "machine state still diverges from the golden "
                        "digest after a rebuild from the vault")
        return sim

    # -- injection runs -----------------------------------------------------------

    def inject(self, fault_set: FaultSet,
               early_stop: bool = True) -> InjectionRecord:
        """Execute one injection run and return its raw record."""
        if self.golden is None:
            raise CampaignError("run_golden() must precede inject()")
        budget = self.golden.cycles * self.timeout_factor
        guard = self.guard
        check_every = guard.invariant_every if guard.invariants else 0
        watchdog_s = guard.watchdog_deadline(self.timeout_s)
        if self._integrity is not None:
            self._checks_base = self._integrity.checks
            self._contam_base = self._integrity.contaminations

        self._inject_t0 = time.perf_counter()
        deadline = (self._inject_t0 + self.timeout_s
                    if self.timeout_s is not None else None)
        self.tracer.emit("inject_start", set_id=fault_set.set_id,
                         first_cycle=fault_set.first_cycle,
                         masks=len(fault_set.masks))
        sim = self._fresh_sim(fault_set.first_cycle)
        sim._faulty = True
        sites = sim.fault_sites()
        for mask in fault_set.masks:
            if mask.structure not in sites:
                raise CampaignError(
                    f"{self.config.label} has no structure "
                    f"{mask.structure!r}; available: {sorted(sites)}")

        pending = sorted(fault_set.masks, key=lambda m: m.cycle)
        watch_site = None
        record = InjectionRecord(set_id=fault_set.set_id,
                                 masks=[m.to_dict() for m in fault_set.masks],
                                 reason="exit")
        # Permanent faults (cycle 0) apply before execution resumes.
        while pending and pending[0].cycle <= sim.cycle:
            self._apply(sim, sites, pending.pop(0))

        all_transient = all(m.fault_type == TRANSIENT
                            for m in fault_set.masks)
        if early_stop and fault_set.single and all_transient:
            mask = fault_set.masks[0]
            site = sites[mask.structure]
            # Early-stop rule (i): fault in an invalid/unused entry.
            # (Checked at injection time; for faults still pending we
            # check when they fire, below.)
            watch_site = site

        try:
            with contained(guard, watchdog_s):
                outcome = self._drive(sim, sites, pending, budget, record,
                                      watch_site, early_stop, deadline,
                                      check_every)
        except InvariantViolation as exc:
            # Guard invariant tripped on the faulty machine: Assert,
            # with the failing invariant's name and cycle on record.
            record.invariant = exc.invariant
            return self._finish(record, "assert", sim, detail=str(exc))
        except SimAssertError as exc:
            return self._finish(record, "assert", sim, detail=str(exc))
        except KernelPanic as exc:
            return self._finish(record, "panic", sim, detail=str(exc))
        except ProcessKilled as exc:
            return self._finish(record, "killed", sim, signal=exc.signal,
                                detail=str(exc))
        except ProcessExit as exc:
            record.exit_code = exc.code
            return self._finish(record, "exit", sim)
        except SimCrashError as exc:
            return self._finish(record, "sim-crash", sim, detail=str(exc))
        except WatchdogTimeout as exc:
            # Hard deadline fired *inside* one sim.step(): Timeout.
            return self._finish(record, "wall-clock", sim,
                                detail=f"watchdog: {exc}")
        except OpBudgetExceeded as exc:
            return self._finish(record, "op-budget", sim, detail=str(exc))
        except (IndexError, KeyError, ValueError, ZeroDivisionError,
                OverflowError, TypeError, AttributeError,
                MemoryError, RecursionError, StopIteration) as exc:
            # The simulator itself died on corrupted state (gem5-style
            # sparse checking): Crash (simulator).  MemoryError/
            # RecursionError/StopIteration are real outcomes of wild
            # faulty state and must not kill the campaign loop.
            return self._finish(record, "sim-crash", sim,
                                detail=f"{type(exc).__name__}: {exc}")
        except CampaignError:
            raise                  # campaign configuration error, not a
                                   # faulty-machine outcome
        except Exception as exc:
            if not guard.containment:
                raise
            return self._finish(record, "sim-crash", sim,
                                detail=f"contained {type(exc).__name__}: "
                                       f"{exc}")
        return self._finish(record, outcome, sim)

    def _drive(self, sim, sites, pending, budget, record, watch_site,
               early_stop, deadline=None, check_every=0) -> str:
        """Step the machine to completion; returns a timeout reason."""
        watching = False
        while True:
            # Deadline granularity: the mask-apply/watch half of the
            # loop can be slow on corrupted state, so the wall-clock
            # budget is checked at the top as well as after the step.
            if deadline is not None and time.perf_counter() > deadline:
                return "wall-clock"
            if pending and sim.cycle >= pending[0].cycle:
                mask = pending.pop(0)
                applied = self._apply(sim, sites, mask)
                if watch_site is not None:
                    if not applied:
                        record.early_stop = "invalid-entry"
                        record.injected = False
                        return "exit"  # guaranteed masked
                    watch_site.array.watch_entry(mask.entry, mask.bit)
                    watching = True
            sim.step()
            if watching:
                event = watch_site.array.watch_event()
                if event == "overwritten":
                    record.early_stop = "overwritten"
                    return "exit"  # guaranteed masked
                if event == "read":
                    watching = False  # fault consumed; must run to the end
            if check_every and sim.cycle % check_every == 0:
                check_invariants(sim)
            if sim.cycle - sim.last_commit_cycle > self.deadlock_window:
                return "deadlock"
            if sim.cycle > budget:
                return "cycle-limit"
            if deadline is not None and time.perf_counter() > deadline:
                return "wall-clock"

    def _apply(self, sim, sites, mask) -> bool:
        """Apply one mask; returns False for rule-(i) dead entries."""
        site = sites[mask.structure]
        if mask.fault_type == TRANSIENT:
            if not site.live(mask.entry):
                return False
            site.array.flip(mask.entry, mask.bit)
            return True
        if mask.fault_type == PERMANENT:
            site.array.set_stuck(mask.entry, mask.bit, mask.stuck_value,
                                 start=0)
            return True
        if mask.fault_type == INTERMITTENT:
            site.array.set_stuck(mask.entry, mask.bit, mask.stuck_value,
                                 start=mask.cycle,
                                 end=mask.cycle + mask.duration)
            return True
        raise CampaignError(f"unknown fault type {mask.fault_type!r}")

    def _finish(self, record: InjectionRecord, reason: str, sim,
                signal=None, detail="") -> InjectionRecord:
        record.reason = reason
        record.signal = signal
        record.detail = detail
        record.cycles = sim.cycle
        record.output_hex = bytes(sim.kernel.output).hex()
        record.events = list(sim.kernel.events)
        if reason == "exit" and record.exit_code is None and \
                record.early_stop is not None:
            # Early-stopped: the run is masked by construction; report
            # the golden behaviour as its outcome.
            record.exit_code = self.golden.exit_code
            record.output_hex = self.golden.output_hex
            record.events = list(self.golden.events)
        wall_s = time.perf_counter() - self._inject_t0
        if reason in ("wall-clock", "op-budget"):
            # Timeout runs carry their real elapsed time; deterministic
            # outcomes stay wall-time-free so records remain replayable
            # byte-for-byte.
            record.elapsed_s = round(wall_s, 6)
        integrity_checks = contaminations = 0
        if self._integrity is not None:
            integrity_checks = self._integrity.checks - self._checks_base
            contaminations = (self._integrity.contaminations
                              - self._contam_base)
        sample = InjectionSample(set_id=record.set_id,
                                 wall_s=wall_s,
                                 restore_cycle=self._restore_cycle,
                                 end_cycle=record.cycles,
                                 restore_s=self._restore_s,
                                 integrity_checks=integrity_checks,
                                 contaminations=contaminations)
        self.last_sample = sample
        if record.early_stop is not None:
            self.tracer.emit("early_stop", set_id=record.set_id,
                             reason=record.early_stop, cycle=record.cycles)
        self.tracer.emit("inject_end", set_id=record.set_id,
                         reason=reason, early_stop=record.early_stop,
                         invariant=record.invariant,
                         cycles=record.cycles,
                         sim_cycles=sample.sim_cycles,
                         saved_cycles=sample.restore_cycle,
                         wall_s=sample.wall_s,
                         restore_s=sample.restore_s)
        return record
