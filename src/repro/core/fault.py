"""Fault models (Table III) and fault-mask records.

A *fault mask* is the paper's unit of injection work (§III.B): it names
the core, the microarchitectural structure, the exact bit, the injection
time, the fault type, and the population (single/multiple faults are
expressed as lists of masks applied in one run).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

TRANSIENT = "transient"
INTERMITTENT = "intermittent"
PERMANENT = "permanent"

FAULT_TYPES = (TRANSIENT, INTERMITTENT, PERMANENT)

FAULT_MODEL_DESCRIPTIONS = {
    TRANSIENT:
        "a storage element's bit value is flipped in a clock cycle of the "
        "program execution; the bit position and the clock cycle can be "
        "set arbitrarily (randomly or directed)",
    INTERMITTENT:
        "a storage element's bit value is set to '0' or to '1' starting "
        "at a clock cycle and for an arbitrary number of clock cycles; "
        "the bit position, the start time and the duration of the fault "
        "can be set arbitrarily (randomly or directed)",
    PERMANENT:
        "a storage element's bit value is permanently set to '0' or to "
        "'1'; the bit position can be set arbitrarily (randomly or "
        "directed)",
}


@dataclass(frozen=True)
class FaultMask:
    """One fault to apply during one injection run.

    Attributes mirror the paper's mask contents: (i) the core, (ii) the
    structure, (iii) the bit position (entry, bit), (iv) the injection
    cycle, (v) the fault type, plus intermittent duration and stuck-at
    value where applicable.
    """

    structure: str
    entry: int
    bit: int
    cycle: int
    fault_type: str = TRANSIENT
    duration: int = 0          # intermittent only (cycles)
    stuck_value: int = 0       # intermittent/permanent
    core: int = 0

    def __post_init__(self):
        if self.fault_type not in FAULT_TYPES:
            raise ValueError(f"unknown fault type {self.fault_type!r}")
        if self.fault_type == INTERMITTENT and self.duration <= 0:
            raise ValueError("intermittent faults need a positive duration")

    def to_dict(self) -> dict:
        return asdict(self)

    @staticmethod
    def from_dict(d: dict) -> "FaultMask":
        return FaultMask(**d)


@dataclass(frozen=True)
class FaultSet:
    """The fault population of one injection run (§III.A multiplicity).

    A single-bit study uses one mask per set; multi-bit studies combine
    masks in the same entry, across entries, or across structures.
    """

    masks: tuple = field(default_factory=tuple)
    set_id: int = 0

    def __post_init__(self):
        if not self.masks:
            raise ValueError("a fault set needs at least one mask")
        object.__setattr__(self, "masks", tuple(self.masks))

    @property
    def first_cycle(self) -> int:
        return min(m.cycle for m in self.masks)

    @property
    def structures(self) -> tuple:
        return tuple(sorted({m.structure for m in self.masks}))

    @property
    def single(self) -> bool:
        return len(self.masks) == 1

    def to_dict(self) -> dict:
        return {"set_id": self.set_id,
                "masks": [m.to_dict() for m in self.masks]}

    @staticmethod
    def from_dict(d: dict) -> "FaultSet":
        return FaultSet(set_id=d["set_id"],
                        masks=tuple(FaultMask.from_dict(m)
                                    for m in d["masks"]))
