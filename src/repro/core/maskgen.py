"""Fault Mask Generator — the first module of MaFIN/GeFIN (Fig. 1).

Produces, by user-defined parameters, a random set of fault masks of any
type (transient, intermittent, permanent) over the whole simulation time
of a benchmark, for single- and multi-bit populations.  Masks are stored
in a *masks repository* the campaign controller replays from.
"""

from __future__ import annotations

import random

from repro.core.fault import (FAULT_TYPES, INTERMITTENT, PERMANENT,
                              TRANSIENT, FaultMask, FaultSet)
from repro.core.sampling import required_injections


class StructureInfo:
    """What the generator needs to know about a target structure."""

    __slots__ = ("name", "entries", "bits_per_entry")

    def __init__(self, name: str, entries: int, bits_per_entry: int):
        self.name = name
        self.entries = entries
        self.bits_per_entry = bits_per_entry

    @property
    def total_bits(self) -> int:
        return self.entries * self.bits_per_entry

    @staticmethod
    def of_site(site) -> "StructureInfo":
        return StructureInfo(site.name, site.array.entries,
                             site.array.bits_per_entry)


class FaultMaskGenerator:
    """Seeded random mask generation over (structure, cycle) space."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.rng = random.Random(seed)

    # -- single-fault campaigns -------------------------------------------

    def generate(self, structure: StructureInfo, total_cycles: int,
                 count: int | None = None, fault_type: str = TRANSIENT,
                 confidence: float = 0.99, error_margin: float = 0.03,
                 duration_range: tuple[int, int] = (10, 1000),
                 start_set: int = 0) -> list[FaultSet]:
        """Single-bit fault sets for one structure/benchmark combination.

        When *count* is None it comes from the statistical sampling
        formula over the (bit, cycle) population.
        """
        if fault_type not in FAULT_TYPES:
            raise ValueError(f"unknown fault type {fault_type!r}")
        if total_cycles <= 0:
            raise ValueError("total_cycles must be positive")
        if count is None:
            count = required_injections(
                structure.total_bits * total_cycles, confidence,
                error_margin)
        sets = []
        for i in range(count):
            mask = self._one_mask(structure, total_cycles, fault_type,
                                  duration_range)
            sets.append(FaultSet(masks=(mask,), set_id=start_set + i))
        return sets

    # -- multi-fault campaigns ---------------------------------------------------

    def generate_multi(self, structures: list[StructureInfo],
                       total_cycles: int, count: int,
                       faults_per_run: int = 2,
                       fault_type: str = TRANSIENT,
                       same_entry: bool = False,
                       duration_range: tuple[int, int] = (10, 1000),
                       start_set: int = 0) -> list[FaultSet]:
        """Multi-bit fault sets (§III.A): multiple faults per run.

        ``same_entry=True`` constrains every fault of a run to one entry
        of the first structure (spatially-correlated multi-bit upsets);
        otherwise faults spread over entries and over *structures*.

        No two masks of one run share a (structure, entry, bit, cycle)
        site: two transient flips there cancel, silently turning an
        N-fault run into an (N-2)-fault one.  Colliding draws are
        deterministically redrawn from the seeded stream.
        """
        if faults_per_run < 2:
            raise ValueError("use generate() for single-fault runs")
        total_bits = sum(s.total_bits for s in structures)
        # Permanent faults all inject at cycle 0, so their site
        # population has no cycle axis.
        population = (total_bits if fault_type == PERMANENT
                      else total_bits * total_cycles)
        if not same_entry and faults_per_run > population:
            raise ValueError(
                f"faults_per_run={faults_per_run} exceeds the "
                f"{population} distinct fault sites of the target "
                f"structures")
        sets = []
        for i in range(count):
            masks = []
            if same_entry:
                s = structures[0]
                entry = self.rng.randrange(s.entries)
                bits = self.rng.sample(range(s.bits_per_entry),
                                       min(faults_per_run,
                                           s.bits_per_entry))
                for bit in bits:
                    masks.append(self._mask_at(s, entry, bit, total_cycles,
                                               fault_type, duration_range))
            else:
                seen = set()
                while len(masks) < faults_per_run:
                    s = structures[self.rng.randrange(len(structures))]
                    mask = self._one_mask(s, total_cycles, fault_type,
                                          duration_range)
                    site = (mask.structure, mask.entry, mask.bit,
                            mask.cycle)
                    if site in seen:
                        continue
                    seen.add(site)
                    masks.append(mask)
            sets.append(FaultSet(masks=tuple(masks), set_id=start_set + i))
        return sets

    # -- internals -----------------------------------------------------------------

    def _one_mask(self, structure: StructureInfo, total_cycles: int,
                  fault_type: str, duration_range) -> FaultMask:
        entry = self.rng.randrange(structure.entries)
        bit = self.rng.randrange(structure.bits_per_entry)
        return self._mask_at(structure, entry, bit, total_cycles,
                             fault_type, duration_range)

    def _mask_at(self, structure: StructureInfo, entry: int, bit: int,
                 total_cycles: int, fault_type: str,
                 duration_range) -> FaultMask:
        cycle = self.rng.randrange(1, total_cycles + 1)
        duration = 0
        stuck = 0
        if fault_type == INTERMITTENT:
            lo, hi = duration_range
            duration = self.rng.randrange(lo, hi + 1)
            stuck = self.rng.randrange(2)
        elif fault_type == PERMANENT:
            cycle = 0          # present from the start of execution
            stuck = self.rng.randrange(2)
        return FaultMask(structure=structure.name, entry=entry, bit=bit,
                         cycle=cycle, fault_type=fault_type,
                         duration=duration, stuck_value=stuck)
