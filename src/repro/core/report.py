"""Reporting: classification tables and ASCII renderings of Figs. 2-6.

Each of the paper's result figures is a stacked-bar chart — per
benchmark, one bar per setup (MaFIN-x86 / GeFIN-x86 / GeFIN-ARM) showing
the six fault-effect classes, plus the three average bars.  This module
sweeps the cells, aggregates, and renders the same content as text.
"""

from __future__ import annotations

from repro.core.campaign import CampaignResult, default_injections, \
    run_campaign
from repro.core.outcome import CLASSES, MASKED
from repro.core.parser import DEFAULT_POLICY

SETUPS = ("MaFIN-x86", "GeFIN-x86", "GeFIN-ARM")
SETUP_SHORT = {"MaFIN-x86": "M-x86", "GeFIN-x86": "G-x86",
               "GeFIN-ARM": "G-ARM"}

_BAR_GLYPHS = {"Masked": ".", "SDC": "#", "DUE": "D", "Timeout": "T",
               "Crash": "C", "Assert": "A"}


class FigureResult:
    """All cells of one per-structure figure (e.g. Fig. 3 = L1D)."""

    def __init__(self, structure: str, benchmarks, setups=SETUPS):
        self.structure = structure
        self.benchmarks = tuple(benchmarks)
        self.setups = tuple(setups)
        self.cells: dict[tuple[str, str], CampaignResult] = {}

    def add(self, result: CampaignResult) -> None:
        self.cells[(result.benchmark, result.setup)] = result

    def counts(self, benchmark: str, setup: str,
               policy=DEFAULT_POLICY) -> dict:
        return self.cells[(benchmark, setup)].classify(policy)

    def percentages(self, benchmark: str, setup: str,
                    policy=DEFAULT_POLICY) -> dict:
        counts = self.counts(benchmark, setup, policy)
        total = max(sum(counts.values()), 1)
        return {k: 100.0 * v / total for k, v in counts.items()}

    def average(self, setup: str, policy=DEFAULT_POLICY) -> dict:
        """Average class percentages across benchmarks for one setup."""
        acc: dict[str, float] = {}
        n = 0
        for bench in self.benchmarks:
            if (bench, setup) not in self.cells:
                continue
            n += 1
            for cls, pct in self.percentages(bench, setup, policy).items():
                acc[cls] = acc.get(cls, 0.0) + pct
        return {k: v / max(n, 1) for k, v in acc.items()}

    def vulnerability(self, benchmark: str, setup: str) -> float:
        return 100.0 * self.cells[(benchmark, setup)].vulnerability()

    def average_vulnerability(self, setup: str) -> float:
        avg = self.average(setup)
        return sum(v for k, v in avg.items() if k != MASKED)

    def telemetry(self):
        """Merged :class:`CampaignTelemetry` over all instrumented cells.

        ``None`` when no cell carries telemetry (e.g. results loaded
        from logs rather than produced by a campaign run).
        """
        from repro.obs.profile import CampaignTelemetry
        merged = None
        for result in self.cells.values():
            if result.telemetry is None:
                continue
            if merged is None:
                merged = CampaignTelemetry()
            merged.merge(result.telemetry)
        return merged

    # -- rendering --------------------------------------------------------

    def render(self, policy=DEFAULT_POLICY, bar_width: int = 40) -> str:
        """Text rendering of the paper-figure content."""
        lines = [f"Faulty behavior classification — {self.structure}",
                 "  legend: " + "  ".join(f"{g}={c}" for c, g in
                                          _BAR_GLYPHS.items())]
        header = (f"  {'benchmark':<10s}{'setup':<7s}"
                  + "".join(f"{c:>9s}" for c in policy.classes())
                  + f"{'vuln%':>8s}  bar")
        lines.append(header)
        for bench in list(self.benchmarks) + ["AVG"]:
            for setup in self.setups:
                if bench == "AVG":
                    pct = self.average(setup, policy)
                else:
                    if (bench, setup) not in self.cells:
                        continue
                    pct = self.percentages(bench, setup, policy)
                vuln = sum(v for k, v in pct.items() if k != MASKED)
                bar = _stacked_bar(pct, bar_width)
                row = (f"  {bench:<10s}{SETUP_SHORT.get(setup, setup):<7s}"
                       + "".join(f"{pct.get(c, 0.0):>8.1f}%"
                                 for c in policy.classes())
                       + f"{vuln:>7.1f}%  |{bar}|")
                lines.append(row)
            lines.append("")
        return "\n".join(lines)

    def summary_rows(self, policy=DEFAULT_POLICY) -> list[dict]:
        """Machine-readable rows (benchmark, setup, per-class %).

        Per-cell rows carry the statistical error margin of their
        vulnerability estimate at 99 % confidence (§IV.A machinery), so
        downstream comparisons know how much resolution the campaign
        size bought.
        """
        from repro.core.sampling import achieved_error_margin
        rows = []
        for bench in list(self.benchmarks) + ["AVG"]:
            for setup in self.setups:
                if bench != "AVG" and (bench, setup) not in self.cells:
                    continue
                pct = (self.average(setup, policy) if bench == "AVG"
                       else self.percentages(bench, setup, policy))
                vuln = sum(v for k, v in pct.items() if k != MASKED)
                row = {"benchmark": bench,
                       "setup": SETUP_SHORT.get(setup, setup),
                       "vulnerability": round(vuln, 2),
                       **{k: round(v, 2) for k, v in pct.items()}}
                if bench != "AVG":
                    n = self.cells[(bench, setup)].injections
                    if n:
                        row["error_margin_99"] = round(
                            100 * achieved_error_margin(n), 2)
                rows.append(row)
        return rows


def _stacked_bar(pct: dict, width: int) -> str:
    bar = []
    for cls in CLASSES:
        share = pct.get(cls, 0.0)
        glyph = _BAR_GLYPHS.get(cls, "?")
        bar.append(glyph * round(share * width / 100.0))
    out = "".join(bar)
    return (out + " " * width)[:width]


def run_figure(structure: str, benchmarks=None, setups=SETUPS,
               injections: int | None = None, seed: int = 1,
               early_stop: bool = True, progress=None, tracer=None,
               events_path=None) -> FigureResult:
    """Run every (benchmark, setup) campaign of one figure.

    Equivalent to one of the paper's Figs. 2-6 for the given structure;
    with ``injections=2000`` it is the paper's full per-figure campaign.
    A *tracer* (or *events_path* JSONL capture) observes every cell's
    campaign; ``FigureResult.telemetry()`` merges the per-cell summaries.
    """
    from repro.bench import suite
    from repro.obs.trace import JSONLSink, Tracer
    if benchmarks is None:
        benchmarks = suite.benchmark_names()
    if injections is None:
        injections = default_injections()
    own_tracer = None
    if tracer is None and events_path is not None:
        tracer = own_tracer = Tracer(JSONLSink(events_path))
    fig = FigureResult(structure, benchmarks, setups)
    try:
        for bench in benchmarks:
            for setup in setups:
                result = run_campaign(setup, bench, structure,
                                      injections=injections, seed=seed,
                                      early_stop=early_stop, tracer=tracer)
                fig.add(result)
                if progress is not None:
                    progress(bench, setup, result)
    finally:
        if own_tracer is not None:
            own_tracer.close()
    return fig


def golden_stats(benchmarks=None, setups=SETUPS, scaled=True) -> dict:
    """Fault-free runtime statistics per (benchmark, setup).

    These are the numbers behind the paper's remark explanations
    (issued vs committed loads, hit/miss counts, replacements...).
    """
    from repro.bench import suite
    from repro.sim.config import setup_config
    from repro.sim.gem5 import build_sim
    if benchmarks is None:
        benchmarks = suite.benchmark_names()
    out = {}
    for bench in benchmarks:
        for setup in setups:
            config = setup_config(setup, scaled=scaled)
            sim = build_sim(suite.program(bench, config.isa), config)
            outcome = sim.run()
            if outcome.reason != "exit":
                raise RuntimeError(
                    f"golden run failed for {bench}/{setup}: "
                    f"{outcome.reason}")
            out[(bench, setup)] = outcome.stats
    return out
