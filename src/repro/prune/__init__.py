"""Campaign pruning: golden-trace pre-classification and fault
equivalence (ROADMAP item 2; docs/performance.md "Campaign pruning").

``repro.prune`` decides mask outcomes *before* simulation wherever the
golden run's access trace proves them: dead entries, bits overwritten
before their next read, bits never read again — all Masked by analysis
— and collapses the survivors into equivalence classes that share one
representative run.  The three policies (``off`` / ``analyze`` /
``collapse``) thread through ``run_campaign``, the parallel pool,
``StudySpec.prune`` and the CLI; audit mode re-simulates a seeded
sample of pruned masks so the speedup never rests on an unchecked
assumption.
"""

from repro.prune.cache import TraceCache
from repro.prune.classify import (PRUNE_ANALYZE, PRUNE_COLLAPSE, PRUNE_OFF,
                                  PRUNE_POLICIES, PRUNE_RULES,
                                  RULE_DEAD, RULE_EQUIVALENT,
                                  RULE_NEVER_READ, RULE_OVERWRITTEN,
                                  PrunePlan, audit_plan, build_prune_plan,
                                  classify_mask, clone_record,
                                  synthetic_masked_record)
from repro.prune.trace import (PRUNE_STRUCTURES, AccessTrace,
                               StructureTrace, TraceRecorder)

__all__ = [
    "AccessTrace", "PrunePlan", "StructureTrace", "TraceCache",
    "TraceRecorder", "PRUNE_ANALYZE", "PRUNE_COLLAPSE", "PRUNE_OFF",
    "PRUNE_POLICIES", "PRUNE_RULES", "PRUNE_STRUCTURES", "RULE_DEAD",
    "RULE_EQUIVALENT", "RULE_NEVER_READ", "RULE_OVERWRITTEN",
    "audit_plan", "build_prune_plan", "classify_mask", "clone_record",
    "synthetic_masked_record",
]
