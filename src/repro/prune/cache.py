"""Persistent per-(setup × benchmark) access-trace cache.

A study touches each (setup, benchmark) pair once per *structure* ×
*fault type* cell, but the golden access trace is a property of the
pair alone — so it is recorded once and reused, exactly like the
in-memory fault-site cache on the simulator.  This module gives the
trace a home on disk: campaigns (and scheduler units) pass a cache
directory, the first campaign of a pair records and stores, and every
later campaign loads instead of re-recording.

Entries are zlib-compressed canonical JSON keyed by the identity of the
golden execution: setup label, benchmark, program scaling.  Loads are
validated downstream against the golden run's cycle count — a stale
entry (the simulator changed) is discarded and re-recorded, never
trusted.
"""

from __future__ import annotations

import hashlib
import os
import zlib
from pathlib import Path

from repro.prune.trace import AccessTrace

_MAGIC = b"RPTR1"


class TraceCache:
    """Directory of serialized :class:`AccessTrace` blobs."""

    def __init__(self, root):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    @staticmethod
    def entry_key(setup: str, benchmark: str) -> str:
        digest = hashlib.sha1(
            f"{setup}|{benchmark}".encode()).hexdigest()[:10]
        safe = "".join(c if c.isalnum() or c in "-_" else "_"
                       for c in f"{setup}__{benchmark}")
        return f"{safe}__{digest}.trace"

    def path_for(self, setup: str, benchmark: str) -> Path:
        return self.root / self.entry_key(setup, benchmark)

    def load(self, setup: str, benchmark: str) -> AccessTrace | None:
        path = self.path_for(setup, benchmark)
        try:
            blob = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        try:
            if not blob.startswith(_MAGIC):
                raise ValueError("bad magic")
            trace = AccessTrace.from_bytes(
                zlib.decompress(blob[len(_MAGIC):]))
        except Exception:
            # Corrupt or foreign file: treat as a miss; the campaign
            # re-records and overwrites it.
            self.misses += 1
            return None
        self.hits += 1
        return trace

    def store(self, trace: AccessTrace) -> Path:
        path = self.path_for(trace.setup, trace.benchmark)
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp%d" % os.getpid())
        tmp.write_bytes(_MAGIC + zlib.compress(trace.to_bytes(), 6))
        os.replace(tmp, path)
        self.stores += 1
        return path
