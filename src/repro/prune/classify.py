"""Mask pre-classification and fault-equivalence collapsing.

Given the planned mask set of a campaign and the golden run's
:class:`~repro.prune.trace.AccessTrace`, :func:`build_prune_plan`
decides, per fault set, one of three fates *before any simulation*:

**Masked by analysis** — the flip provably cannot change the run:

``dead-entry``
    the targeted line holds no live storage at the injection cycle
    (never filled, or invalidated and not refilled); the flip is a
    no-op on unobservable garbage.
``write-before-read``
    the next access to the entry after the flip is a write covering the
    flipped bit (whole-entry write, line fill, or a byte-range write
    over the bit's byte); the corruption is erased unread.
``never-read``
    no read of the entry ever follows the flip — the entry is only
    ever overwritten partially elsewhere, invalidated, or untouched
    until the program exits.

These are the static counterparts of the paper's §III.B *runtime*
early-stop rules: what the watch machinery discovers by simulating up
to the first access, the golden trace already knows.

**Collapsed** — two surviving masks hitting the same (entry, bit) with
no intervening access event between their injection cycles produce
bit-identical machine states at the first subsequent access (execution
is golden-identical until then, and an XOR flip commutes with nothing
happening).  Such masks form an equivalence class; one representative
is simulated and its observables fanned out to the rest.

**Simulated** — everything else, plus every multi-mask, intermittent or
permanent fault set (stuck-at faults interact with every access in
their window; only single transient flips are analyzable this way).

Pruned and collapsed masks still yield full :class:`InjectionRecord`\\ s
— carrying the golden (or representative) observables so the Parser
classifies them through the normal path — marked with the new
``pruned`` provenance field.  :func:`audit_plan` is the empirical gate:
it really simulates a seeded sample of pruned masks, compares the
Parser's verdicts, and cross-checks the dispatcher's pristine state
digest (the guard integrity machinery) before and after, so a pruning
bug or a contaminated machine shows up as a divergence count, not a
silently wrong study.
"""

from __future__ import annotations

import random
from bisect import bisect_right

from repro.core.fault import TRANSIENT, FaultSet
from repro.core.outcome import GoldenReference, InjectionRecord
from repro.core.parser import DEFAULT_POLICY, classify
from repro.prune.trace import AccessTrace

# Prune policies (StudySpec.prune / campaign --prune).
PRUNE_OFF = "off"
PRUNE_ANALYZE = "analyze"        # masked-by-analysis rules only
PRUNE_COLLAPSE = "collapse"      # rules + equivalence-class collapsing
PRUNE_POLICIES = (PRUNE_OFF, PRUNE_ANALYZE, PRUNE_COLLAPSE)

RULE_DEAD = "dead-entry"
RULE_OVERWRITTEN = "write-before-read"
RULE_NEVER_READ = "never-read"
RULE_EQUIVALENT = "equivalent"
PRUNE_RULES = (RULE_DEAD, RULE_OVERWRITTEN, RULE_NEVER_READ)


def classify_mask(struct_trace, entry: int, bit: int,
                  cycle: int) -> tuple[str | None, int]:
    """One mask against one entry's golden events.

    Returns ``(rule, window)``: *rule* is a :data:`PRUNE_RULES` name
    when the mask is provably Masked, else None; *window* is the index
    of the first event the flip could influence (the equivalence-class
    key component).  The flip at cycle *c* lands after every event
    stamped ``<= c`` — the dispatcher applies masks on cycle edges.
    """
    if not struct_trace.filled_at(entry, cycle):
        return RULE_DEAD, -1
    events = struct_trace.events_for(entry)
    stamps = [ev[0] for ev in events]
    idx = bisect_right(stamps, cycle)
    byte = bit // 8
    for ev in events[idx:]:
        kind = ev[1]
        if kind == "r":
            return None, idx
        if kind in ("W", "F"):
            return RULE_OVERWRITTEN, idx
        if kind == "w":
            if ev[2] <= byte < ev[3]:
                return RULE_OVERWRITTEN, idx
            continue                 # partial write elsewhere in the line
        if kind == "i":
            # Invalidated unread: the corrupted storage is discarded.
            return RULE_NEVER_READ, idx
    return RULE_NEVER_READ, idx


class PrunePlan:
    """The pruner's verdict over one campaign's mask sets."""

    def __init__(self, policy: str, trace: AccessTrace):
        self.policy = policy
        self.trace = trace
        self.masked: dict[int, str] = {}        # set_id -> rule
        self.clones: dict[int, int] = {}        # set_id -> representative
        self.classes: dict[int, list[int]] = {}  # rep -> member set_ids
        self.rules: dict[str, int] = {}
        self.by_structure: dict[str, dict] = {}
        self.masks_total = 0

    @property
    def pruned_ids(self) -> list[int]:
        return sorted([*self.masked, *self.clones])

    def decision(self, set_id: int):
        """``("masked", rule)`` | ``("clone", rep_id)`` | ``None``."""
        rule = self.masked.get(set_id)
        if rule is not None:
            return ("masked", rule)
        rep = self.clones.get(set_id)
        if rep is not None:
            return ("clone", rep)
        return None

    def stats(self) -> dict:
        masked = len(self.masked)
        collapsed = len(self.clones)
        return {
            "policy": self.policy,
            "masks": self.masks_total,
            "masked": masked,
            "collapsed": collapsed,
            "classes": len(self.classes),
            "simulated": self.masks_total - masked - collapsed,
            "rules": dict(sorted(self.rules.items())),
            "by_structure": {
                name: dict(d) for name, d
                in sorted(self.by_structure.items())},
            "trace_digest": self.trace.digest,
            "trace_events": self.trace.n_events,
        }


def build_prune_plan(sets, trace: AccessTrace,
                     policy: str) -> PrunePlan:
    """Classify every fault set against the golden access trace."""
    if policy not in PRUNE_POLICIES:
        raise ValueError(f"unknown prune policy {policy!r}; "
                         f"choose from {PRUNE_POLICIES}")
    plan = PrunePlan(policy, trace)
    plan.masks_total = len(sets)
    if policy == PRUNE_OFF:
        return plan
    reps: dict[tuple, int] = {}      # (structure, entry, bit, window) -> rep
    for fs in sets:
        if not fs.single:
            continue
        mask = fs.masks[0]
        st = trace.structures.get(mask.structure)
        if st is None or mask.fault_type != TRANSIENT:
            continue
        per = plan.by_structure.setdefault(
            mask.structure, {"masks": 0, "pruned": 0})
        per["masks"] += 1
        rule, window = classify_mask(st, mask.entry, mask.bit, mask.cycle)
        if rule is not None:
            plan.masked[fs.set_id] = rule
            plan.rules[rule] = plan.rules.get(rule, 0) + 1
            per["pruned"] += 1
            continue
        if policy != PRUNE_COLLAPSE:
            continue
        key = (mask.structure, mask.entry, mask.bit, window)
        rep = reps.get(key)
        if rep is None:
            reps[key] = fs.set_id
        else:
            plan.clones[fs.set_id] = rep
            plan.classes.setdefault(rep, []).append(fs.set_id)
            plan.rules[RULE_EQUIVALENT] = \
                plan.rules.get(RULE_EQUIVALENT, 0) + 1
            per["pruned"] += 1
    return plan


# -- synthetic records -----------------------------------------------------

def synthetic_masked_record(fault_set: FaultSet, golden: GoldenReference,
                            rule: str) -> InjectionRecord:
    """A Masked-by-analysis record carrying the golden observables."""
    return InjectionRecord(
        set_id=fault_set.set_id,
        masks=[m.to_dict() for m in fault_set.masks],
        reason="exit",
        exit_code=golden.exit_code,
        output_hex=golden.output_hex,
        events=list(golden.events),
        cycles=golden.cycles,
        injected=False,
        pruned=rule)


def clone_record(rep: InjectionRecord,
                 fault_set: FaultSet) -> InjectionRecord:
    """The representative's observables under a class member's identity."""
    return InjectionRecord(
        set_id=fault_set.set_id,
        masks=[m.to_dict() for m in fault_set.masks],
        reason=rep.reason,
        exit_code=rep.exit_code,
        output_hex=rep.output_hex,
        events=list(rep.events),
        signal=rep.signal,
        detail=rep.detail,
        cycles=rep.cycles,
        early_stop=rep.early_stop,
        injected=rep.injected,
        invariant=rep.invariant,
        pruned=RULE_EQUIVALENT)


# -- the empirical gate ----------------------------------------------------

def audit_plan(dispatcher, sets_by_id: dict, records_by_id: dict,
               plan: PrunePlan, golden: GoldenReference, count: int,
               seed: int, early_stop: bool = True,
               policy=DEFAULT_POLICY) -> dict:
    """Really simulate a seeded sample of pruned masks and compare.

    Every sampled set is injected through the normal dispatcher path;
    its Parser verdict must match the synthetic record's.  The
    dispatcher's pristine-state digest (guard integrity machinery) is
    taken before and after, so audit disagreement caused by golden-state
    contamination is distinguishable from a pruning bug.
    """
    from repro.guard.integrity import state_digest

    candidates = plan.pruned_ids
    rng = random.Random(seed)
    n = min(count, len(candidates))
    sample = sorted(rng.sample(candidates, n)) if n else []
    digest_before = state_digest(dispatcher._pristine)
    divergences = []
    for set_id in sample:
        actual = dispatcher.inject(sets_by_id[set_id],
                                   early_stop=early_stop)
        expected_cls = classify(records_by_id[set_id], golden, policy)
        actual_cls = classify(actual, golden, policy)
        if actual_cls != expected_cls:
            divergences.append({
                "set_id": set_id,
                "rule": plan.masked.get(set_id, RULE_EQUIVALENT),
                "expected": expected_cls,
                "actual": actual_cls,
                "reason": actual.reason,
                "early_stop": actual.early_stop,
            })
    digest_after = state_digest(dispatcher._pristine)
    return {
        "checked": len(sample),
        "candidates": len(candidates),
        "divergences": divergences,
        "pristine_digest_ok": digest_before == digest_after,
    }
