"""Golden access-trace recording — the data the pruner reasons from.

The campaign-level pruner (ROADMAP item 2; ZOFI's coverage pre-analysis
and ARMORY's fault-equivalence pruning are the models) rests on one
observation about deterministic simulators: a faulty run is
*bit-identical* to the golden run up to the first read of the corrupted
entry.  The golden run's per-entry access sequence therefore predicts,
without any simulation, everything that can happen to a flipped bit
before the machine first looks at it: the bit may be overwritten, the
line invalidated, or simply never touched again — all provably Masked.

:class:`TraceRecorder` piggybacks on the golden run and logs, for every
entry of the five paper structures (RF, L1D, L1I, L2, LSQ), the cycle-
stamped sequence of accesses observed at the storage-array boundary:

``r``
    a read (``WordArray.read`` / ``LineArray.read_bytes``).  Dirty
    evictions read the line before handing it to the next level, so a
    corrupted dirty writeback shows up as a read — never prunable.
``W``
    a covering write (``WordArray.write`` — whole entry rewritten).
``w lo hi``
    a partial write (``LineArray.write_bytes``) touching bytes
    ``[lo, hi)`` of the line; covers a bit only if its byte is in range
    (the same granularity as the §III.B watch machinery).
``F``
    a line fill (``LineArray.fill``) — a covering write that also makes
    the line live.
``i``
    a line invalidation — whatever the line held is discarded unread
    (mirror-mode evictions, flushes).

Recording works by shadowing the arrays' access methods with wrapping
closures *on the instances*, so the hot per-cycle path pays nothing when
no recorder is attached and the arrays need no hooks of their own.  The
wrappers only observe; the golden execution, its checkpoints and its
statistics are unchanged.

Event stamps use the simulator's post-increment cycle counter, matching
the dispatcher's drive loop: a mask at cycle *c* is applied after every
event stamped ``<= c`` and before any event stamped ``c+1``, so
``bisect_right(stamps, c)`` is the exact index of the first event the
flip can influence.
"""

from __future__ import annotations

import hashlib
import json

# The five structures of the paper's study (Table IV / Figs. 2-6), and
# the only ones the pruner reasons about.
PRUNE_STRUCTURES = ("int_rf", "l1d", "l1i", "l2", "lsq")

TRACE_VERSION = 1


class StructureTrace:
    """Per-entry access events of one storage array over the golden run."""

    __slots__ = ("name", "kind", "entries", "bits_per_entry",
                 "initial_filled", "events")

    def __init__(self, name: str, kind: str, entries: int,
                 bits_per_entry: int, initial_filled=(), events=None):
        self.name = name
        self.kind = kind                    # "word" | "line"
        self.entries = entries
        self.bits_per_entry = bits_per_entry
        #: Lines already filled when recording started (cycle 0 state);
        #: word arrays are always considered filled.
        self.initial_filled = frozenset(initial_filled)
        #: entry -> chronological [cycle, kind(, lo, hi)] event lists.
        self.events: dict[int, list] = events if events is not None else {}

    def events_for(self, entry: int) -> list:
        return self.events.get(entry, ())

    def filled_at(self, entry: int, cycle: int) -> bool:
        """Is the entry live storage just after cycle *cycle*?

        Word arrays always hold storage.  For line arrays the last
        fill/invalidate event stamped ``<= cycle`` decides, falling back
        to the filled-set captured when recording started.
        """
        if self.kind != "line":
            return True
        filled = entry in self.initial_filled
        for ev in self.events.get(entry, ()):
            if ev[0] > cycle:
                break
            if ev[1] == "F":
                filled = True
            elif ev[1] == "i":
                filled = False
        return filled

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "entries": self.entries,
            "bits_per_entry": self.bits_per_entry,
            "initial_filled": sorted(self.initial_filled),
            "events": {str(e): evs
                       for e, evs in sorted(self.events.items())},
        }

    @staticmethod
    def from_dict(d: dict) -> "StructureTrace":
        return StructureTrace(
            name=d["name"], kind=d["kind"], entries=d["entries"],
            bits_per_entry=d["bits_per_entry"],
            initial_filled=d.get("initial_filled", ()),
            events={int(e): [list(ev) for ev in evs]
                    for e, evs in d.get("events", {}).items()})


class AccessTrace:
    """The golden run's access trace for one (setup, benchmark) pair."""

    __slots__ = ("setup", "benchmark", "cycles", "structures")

    def __init__(self, setup: str, benchmark: str, cycles: int,
                 structures: dict):
        self.setup = setup
        self.benchmark = benchmark
        self.cycles = cycles
        self.structures: dict[str, StructureTrace] = structures

    def to_dict(self) -> dict:
        return {
            "version": TRACE_VERSION,
            "setup": self.setup,
            "benchmark": self.benchmark,
            "cycles": self.cycles,
            "structures": {name: st.to_dict()
                           for name, st in sorted(self.structures.items())},
        }

    @staticmethod
    def from_dict(d: dict) -> "AccessTrace":
        return AccessTrace(
            setup=d["setup"], benchmark=d["benchmark"], cycles=d["cycles"],
            structures={name: StructureTrace.from_dict(sd)
                        for name, sd in d.get("structures", {}).items()})

    def to_bytes(self) -> bytes:
        """Canonical serialization — byte-identical for identical runs."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":")).encode()

    @staticmethod
    def from_bytes(blob: bytes) -> "AccessTrace":
        return AccessTrace.from_dict(json.loads(blob.decode()))

    @property
    def digest(self) -> str:
        return hashlib.sha256(self.to_bytes()).hexdigest()

    @property
    def n_events(self) -> int:
        return sum(len(evs) for st in self.structures.values()
                   for evs in st.events.values())


class TraceRecorder:
    """Shadows a machine's storage arrays to log golden accesses.

    Attach before the golden run's first ``step()``, detach after, then
    :meth:`finish` yields the :class:`AccessTrace`.  Consecutive
    identical events of one entry within one cycle are coalesced (a
    same-cycle repeat adds no injection-window boundary — masks land on
    cycle edges).
    """

    def __init__(self, sim, structures=PRUNE_STRUCTURES):
        self._sim = sim
        self._wrapped: list = []        # (array, attr, original) to undo
        self._traces: dict[str, StructureTrace] = {}
        sites = sim.fault_sites()
        for name in structures:
            site = sites.get(name)
            if site is None:
                continue
            arr = site.array
            if hasattr(arr, "lines"):
                st = StructureTrace(
                    name, "line", arr.entries, arr.bits_per_entry,
                    initial_filled=[i for i in range(arr.entries)
                                    if arr.lines[i] is not None])
                self._wrap_line(arr, st.events)
            else:
                st = StructureTrace(name, "word", arr.entries,
                                    arr.bits_per_entry)
                self._wrap_word(arr, st.events)
            self._traces[name] = st

    # -- instance-method shadowing ----------------------------------------

    def _note(self, events: dict, entry: int, ev: list) -> None:
        lst = events.get(entry)
        if lst is None:
            events[entry] = [ev]
        elif lst[-1] != ev:
            lst.append(ev)

    def _wrap_word(self, arr, events: dict) -> None:
        sim, note = self._sim, self._note
        orig_read, orig_write = arr.read, arr.write

        def read(entry, cycle=0):
            note(events, entry, [sim.cycle, "r"])
            return orig_read(entry, cycle)

        def write(entry, value):
            note(events, entry, [sim.cycle, "W"])
            return orig_write(entry, value)

        self._install(arr, read=read, write=write)

    def _wrap_line(self, arr, events: dict) -> None:
        sim, note = self._sim, self._note
        orig_read = arr.read_bytes
        orig_write = arr.write_bytes
        orig_fill = arr.fill
        orig_inval = arr.invalidate

        def read_bytes(line, offset, size, cycle=0):
            note(events, line, [sim.cycle, "r"])
            return orig_read(line, offset, size, cycle)

        def write_bytes(line, offset, data):
            note(events, line, [sim.cycle, "w", offset, offset + len(data)])
            return orig_write(line, offset, data)

        def fill(line, data):
            note(events, line, [sim.cycle, "F"])
            return orig_fill(line, data)

        def invalidate(line):
            note(events, line, [sim.cycle, "i"])
            return orig_inval(line)

        self._install(arr, read_bytes=read_bytes, write_bytes=write_bytes,
                      fill=fill, invalidate=invalidate)

    def _install(self, arr, **wrappers) -> None:
        for attr, fn in wrappers.items():
            self._wrapped.append((arr, attr))
            setattr(arr, attr, fn)

    # -- lifecycle ---------------------------------------------------------

    def detach(self) -> None:
        """Remove the shadowing wrappers, restoring the class methods."""
        for arr, attr in self._wrapped:
            try:
                delattr(arr, attr)
            except AttributeError:
                pass
        self._wrapped.clear()

    def finish(self, setup: str, benchmark: str, cycles: int) -> AccessTrace:
        self.detach()
        return AccessTrace(setup=setup, benchmark=benchmark, cycles=cycles,
                           structures=self._traces)
