"""Transport-fault injection for the distributed fleet (tests/CI only).

The paper's methodology — inject faults, compare against a golden run —
applied to our own orchestration layer: the ``REPRO_SVC_CHAOS``
environment variable arms a fault layer on the worker⇄service HTTP
transport, and the CI gate (``scripts/ci_remote_chaos.py``) fails
unless a study run under chaos produces records byte-identical to an
all-local run.  The directive is a comma-separated list::

    REPRO_SVC_CHAOS="drop=0.2,dup=0.2,delay=0.05,disconnect=0.2,seed=7"

* ``drop=P`` — client side: with probability *P* a request is never
  sent (simulated connect failure); the caller's retry loop must
  recover.
* ``dup=P`` — client side: with probability *P* a non-streaming
  request is sent *twice*; the server must treat the duplicate as a
  no-op (fencing / idempotent completes).
* ``delay=S`` — client side: sleep a uniform ``[0, S]`` seconds before
  sending (reordering pressure on heartbeats vs completes).
* ``disconnect=P`` — server side: with probability *P* the request is
  fully *processed* but the response is thrown away and the connection
  closed — the classic at-most-once crucible: the client retries an
  operation whose effect already landed.
* ``seed=N`` — seed the chaos RNG for reproducible runs.

Both sides parse the same variable; a process with it unset pays
nothing (``NULL_CHAOS`` short-circuits every probe).
"""

from __future__ import annotations

import os
import random
import time

ENV_VAR = "REPRO_SVC_CHAOS"

_KEYS = ("drop", "dup", "delay", "disconnect", "seed")


class ChaosDrop(OSError):
    """A chaos-dropped request — looks like a connect failure."""


class TransportChaos:
    """Seeded fault decisions over the fleet's HTTP transport."""

    def __init__(self, drop: float = 0.0, dup: float = 0.0,
                 delay: float = 0.0, disconnect: float = 0.0,
                 seed: int | None = None):
        for name, value in (("drop", drop), ("dup", dup),
                            ("disconnect", disconnect)):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"chaos probability {name} must be in "
                                 f"[0, 1], got {value!r}")
        if delay < 0.0:
            raise ValueError(f"chaos delay must be >= 0, got {delay!r}")
        self.drop = drop
        self.dup = dup
        self.delay = delay
        self.disconnect = disconnect
        self._rng = random.Random(seed)

    @property
    def enabled(self) -> bool:
        return bool(self.drop or self.dup or self.delay or self.disconnect)

    @classmethod
    def from_env(cls, environ=None) -> "TransportChaos":
        """Parse ``REPRO_SVC_CHAOS``; unset or empty means no chaos."""
        text = (environ if environ is not None else os.environ) \
            .get(ENV_VAR, "").strip()
        if not text:
            return NULL_CHAOS
        kwargs = {}
        for part in filter(None, (p.strip() for p in text.split(","))):
            key, sep, value = part.partition("=")
            key = key.strip()
            if not sep or key not in _KEYS:
                raise ValueError(
                    f"bad {ENV_VAR} entry {part!r}; "
                    f"keys: {', '.join(_KEYS)}")
            try:
                kwargs[key] = int(value) if key == "seed" else float(value)
            except ValueError:
                raise ValueError(f"{ENV_VAR} key {key} wants a number, "
                                 f"got {value!r}") from None
        return cls(**kwargs)

    # -- client side --------------------------------------------------------

    def before_request(self) -> None:
        """Maybe delay, maybe drop (raises :class:`ChaosDrop`)."""
        if self.delay:
            time.sleep(self._rng.uniform(0.0, self.delay))
        if self.drop and self._rng.random() < self.drop:
            raise ChaosDrop("chaos: request dropped before send")

    def duplicate_request(self) -> bool:
        """Should this (non-streaming) request be sent twice?"""
        return bool(self.dup) and self._rng.random() < self.dup

    # -- server side --------------------------------------------------------

    def drop_response(self) -> bool:
        """Process the request but discard the response?"""
        return bool(self.disconnect) and self._rng.random() < self.disconnect


#: The no-chaos singleton (every probe short-circuits).
NULL_CHAOS = TransportChaos()


__all__ = ["TransportChaos", "ChaosDrop", "NULL_CHAOS", "ENV_VAR"]
