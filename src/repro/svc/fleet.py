"""Persistent worker fleet — sched's lease semantics, many studies at once.

:class:`StudyRun` is one admitted study's durable run state: its
write-ahead unit journal and trace-event stream (the unchanged
:mod:`repro.sched` on-disk layout, so ``obs serve``, ``obs report`` and
``sched status`` all work on a service study directory verbatim),
replayed on open so a restarted service resumes mid-study.

:class:`WorkerFleet` owns one :class:`~repro.sched.pool.LeasePool`
shared by every study and re-applies the scheduler's unit policy —
write-ahead lease records, retry with exponential backoff, poison-unit
quarantine — per study, routing each completion back through the
lease's ``meta`` slot.  It does *not* decide which unit runs next;
that is the fair queue's job (:mod:`repro.svc.queue`).

The fleet also generalizes the scheduler's golden-blob cache across
studies: compressed golden payloads are keyed by everything that
determines them — (setup, benchmark, scaled, scale, n_checkpoints) —
rather than by study, so the second tenant to study ``sha`` on
``MaFIN-x86`` pays zero golden re-runs.  A blob recorded with an
access trace (built for a pruning study) also serves non-pruning
studies; the reverse falls back to a fresh traced run, exactly like
the worker's own stale-blob path.  Blobs are additionally
content-addressed (sha256) so remote workers can fetch and disk-cache
them by digest over ``GET /blobs/{digest}``.

Remote leases.  Besides its local :class:`~repro.sched.pool.LeasePool`
slots, the fleet leases units to *remote workers*
(:mod:`repro.svc.remote` agents connected over HTTP).  Both kinds of
lease draw from the same fair queue and flow through the same
``_success``/``_failure`` policy — retries, backoff and quarantine are
identical whether a unit ran in a forked process or across the
network.  What the network adds is uncertainty, answered with:

* **fencing tokens** — every remote lease carries a monotonic fence
  ``"{epoch}-{n}"``; the epoch is journaled and bumped each service
  incarnation, so a zombie worker completing a lease revoked by a
  crash, a timeout or a server restart is rejected (HTTP 409), and a
  retried ``complete`` whose first attempt already landed is a
  detected duplicate (at-most-once journaling);
* **heartbeat miss-budgets** — a worker silent for
  ``heartbeat_s * miss_budget`` is declared lost; its leases are
  revoked and re-queued through the normal backoff path;
* **lease reconciliation** — a fence the server holds but the worker
  stops reporting (a lease response lost in flight) is reclaimed after
  one heartbeat of grace, so no unit is orphaned.
"""

from __future__ import annotations

import base64
import hashlib
import time
import zlib

from repro.core.ioutil import atomic_write_text
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import JSONLSink, TraceEvent, Tracer
from repro.prune import PRUNE_OFF
from repro.sched.journal import (DONE, FAILED, LEASED, QUARANTINED,
                                 Journal, load_journal)
from repro.sched.plan import CampaignPlan, StudySpec, WorkUnit
from repro.sched.pool import CRASHED, LeasePool, RESULT
from repro.sched.scheduler import EVENTS_NAME, JOURNAL_NAME, CellOutcome
from repro.svc.attest import CHALLENGE_GRACE_S, RejectedComplete


class StudyRun:
    """One study's plan, journal and event stream inside the service."""

    def __init__(self, study_id: str, tenant: str, spec: StudySpec,
                 study_dir, fsync: bool = True):
        from pathlib import Path
        self.study_id = study_id
        self.tenant = tenant
        self.spec = spec
        self.study_dir = Path(study_dir)
        self.plan = CampaignPlan.from_spec(spec)
        self.study_dir.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.attempts: dict[str, int] = {}
        self.cells: dict[str, CellOutcome] = {}
        # Attestation bookkeeping: which DONE units came from which
        # remote worker, and which of those an audit has re-proven.
        # ``remote_done`` replays from the journal's worker-tagged done
        # rows; ``audited_ok`` is deliberately in-memory only, so a
        # restart voids conservatively if a worker is later distrusted.
        self.remote_done: dict[str, str] = {}
        self.audited_ok: set[str] = set()
        journal_path = self.study_dir / JOURNAL_NAME
        prior = None
        if journal_path.exists() and journal_path.stat().st_size > 0:
            prior = load_journal(journal_path)
            if prior.spec_hash != spec.spec_hash:
                raise ValueError(
                    f"journal {journal_path} belongs to spec "
                    f"{prior.spec_hash}, not {spec.spec_hash}")
        self.journal = Journal(journal_path, fsync=fsync)
        self.tracer = Tracer(JSONLSink(self.study_dir / EVENTS_NAME))
        if prior is None:
            self.journal.write_header(spec.to_dict(), self.plan.unit_ids())
        else:
            for unit in self.plan:
                uid = unit.unit_id
                self.attempts[uid] = prior.attempts.get(uid, 0)
                state = prior.state_of(uid)
                if state == DONE:
                    row = prior.results[uid]
                    self.cells[uid] = CellOutcome(
                        uid, DONE, counts=row.get("counts"),
                        injections=row.get("injections", 0),
                        early_stops=row.get("early_stops", 0),
                        attempts=self.attempts[uid])
                    if row.get("worker"):
                        self.remote_done[uid] = row["worker"]
                elif state == QUARANTINED:
                    self.cells[uid] = CellOutcome(
                        uid, QUARANTINED, attempts=self.attempts[uid],
                        error=prior.last[uid].get("detail"))
        self.tracer.emit("study_start", units=len(self.plan),
                         pending=len(self.pending_units()),
                         shard=None, spec_hash=spec.spec_hash,
                         resumed=prior is not None)

    def pending_units(self) -> list[WorkUnit]:
        """Units with no terminal outcome yet (includes stale leases)."""
        return [u for u in self.plan if u.unit_id not in self.cells]

    @property
    def complete(self) -> bool:
        return len(self.cells) == len(self.plan)

    def done_count(self) -> int:
        return sum(1 for c in self.cells.values() if c.state == DONE)

    def tally(self) -> dict:
        done = self.done_count()
        quarantined = len(self.cells) - done
        return {"units": len(self.plan), "done": done,
                "quarantined": quarantined,
                "pending": len(self.plan) - len(self.cells)}

    def totals(self) -> dict:
        totals: dict = {}
        for cell in self.cells.values():
            for cls, n in (cell.counts or {}).items():
                totals[cls] = totals.get(cls, 0) + n
        return totals

    def injections_done(self) -> int:
        return sum(c.injections for c in self.cells.values())

    def logs_path(self, unit: WorkUnit):
        return self.study_dir / "logs" / f"{unit.file_id}.jsonl"

    def masks_path(self, unit: WorkUnit):
        return self.study_dir / "masks" / f"{unit.file_id}.jsonl"

    def finish(self) -> None:
        """Emit the terminal study_end event (journal stays append-open)."""
        self.tracer.emit("study_end", done=self.done_count(),
                         quarantined=sum(1 for c in self.cells.values()
                                         if c.state == QUARANTINED),
                         interrupted=not self.complete, wall_s=0.0)

    def close(self) -> None:
        self.journal.close()
        self.tracer.close()

    def reopen(self) -> None:
        """Reopen journal/tracer after a finished study is voided back
        to running (an audit distrusted a worker that touched it)."""
        if self.journal._fh.closed:
            self.journal = Journal(self.journal.path, fsync=self.fsync)
        if not self.tracer.enabled or \
                getattr(self.tracer.sink, "_fh", None) is None or \
                self.tracer.sink._fh.closed:
            self.tracer = Tracer(JSONLSink(self.study_dir / EVENTS_NAME))


class _GoldenCache:
    """Cross-study, content-addressed cache of compressed golden payloads.

    Entries are keyed by what determines the golden run *and* stored by
    sha256 digest, so remote workers fetch blobs over
    ``GET /blobs/{digest}`` and cache them on their own disk — the
    digest is self-verifying, so a blob fetched once never needs
    re-fetching or trust.
    """

    def __init__(self):
        self._blobs: dict[tuple, tuple[str, bool]] = {}  # key -> (digest, traced)
        self._by_digest: dict[str, bytes] = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(unit: WorkUnit, spec: StudySpec) -> tuple:
        return (unit.setup, unit.benchmark, spec.scaled, spec.scale,
                spec.n_checkpoints)

    def lookup_meta(self, unit: WorkUnit,
                    spec: StudySpec) -> tuple[bytes, str] | None:
        """``(blob, digest)`` serving this unit, or None (counts a miss)."""
        entry = self._blobs.get(self.key(unit, spec))
        needs_trace = spec.prune != PRUNE_OFF
        if entry is not None and (entry[1] or not needs_trace):
            self.hits += 1
            digest = entry[0]
            return self._by_digest[digest], digest
        self.misses += 1
        return None

    def lookup(self, unit: WorkUnit, spec: StudySpec) -> bytes | None:
        meta = self.lookup_meta(unit, spec)
        return None if meta is None else meta[0]

    def blob_by_digest(self, digest: str) -> bytes | None:
        """Raw blob bytes for ``/blobs/{digest}``, or None."""
        return self._by_digest.get(digest)

    def store(self, unit: WorkUnit, spec: StudySpec, blob: bytes) -> str:
        """Record *blob*; returns its digest."""
        digest = hashlib.sha256(blob).hexdigest()
        key = self.key(unit, spec)
        has_trace = spec.prune != PRUNE_OFF
        prior = self._blobs.get(key)
        # Never replace a trace-carrying blob with a trace-less one
        # (but keep the bytes addressable — a worker may still be
        # fetching the superseded digest).
        self._by_digest.setdefault(digest, blob)
        if prior is not None and prior[1] and not has_trace:
            return digest
        self._blobs[key] = (digest, has_trace)
        return digest

    def evict(self, live_keys) -> int:
        """Drop entries not serving any key in *live_keys*.

        Returns the number of blob payloads (digests) released.  Called
        when a study goes terminal: without this, ``_by_digest`` keeps
        every golden payload ever stored for the service's lifetime.
        """
        live = set(live_keys)
        for key in [k for k in self._blobs if k not in live]:
            del self._blobs[key]
        referenced = {digest for digest, _ in self._blobs.values()}
        dead = [d for d in self._by_digest if d not in referenced]
        for digest in dead:
            del self._by_digest[digest]
        return len(dead)

    def __len__(self) -> int:
        return len(self._blobs)


def pack_text(text: str) -> str:
    """Compress + base64 a JSONL file's exact text for a JSON payload.

    Remote workers ship their unit's logs/masks files verbatim, so the
    server-side copy is byte-identical to what an all-local run writes.
    """
    return base64.b64encode(zlib.compress(text.encode("utf-8"))) \
        .decode("ascii")


def unpack_text(data: str) -> str:
    return zlib.decompress(base64.b64decode(data)).decode("utf-8")


def pack_blob(blob: bytes) -> str:
    """Base64 a golden blob (already zlib-compressed by the worker)."""
    return base64.b64encode(blob).decode("ascii")


def unpack_blob(data: str) -> bytes:
    return base64.b64decode(data)


class StaleFence(Exception):
    """A ``complete`` arrived bearing a fence the service revoked.

    Raised for fences from a previous epoch (server restarted), from
    leases revoked by timeout / worker loss / cancellation, or simply
    unknown.  The HTTP layer maps it to 409 — the worker discards the
    result; the unit was already (or will be) re-run elsewhere.
    """

    def __init__(self, fence: str):
        super().__init__(f"stale fence: {fence}")
        self.fence = fence


class UnknownWorker(Exception):
    """A heartbeat or lease request from a worker the service forgot.

    Happens after a server restart (registrations are in-memory by
    design — leases replay from journals, workers re-register) or
    after a miss-budget eviction.  The HTTP layer answers
    ``unregistered``; the agent terminates its leases and re-registers.
    """

    def __init__(self, name: str):
        super().__init__(f"unknown worker: {name}")
        self.name = name


class RemoteWorker:
    """One registered remote agent and the fences it holds."""

    __slots__ = ("name", "registered_at", "last_seen", "fences", "meta")

    def __init__(self, name: str, now: float, meta: dict | None = None):
        self.name = name
        self.registered_at = now
        self.last_seen = now
        self.fences: set[str] = set()
        self.meta = dict(meta or {})


class RemoteLease:
    """One unit leased to a remote worker, identified by its fence."""

    __slots__ = ("unit", "attempt", "fence", "meta", "worker", "started",
                 "deadline_s")

    def __init__(self, unit: WorkUnit, attempt: int, fence: str, meta,
                 worker: RemoteWorker, started: float,
                 deadline_s: float | None):
        self.unit = unit
        self.attempt = attempt
        self.fence = fence
        self.meta = meta               # the owning StudyRun
        self.worker = worker
        self.started = started
        self.deadline_s = deadline_s

    def age_s(self, now: float | None = None) -> float:
        return (time.monotonic() if now is None else now) - self.started


class Completion:
    """One finished lease, routed back to its study."""

    __slots__ = ("run", "unit", "state", "retry_delay_s", "detail")

    def __init__(self, run: StudyRun, unit: WorkUnit, state: str,
                 retry_delay_s: float | None = None,
                 detail: str | None = None):
        self.run = run
        self.unit = unit
        self.state = state             # DONE | FAILED | QUARANTINED
        self.retry_delay_s = retry_delay_s   # set iff state == FAILED
        self.detail = detail


class WorkerFleet:
    """A shared lease pool applying per-study retry/quarantine policy."""

    def __init__(self, workers: int = 2, unit_timeout_s: float | None = None,
                 max_retries: int = 2, backoff_s: float = 0.5,
                 fsync: bool = True, metrics: MetricsRegistry | None = None,
                 heartbeat_s: float = 5.0, miss_budget: int = 3,
                 fence_epoch: int = 1, attest=None):
        self.pool = LeasePool(workers)
        self.unit_timeout_s = unit_timeout_s
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        self.fsync = fsync
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.cache = _GoldenCache()
        self.attest = attest           # Attestor, or None (trust everyone)
        # Remote-lease state.  Registrations are deliberately in-memory:
        # on restart, units replay from journals and agents re-register;
        # the journaled *epoch* is what outlives us, so no fence minted
        # before a crash can be honoured after it.
        self.heartbeat_s = heartbeat_s
        self.miss_budget = miss_budget
        self.fence_epoch = fence_epoch
        self._fence_n = 0
        self.remote_workers: dict[str, RemoteWorker] = {}
        self.remote_leases: dict[str, RemoteLease] = {}   # fence -> lease
        self._completed_fences: set[str] = set()
        self._pending: list[Completion] = []

    @property
    def free_slots(self) -> int:
        return self.pool.free_slots

    @property
    def busy(self) -> int:
        return len(self.pool.running) + len(self.remote_leases)

    def launch(self, run: StudyRun, unit: WorkUnit) -> None:
        """Lease one unit of *run* (write-ahead journaled first)."""
        uid = unit.unit_id
        run.attempts[uid] = run.attempts.get(uid, 0) + 1
        attempt = run.attempts[uid]
        run.journal.record(uid, LEASED, attempt=attempt)
        run.tracer.emit("unit_leased", unit=uid, attempt=attempt)
        blob = self.cache.lookup(unit, run.spec)
        self.pool.launch(unit, run.spec, attempt=attempt,
                         logs_path=run.logs_path(unit),
                         masks_path=run.masks_path(unit),
                         golden_blob=blob, fsync=self.fsync,
                         want_blob=blob is None,
                         deadline_s=self.unit_timeout_s,
                         meta=run)

    def poll(self, now: float | None = None) -> list[Completion]:
        """Completions since the last poll, policy already applied.

        DONE and QUARANTINED completions are terminal (journaled,
        outcome recorded on the run); FAILED ones carry the backoff
        delay after which the unit should be re-queued.  Covers both
        lease kinds: local pool results, remote completes accepted
        since the last poll, and revocations from remote deadline /
        miss-budget expiry.
        """
        now = time.monotonic() if now is None else now
        self._expire_remote(now)
        out, self._pending = self._pending, []
        for lease, kind, payload in self.pool.poll():
            run: StudyRun = lease.meta
            if kind == RESULT and payload.get("ok"):
                out.append(self._success(run, lease, payload))
            elif kind == RESULT:
                out.append(self._failure(run, lease, "error",
                                         payload.get("error",
                                                     "worker error")))
            else:
                out.append(self._failure(
                    run, lease, "crashed" if kind == CRASHED else "timeout",
                    payload))
        return out

    def cancel_study(self, run: StudyRun) -> int:
        """Terminate every in-flight lease belonging to *run*."""
        mine = [lease for lease in self.pool.running if lease.meta is run]
        for lease in mine:
            self.pool.terminate(lease)
            run.journal.record(lease.unit.unit_id, FAILED,
                               attempt=lease.attempt, reason="cancelled",
                               detail="study cancelled")
            run.tracer.emit("unit_failed", unit=lease.unit.unit_id,
                            attempt=lease.attempt, reason="cancelled")
        remote = [lease for lease in self.remote_leases.values()
                  if lease.meta is run]
        for lease in remote:
            # Revoking the fence is the remote "terminate": the zombie
            # learns via its next heartbeat; a late complete gets 409.
            del self.remote_leases[lease.fence]
            lease.worker.fences.discard(lease.fence)
            run.journal.record(lease.unit.unit_id, FAILED,
                               attempt=lease.attempt, reason="cancelled",
                               detail="study cancelled")
            run.tracer.emit("unit_failed", unit=lease.unit.unit_id,
                            attempt=lease.attempt, reason="cancelled")
        return len(mine) + len(remote)

    def terminate_all(self) -> None:
        self.pool.terminate_all()

    # -- remote leases --------------------------------------------------------

    def register_worker(self, name: str, meta: dict | None = None,
                        now: float | None = None) -> RemoteWorker:
        """Register (or idempotently re-register) a remote agent.

        Re-registration means the agent restarted or never heard our
        first answer; either way it holds no live leases, so any the
        server still attributes to it are revoked and re-queued.
        """
        now = time.monotonic() if now is None else now
        prior = self.remote_workers.get(name)
        if prior is not None:
            self._revoke_worker(prior, f"worker {name} re-registered")
        worker = RemoteWorker(name, now, meta)
        self.remote_workers[name] = worker
        self.metrics.counter("svc.remote.registrations").inc()
        return worker

    def launch_remote(self, run: StudyRun, unit: WorkUnit, name: str,
                      now: float | None = None) -> dict:
        """Lease one unit to remote worker *name*; returns the wire payload.

        Journaled exactly like a local lease (plus the fence and worker
        name, for forensics), so resume-after-crash semantics are
        identical for both lease kinds.
        """
        now = time.monotonic() if now is None else now
        worker = self.remote_workers.get(name)
        if worker is None:
            raise UnknownWorker(name)
        uid = unit.unit_id
        run.attempts[uid] = run.attempts.get(uid, 0) + 1
        attempt = run.attempts[uid]
        self._fence_n += 1
        fence = f"{self.fence_epoch}-{self._fence_n}"
        run.journal.record(uid, LEASED, attempt=attempt, fence=fence,
                           worker=name)
        run.tracer.emit("unit_leased", unit=uid, attempt=attempt,
                        worker=name, fence=fence)
        meta = self.cache.lookup_meta(unit, run.spec)
        digest = None if meta is None else meta[1]
        deadline = (None if self.unit_timeout_s is None
                    else self.unit_timeout_s + self.heartbeat_s)
        lease = RemoteLease(unit, attempt, fence, run, worker, now, deadline)
        self.remote_leases[fence] = lease
        worker.fences.add(fence)
        worker.last_seen = now
        self.metrics.counter("svc.remote.leases").inc()
        return {"fence": fence, "study": run.study_id,
                "unit": unit.to_dict(), "spec": run.spec.to_dict(),
                "attempt": attempt, "deadline_s": self.unit_timeout_s,
                "golden_digest": digest, "want_blob": digest is None}

    def complete_remote(self, fence: str, *, result: dict | None = None,
                        logs_text: str | None = None,
                        masks_text: str | None = None,
                        blob: bytes | None = None,
                        reason: str | None = None,
                        detail: str | None = None) -> dict:
        """Settle one remote lease, at most once.

        A fence already settled returns ``duplicate`` (the retry of a
        complete whose response was lost — its effect already landed);
        a fence the service no longer holds raises :class:`StaleFence`.
        The fence is spent *before* any effect, so the three outcomes
        — accepted, duplicate, stale — are mutually exclusive even
        under chaotic retries.
        """
        if fence in self._completed_fences:
            self.metrics.counter("svc.remote.dup_completes").inc()
            return {"accepted": False, "duplicate": True}
        lease = self.remote_leases.get(fence)
        if lease is None:
            self.metrics.counter("svc.remote.stale_fences").inc()
            raise StaleFence(fence)
        self._completed_fences.add(fence)
        del self.remote_leases[fence]
        lease.worker.fences.discard(fence)
        run: StudyRun = lease.meta
        if result is not None and result.get("ok"):
            # Attestation happens BEFORE the shipped files touch the
            # study directory: a rejected complete must leave no
            # records behind that a later local resume could adopt.
            if self.attest is not None and logs_text is not None:
                try:
                    self.attest.check_complete(
                        lease.worker.name, lease.unit, run.spec,
                        result, logs_text, masks_text or "")
                except RejectedComplete as exc:
                    self._pending.append(self._failure(
                        run, lease, "attest-reject",
                        f"{exc.code}: {exc.detail}"))
                    raise
            # The worker ships its unit files verbatim; writing them
            # atomically keeps the study dir byte-identical to a run
            # where the unit executed locally.
            if logs_text is not None:
                atomic_write_text(run.logs_path(lease.unit), logs_text,
                                  fsync=self.fsync)
            if masks_text is not None:
                atomic_write_text(run.masks_path(lease.unit), masks_text,
                                  fsync=self.fsync)
            if blob is not None:
                self.cache.store(lease.unit, run.spec, blob)
            result = dict(result)
            result.setdefault("golden_blob", None)
            self._pending.append(self._success(run, lease, result))
        else:
            why = reason or "error"
            what = detail or (result or {}).get("error",
                                                "remote worker error")
            self._pending.append(self._failure(run, lease, why, what))
        self.metrics.counter("svc.remote.completes").inc()
        return {"accepted": True, "duplicate": False}

    def heartbeat(self, name: str, fences, now: float | None = None) \
            -> list[str]:
        """Process one worker heartbeat; returns fences it must kill.

        Two-way reconciliation: fences the worker reports that the
        server revoked come back as the kill list (zombie leases);
        fences the server holds that the worker stopped reporting —
        a lease response lost in flight — are reclaimed and re-queued
        after one ``heartbeat_s`` of grace.
        """
        now = time.monotonic() if now is None else now
        worker = self.remote_workers.get(name)
        if worker is None:
            raise UnknownWorker(name)
        worker.last_seen = now
        reported = set(fences or ())
        revoked = sorted(
            f for f in reported
            if self.remote_leases.get(f) is None
            or self.remote_leases[f].worker is not worker)
        for fence in sorted(worker.fences - reported):
            lease = self.remote_leases.get(fence)
            if lease is None:
                worker.fences.discard(fence)
            elif now - lease.started > self.heartbeat_s:
                self._revoke_lease(lease, "lost",
                                   "lease response never reached worker")
        return revoked

    def remote_snapshot(self, now: float | None = None) -> dict:
        """Remote workers and leases (for ``/status`` and heartbeats)."""
        now = time.monotonic() if now is None else now
        return {
            "epoch": self.fence_epoch,
            "workers": {
                name: {"leases": len(w.fences),
                       "idle_s": round(now - w.last_seen, 3)}
                for name, w in sorted(self.remote_workers.items())},
            "leases": [
                {"fence": lease.fence, "unit": lease.unit.unit_id,
                 "study": lease.meta.study_id, "worker": lease.worker.name,
                 "attempt": lease.attempt,
                 "age_s": round(lease.age_s(now), 3)}
                for lease in self.remote_leases.values()],
        }

    def _expire_remote(self, now: float) -> None:
        """Deadline and miss-budget enforcement (called from poll)."""
        for lease in list(self.remote_leases.values()):
            if lease.deadline_s is not None \
                    and lease.age_s(now) > lease.deadline_s:
                self._revoke_lease(
                    lease, "timeout",
                    f"remote lease exceeded {lease.deadline_s}s wall clock")
        for name, worker in list(self.remote_workers.items()):
            allowance = self.heartbeat_s * self.miss_budget
            if self.attest is not None \
                    and self.attest.challenge_pending(name):
                # Busy proving determinism: the single-threaded agent
                # cannot heartbeat while the challenge unit runs, and
                # it holds no leases the miss budget could protect.
                allowance = max(allowance, CHALLENGE_GRACE_S)
            if now - worker.last_seen > allowance:
                self._revoke_worker(
                    worker,
                    f"worker {name} missed {self.miss_budget} heartbeats")
                del self.remote_workers[name]
                self.metrics.counter("svc.remote.workers_lost").inc()
                if self.attest is not None:
                    self.attest.note_miss(name)

    def _revoke_lease(self, lease: RemoteLease, reason: str,
                      detail: str) -> None:
        self.remote_leases.pop(lease.fence, None)
        lease.worker.fences.discard(lease.fence)
        self.metrics.counter("svc.remote.revoked").inc()
        self._pending.append(self._failure(lease.meta, lease, reason,
                                           detail))

    def _revoke_worker(self, worker: RemoteWorker, detail: str) -> None:
        for fence in sorted(worker.fences):
            lease = self.remote_leases.get(fence)
            if lease is not None:
                self._revoke_lease(lease, "lost", detail)
        worker.fences.clear()

    # -- policy (the scheduler's, per study) ---------------------------------

    def _success(self, run: StudyRun, lease, res: dict) -> Completion:
        uid = lease.unit.unit_id
        worker = getattr(lease, "worker", None)    # RemoteLease only
        extra = {"worker": worker.name} if worker is not None else {}
        run.journal.record(uid, DONE, attempt=lease.attempt,
                           counts=res["counts"],
                           injections=res["injections"],
                           early_stops=res["early_stops"],
                           pruned=res.get("pruned", 0),
                           resumed=res["resumed"], wall_s=res["wall_s"],
                           **extra)
        blob = res.get("golden_blob")
        if blob is not None:
            self.cache.store(lease.unit, run.spec, blob)
        if run.tracer.enabled:
            for ev in res["events"]:
                run.tracer.sink.write(TraceEvent.from_dict(ev))
        self.metrics.merge(MetricsRegistry.from_dict(res["metrics"]))
        self.metrics.counter("sched.units_done").inc()
        self.metrics.histogram("time.unit_s").observe(res["wall_s"])
        run.tracer.emit("unit_done", unit=uid, attempt=lease.attempt,
                        injections=res["injections"],
                        pruned=res.get("pruned", 0),
                        resumed=res["resumed"], wall_s=res["wall_s"])
        run.cells[uid] = CellOutcome(
            uid, DONE, counts=res["counts"],
            injections=res["injections"],
            early_stops=res["early_stops"], attempts=lease.attempt)
        if self.attest is not None:
            if worker is not None:
                run.remote_done[uid] = worker.name
                run.audited_ok.discard(uid)
                self.attest.note_complete(
                    run.study_id, lease.unit, run.spec, worker.name,
                    lease.attempt, run.logs_path(lease.unit),
                    run.masks_path(lease.unit))
            else:
                # Local executions are the trust anchor: their golden
                # becomes the reference remote completes must match.
                self.attest.observe_golden(lease.unit, run.spec,
                                           run.logs_path(lease.unit))
        return Completion(run, lease.unit, DONE)

    def _failure(self, run: StudyRun, lease, reason: str,
                 detail: str) -> Completion:
        uid = lease.unit.unit_id
        run.journal.record(uid, FAILED, attempt=lease.attempt,
                           reason=reason, detail=detail)
        run.tracer.emit("unit_failed", unit=uid,
                        attempt=lease.attempt, reason=reason)
        self.metrics.counter("sched.units_failed").inc()
        if reason == "timeout":
            self.metrics.counter("sched.timeouts").inc()
        if lease.attempt > self.max_retries:
            run.journal.record(uid, QUARANTINED, attempts=lease.attempt,
                               detail=detail)
            run.tracer.emit("unit_quarantined", unit=uid,
                            attempts=lease.attempt)
            self.metrics.counter("sched.quarantined").inc()
            run.cells[uid] = CellOutcome(
                uid, QUARANTINED, attempts=lease.attempt, error=detail)
            return Completion(run, lease.unit, QUARANTINED, detail=detail)
        self.metrics.counter("sched.retries").inc()
        delay = self.backoff_s * (2 ** (lease.attempt - 1))
        return Completion(run, lease.unit, FAILED,
                          retry_delay_s=delay, detail=detail)


def heartbeat_snapshot(pool: LeasePool,
                       now: float | None = None) -> list[dict]:
    """The in-flight leases as heartbeat rows (study-tagged)."""
    now = time.monotonic() if now is None else now
    return [{"unit": lease.unit.unit_id,
             "study": getattr(lease.meta, "study_id", None),
             "attempt": lease.attempt,
             "age_s": lease.age_s(now)}
            for lease in pool.running]


__all__ = ["StudyRun", "WorkerFleet", "Completion", "heartbeat_snapshot",
           "RemoteWorker", "RemoteLease", "StaleFence", "UnknownWorker",
           "RejectedComplete", "pack_text", "unpack_text", "pack_blob",
           "unpack_blob"]
