"""Persistent worker fleet — sched's lease semantics, many studies at once.

:class:`StudyRun` is one admitted study's durable run state: its
write-ahead unit journal and trace-event stream (the unchanged
:mod:`repro.sched` on-disk layout, so ``obs serve``, ``obs report`` and
``sched status`` all work on a service study directory verbatim),
replayed on open so a restarted service resumes mid-study.

:class:`WorkerFleet` owns one :class:`~repro.sched.pool.LeasePool`
shared by every study and re-applies the scheduler's unit policy —
write-ahead lease records, retry with exponential backoff, poison-unit
quarantine — per study, routing each completion back through the
lease's ``meta`` slot.  It does *not* decide which unit runs next;
that is the fair queue's job (:mod:`repro.svc.queue`).

The fleet also generalizes the scheduler's golden-blob cache across
studies: compressed golden payloads are keyed by everything that
determines them — (setup, benchmark, scaled, scale, n_checkpoints) —
rather than by study, so the second tenant to study ``sha`` on
``MaFIN-x86`` pays zero golden re-runs.  A blob recorded with an
access trace (built for a pruning study) also serves non-pruning
studies; the reverse falls back to a fresh traced run, exactly like
the worker's own stale-blob path.
"""

from __future__ import annotations

import time

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import JSONLSink, TraceEvent, Tracer
from repro.prune import PRUNE_OFF
from repro.sched.journal import (DONE, FAILED, LEASED, QUARANTINED,
                                 Journal, load_journal)
from repro.sched.plan import CampaignPlan, StudySpec, WorkUnit
from repro.sched.pool import CRASHED, LeasePool, RESULT
from repro.sched.scheduler import EVENTS_NAME, JOURNAL_NAME, CellOutcome


class StudyRun:
    """One study's plan, journal and event stream inside the service."""

    def __init__(self, study_id: str, tenant: str, spec: StudySpec,
                 study_dir, fsync: bool = True):
        from pathlib import Path
        self.study_id = study_id
        self.tenant = tenant
        self.spec = spec
        self.study_dir = Path(study_dir)
        self.plan = CampaignPlan.from_spec(spec)
        self.study_dir.mkdir(parents=True, exist_ok=True)
        self.attempts: dict[str, int] = {}
        self.cells: dict[str, CellOutcome] = {}
        journal_path = self.study_dir / JOURNAL_NAME
        prior = None
        if journal_path.exists() and journal_path.stat().st_size > 0:
            prior = load_journal(journal_path)
            if prior.spec_hash != spec.spec_hash:
                raise ValueError(
                    f"journal {journal_path} belongs to spec "
                    f"{prior.spec_hash}, not {spec.spec_hash}")
        self.journal = Journal(journal_path, fsync=fsync)
        self.tracer = Tracer(JSONLSink(self.study_dir / EVENTS_NAME))
        if prior is None:
            self.journal.write_header(spec.to_dict(), self.plan.unit_ids())
        else:
            for unit in self.plan:
                uid = unit.unit_id
                self.attempts[uid] = prior.attempts.get(uid, 0)
                state = prior.state_of(uid)
                if state == DONE:
                    row = prior.results[uid]
                    self.cells[uid] = CellOutcome(
                        uid, DONE, counts=row.get("counts"),
                        injections=row.get("injections", 0),
                        early_stops=row.get("early_stops", 0),
                        attempts=self.attempts[uid])
                elif state == QUARANTINED:
                    self.cells[uid] = CellOutcome(
                        uid, QUARANTINED, attempts=self.attempts[uid],
                        error=prior.last[uid].get("detail"))
        self.tracer.emit("study_start", units=len(self.plan),
                         pending=len(self.pending_units()),
                         shard=None, spec_hash=spec.spec_hash,
                         resumed=prior is not None)

    def pending_units(self) -> list[WorkUnit]:
        """Units with no terminal outcome yet (includes stale leases)."""
        return [u for u in self.plan if u.unit_id not in self.cells]

    @property
    def complete(self) -> bool:
        return len(self.cells) == len(self.plan)

    def done_count(self) -> int:
        return sum(1 for c in self.cells.values() if c.state == DONE)

    def tally(self) -> dict:
        done = self.done_count()
        quarantined = len(self.cells) - done
        return {"units": len(self.plan), "done": done,
                "quarantined": quarantined,
                "pending": len(self.plan) - len(self.cells)}

    def totals(self) -> dict:
        totals: dict = {}
        for cell in self.cells.values():
            for cls, n in (cell.counts or {}).items():
                totals[cls] = totals.get(cls, 0) + n
        return totals

    def injections_done(self) -> int:
        return sum(c.injections for c in self.cells.values())

    def logs_path(self, unit: WorkUnit):
        return self.study_dir / "logs" / f"{unit.file_id}.jsonl"

    def masks_path(self, unit: WorkUnit):
        return self.study_dir / "masks" / f"{unit.file_id}.jsonl"

    def finish(self) -> None:
        """Emit the terminal study_end event (journal stays append-open)."""
        self.tracer.emit("study_end", done=self.done_count(),
                         quarantined=sum(1 for c in self.cells.values()
                                         if c.state == QUARANTINED),
                         interrupted=not self.complete, wall_s=0.0)

    def close(self) -> None:
        self.journal.close()
        self.tracer.close()


class _GoldenCache:
    """Cross-study cache of compressed golden payloads."""

    def __init__(self):
        self._blobs: dict[tuple, tuple[bytes, bool]] = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(unit: WorkUnit, spec: StudySpec) -> tuple:
        return (unit.setup, unit.benchmark, spec.scaled, spec.scale,
                spec.n_checkpoints)

    def lookup(self, unit: WorkUnit, spec: StudySpec) -> bytes | None:
        entry = self._blobs.get(self.key(unit, spec))
        needs_trace = spec.prune != PRUNE_OFF
        if entry is not None and (entry[1] or not needs_trace):
            self.hits += 1
            return entry[0]
        self.misses += 1
        return None

    def store(self, unit: WorkUnit, spec: StudySpec, blob: bytes) -> None:
        key = self.key(unit, spec)
        has_trace = spec.prune != PRUNE_OFF
        prior = self._blobs.get(key)
        # Never replace a trace-carrying blob with a trace-less one.
        if prior is not None and prior[1] and not has_trace:
            return
        self._blobs[key] = (blob, has_trace)

    def __len__(self) -> int:
        return len(self._blobs)


class Completion:
    """One finished lease, routed back to its study."""

    __slots__ = ("run", "unit", "state", "retry_delay_s", "detail")

    def __init__(self, run: StudyRun, unit: WorkUnit, state: str,
                 retry_delay_s: float | None = None,
                 detail: str | None = None):
        self.run = run
        self.unit = unit
        self.state = state             # DONE | FAILED | QUARANTINED
        self.retry_delay_s = retry_delay_s   # set iff state == FAILED
        self.detail = detail


class WorkerFleet:
    """A shared lease pool applying per-study retry/quarantine policy."""

    def __init__(self, workers: int = 2, unit_timeout_s: float | None = None,
                 max_retries: int = 2, backoff_s: float = 0.5,
                 fsync: bool = True, metrics: MetricsRegistry | None = None):
        self.pool = LeasePool(workers)
        self.unit_timeout_s = unit_timeout_s
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        self.fsync = fsync
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.cache = _GoldenCache()

    @property
    def free_slots(self) -> int:
        return self.pool.free_slots

    @property
    def busy(self) -> int:
        return len(self.pool.running)

    def launch(self, run: StudyRun, unit: WorkUnit) -> None:
        """Lease one unit of *run* (write-ahead journaled first)."""
        uid = unit.unit_id
        run.attempts[uid] = run.attempts.get(uid, 0) + 1
        attempt = run.attempts[uid]
        run.journal.record(uid, LEASED, attempt=attempt)
        run.tracer.emit("unit_leased", unit=uid, attempt=attempt)
        blob = self.cache.lookup(unit, run.spec)
        self.pool.launch(unit, run.spec, attempt=attempt,
                         logs_path=run.logs_path(unit),
                         masks_path=run.masks_path(unit),
                         golden_blob=blob, fsync=self.fsync,
                         want_blob=blob is None,
                         deadline_s=self.unit_timeout_s,
                         meta=run)

    def poll(self) -> list[Completion]:
        """Completions since the last poll, policy already applied.

        DONE and QUARANTINED completions are terminal (journaled,
        outcome recorded on the run); FAILED ones carry the backoff
        delay after which the unit should be re-queued.
        """
        out = []
        for lease, kind, payload in self.pool.poll():
            run: StudyRun = lease.meta
            if kind == RESULT and payload.get("ok"):
                out.append(self._success(run, lease, payload))
            elif kind == RESULT:
                out.append(self._failure(run, lease, "error",
                                         payload.get("error",
                                                     "worker error")))
            else:
                out.append(self._failure(
                    run, lease, "crashed" if kind == CRASHED else "timeout",
                    payload))
        return out

    def cancel_study(self, run: StudyRun) -> int:
        """Terminate every in-flight lease belonging to *run*."""
        mine = [lease for lease in self.pool.running if lease.meta is run]
        for lease in mine:
            self.pool.terminate(lease)
            run.journal.record(lease.unit.unit_id, FAILED,
                               attempt=lease.attempt, reason="cancelled",
                               detail="study cancelled")
            run.tracer.emit("unit_failed", unit=lease.unit.unit_id,
                            attempt=lease.attempt, reason="cancelled")
        return len(mine)

    def terminate_all(self) -> None:
        self.pool.terminate_all()

    # -- policy (the scheduler's, per study) ---------------------------------

    def _success(self, run: StudyRun, lease, res: dict) -> Completion:
        uid = lease.unit.unit_id
        run.journal.record(uid, DONE, attempt=lease.attempt,
                           counts=res["counts"],
                           injections=res["injections"],
                           early_stops=res["early_stops"],
                           pruned=res.get("pruned", 0),
                           resumed=res["resumed"], wall_s=res["wall_s"])
        blob = res.get("golden_blob")
        if blob is not None:
            self.cache.store(lease.unit, run.spec, blob)
        if run.tracer.enabled:
            for ev in res["events"]:
                run.tracer.sink.write(TraceEvent.from_dict(ev))
        self.metrics.merge(MetricsRegistry.from_dict(res["metrics"]))
        self.metrics.counter("sched.units_done").inc()
        self.metrics.histogram("time.unit_s").observe(res["wall_s"])
        run.tracer.emit("unit_done", unit=uid, attempt=lease.attempt,
                        injections=res["injections"],
                        pruned=res.get("pruned", 0),
                        resumed=res["resumed"], wall_s=res["wall_s"])
        run.cells[uid] = CellOutcome(
            uid, DONE, counts=res["counts"],
            injections=res["injections"],
            early_stops=res["early_stops"], attempts=lease.attempt)
        return Completion(run, lease.unit, DONE)

    def _failure(self, run: StudyRun, lease, reason: str,
                 detail: str) -> Completion:
        uid = lease.unit.unit_id
        run.journal.record(uid, FAILED, attempt=lease.attempt,
                           reason=reason, detail=detail)
        run.tracer.emit("unit_failed", unit=uid,
                        attempt=lease.attempt, reason=reason)
        self.metrics.counter("sched.units_failed").inc()
        if reason == "timeout":
            self.metrics.counter("sched.timeouts").inc()
        if lease.attempt > self.max_retries:
            run.journal.record(uid, QUARANTINED, attempts=lease.attempt,
                               detail=detail)
            run.tracer.emit("unit_quarantined", unit=uid,
                            attempts=lease.attempt)
            self.metrics.counter("sched.quarantined").inc()
            run.cells[uid] = CellOutcome(
                uid, QUARANTINED, attempts=lease.attempt, error=detail)
            return Completion(run, lease.unit, QUARANTINED, detail=detail)
        self.metrics.counter("sched.retries").inc()
        delay = self.backoff_s * (2 ** (lease.attempt - 1))
        return Completion(run, lease.unit, FAILED,
                          retry_delay_s=delay, detail=detail)


def heartbeat_snapshot(pool: LeasePool,
                       now: float | None = None) -> list[dict]:
    """The in-flight leases as heartbeat rows (study-tagged)."""
    now = time.monotonic() if now is None else now
    return [{"unit": lease.unit.unit_id,
             "study": getattr(lease.meta, "study_id", None),
             "attempt": lease.attempt,
             "age_s": lease.age_s(now)}
            for lease in pool.running]


__all__ = ["StudyRun", "WorkerFleet", "Completion", "heartbeat_snapshot"]
