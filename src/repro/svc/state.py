"""Durable service journal — the campaign service's study ledger.

The service keeps two kinds of durable state.  Per-unit progress lives
in each study's own write-ahead journal (``studies/<id>/journal.jsonl``,
the unchanged :mod:`repro.sched.journal` format), so a study submitted
over HTTP is exactly as resumable as one started from the CLI.  This
module adds the thin layer above it: one ``service.jsonl`` recording
study *lifecycle* — which studies exist, who submitted them, and
whether they are accepted, running, done or cancelled::

    accepted ──▶ running ──▶ done
        │            │
        └──▶ cancelled ◀──┘

Same discipline as the unit journal: every append is flushed and
``fsync``'d before the service acts on it, and replay tolerates a torn
final line.  ``repro.tools svc serve`` killed at any point — SIGTERM,
SIGKILL, power loss — replays ``service.jsonl``, reopens every
non-terminal study's unit journal, and resumes with no unit lost and
no completed unit re-run.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

SERVICE_JOURNAL_NAME = "service.jsonl"
STUDIES_DIR_NAME = "studies"

# Study lifecycle states (service journal vocabulary).
ACCEPTED = "accepted"        # admitted, units queued, none finished yet
RUNNING = "running"          # at least one unit has been leased
STUDY_DONE = "done"          # every unit terminal (done or quarantined)
CANCELLED = "cancelled"      # operator or tenant cancelled the study

TERMINAL_STUDY_STATES = (STUDY_DONE, CANCELLED)


class StudyRecord:
    """The replayed lifecycle of one submitted study."""

    __slots__ = ("study_id", "tenant", "spec_dict", "spec_hash",
                 "unit_ids", "state", "submitted_ts", "finished_ts",
                 "detail", "purged")

    def __init__(self, study_id: str, tenant: str, spec_dict: dict,
                 spec_hash: str, unit_ids: list, submitted_ts: float):
        self.study_id = study_id
        self.tenant = tenant
        self.spec_dict = spec_dict
        self.spec_hash = spec_hash
        self.unit_ids = list(unit_ids)
        self.state = ACCEPTED
        self.submitted_ts = submitted_ts
        self.finished_ts: float | None = None
        self.detail: str | None = None
        self.purged = False            # study dir deleted by retention GC

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STUDY_STATES

    def to_dict(self) -> dict:
        return {
            "id": self.study_id,
            "tenant": self.tenant,
            "spec_hash": self.spec_hash,
            "units": len(self.unit_ids),
            "state": self.state,
            "submitted_ts": self.submitted_ts,
            "finished_ts": self.finished_ts,
            "detail": self.detail,
            "purged": self.purged,
        }


class ServiceJournal:
    """Append-only, fsync'd JSONL ledger of study lifecycle."""

    def __init__(self, path, fsync: bool = True):
        self.path = Path(path)
        self.fsync = fsync
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a")

    def record_submit(self, study_id: str, tenant: str, spec_dict: dict,
                      spec_hash: str, unit_ids) -> None:
        self._append({"kind": "study", "id": study_id, "tenant": tenant,
                      "spec": spec_dict, "spec_hash": spec_hash,
                      "units": list(unit_ids), "ts": time.time()})

    def record_state(self, study_id: str, state: str, **fields) -> None:
        """Journal one study lifecycle transition (durably, before acting)."""
        self._append({"kind": "state", "id": study_id, "state": state,
                      "ts": time.time(), **fields})

    def record_epoch(self, epoch: int) -> None:
        """Journal one service incarnation (the fencing-token epoch).

        Every start of a service over this root writes the next epoch
        *before* granting any lease, so a fence minted by a previous
        incarnation can never collide with a fresh one — a zombie
        worker's late ``complete`` is rejected by construction.
        """
        self._append({"kind": "epoch", "epoch": epoch, "ts": time.time()})

    def record_gc(self, study_id: str, **fields) -> None:
        """Journal one retention-GC deletion (durably, before deleting)."""
        self._append({"kind": "gc", "id": study_id, "ts": time.time(),
                      **fields})

    def _append(self, row: dict) -> None:
        try:
            self._fh.write(json.dumps(row) + "\n")
            self._fh.flush()
            if self.fsync:
                os.fsync(self._fh.fileno())
        except OSError as exc:
            from repro.errors import CampaignError
            raise CampaignError(
                f"cannot append to service journal {self.path}: {exc} — "
                f"the service cannot record durable state; free space "
                f"or fix permissions, then run `repro.tools fsck "
                f"--repair` on the service root before restarting") \
                from exc

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            if self.fsync:
                os.fsync(self._fh.fileno())
            self._fh.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


class ServiceState:
    """The replayed state of a service journal."""

    def __init__(self):
        self.studies: dict[str, StudyRecord] = {}   # id -> record (in order)
        self.epoch = 0                 # highest service incarnation seen

    def next_serial(self) -> int:
        return len(self.studies) + 1

    def active(self) -> list[StudyRecord]:
        """Non-terminal studies, in submission order."""
        return [rec for rec in self.studies.values() if not rec.terminal]

    def tally(self) -> dict:
        tally = {ACCEPTED: 0, RUNNING: 0, STUDY_DONE: 0, CANCELLED: 0}
        for rec in self.studies.values():
            tally[rec.state] = tally.get(rec.state, 0) + 1
        return tally


def load_service(path) -> ServiceState:
    """Replay a service journal, tolerating a torn final line."""
    state = ServiceState()
    path = Path(path)
    if not path.exists():
        return state
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                break                      # torn tail from a crash
            kind = row.get("kind")
            if kind == "study":
                rec = StudyRecord(row["id"], row.get("tenant", "default"),
                                  row.get("spec", {}),
                                  row.get("spec_hash", ""),
                                  row.get("units", []),
                                  row.get("ts", 0.0))
                state.studies[rec.study_id] = rec
            elif kind == "state":
                rec = state.studies.get(row["id"])
                if rec is None:
                    continue               # state for an unknown study
                rec.state = row["state"]
                if rec.terminal:
                    rec.finished_ts = row.get("ts")
                else:
                    rec.finished_ts = None   # reopened (e.g. audit void)
                rec.detail = row.get("detail", rec.detail)
            elif kind == "epoch":
                state.epoch = max(state.epoch, int(row.get("epoch", 0)))
            elif kind == "gc":
                rec = state.studies.get(row["id"])
                if rec is not None:
                    rec.purged = True
    return state


def study_id_for(serial: int, spec_hash: str) -> str:
    """Stable, human-scannable study id: serial + spec fingerprint."""
    return f"s{serial:04d}-{spec_hash[:6]}"


__all__ = ["ServiceJournal", "ServiceState", "StudyRecord", "load_service",
           "study_id_for", "ACCEPTED", "RUNNING", "STUDY_DONE", "CANCELLED",
           "TERMINAL_STUDY_STATES", "SERVICE_JOURNAL_NAME",
           "STUDIES_DIR_NAME"]
