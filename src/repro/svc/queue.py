"""Fair multi-tenant work queue — weighted DRR with quotas and aging.

One :class:`FairQueue` multiplexes work items from many tenants onto a
shared worker fleet.  Dispatch is weighted deficit round-robin: each
tenant accumulates one quantum of *weight* per rotation visit and pays
a cost of 1 per dispatched item, so over any window where two tenants
both have work, their dispatch counts converge to the ratio of their
weights — a weight-3 tenant gets three units for every one a weight-1
tenant gets, without either ever being shut out.

Per-tenant quotas bound what any one tenant can do to the shared pool:

* ``max_queued`` — items admitted but not yet dispatched;
* ``max_concurrent`` — items dispatched and not yet released;
* ``rate``/``burst`` — a token bucket on *submissions* (one token per
  :meth:`FairQueue.admit` call), so a tight submit loop is throttled
  at the front door instead of flooding the queue.

Quota violations raise :class:`QuotaExceeded` with a machine-readable
``reason`` — the HTTP layer maps it to ``429``.

Starvation freedom: any head item that has waited longer than
``aging_s`` is dispatched ahead of the DRR rotation (its tenant's
deficit still pays, going negative if needed), so a zero-weight-ish
tenant behind heavy traffic is delayed, never starved.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass


@dataclass(frozen=True)
class TenantPolicy:
    """Fairness weight and quota envelope of one tenant."""

    weight: float = 1.0            # DRR quantum per rotation visit
    max_queued: int | None = None      # admitted-but-undispatched cap
    max_concurrent: int | None = None  # dispatched-but-unreleased cap
    rate: float | None = None      # submissions/s refill (None = unlimited)
    burst: int = 1                 # token-bucket depth
    retention_s: float | None = None   # terminal-study GC age (None = keep)

    def __post_init__(self):
        if self.weight <= 0:
            raise ValueError(f"tenant weight must be positive, "
                             f"got {self.weight!r}")
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst!r}")
        if self.retention_s is not None and self.retention_s < 0:
            raise ValueError(f"retention_s must be >= 0 or None, "
                             f"got {self.retention_s!r}")


class QuotaExceeded(Exception):
    """A tenant hit its quota envelope; ``reason`` names which knob."""

    def __init__(self, tenant: str, reason: str, message: str):
        super().__init__(message)
        self.tenant = tenant
        self.reason = reason       # "rate" | "queued" | "concurrent"


class _Item:
    __slots__ = ("payload", "enqueued_at", "eligible_at")

    def __init__(self, payload, enqueued_at: float, eligible_at: float):
        self.payload = payload
        self.enqueued_at = enqueued_at
        self.eligible_at = eligible_at


class _Bucket:
    """Token bucket over submissions for one tenant."""

    __slots__ = ("tokens", "last")

    def __init__(self, burst: int, now: float):
        self.tokens = float(burst)
        self.last = now

    def take(self, rate: float, burst: int, now: float) -> bool:
        self.tokens = min(float(burst),
                          self.tokens + rate * max(now - self.last, 0.0))
        self.last = now
        if self.tokens < 1.0:
            return False
        self.tokens -= 1.0
        return True


class FairQueue:
    """Weighted-DRR dispatch of per-tenant work with quota admission."""

    def __init__(self, policies: dict | None = None,
                 default_policy: TenantPolicy | None = None,
                 aging_s: float | None = 60.0):
        self._policies = dict(policies or {})
        self._default = default_policy or TenantPolicy()
        self.aging_s = aging_s
        self._queues: dict[str, deque] = {}
        self._inflight: dict[str, int] = {}
        self._deficit: dict[str, float] = {}
        self._buckets: dict[str, _Bucket] = {}
        self._rotation: deque = deque()     # tenants with queued work
        self._fresh: set = set()            # grant quantum at next front visit

    def policy(self, tenant: str) -> TenantPolicy:
        return self._policies.get(tenant, self._default)

    def set_policy(self, tenant: str, policy: TenantPolicy) -> None:
        self._policies[tenant] = policy

    # -- admission ----------------------------------------------------------

    def admit(self, tenant: str, n_items: int,
              now: float | None = None) -> None:
        """Gate one submission of *n_items*; raises :class:`QuotaExceeded`.

        Call before :meth:`push`-ing the submission's items — admission
        is all-or-nothing, so a study is never half-enqueued.
        """
        now = time.monotonic() if now is None else now
        pol = self.policy(tenant)
        if pol.max_queued is not None \
                and self.queued(tenant) + n_items > pol.max_queued:
            raise QuotaExceeded(
                tenant, "queued",
                f"tenant {tenant!r} would have "
                f"{self.queued(tenant) + n_items} queued units, "
                f"over its max_queued={pol.max_queued}")
        if pol.rate is not None:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = _Bucket(pol.burst, now)
            if not bucket.take(pol.rate, pol.burst, now):
                raise QuotaExceeded(
                    tenant, "rate",
                    f"tenant {tenant!r} is over its submission rate "
                    f"({pol.rate}/s, burst {pol.burst}) — retry later")

    # -- enqueue / dispatch --------------------------------------------------

    def push(self, tenant: str, payload, now: float | None = None,
             delay_s: float = 0.0) -> None:
        """Enqueue one item for *tenant* (``delay_s`` defers eligibility —
        the retry-backoff path)."""
        now = time.monotonic() if now is None else now
        q = self._queues.get(tenant)
        if q is None:
            q = self._queues[tenant] = deque()
        if not q and tenant not in self._rotation:
            self._rotation.append(tenant)
            self._fresh.add(tenant)
        q.append(_Item(payload, now, now + delay_s))

    def next(self, now: float | None = None):
        """Dispatch the next item as ``(tenant, payload)``, or ``None``.

        The caller owes a matching :meth:`release` when the item
        finishes (it counts against ``max_concurrent`` until then).
        """
        now = time.monotonic() if now is None else now
        aged = self._aged_head(now)
        if aged is not None:
            return aged
        if not self._rotation:
            return None
        # Bound the scan: enough full rotations for the smallest active
        # weight to accumulate a whole quantum, plus slack for tenants
        # dropping out of the rotation mid-scan.
        min_w = min((self.policy(t).weight for t in self._rotation),
                    default=1.0)
        budget = (int(1.0 / min_w) + 2) * (len(self._rotation) + 1)
        for _ in range(budget):
            if not self._rotation:
                return None
            tenant = self._rotation[0]
            item = self._eligible_head(tenant, now)
            if item is None:
                # Empty, all-deferred, or at max_concurrent: rotate past
                # (drop empty tenants entirely; their deficit resets so
                # idle time never banks credit).
                if not self._queues.get(tenant):
                    self._rotation.popleft()
                    self._deficit[tenant] = 0.0
                    self._fresh.discard(tenant)
                else:
                    self._rotation.rotate(-1)
                continue
            if tenant in self._fresh:
                self._fresh.discard(tenant)
                self._deficit[tenant] = (self._deficit.get(tenant, 0.0)
                                         + self.policy(tenant).weight)
            if self._deficit.get(tenant, 0.0) >= 1.0:
                return self._dispatch(tenant, item)
            # Quantum exhausted: move on; fresh again at the next visit.
            self._fresh.add(tenant)
            self._rotation.rotate(-1)
        return None

    def release(self, tenant: str) -> None:
        """Mark one dispatched item of *tenant* finished."""
        self._inflight[tenant] = max(self._inflight.get(tenant, 0) - 1, 0)

    def remove(self, tenant: str, predicate) -> int:
        """Drop queued items of *tenant* matching *predicate* (cancel)."""
        q = self._queues.get(tenant)
        if not q:
            return 0
        kept = [it for it in q if not predicate(it.payload)]
        dropped = len(q) - len(kept)
        q.clear()
        q.extend(kept)
        if not q and tenant in self._rotation:
            self._rotation.remove(tenant)
            self._deficit[tenant] = 0.0
            self._fresh.discard(tenant)
        return dropped

    # -- introspection -------------------------------------------------------

    def queued(self, tenant: str | None = None) -> int:
        if tenant is not None:
            return len(self._queues.get(tenant, ()))
        return sum(len(q) for q in self._queues.values())

    def inflight(self, tenant: str | None = None) -> int:
        if tenant is not None:
            return self._inflight.get(tenant, 0)
        return sum(self._inflight.values())

    def tenants(self) -> list[str]:
        seen = set(self._queues) | set(self._inflight)
        return sorted(t for t in seen
                      if self._queues.get(t) or self._inflight.get(t))

    def snapshot(self, now: float | None = None) -> dict:
        """Per-tenant queue depths and fairness state (gauges, /status)."""
        now = time.monotonic() if now is None else now
        tenants = {}
        for t in self.tenants():
            q = self._queues.get(t, ())
            oldest = min((it.enqueued_at for it in q), default=None)
            tenants[t] = {
                "queued": len(q),
                "inflight": self._inflight.get(t, 0),
                "weight": self.policy(t).weight,
                "deficit": round(self._deficit.get(t, 0.0), 3),
                "oldest_wait_s": (round(now - oldest, 3)
                                  if oldest is not None else None),
            }
        return {"queued": self.queued(), "inflight": self.inflight(),
                "tenants": tenants}

    # -- internals -----------------------------------------------------------

    def _at_concurrency(self, tenant: str) -> bool:
        cap = self.policy(tenant).max_concurrent
        return cap is not None and self._inflight.get(tenant, 0) >= cap

    def _eligible_head(self, tenant: str, now: float):
        """First dispatchable item of *tenant*, or None."""
        if self._at_concurrency(tenant):
            return None
        for item in self._queues.get(tenant, ()):
            if item.eligible_at <= now:
                return item
        return None

    def _dispatch(self, tenant: str, item: _Item):
        self._deficit[tenant] = self._deficit.get(tenant, 0.0) - 1.0
        self._queues[tenant].remove(item)
        self._inflight[tenant] = self._inflight.get(tenant, 0) + 1
        if not self._queues[tenant] and tenant in self._rotation:
            self._rotation.remove(tenant)
            self._deficit[tenant] = 0.0
            self._fresh.discard(tenant)
        return tenant, item.payload

    def _aged_head(self, now: float):
        """The oldest over-age eligible item across tenants, if any."""
        if self.aging_s is None:
            return None
        best_t, best_item = None, None
        for tenant in self._rotation:
            item = self._eligible_head(tenant, now)
            if item is None or now - item.enqueued_at < self.aging_s:
                continue
            if best_item is None or item.enqueued_at < best_item.enqueued_at:
                best_t, best_item = tenant, item
        if best_item is None:
            return None
        # The jump still pays deficit (possibly negative) so aged
        # dispatches are borrowed against, not free.
        return self._dispatch(best_t, best_item)


__all__ = ["FairQueue", "TenantPolicy", "QuotaExceeded"]
