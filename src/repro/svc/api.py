"""HTTP front end for the campaign service (stdlib asyncio only).

``python -m repro.tools svc serve --root DIR`` exposes one
:class:`~repro.svc.service.CampaignService` over HTTP:

* ``POST /studies`` — submit a study: a JSON body holding the
  :class:`~repro.sched.plan.StudySpec` fields (or ``{"tenant": ...,
  "spec": {...}}``; the tenant may also ride in an ``X-Tenant``
  header).  Strictly validated at the boundary — unknown fields,
  bare-string axes and unresolvable grid names are a ``400`` whose
  body says exactly what to fix; a tenant over quota is a ``429``
  naming the exhausted knob.  Success is ``202`` with the study id.
* ``GET /studies`` — every study's lifecycle row.
* ``GET /studies/{id}/status`` — live tally, injections, totals.
* ``GET /studies/{id}/events`` — NDJSON stream of the study's unit
  transitions (``?since=SEQ`` replays from an offset), closed by a
  deterministic ``study_complete`` line once the study is terminal —
  the same read-to-EOF protocol as ``obs serve``.
* ``GET /studies/{id}/report`` — the plain-text study report.
* ``POST /studies/{id}/cancel`` — cancel (``409`` if already terminal).
* ``GET /status`` — service-level snapshot: queue fairness state,
  per-tenant depths, fleet occupancy, golden-cache hit rate.

Remote-fleet endpoints (the :mod:`repro.svc.remote` agent protocol):

* ``POST /fleet/register`` — ``{"worker": name}``; answers the lease
  contract (epoch, heartbeat cadence).  Idempotent.
* ``POST /fleet/lease`` — long poll: an NDJSON stream of
  ``{"keepalive": true}`` lines until a unit is dispatched
  (``{"lease": {...}}``) or the wait expires (``{"lease": null}``).
* ``POST /fleet/heartbeat`` — ``{"worker": name, "fences": [...]}``;
  answers the fences the worker must kill.  ``409 unregistered`` tells
  a forgotten worker (server restart, miss-budget eviction) to
  re-register.
* ``POST /fleet/complete`` — settle a lease by fence; a revoked fence
  is ``409 stale-fence``, a retried settle is a detected duplicate,
  and a body failing semantic ingest validation (record counts, mask
  stream, classifications, golden observables — see
  :mod:`repro.svc.attest`) is ``422`` with a machine-readable code.
* ``POST /fleet/challenge`` — prove the registration determinism
  challenge; failure is ``403 distrusted``.  A registered worker that
  has not proven its challenge gets ``403 challenge-pending`` on
  ``/fleet/lease``.
* ``GET /blobs/{digest}`` — raw compressed golden payloads,
  content-addressed.

When ``--token`` (or ``SVC_TOKEN``) arms authentication, every
endpoint requires ``Authorization: Bearer <token>`` and answers ``401``
with a machine-readable body otherwise.

The whole service runs on one asyncio loop: HTTP handlers and the
scheduling tick (``CampaignService.tick`` every ``TICK_S``) interleave
cooperatively, so no state needs locking.  Unit work happens in fleet
worker *processes*, so a tick never blocks the loop for long.
``REPRO_SVC_CHAOS`` (see :mod:`repro.svc.chaos`) arms the server-side
``disconnect`` fault on fleet endpoints: the request is processed,
then the response is discarded — the at-most-once crucible the fences
exist for.
"""

from __future__ import annotations

import asyncio
import hmac
import json
from urllib.parse import parse_qs, urlsplit

from repro.obs.live import StudyView
from repro.obs.server import EVENTS_POLL_S, KEEPALIVE_S, _http_head
from repro.svc.attest import (ChallengePending, RejectedComplete,
                              WorkerDistrusted)
from repro.svc.chaos import TransportChaos
from repro.svc.fleet import StaleFence, UnknownWorker
from repro.svc.queue import QuotaExceeded
from repro.svc.service import CampaignService

#: How often the embedded scheduling loop runs one service tick.
TICK_S = 0.05

#: Largest accepted request body (a complete ships compressed unit
#: files and possibly a golden blob; specs are tiny).
MAX_BODY = 64 << 20

#: Default / maximum lease long-poll wait.
LEASE_WAIT_S = 20.0
LEASE_WAIT_MAX_S = 120.0


def _json_body(status: str, payload: dict) -> tuple[bytes, bytes]:
    body = (json.dumps(payload) + "\n").encode()
    return _http_head(status, "application/json", len(body)), body


class ServiceServer:
    """Serves one :class:`CampaignService` over HTTP."""

    def __init__(self, service: CampaignService, host: str = "127.0.0.1",
                 port: int = 8437, token: str | None = None,
                 keepalive_s: float = KEEPALIVE_S,
                 chaos: TransportChaos | None = None):
        self.service = service
        self.host = host
        self.port = port           # updated to the bound port on start
        self.token = token
        self.keepalive_s = keepalive_s
        self.chaos = chaos if chaos is not None else TransportChaos.from_env()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._conns: set = set()       # open connection tasks

    # -- request handling --------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._conns.add(task)
        try:
            try:
                head = await asyncio.wait_for(
                    reader.readuntil(b"\r\n\r\n"), timeout=10.0)
            except (asyncio.IncompleteReadError, asyncio.TimeoutError,
                    asyncio.LimitOverrunError):
                return
            request_line, _, rest = head.decode(
                "latin-1", errors="replace").partition("\r\n")
            parts = request_line.split()
            if len(parts) < 2 or parts[0] not in ("GET", "HEAD", "POST"):
                writer.write(_http_head("405 Method Not Allowed",
                                        "text/plain", 0))
                return
            method = parts[0]
            headers = {}
            for line in rest.split("\r\n"):
                name, sep, value = line.partition(":")
                if sep:
                    headers[name.strip().lower()] = value.strip()
            body = b""
            if method == "POST":
                try:
                    length = int(headers.get("content-length", "0"))
                except ValueError:
                    length = 0
                if length > MAX_BODY:
                    writer.write(b"".join(_json_body(
                        "413 Payload Too Large",
                        {"error": f"body over {MAX_BODY} bytes"})))
                    return
                if length:
                    body = await asyncio.wait_for(
                        reader.readexactly(length), timeout=10.0)
            url = urlsplit(parts[1])
            query = parse_qs(url.query)
            await self._route(writer, method, url.path, query,
                              headers, body)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            pass                       # server shutting down mid-stream
        finally:
            self._conns.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError,
                    asyncio.CancelledError):
                pass

    async def _route(self, writer, method: str, path: str, query: dict,
                     headers: dict, body: bytes) -> None:
        svc = self.service
        if self.token is not None:
            supplied = headers.get("authorization", "")
            if not hmac.compare_digest(supplied, f"Bearer {self.token}"):
                writer.write(b"".join(_json_body(
                    "401 Unauthorized",
                    {"error": "missing or bad bearer token",
                     "reason": "unauthorized"})))
                return
        if path.startswith("/fleet/") and method == "POST":
            await self._route_fleet(writer, path, body)
            return
        if path.startswith("/blobs/") and method in ("GET", "HEAD"):
            digest = path[len("/blobs/"):]
            blob = svc.fleet.cache.blob_by_digest(digest)
            if blob is None:
                writer.write(b"".join(_json_body(
                    "404 Not Found", {"error": f"no blob {digest}"})))
                return
            writer.write(_http_head("200 OK", "application/octet-stream",
                                    len(blob)))
            if method == "GET":
                writer.write(blob)
            return
        if path == "/studies" and method == "POST":
            self._submit(writer, headers, body)
            return
        if path == "/studies" and method in ("GET", "HEAD"):
            writer.write(b"".join(_json_body(
                "200 OK", {"studies": svc.studies()})))
            return
        if path == "/status" and method in ("GET", "HEAD"):
            writer.write(b"".join(_json_body("200 OK", svc.status())))
            return
        segs = [s for s in path.split("/") if s]
        if len(segs) == 3 and segs[0] == "studies":
            study_id, action = segs[1], segs[2]
            try:
                svc.study_status(study_id)
            except KeyError:
                writer.write(b"".join(_json_body(
                    "404 Not Found",
                    {"error": f"no such study: {study_id}"})))
                return
            if action == "status" and method in ("GET", "HEAD"):
                writer.write(b"".join(_json_body(
                    "200 OK", svc.study_status(study_id))))
                return
            if action == "events" and method in ("GET", "HEAD"):
                await self._serve_events(writer, study_id, query)
                return
            if action == "report" and method in ("GET", "HEAD"):
                from repro.obs.summarize import summarize_file
                from repro.sched.scheduler import EVENTS_NAME
                text = summarize_file(
                    svc.study_dir(study_id) / EVENTS_NAME)
                data = text.encode()
                writer.write(_http_head("200 OK",
                                        "text/plain; charset=utf-8",
                                        len(data)))
                writer.write(data)
                return
            if action == "cancel" and method == "POST":
                try:
                    writer.write(b"".join(_json_body(
                        "200 OK", svc.cancel(study_id))))
                except ValueError as exc:
                    writer.write(b"".join(_json_body(
                        "409 Conflict", {"error": str(exc)})))
                return
        writer.write(b"".join(_json_body(
            "404 Not Found", {"error": "not found"})))

    def _submit(self, writer, headers: dict, body: bytes) -> None:
        try:
            payload = json.loads(body.decode() or "null")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            writer.write(b"".join(_json_body(
                "400 Bad Request", {"error": f"body is not JSON: {exc}"})))
            return
        tenant = headers.get("x-tenant", "default")
        spec = payload
        if isinstance(payload, dict) and "spec" in payload:
            spec = payload["spec"]
            tenant = payload.get("tenant", tenant)
        if not isinstance(tenant, str) or not tenant:
            writer.write(b"".join(_json_body(
                "400 Bad Request",
                {"error": f"tenant must be a non-empty string, "
                          f"got {tenant!r}"})))
            return
        try:
            study_id = self.service.submit(spec, tenant=tenant)
        except QuotaExceeded as exc:
            writer.write(b"".join(_json_body(
                "429 Too Many Requests",
                {"error": str(exc), "reason": exc.reason,
                 "tenant": exc.tenant})))
            return
        except ValueError as exc:
            writer.write(b"".join(_json_body(
                "400 Bad Request", {"error": str(exc)})))
            return
        writer.write(b"".join(_json_body("202 Accepted", {
            "id": study_id,
            "tenant": tenant,
            "status_url": f"/studies/{study_id}/status",
            "events_url": f"/studies/{study_id}/events",
        })))

    # -- remote-fleet endpoints --------------------------------------------

    async def _route_fleet(self, writer, path: str, body: bytes) -> None:
        """The agent protocol: register / lease / heartbeat / complete."""
        svc = self.service
        try:
            payload = json.loads(body.decode() or "null")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            writer.write(b"".join(_json_body(
                "400 Bad Request", {"error": f"body is not JSON: {exc}"})))
            return
        if not isinstance(payload, dict):
            writer.write(b"".join(_json_body(
                "400 Bad Request", {"error": "body must be a JSON object"})))
            return
        if path == "/fleet/lease":
            await self._serve_lease(writer, payload)
            return
        name = payload.get("worker")
        if path != "/fleet/complete" and (not isinstance(name, str)
                                          or not name):
            writer.write(b"".join(_json_body(
                "400 Bad Request",
                {"error": f"worker must be a non-empty string, "
                          f"got {name!r}"})))
            return
        if path == "/fleet/register":
            try:
                response = _json_body(
                    "200 OK", svc.register_worker(name,
                                                  payload.get("meta")))
            except WorkerDistrusted as exc:
                response = _json_body(
                    "403 Forbidden",
                    {"error": str(exc), "reason": "distrusted"})
        elif path == "/fleet/challenge":
            try:
                response = _json_body(
                    "200 OK", svc.worker_challenge(name, payload))
            except WorkerDistrusted as exc:
                response = _json_body(
                    "403 Forbidden",
                    {"error": str(exc), "reason": "distrusted",
                     "admitted": False})
            except UnknownWorker:
                response = _json_body(
                    "409 Conflict",
                    {"error": f"unknown worker: {name}",
                     "reason": "unregistered"})
        elif path == "/fleet/heartbeat":
            try:
                response = _json_body(
                    "200 OK",
                    svc.worker_heartbeat(name, payload.get("fences")))
            except UnknownWorker:
                response = _json_body(
                    "409 Conflict",
                    {"error": f"unknown worker: {name}",
                     "reason": "unregistered"})
        elif path == "/fleet/complete":
            try:
                response = _json_body("200 OK", svc.complete_remote(payload))
            except StaleFence as exc:
                response = _json_body(
                    "409 Conflict",
                    {"error": str(exc), "reason": "stale-fence"})
            except RejectedComplete as exc:
                # Semantic ingest validation failed: machine-readable
                # code, and the lease is already settled as a failure
                # (the unit retries on an honest worker).
                response = _json_body(
                    "422 Unprocessable Entity",
                    {"error": str(exc), "reason": exc.code,
                     "rejected": True, "unit": exc.unit,
                     "worker": exc.worker})
        else:
            response = _json_body("404 Not Found", {"error": "not found"})
        # Server-side chaos: the work above already happened; dropping
        # the response here forces the client through its retry path
        # against an effect that already landed.
        if self.chaos.drop_response():
            return
        writer.write(b"".join(response))

    async def _serve_lease(self, writer, payload: dict) -> None:
        """Long-poll one lease as an NDJSON keepalive stream."""
        svc = self.service
        name = payload.get("worker")
        try:
            wait_s = min(float(payload.get("wait_s", LEASE_WAIT_S)),
                         LEASE_WAIT_MAX_S)
        except (TypeError, ValueError):
            wait_s = LEASE_WAIT_S
        if name not in svc.fleet.remote_workers:
            writer.write(b"".join(_json_body(
                "409 Conflict", {"error": f"unknown worker: {name}",
                                 "reason": "unregistered"})))
            return
        if svc.attestor is not None:
            try:
                svc.attestor.admit_gate(name)
            except ChallengePending as exc:
                writer.write(b"".join(_json_body(
                    "403 Forbidden",
                    {"error": str(exc), "reason": "challenge-pending"})))
                return
            except WorkerDistrusted as exc:
                writer.write(b"".join(_json_body(
                    "403 Forbidden",
                    {"error": str(exc), "reason": "distrusted"})))
                return
        writer.write(_http_head("200 OK", "application/x-ndjson"))
        loop = asyncio.get_event_loop()
        deadline = loop.time() + wait_s
        last_line = loop.time()
        while True:
            worker = svc.fleet.remote_workers.get(name)
            if worker is None:       # evicted mid-poll
                writer.write(b'{"error": "unregistered"}\n')
                await writer.drain()
                return
            # A waiting poll is proof of life as good as a heartbeat.
            worker.last_seen = loop.time()
            try:
                lease = svc.lease_remote(name)
            except (ChallengePending, WorkerDistrusted):
                # Distrusted mid-poll: end the stream like an eviction.
                writer.write(b'{"error": "unregistered"}\n')
                await writer.drain()
                return
            if lease is not None:
                writer.write(
                    (json.dumps({"lease": lease}) + "\n").encode())
                await writer.drain()
                return
            now = loop.time()
            if now >= deadline:
                writer.write(b'{"lease": null}\n')
                await writer.drain()
                return
            if now - last_line >= self.keepalive_s:
                writer.write(b'{"keepalive": true}\n')
                last_line = now
            await writer.drain()
            await asyncio.sleep(TICK_S)

    async def _serve_events(self, writer, study_id: str,
                            query: dict) -> None:
        """NDJSON unit-transition stream, obs-serve protocol.

        Quiet stretches carry ``{"keepalive": true}`` lines so clients
        can distinguish an idle study from a dead connection.
        """
        try:
            seq = int(query.get("since", ["0"])[0])
        except ValueError:
            seq = 0
        view = StudyView(self.service.study_dir(study_id))
        writer.write(_http_head("200 OK", "application/x-ndjson"))
        last_line = asyncio.get_event_loop().time()
        while True:
            view.refresh()
            while seq < len(view.transitions):
                row = view.transitions[seq]
                writer.write((json.dumps(row) + "\n").encode())
                seq += 1
                last_line = asyncio.get_event_loop().time()
            if (asyncio.get_event_loop().time() - last_line
                    >= self.keepalive_s):
                writer.write(b'{"keepalive": true}\n')
                last_line = asyncio.get_event_loop().time()
            await writer.drain()
            rec = self.service.state.studies[study_id]
            # Terminality is the *service's* call, not the journal's: a
            # fully-done tally can still be reopened (an audit voiding a
            # distrusted worker's unit), and a finish is deferred while
            # audits are pending — so only the lifecycle row closes the
            # stream.
            if rec.terminal:
                final = {
                    "name": "study_complete",
                    "complete": view.complete(),
                    "state": rec.state,
                    "tally": view.tally(),
                    "injections_done": view.injections_done(),
                    "units": {uid: dict(view.units[uid].best_counts())
                              for uid in view.unit_ids},
                }
                writer.write((json.dumps(final) + "\n").encode())
                await writer.drain()
                return
            await asyncio.sleep(EVENTS_POLL_S)

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> asyncio.AbstractServer:
        """Bind and start serving; returns the asyncio server."""
        server = await asyncio.start_server(self._handle, self.host,
                                            self.port)
        self.port = server.sockets[0].getsockname()[1]
        return server

    async def _tick_loop(self) -> None:
        while True:
            self.service.tick()
            await asyncio.sleep(TICK_S)

    async def _main(self, on_ready=None) -> None:
        self._stop = asyncio.Event()
        server = await self.start()
        ticker = asyncio.ensure_future(self._tick_loop())
        if on_ready is not None:
            on_ready(self)
        try:
            async with server:
                await self._stop.wait()
        finally:
            ticker.cancel()
            try:
                await ticker
            except asyncio.CancelledError:
                pass
            # Open streams (lease long-polls, /events followers) would
            # otherwise outlive the loop and die noisily with it.
            for task in list(self._conns):
                task.cancel()
            if self._conns:
                await asyncio.gather(*self._conns, return_exceptions=True)

    def serve_forever(self, on_ready=None) -> None:
        """Blocking entry point (the CLI's ``svc serve``).

        *on_ready* is called with the server once the port is bound —
        tests and scripts use it to learn an ephemeral port.  Stop from
        another thread with :meth:`stop`.
        """
        self._loop = asyncio.new_event_loop()
        try:
            self._loop.run_until_complete(self._main(on_ready))
        finally:
            try:
                self._loop.close()
            finally:
                self._loop = None

    def stop(self) -> None:
        """Thread-safe shutdown of :meth:`serve_forever`."""
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None:
            loop.call_soon_threadsafe(stop.set)


def serve_service(root, host: str = "127.0.0.1", port: int = 8437,
                  on_ready=None, token: str | None = None,
                  **service_kwargs) -> None:
    """One-call blocking service over *root* (CLI plumbing)."""
    service = CampaignService(root, **service_kwargs)
    try:
        ServiceServer(service, host=host, port=port,
                      token=token).serve_forever(on_ready)
    finally:
        service.close()


__all__ = ["ServiceServer", "serve_service", "TICK_S", "LEASE_WAIT_S"]
