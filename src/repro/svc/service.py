"""The campaign service core: admit, multiplex, complete, survive.

:class:`CampaignService` is the engine under ``repro.tools svc serve``:
studies arrive (HTTP or in-process), pass strict spec validation and
the tenant's quota envelope, and their units flow through one shared
:class:`~repro.svc.fleet.WorkerFleet` in weighted-fair order.  One
:meth:`tick` is one scheduling round — poll completions, re-queue
retries, promote/finish studies, launch into free slots, update
gauges — so the HTTP layer can drive the whole service from a single
event loop with no locks.

Durability is layered: the service journal records study lifecycle,
each study's own sched journal records unit transitions, and both are
write-ahead.  Constructing a :class:`CampaignService` over an existing
root replays both layers — completed studies stay completed, running
studies re-queue exactly their unfinished units, and stale leases from
a killed service count as spent attempts.

Observability: service-level events (``study_submitted``,
``study_running``, ``study_done``, ``study_cancelled``,
``quota_rejected``, ``svc_heartbeat``) flow to ``service-events.jsonl``
and ``svc.*`` metrics (study counters, quota rejections, per-tenant
queue-depth gauges, golden-cache hit/miss) live beside the fleet's
``sched.*`` family in one registry.
"""

from __future__ import annotations

import shutil
import time
from pathlib import Path

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import JSONLSink, NULL_TRACER, Tracer
from repro.sched.journal import AUDIT_VOID
from repro.sched.journal import DONE as UNIT_DONE
from repro.sched.journal import QUARANTINED as UNIT_QUARANTINED
from repro.sched.plan import CampaignPlan, StudySpec
from repro.sched.pool import RESULT, LeasePool
from repro.svc.attest import (Attestor, RejectedComplete, WorkerDistrusted)
from repro.svc.fleet import (StaleFence, StudyRun, UnknownWorker,
                             WorkerFleet, heartbeat_snapshot, unpack_blob,
                             unpack_text)
from repro.svc.queue import FairQueue, QuotaExceeded, TenantPolicy
from repro.svc.state import (ACCEPTED, CANCELLED, RUNNING,
                             SERVICE_JOURNAL_NAME, STUDIES_DIR_NAME,
                             STUDY_DONE, ServiceJournal, StudyRecord,
                             load_service, study_id_for)

SERVICE_EVENTS_NAME = "service-events.jsonl"


class CampaignService:
    """Multi-tenant, multi-study campaign engine over one worker fleet."""

    def __init__(self, root, workers: int = 2,
                 policies: dict[str, TenantPolicy] | None = None,
                 default_policy: TenantPolicy | None = None,
                 aging_s: float | None = 60.0,
                 unit_timeout_s: float | None = None,
                 max_retries: int = 2, backoff_s: float = 0.5,
                 fsync: bool = True, metrics=None, events: bool = True,
                 heartbeat_s: float | None = None,
                 lease_heartbeat_s: float = 5.0, miss_budget: int = 3,
                 attest: bool = True, audit_fraction: float = 0.0,
                 audit_seed: int = 0, challenge: bool = False,
                 reject_limit: int = 3):
        self.root = Path(root)
        self.studies_dir = self.root / STUDIES_DIR_NAME
        self.studies_dir.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.heartbeat_s = heartbeat_s
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.queue = FairQueue(policies, default_policy, aging_s=aging_s)
        self.state = load_service(self.root / SERVICE_JOURNAL_NAME)
        self.journal = ServiceJournal(self.root / SERVICE_JOURNAL_NAME,
                                      fsync=fsync)
        # Fence epoch: journaled before any lease is granted, so every
        # incarnation's fences are disjoint from the last one's — a
        # zombie from before a restart can never complete a fresh lease.
        self.state.epoch += 1
        self.journal.record_epoch(self.state.epoch)
        self.attestor = (Attestor(metrics=self.metrics,
                                  audit_fraction=audit_fraction,
                                  audit_seed=audit_seed,
                                  reject_limit=reject_limit,
                                  challenge=challenge,
                                  challenge_dir=self.root / "attest")
                         if attest else None)
        if self.attestor is not None and challenge:
            # Pay the server's own challenge run up front: verifying a
            # proof mid-flight must be a memo hit, never a multi-second
            # stall of the event loop while workers' heartbeats queue.
            self.attestor.challenge_expectation()
        self.fleet = WorkerFleet(workers=workers,
                                 unit_timeout_s=unit_timeout_s,
                                 max_retries=max_retries,
                                 backoff_s=backoff_s, fsync=fsync,
                                 metrics=self.metrics,
                                 heartbeat_s=lease_heartbeat_s,
                                 miss_budget=miss_budget,
                                 fence_epoch=self.state.epoch,
                                 attest=self.attestor)
        # One local slot dedicated to sampled re-execution audits, so a
        # --workers 0 service (pure remote compute) can still audit.
        self._audit_pool = LeasePool(1 if self.attestor is not None else 0)
        self.tracer = (Tracer(JSONLSink(self.root / SERVICE_EVENTS_NAME))
                       if events else NULL_TRACER)
        self.runs: dict[str, StudyRun] = {}
        self._last_beat = time.monotonic()
        self._closed = False
        for rec in self.state.active():
            self._reopen(rec)

    # -- admission -----------------------------------------------------------

    def submit(self, spec, tenant: str = "default",
               now: float | None = None) -> str:
        """Admit one study; returns its id.

        *spec* may be an untrusted dict (validated strictly via
        :meth:`StudySpec.parse`) or a ready :class:`StudySpec`.
        Raises ``ValueError`` for a bad spec and
        :class:`~repro.svc.queue.QuotaExceeded` when the tenant's
        envelope is full — admission is all-or-nothing.
        """
        if isinstance(spec, StudySpec):
            spec.validate()
            spec.validate_grid()
        else:
            spec = StudySpec.parse(spec)
        plan = CampaignPlan.from_spec(spec)
        try:
            self.queue.admit(tenant, len(plan), now)
        except QuotaExceeded as exc:
            self.metrics.counter("svc.quota_rejections").inc()
            self.tracer.emit("quota_rejected", tenant=tenant,
                             reason=exc.reason, units=len(plan))
            raise
        study_id = study_id_for(self.state.next_serial(), spec.spec_hash)
        # Write-ahead: the submission is durable before any state changes.
        self.journal.record_submit(study_id, tenant, spec.to_dict(),
                                   spec.spec_hash, plan.unit_ids())
        rec = StudyRecord(study_id, tenant, spec.to_dict(), spec.spec_hash,
                          plan.unit_ids(), time.time())
        self.state.studies[study_id] = rec
        run = StudyRun(study_id, tenant, spec,
                       self.studies_dir / study_id, fsync=self.fsync)
        self.runs[study_id] = run
        for unit in run.pending_units():
            self.queue.push(tenant, (run, unit), now)
        self.metrics.counter("svc.studies_submitted").inc()
        self.tracer.emit("study_submitted", study=study_id, tenant=tenant,
                         units=len(plan), spec_hash=spec.spec_hash)
        return study_id

    def cancel(self, study_id: str) -> dict:
        """Cancel a study: drop its queued units, kill its leases."""
        rec = self._record(study_id)
        if rec.terminal:
            raise ValueError(f"study {study_id} is already {rec.state}")
        run = self.runs[study_id]
        dropped = self.queue.remove(rec.tenant,
                                    lambda payload: payload[0] is run)
        killed = self.fleet.cancel_study(run)
        for _ in range(killed):
            self.queue.release(rec.tenant)
        self.journal.record_state(study_id, CANCELLED,
                                  detail=f"{dropped} queued dropped, "
                                         f"{killed} leases killed")
        rec.state = CANCELLED
        rec.finished_ts = time.time()
        run.finish()
        run.close()
        self.metrics.counter("svc.studies_cancelled").inc()
        self.tracer.emit("study_cancelled", study=study_id,
                         tenant=rec.tenant, dropped=dropped, killed=killed)
        self._evict_blobs()
        return {"id": study_id, "dropped": dropped, "killed": killed}

    # -- remote workers -------------------------------------------------------

    def register_worker(self, name: str, meta: dict | None = None) -> dict:
        """Register (idempotently) a remote agent; returns its contract.

        With attestation, a distrusted worker is refused outright
        (:class:`~repro.svc.attest.WorkerDistrusted` → HTTP 403), and a
        challenge-armed service includes the determinism-challenge wire
        the agent must execute and prove before it may hold leases.
        """
        challenge = None
        if self.attestor is not None:
            challenge = self.attestor.register_gate(name)
        self.fleet.register_worker(name, meta)
        self.metrics.counter("svc.remote.workers_seen").inc()
        self.tracer.emit("worker_registered", worker=name,
                         epoch=self.fleet.fence_epoch,
                         challenged=challenge is not None)
        out = {"worker": name, "epoch": self.fleet.fence_epoch,
               "heartbeat_s": self.fleet.heartbeat_s,
               "miss_budget": self.fleet.miss_budget}
        if challenge is not None:
            out["challenge"] = challenge
        return out

    def worker_challenge(self, name: str, payload: dict) -> dict:
        """Judge a worker's determinism-challenge proof.

        Byte-identical logs/masks text plus a matching pristine
        ``state_digest`` admits the worker to the lease pool; anything
        else distrusts it on the spot (version skew and non-determinism
        are caught before a single real unit is leased).
        """
        attestor = self.attestor
        if attestor is None or not attestor.challenge_enabled:
            return {"admitted": True, "worker": name}
        if name not in self.fleet.remote_workers:
            raise UnknownWorker(name)
        logs = unpack_text(payload["logs"]) if payload.get("logs") else ""
        masks = unpack_text(payload["masks"]) if payload.get("masks") else ""
        ok = attestor.verify_challenge(name, logs, masks,
                                       payload.get("state_digest"))
        self.tracer.emit("challenge_passed" if ok else "challenge_failed",
                         worker=name)
        if not ok:
            self._distrust_effects(name, "determinism challenge failed")
            raise WorkerDistrusted(name, "determinism challenge failed")
        return {"admitted": True, "worker": name}

    def worker_heartbeat(self, name: str, fences) -> dict:
        """One agent heartbeat; raises :class:`UnknownWorker` if forgotten."""
        revoked = self.fleet.heartbeat(name, fences)
        if revoked:
            self.tracer.emit("lease_revoked", worker=name, fences=revoked)
        return {"revoked": revoked}

    def lease_remote(self, name: str, now: float | None = None) \
            -> dict | None:
        """Dispatch one queued unit to remote worker *name*, or None.

        Same single-dispatch path as :meth:`tick`'s local launches —
        the fair queue decides *what* runs next; only *where* differs.
        """
        now = time.monotonic() if now is None else now
        if name not in self.fleet.remote_workers:
            raise UnknownWorker(name)
        if self.attestor is not None:
            self.attestor.admit_gate(name)
        while True:
            dispatched = self.queue.next(now)
            if dispatched is None:
                return None
            tenant, (run, unit) = dispatched
            rec = self.state.studies[run.study_id]
            if rec.terminal:
                self.queue.release(tenant)
                continue
            if rec.state == ACCEPTED:
                self.journal.record_state(run.study_id, RUNNING)
                rec.state = RUNNING
                self.tracer.emit("study_running", study=run.study_id,
                                 tenant=tenant)
            return self.fleet.launch_remote(run, unit, name, now)

    def complete_remote(self, body: dict) -> dict:
        """Settle one remote complete (wire payload, fields b64+zlib)."""
        fence = body.get("fence")
        try:
            return self.fleet.complete_remote(
                fence,
                result=body.get("result"),
                logs_text=(unpack_text(body["logs"])
                           if body.get("logs") else None),
                masks_text=(unpack_text(body["masks"])
                            if body.get("masks") else None),
                blob=(unpack_blob(body["golden_blob"])
                      if body.get("golden_blob") else None),
                reason=body.get("reason"), detail=body.get("detail"))
        except StaleFence:
            self.tracer.emit("fence_rejected", fence=fence,
                             worker=body.get("worker"))
            raise
        except RejectedComplete as exc:
            self.tracer.emit("attest_rejected", fence=fence,
                             worker=exc.worker, unit=exc.unit,
                             code=exc.code)
            if exc.distrusted:
                card = self.attestor.scorecard(exc.worker)
                self._distrust_effects(exc.worker,
                                       card.reason or "rejected completes")
            raise

    # -- the scheduling round -------------------------------------------------

    def tick(self, now: float | None = None) -> int:
        """One scheduling round; returns the number of completions seen."""
        now = time.monotonic() if now is None else now
        known = set(self.fleet.remote_workers)
        completions = self.fleet.poll(now)
        for name in sorted(known - set(self.fleet.remote_workers)):
            self.tracer.emit("worker_lost", worker=name)
        for c in completions:
            rec = self.state.studies[c.run.study_id]
            self.queue.release(rec.tenant)
            if c.state not in (UNIT_DONE, UNIT_QUARANTINED):
                if rec.terminal:
                    continue           # cancelled while the lease ran
                self.queue.push(rec.tenant, (c.run, c.unit), now,
                                delay_s=c.retry_delay_s or 0.0)
            elif c.run.complete and not rec.terminal \
                    and not self._audits_pending(c.run):
                self._finish_study(rec, c.run)
        if self.attestor is not None:
            self._drive_audits(now)
            # Studies whose finish was deferred behind a pending audit
            # (or that an audit just voided back open) settle here.
            for study_id, run in list(self.runs.items()):
                rec = self.state.studies[study_id]
                if run.complete and not rec.terminal \
                        and not self._audits_pending(run):
                    self._finish_study(rec, run)
        while self.fleet.free_slots > 0:
            dispatched = self.queue.next(now)
            if dispatched is None:
                break
            tenant, (run, unit) = dispatched
            rec = self.state.studies[run.study_id]
            if rec.terminal:
                self.queue.release(tenant)
                continue
            if rec.state == ACCEPTED:
                self.journal.record_state(run.study_id, RUNNING)
                rec.state = RUNNING
                self.tracer.emit("study_running", study=run.study_id,
                                 tenant=tenant)
            self.fleet.launch(run, unit)
        self._gauges(now)
        self._heartbeat(now)
        return len(completions)

    def run_until_idle(self, poll_s: float = 0.01,
                       timeout_s: float | None = None) -> None:
        """Drive :meth:`tick` until no work is queued or in flight."""
        t0 = time.monotonic()
        while True:
            self.tick()
            if not self.queue.queued() and not self.fleet.busy \
                    and not self._audit_busy():
                return
            if timeout_s is not None and time.monotonic() - t0 > timeout_s:
                raise TimeoutError(
                    f"service still busy after {timeout_s}s "
                    f"({self.queue.queued()} queued, "
                    f"{self.fleet.busy} in flight)")
            time.sleep(poll_s)

    # -- status ---------------------------------------------------------------

    def studies(self) -> list[dict]:
        return [self._study_row(rec) for rec in self.state.studies.values()]

    def study_status(self, study_id: str) -> dict:
        rec = self._record(study_id)
        row = self._study_row(rec)
        run = self.runs.get(study_id)
        if run is not None:
            row["totals"] = run.totals()
            row["quarantined"] = sorted(
                uid for uid, c in run.cells.items()
                if c.state == UNIT_QUARANTINED)
        return row

    def study_dir(self, study_id: str) -> Path:
        self._record(study_id)
        return self.studies_dir / study_id

    def status(self, now: float | None = None) -> dict:
        """Service-level snapshot: studies, queue fairness, fleet, cache."""
        return {
            "studies": self.state.tally(),
            "queue": self.queue.snapshot(now),
            "fleet": {"workers": self.fleet.pool.workers,
                      "busy": self.fleet.busy,
                      "running": heartbeat_snapshot(self.fleet.pool, now)},
            "remote": self.fleet.remote_snapshot(now),
            "golden_cache": {"entries": len(self.fleet.cache),
                             "hits": self.fleet.cache.hits,
                             "misses": self.fleet.cache.misses},
            "attest": (self.attestor.snapshot()
                       if self.attestor is not None else None),
        }

    @property
    def idle(self) -> bool:
        return not self.queue.queued() and not self.fleet.busy \
            and not self._audit_busy()

    def close(self) -> None:
        """Shut down like a crash the journals are built for.

        In-flight leases are terminated *without* journaling a failure —
        they replay as stale leases (spent attempts) and the next
        service over this root re-queues them, exactly like a SIGKILL.
        """
        if self._closed:
            return
        self._closed = True
        self._audit_pool.terminate_all()
        self.fleet.terminate_all()
        for run in self.runs.values():
            run.close()
        self.journal.close()
        self.tracer.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    # -- internals --------------------------------------------------------------

    def _record(self, study_id: str) -> StudyRecord:
        rec = self.state.studies.get(study_id)
        if rec is None:
            raise KeyError(f"no such study: {study_id}")
        return rec

    def _reopen(self, rec: StudyRecord) -> None:
        """Resume one non-terminal study from its own journal (restart)."""
        spec = StudySpec.from_dict(rec.spec_dict)
        run = StudyRun(rec.study_id, rec.tenant, spec,
                       self.studies_dir / rec.study_id, fsync=self.fsync)
        self.runs[rec.study_id] = run
        if run.complete:
            # Every unit finished but the service died before recording
            # the study terminal — settle it now.
            self._finish_study(rec, run)
            return
        for unit in run.pending_units():
            self.queue.push(rec.tenant, (run, unit))
        self.tracer.emit("study_resumed", study=rec.study_id,
                         tenant=rec.tenant,
                         pending=len(run.pending_units()))

    def _finish_study(self, rec: StudyRecord, run: StudyRun) -> None:
        self.journal.record_state(rec.study_id, STUDY_DONE)
        rec.state = STUDY_DONE
        rec.finished_ts = time.time()
        run.finish()
        run.close()
        self.metrics.counter("svc.studies_done").inc()
        self.tracer.emit("study_done", study=rec.study_id,
                         tenant=rec.tenant, **run.tally())
        self._evict_blobs()

    def _evict_blobs(self) -> int:
        """Drop golden blobs no live (non-terminal) study can use."""
        live = set()
        for study_id, run in self.runs.items():
            if self.state.studies[study_id].terminal:
                continue
            for unit in run.plan:
                live.add(self.fleet.cache.key(unit, run.spec))
        evicted = self.fleet.cache.evict(live)
        if evicted:
            self.metrics.counter("svc.blobs.evicted").inc(evicted)
            self.tracer.emit("blobs_evicted", count=evicted)
        return evicted

    # -- attestation: audits, distrust, voiding -------------------------------

    def _audit_paths(self, ticket) -> tuple[Path, Path]:
        scratch = self.root / "attest" / ticket.study_id
        return (scratch / "logs" / f"{ticket.unit.file_id}.jsonl",
                scratch / "masks" / f"{ticket.unit.file_id}.jsonl")

    def _audits_pending(self, run: StudyRun) -> bool:
        if self.attestor is None:
            return False
        sid = run.study_id
        if any(t.study_id == sid for t in self.attestor.audit_queue):
            return True
        return any(getattr(lease.meta, "study_id", None) == sid
                   for lease in self._audit_pool.running)

    def _audit_busy(self) -> bool:
        return self.attestor is not None and (
            len(self.attestor.audit_queue) > 0
            or len(self._audit_pool.running) > 0)

    def _drive_audits(self, now: float) -> None:
        """Launch queued audit tickets, judge finished re-executions."""
        attestor = self.attestor
        while self._audit_pool.free_slots > 0 and attestor.audit_queue:
            ticket = attestor.audit_queue.popleft()
            run = self.runs.get(ticket.study_id)
            uid = ticket.unit.unit_id
            if run is None or attestor.scorecard(ticket.worker).distrusted \
                    or run.remote_done.get(uid) != ticket.worker:
                continue               # voided, cancelled or re-run since
            logs, masks = self._audit_paths(ticket)
            for path in (logs, masks):
                path.parent.mkdir(parents=True, exist_ok=True)
                path.unlink(missing_ok=True)
            self._audit_pool.launch(
                ticket.unit, ticket.spec, logs_path=logs, masks_path=masks,
                golden_blob=self.fleet.cache.lookup(ticket.unit,
                                                    ticket.spec),
                fsync=False, want_blob=False,
                deadline_s=self.fleet.unit_timeout_s, meta=ticket)
            self.tracer.emit("audit_started", study=ticket.study_id,
                             unit=uid, worker=ticket.worker)
        for lease, kind, payload in self._audit_pool.poll():
            ticket = lease.meta
            uid = ticket.unit.unit_id
            if kind == RESULT and payload.get("ok"):
                if attestor.scorecard(ticket.worker).distrusted:
                    continue           # already voided by an earlier audit
                logs, masks = self._audit_paths(ticket)
                if attestor.judge_audit(ticket, logs, masks):
                    run = self.runs.get(ticket.study_id)
                    if run is not None:
                        run.audited_ok.add(uid)
                    self.tracer.emit("audit_ok", study=ticket.study_id,
                                     unit=uid, worker=ticket.worker)
                else:
                    self.tracer.emit("audit_divergence",
                                     study=ticket.study_id, unit=uid,
                                     worker=ticket.worker)
                    self._distrust_effects(
                        ticket.worker, f"audit divergence on {uid}")
            else:
                # The local re-execution itself failed: no verdict on
                # the worker either way.
                self.metrics.counter(
                    "svc.attest.audits_inconclusive").inc()
                self.tracer.emit("audit_inconclusive",
                                 study=ticket.study_id, unit=uid,
                                 worker=ticket.worker, kind=kind)

    def _distrust_effects(self, name: str, reason: str) -> None:
        """Enforce a distrust verdict: expel, revoke, void, re-queue."""
        attestor = self.attestor
        attestor.distrust(name, reason)
        self.tracer.emit("worker_distrusted", worker=name, reason=reason)
        worker = self.fleet.remote_workers.pop(name, None)
        if worker is not None:
            self.fleet._revoke_worker(
                worker, f"worker {name} distrusted: {reason}")
        for run in list(self.runs.values()):
            self._void_units(run, name, reason)

    def _void_units(self, run: StudyRun, name: str, reason: str) -> int:
        """Retract every unaudited DONE this worker produced for *run*.

        Write-ahead ``audit_void`` journal rows retract the results on
        replay too; the lying record files are deleted (a local rerun
        must not resume from them) and the units re-queued — each one
        runs again exactly once, preserving at-most-once journaling.
        """
        voided = sorted(uid for uid, w in run.remote_done.items()
                        if w == name and uid not in run.audited_ok)
        if not voided:
            return 0
        rec = self.state.studies[run.study_id]
        if rec.purged or rec.state == CANCELLED:
            return 0
        if rec.state == STUDY_DONE:
            self.journal.record_state(
                run.study_id, RUNNING,
                detail=f"reopened: {len(voided)} units of distrusted "
                       f"worker {name} voided")
            rec.state = RUNNING
            rec.finished_ts = None
            run.reopen()
            self.tracer.emit("study_reopened", study=run.study_id,
                             voided=len(voided))
        units = {unit.unit_id: unit for unit in run.plan}
        for uid in voided:
            unit = units[uid]
            run.journal.record(uid, AUDIT_VOID, worker=name, detail=reason)
            run.tracer.emit("audit_void", unit=uid, worker=name)
            run.cells.pop(uid, None)
            run.remote_done.pop(uid, None)
            run.logs_path(unit).unlink(missing_ok=True)
            run.masks_path(unit).unlink(missing_ok=True)
            self.queue.push(rec.tenant, (run, unit))
            self.metrics.counter("svc.attest.voided").inc()
        return len(voided)

    def _study_row(self, rec: StudyRecord) -> dict:
        row = rec.to_dict()
        run = self.runs.get(rec.study_id)
        if run is not None:
            row["tally"] = run.tally()
            row["injections_done"] = run.injections_done()
        return row

    def _gauges(self, now: float) -> None:
        snap = self.queue.snapshot(now)
        self.metrics.gauge("svc.queue_depth").set(
            snap["queued"] + snap["inflight"])
        self.metrics.gauge("svc.busy_workers").set(self.fleet.busy)
        for tenant, t in snap["tenants"].items():
            self.metrics.gauge(f"svc.tenant_queued.{tenant}").set(
                t["queued"])
            self.metrics.gauge(f"svc.tenant_inflight.{tenant}").set(
                t["inflight"])
        self.metrics.gauge("svc.golden_cache_entries").set(
            len(self.fleet.cache))

    def _heartbeat(self, now: float) -> None:
        if self.heartbeat_s is None or not self.tracer.enabled:
            return
        if now - self._last_beat < self.heartbeat_s:
            return
        self._last_beat = now
        self.tracer.emit("svc_heartbeat",
                         queued=self.queue.queued(),
                         inflight=self.queue.inflight(),
                         busy=self.fleet.busy,
                         studies=self.state.tally(),
                         running=heartbeat_snapshot(self.fleet.pool, now),
                         remote=self.fleet.remote_snapshot(now))


def collect_garbage(root, policies: dict[str, TenantPolicy] | None = None,
                    default_policy: TenantPolicy | None = None,
                    now: float | None = None,
                    dry_run: bool = False) -> dict:
    """Delete terminal study dirs past their tenant's ``retention_s``.

    Offline, journal-driven: replays ``service.jsonl``, selects
    terminal (done/cancelled), not-yet-purged studies whose
    ``finished_ts`` is older than the owning tenant's ``retention_s``
    (``None`` — the default — retains forever), journals a ``gc`` row
    *before* deleting each dir (write-ahead, so a crash mid-sweep
    leaves at worst an already-journaled dir for the next sweep), and
    removes the tree.  Returns what was (or with *dry_run* would be)
    purged.
    """
    root = Path(root)
    now = time.time() if now is None else now
    policies = dict(policies or {})
    state = load_service(root / SERVICE_JOURNAL_NAME)
    studies_dir = root / STUDIES_DIR_NAME
    candidates, resweeps = [], []
    for rec in state.studies.values():
        if not rec.terminal:
            continue
        if rec.purged:
            # Journaled in a previous sweep that died before the
            # delete landed — finish the job, no new journal row.
            if (studies_dir / rec.study_id).exists():
                resweeps.append(rec.study_id)
            continue
        pol = policies.get(rec.tenant, default_policy)
        retention = pol.retention_s if pol is not None else None
        if retention is None:
            continue
        age = now - (rec.finished_ts or rec.submitted_ts)
        if age < retention:
            continue
        candidates.append({"id": rec.study_id, "tenant": rec.tenant,
                           "state": rec.state, "age_s": round(age, 1),
                           "retention_s": retention})
    if dry_run:
        return {"purged": [], "candidates": candidates,
                "resweeps": resweeps, "dry_run": True}
    purged = []
    if candidates or resweeps:
        with ServiceJournal(root / SERVICE_JOURNAL_NAME) as journal:
            for study_id in resweeps:
                shutil.rmtree(studies_dir / study_id, ignore_errors=True)
            for row in candidates:
                journal.record_gc(row["id"], tenant=row["tenant"],
                                  age_s=row["age_s"])
                shutil.rmtree(studies_dir / row["id"], ignore_errors=True)
                purged.append(row)
    if purged or resweeps:
        tracer = Tracer(JSONLSink(root / SERVICE_EVENTS_NAME))
        try:
            tracer.emit("study_gc", purged=[r["id"] for r in purged],
                        resweeps=resweeps)
        finally:
            tracer.close()
    return {"purged": purged, "candidates": candidates,
            "resweeps": resweeps, "dry_run": False}


__all__ = ["CampaignService", "SERVICE_EVENTS_NAME", "collect_garbage"]
