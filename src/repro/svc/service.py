"""The campaign service core: admit, multiplex, complete, survive.

:class:`CampaignService` is the engine under ``repro.tools svc serve``:
studies arrive (HTTP or in-process), pass strict spec validation and
the tenant's quota envelope, and their units flow through one shared
:class:`~repro.svc.fleet.WorkerFleet` in weighted-fair order.  One
:meth:`tick` is one scheduling round — poll completions, re-queue
retries, promote/finish studies, launch into free slots, update
gauges — so the HTTP layer can drive the whole service from a single
event loop with no locks.

Durability is layered: the service journal records study lifecycle,
each study's own sched journal records unit transitions, and both are
write-ahead.  Constructing a :class:`CampaignService` over an existing
root replays both layers — completed studies stay completed, running
studies re-queue exactly their unfinished units, and stale leases from
a killed service count as spent attempts.

Observability: service-level events (``study_submitted``,
``study_running``, ``study_done``, ``study_cancelled``,
``quota_rejected``, ``svc_heartbeat``) flow to ``service-events.jsonl``
and ``svc.*`` metrics (study counters, quota rejections, per-tenant
queue-depth gauges, golden-cache hit/miss) live beside the fleet's
``sched.*`` family in one registry.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import JSONLSink, NULL_TRACER, Tracer
from repro.sched.journal import DONE as UNIT_DONE
from repro.sched.journal import QUARANTINED as UNIT_QUARANTINED
from repro.sched.plan import CampaignPlan, StudySpec
from repro.svc.fleet import StudyRun, WorkerFleet, heartbeat_snapshot
from repro.svc.queue import FairQueue, QuotaExceeded, TenantPolicy
from repro.svc.state import (ACCEPTED, CANCELLED, RUNNING,
                             SERVICE_JOURNAL_NAME, STUDIES_DIR_NAME,
                             STUDY_DONE, ServiceJournal, StudyRecord,
                             load_service, study_id_for)

SERVICE_EVENTS_NAME = "service-events.jsonl"


class CampaignService:
    """Multi-tenant, multi-study campaign engine over one worker fleet."""

    def __init__(self, root, workers: int = 2,
                 policies: dict[str, TenantPolicy] | None = None,
                 default_policy: TenantPolicy | None = None,
                 aging_s: float | None = 60.0,
                 unit_timeout_s: float | None = None,
                 max_retries: int = 2, backoff_s: float = 0.5,
                 fsync: bool = True, metrics=None, events: bool = True,
                 heartbeat_s: float | None = None):
        self.root = Path(root)
        self.studies_dir = self.root / STUDIES_DIR_NAME
        self.studies_dir.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.heartbeat_s = heartbeat_s
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.queue = FairQueue(policies, default_policy, aging_s=aging_s)
        self.fleet = WorkerFleet(workers=workers,
                                 unit_timeout_s=unit_timeout_s,
                                 max_retries=max_retries,
                                 backoff_s=backoff_s, fsync=fsync,
                                 metrics=self.metrics)
        self.state = load_service(self.root / SERVICE_JOURNAL_NAME)
        self.journal = ServiceJournal(self.root / SERVICE_JOURNAL_NAME,
                                      fsync=fsync)
        self.tracer = (Tracer(JSONLSink(self.root / SERVICE_EVENTS_NAME))
                       if events else NULL_TRACER)
        self.runs: dict[str, StudyRun] = {}
        self._last_beat = time.monotonic()
        self._closed = False
        for rec in self.state.active():
            self._reopen(rec)

    # -- admission -----------------------------------------------------------

    def submit(self, spec, tenant: str = "default",
               now: float | None = None) -> str:
        """Admit one study; returns its id.

        *spec* may be an untrusted dict (validated strictly via
        :meth:`StudySpec.parse`) or a ready :class:`StudySpec`.
        Raises ``ValueError`` for a bad spec and
        :class:`~repro.svc.queue.QuotaExceeded` when the tenant's
        envelope is full — admission is all-or-nothing.
        """
        if isinstance(spec, StudySpec):
            spec.validate()
            spec.validate_grid()
        else:
            spec = StudySpec.parse(spec)
        plan = CampaignPlan.from_spec(spec)
        try:
            self.queue.admit(tenant, len(plan), now)
        except QuotaExceeded as exc:
            self.metrics.counter("svc.quota_rejections").inc()
            self.tracer.emit("quota_rejected", tenant=tenant,
                             reason=exc.reason, units=len(plan))
            raise
        study_id = study_id_for(self.state.next_serial(), spec.spec_hash)
        # Write-ahead: the submission is durable before any state changes.
        self.journal.record_submit(study_id, tenant, spec.to_dict(),
                                   spec.spec_hash, plan.unit_ids())
        rec = StudyRecord(study_id, tenant, spec.to_dict(), spec.spec_hash,
                          plan.unit_ids(), time.time())
        self.state.studies[study_id] = rec
        run = StudyRun(study_id, tenant, spec,
                       self.studies_dir / study_id, fsync=self.fsync)
        self.runs[study_id] = run
        for unit in run.pending_units():
            self.queue.push(tenant, (run, unit), now)
        self.metrics.counter("svc.studies_submitted").inc()
        self.tracer.emit("study_submitted", study=study_id, tenant=tenant,
                         units=len(plan), spec_hash=spec.spec_hash)
        return study_id

    def cancel(self, study_id: str) -> dict:
        """Cancel a study: drop its queued units, kill its leases."""
        rec = self._record(study_id)
        if rec.terminal:
            raise ValueError(f"study {study_id} is already {rec.state}")
        run = self.runs[study_id]
        dropped = self.queue.remove(rec.tenant,
                                    lambda payload: payload[0] is run)
        killed = self.fleet.cancel_study(run)
        for _ in range(killed):
            self.queue.release(rec.tenant)
        self.journal.record_state(study_id, CANCELLED,
                                  detail=f"{dropped} queued dropped, "
                                         f"{killed} leases killed")
        rec.state = CANCELLED
        rec.finished_ts = time.time()
        run.finish()
        run.close()
        self.metrics.counter("svc.studies_cancelled").inc()
        self.tracer.emit("study_cancelled", study=study_id,
                         tenant=rec.tenant, dropped=dropped, killed=killed)
        return {"id": study_id, "dropped": dropped, "killed": killed}

    # -- the scheduling round -------------------------------------------------

    def tick(self, now: float | None = None) -> int:
        """One scheduling round; returns the number of completions seen."""
        now = time.monotonic() if now is None else now
        completions = self.fleet.poll()
        for c in completions:
            rec = self.state.studies[c.run.study_id]
            self.queue.release(rec.tenant)
            if c.state not in (UNIT_DONE, UNIT_QUARANTINED):
                if rec.terminal:
                    continue           # cancelled while the lease ran
                self.queue.push(rec.tenant, (c.run, c.unit), now,
                                delay_s=c.retry_delay_s or 0.0)
            elif c.run.complete and not rec.terminal:
                self._finish_study(rec, c.run)
        while self.fleet.free_slots > 0:
            dispatched = self.queue.next(now)
            if dispatched is None:
                break
            tenant, (run, unit) = dispatched
            rec = self.state.studies[run.study_id]
            if rec.terminal:
                self.queue.release(tenant)
                continue
            if rec.state == ACCEPTED:
                self.journal.record_state(run.study_id, RUNNING)
                rec.state = RUNNING
                self.tracer.emit("study_running", study=run.study_id,
                                 tenant=tenant)
            self.fleet.launch(run, unit)
        self._gauges(now)
        self._heartbeat(now)
        return len(completions)

    def run_until_idle(self, poll_s: float = 0.01,
                       timeout_s: float | None = None) -> None:
        """Drive :meth:`tick` until no work is queued or in flight."""
        t0 = time.monotonic()
        while True:
            self.tick()
            if not self.queue.queued() and not self.fleet.busy:
                return
            if timeout_s is not None and time.monotonic() - t0 > timeout_s:
                raise TimeoutError(
                    f"service still busy after {timeout_s}s "
                    f"({self.queue.queued()} queued, "
                    f"{self.fleet.busy} in flight)")
            time.sleep(poll_s)

    # -- status ---------------------------------------------------------------

    def studies(self) -> list[dict]:
        return [self._study_row(rec) for rec in self.state.studies.values()]

    def study_status(self, study_id: str) -> dict:
        rec = self._record(study_id)
        row = self._study_row(rec)
        run = self.runs.get(study_id)
        if run is not None:
            row["totals"] = run.totals()
            row["quarantined"] = sorted(
                uid for uid, c in run.cells.items()
                if c.state == UNIT_QUARANTINED)
        return row

    def study_dir(self, study_id: str) -> Path:
        self._record(study_id)
        return self.studies_dir / study_id

    def status(self, now: float | None = None) -> dict:
        """Service-level snapshot: studies, queue fairness, fleet, cache."""
        return {
            "studies": self.state.tally(),
            "queue": self.queue.snapshot(now),
            "fleet": {"workers": self.fleet.pool.workers,
                      "busy": self.fleet.busy,
                      "running": heartbeat_snapshot(self.fleet.pool, now)},
            "golden_cache": {"entries": len(self.fleet.cache),
                             "hits": self.fleet.cache.hits,
                             "misses": self.fleet.cache.misses},
        }

    @property
    def idle(self) -> bool:
        return not self.queue.queued() and not self.fleet.busy

    def close(self) -> None:
        """Shut down like a crash the journals are built for.

        In-flight leases are terminated *without* journaling a failure —
        they replay as stale leases (spent attempts) and the next
        service over this root re-queues them, exactly like a SIGKILL.
        """
        if self._closed:
            return
        self._closed = True
        self.fleet.terminate_all()
        for run in self.runs.values():
            run.close()
        self.journal.close()
        self.tracer.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    # -- internals --------------------------------------------------------------

    def _record(self, study_id: str) -> StudyRecord:
        rec = self.state.studies.get(study_id)
        if rec is None:
            raise KeyError(f"no such study: {study_id}")
        return rec

    def _reopen(self, rec: StudyRecord) -> None:
        """Resume one non-terminal study from its own journal (restart)."""
        spec = StudySpec.from_dict(rec.spec_dict)
        run = StudyRun(rec.study_id, rec.tenant, spec,
                       self.studies_dir / rec.study_id, fsync=self.fsync)
        self.runs[rec.study_id] = run
        if run.complete:
            # Every unit finished but the service died before recording
            # the study terminal — settle it now.
            self._finish_study(rec, run)
            return
        for unit in run.pending_units():
            self.queue.push(rec.tenant, (run, unit))
        self.tracer.emit("study_resumed", study=rec.study_id,
                         tenant=rec.tenant,
                         pending=len(run.pending_units()))

    def _finish_study(self, rec: StudyRecord, run: StudyRun) -> None:
        self.journal.record_state(rec.study_id, STUDY_DONE)
        rec.state = STUDY_DONE
        rec.finished_ts = time.time()
        run.finish()
        run.close()
        self.metrics.counter("svc.studies_done").inc()
        self.tracer.emit("study_done", study=rec.study_id,
                         tenant=rec.tenant, **run.tally())

    def _study_row(self, rec: StudyRecord) -> dict:
        row = rec.to_dict()
        run = self.runs.get(rec.study_id)
        if run is not None:
            row["tally"] = run.tally()
            row["injections_done"] = run.injections_done()
        return row

    def _gauges(self, now: float) -> None:
        snap = self.queue.snapshot(now)
        self.metrics.gauge("svc.queue_depth").set(
            snap["queued"] + snap["inflight"])
        self.metrics.gauge("svc.busy_workers").set(self.fleet.busy)
        for tenant, t in snap["tenants"].items():
            self.metrics.gauge(f"svc.tenant_queued.{tenant}").set(
                t["queued"])
            self.metrics.gauge(f"svc.tenant_inflight.{tenant}").set(
                t["inflight"])
        self.metrics.gauge("svc.golden_cache_entries").set(
            len(self.fleet.cache))

    def _heartbeat(self, now: float) -> None:
        if self.heartbeat_s is None or not self.tracer.enabled:
            return
        if now - self._last_beat < self.heartbeat_s:
            return
        self._last_beat = now
        self.tracer.emit("svc_heartbeat",
                         queued=self.queue.queued(),
                         inflight=self.queue.inflight(),
                         busy=self.fleet.busy,
                         studies=self.state.tally(),
                         running=heartbeat_snapshot(self.fleet.pool, now))


__all__ = ["CampaignService", "SERVICE_EVENTS_NAME"]
