"""Offline integrity checker for study and service directories.

``repro.tools fsck PATH`` walks a study directory (or a whole service
root) and verifies the invariants the running system enforces online:

* **journal replay consistency** — the unit journal parses, carries a
  header, references only units of its own plan, and uses only legal
  states; a torn final line (the write a crash interrupted) is
  reported and, with ``--repair``, truncated off;
* **repository integrity** — every DONE unit's logs/masks files exist,
  parse, hold each ``set_id`` at most once, and agree with each other
  (every injection record carries the masks of its own fault set);
* **record digests** — the journal's ``done`` counts equal the counts
  re-derived by classifying the unit's records against its golden
  reference, and every (setup, benchmark) family agrees on one golden;
* **blob digests** — any content-addressed ``*.blob`` cache file under
  the tree hashes to its own name;
* **service ledger** — ``service.jsonl`` parses, study ids are unique,
  the fencing epoch is monotonic, and every non-purged study has its
  directory on disk.

Findings are ``{"path", "check", "detail", "repaired"}`` rows; the CLI
exits 0 when nothing (unrepaired) is wrong and 3 otherwise.  ``fsck``
is deliberately read-only except for ``--repair``, which only ever
truncates torn tails — the same repair the online loaders apply.

What fsck does *not* re-verify is the deterministic mask stream
against the unit seed — that is ingest validation's and the audit's
job (:mod:`repro.svc.attest`), which have the simulator at hand; fsck
must stay runnable on any directory, corrupted or synthetic.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.core.outcome import GoldenReference, InjectionRecord
from repro.core.parser import classify_all
from repro.sched.journal import (AUDIT_VOID, DONE, FAILED, LEASED,
                                 PENDING, QUARANTINED)
from repro.sched.scheduler import EVENTS_NAME, JOURNAL_NAME
from repro.svc.state import SERVICE_JOURNAL_NAME, STUDIES_DIR_NAME

LEGAL_UNIT_STATES = {PENDING, LEASED, DONE, FAILED, QUARANTINED,
                     AUDIT_VOID}


def _finding(path, check: str, detail: str, repaired: bool = False) -> dict:
    return {"path": str(path), "check": check, "detail": detail,
            "repaired": repaired}


def _scan_jsonl(path: Path):
    """Parse a JSONL file without mutating it.

    Returns ``(rows, torn_at, corrupt_detail)``: *torn_at* is the byte
    offset of a torn (crash-interrupted) final line, *corrupt_detail*
    describes a bad line with complete lines after it — real
    corruption no truncation can repair.
    """
    data = path.read_bytes()
    rows: list[dict] = []
    offset = 0
    lines = data.split(b"\n")
    for i, raw in enumerate(lines):
        stripped = raw.strip()
        if stripped:
            try:
                rows.append(json.loads(stripped))
            except (json.JSONDecodeError, UnicodeDecodeError):
                if all(not later.strip() for later in lines[i + 1:]):
                    return rows, offset, None
                return rows, None, (f"line {i + 1} is corrupt but "
                                    f"complete lines follow it")
        offset += len(raw) + 1
    return rows, None, None


def _check_jsonl(path: Path, findings: list, repair: bool,
                 check: str) -> list[dict] | None:
    """Scan one JSONL file, reporting (and maybe repairing) tears.

    Returns the parsed rows, or None when the file is corrupt beyond
    a tail truncation (the caller should not interpret partial rows).
    """
    if not path.exists():
        findings.append(_finding(path, check, "file is missing"))
        return None
    try:
        rows, torn_at, corrupt = _scan_jsonl(path)
    except OSError as exc:
        findings.append(_finding(path, check, f"unreadable: {exc}"))
        return None
    if corrupt is not None:
        findings.append(_finding(path, check, corrupt))
        return None
    if torn_at is not None:
        repaired = False
        if repair:
            with open(path, "r+b") as fh:
                fh.truncate(torn_at)
            repaired = True
        findings.append(_finding(
            path, check,
            f"torn final line at byte {torn_at}"
            + (" (truncated)" if repaired else " (run with --repair)"),
            repaired=repaired))
    return rows


def _replay_units(rows: list[dict]):
    """(header, last-state map, done-row map) from journal rows."""
    header = None
    last: dict[str, dict] = {}
    results: dict[str, dict] = {}
    for row in rows:
        kind = row.get("kind")
        if kind == "study" and header is None:
            header = row
        elif kind == "unit":
            uid = row.get("unit")
            if not isinstance(uid, str):
                continue
            last[uid] = row
            if row.get("state") == DONE:
                results[uid] = row
            elif row.get("state") == AUDIT_VOID:
                results.pop(uid, None)
    return header, last, results


def _load_records(rows: list[dict], path, findings: list):
    """Parse logs-repository rows into (golden, records, ok)."""
    golden = None
    records = []
    seen = set()
    ok = True
    for n, row in enumerate(rows, 1):
        kind, data = row.get("kind"), row.get("data")
        try:
            if kind == "golden":
                golden = GoldenReference.from_dict(data)
            elif kind == "injection":
                rec = InjectionRecord.from_dict(data)
                if rec.set_id in seen:
                    findings.append(_finding(
                        path, "duplicate-set-id",
                        f"set_id {rec.set_id} appears more than once"))
                    ok = False
                seen.add(rec.set_id)
                records.append(rec)
            else:
                findings.append(_finding(
                    path, "record-format",
                    f"row {n} has unknown kind {kind!r}"))
                ok = False
        except (TypeError, AttributeError) as exc:
            findings.append(_finding(path, "record-format",
                                     f"row {n}: {exc}"))
            ok = False
    return golden, records, ok


def fsck_study(study_dir, repair: bool = False) -> list[dict]:
    """Check one study directory; returns the findings."""
    study_dir = Path(study_dir)
    findings: list[dict] = []
    journal_path = study_dir / JOURNAL_NAME
    rows = _check_jsonl(journal_path, findings, repair, "journal-parse")
    if rows is None:
        return findings
    header, last, results = _replay_units(rows)
    if header is None:
        findings.append(_finding(journal_path, "journal-header",
                                 "no study header row"))
        return findings
    plan_units = set(header.get("units", []))
    goldens: dict[tuple, tuple] = {}   # (setup, bench) -> (golden, unit)
    for uid, row in sorted(last.items()):
        if uid not in plan_units:
            findings.append(_finding(
                journal_path, "journal-unknown-unit",
                f"unit {uid} is not in the journal's plan"))
        state = row.get("state")
        if state not in LEGAL_UNIT_STATES:
            findings.append(_finding(
                journal_path, "journal-bad-state",
                f"unit {uid} has illegal state {state!r}"))
    for uid, row in sorted(results.items()):
        file_id = uid.replace("/", "__")
        logs_path = study_dir / "logs" / f"{file_id}.jsonl"
        masks_path = study_dir / "masks" / f"{file_id}.jsonl"
        log_rows = _check_jsonl(logs_path, findings, repair, "logs-parse")
        mask_rows = _check_jsonl(masks_path, findings, repair,
                                 "masks-parse")
        if log_rows is None or mask_rows is None:
            continue
        golden, records, ok = _load_records(log_rows, logs_path, findings)
        masks_by_set: dict[int, list] = {}
        for n, mrow in enumerate(mask_rows, 1):
            set_id = mrow.get("set_id")
            if set_id in masks_by_set:
                findings.append(_finding(
                    masks_path, "duplicate-set-id",
                    f"set_id {set_id} appears more than once"))
                ok = False
            masks_by_set[set_id] = mrow.get("masks")
        for rec in records:
            if rec.set_id not in masks_by_set:
                findings.append(_finding(
                    logs_path, "record-mask-mismatch",
                    f"record {rec.set_id} has no fault set in the "
                    f"masks repository"))
                ok = False
            elif rec.masks != masks_by_set[rec.set_id]:
                findings.append(_finding(
                    logs_path, "record-mask-mismatch",
                    f"record {rec.set_id} does not carry the masks of "
                    f"its own fault set"))
                ok = False
        if golden is None:
            findings.append(_finding(logs_path, "missing-golden",
                                     "no golden reference row"))
            continue
        setup, benchmark = uid.split("/")[0], uid.split("/")[1]
        prior = goldens.get((setup, benchmark))
        if prior is None:
            goldens[(setup, benchmark)] = (golden.to_dict(), uid)
        elif prior[0] != golden.to_dict():
            findings.append(_finding(
                logs_path, "golden-mismatch",
                f"golden observables diverge from unit {prior[1]} of "
                f"the same ({setup}, {benchmark}) family"))
        if not ok:
            continue                   # counts would mis-diagnose
        claimed = row.get("counts")
        recomputed = classify_all(records, golden)
        if claimed != recomputed:
            findings.append(_finding(
                journal_path, "counts-mismatch",
                f"unit {uid}: journal counts {claimed!r} != counts "
                f"recomputed from its records {recomputed!r}"))
        if row.get("injections") not in (None, len(records)):
            findings.append(_finding(
                journal_path, "counts-mismatch",
                f"unit {uid}: journal claims {row.get('injections')} "
                f"injections but the logs hold {len(records)} records"))
    events_path = study_dir / EVENTS_NAME
    if events_path.exists():
        _check_jsonl(events_path, findings, repair, "events-parse")
    return findings


def _check_blobs(root: Path, findings: list) -> None:
    for blob in sorted(root.rglob("*.blob")):
        digest = hashlib.sha256(blob.read_bytes()).hexdigest()
        if digest != blob.stem:
            findings.append(_finding(
                blob, "blob-digest",
                f"content hashes to {digest[:12]}…, not its name"))


def fsck_service(root, repair: bool = False) -> list[dict]:
    """Check a whole service root (ledger + every study directory)."""
    root = Path(root)
    findings: list[dict] = []
    ledger_path = root / SERVICE_JOURNAL_NAME
    rows = _check_jsonl(ledger_path, findings, repair, "service-parse")
    if rows is None:
        return findings
    seen_ids: set[str] = set()
    last_epoch = 0
    purged: set[str] = set()
    for n, row in enumerate(rows, 1):
        kind = row.get("kind")
        if kind == "study":
            sid = row.get("id")
            if sid in seen_ids:
                findings.append(_finding(
                    ledger_path, "duplicate-study",
                    f"study id {sid} submitted more than once"))
            seen_ids.add(sid)
        elif kind == "epoch":
            epoch = int(row.get("epoch", 0))
            if epoch <= last_epoch:
                findings.append(_finding(
                    ledger_path, "epoch-regression",
                    f"row {n}: epoch {epoch} after epoch {last_epoch} "
                    f"— fences may collide across incarnations"))
            last_epoch = max(last_epoch, epoch)
        elif kind == "gc":
            purged.add(row.get("id"))
    studies_dir = root / STUDIES_DIR_NAME
    for sid in sorted(seen_ids):
        study_dir = studies_dir / sid
        if not study_dir.exists():
            if sid not in purged:
                findings.append(_finding(
                    study_dir, "missing-study-dir",
                    f"study {sid} is in the ledger (not purged) but "
                    f"has no directory"))
            continue
        findings.extend(fsck_study(study_dir, repair=repair))
    _check_blobs(root, findings)
    return findings


def fsck_path(path, repair: bool = False) -> tuple[str, list[dict]]:
    """Autodetect service root vs study dir and check it.

    Returns ``(kind, findings)`` with kind ``"service"`` or
    ``"study"``; raises ``ValueError`` when *path* is neither.
    """
    path = Path(path)
    if (path / SERVICE_JOURNAL_NAME).exists():
        return "service", fsck_service(path, repair=repair)
    if (path / JOURNAL_NAME).exists():
        return "study", fsck_study(path, repair=repair)
    raise ValueError(
        f"{path} is neither a service root (no {SERVICE_JOURNAL_NAME}) "
        f"nor a study directory (no {JOURNAL_NAME})")


__all__ = ["fsck_path", "fsck_study", "fsck_service"]
