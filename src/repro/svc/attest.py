"""Trust layer between the remote fleet and the study journals.

PR 8's fleet ingests worker-shipped record files verbatim; one buggy,
misversioned, or adversarial host could silently skew the SDC/DUE rates
of every study it touches.  This module makes the differential
methodology hold at distributed scale by *enforcing* record integrity
instead of presuming it:

* :func:`validate_complete` — semantic ingest validation of a
  ``POST /fleet/complete`` body: record counts must match the unit
  plan, every record's mask line must match the mask stream the server
  regenerates itself from the unit's deterministic seed (the
  "mask-stream integrity digest"), classifications must be legal
  values, and the shipped golden observables must match the golden the
  service has already seen for that (setup, benchmark) family.
  Violations raise :class:`RejectedComplete` with a machine-readable
  code (the HTTP layer maps it to 422).
* :func:`execute_challenge` — the determinism challenge: a small
  canned unit a worker must execute at registration, returning
  byte-identical logs/masks text and a matching pristine
  ``state_digest``, catching version skew and non-deterministic hosts
  before they are admitted to the lease pool.
* :class:`Attestor` — scorecards per worker (completes / rejects /
  divergences / heartbeat misses), the sampled re-execution audit
  queue (the ``prune.audit_plan`` idiom: a seeded RNG picks k% of
  remote completions for local re-execution and byte-for-byte diff),
  and the automatic-distrust policy that feeds ``svc fleet``.

The server-side mask regeneration is cheap by design: structure
geometry comes from a constructed (never stepped) simulator, exactly
like ``sched.plan.structure_names``, so validation costs JSON parsing
plus RNG replay — no simulation.
"""

from __future__ import annotations

import hashlib
import json
import random
from collections import deque
from functools import lru_cache
from pathlib import Path

from repro.core.maskgen import FaultMaskGenerator, StructureInfo
from repro.core.outcome import GoldenReference, InjectionRecord
from repro.core.parser import classify_all
from repro.obs.metrics import MetricsRegistry
from repro.sched.plan import StudySpec, WorkUnit

#: Legal values of ``InjectionRecord.reason`` — anything else in a
#: shipped record is a liar or a version-skewed worker.
REASONS = frozenset({
    "exit", "killed", "panic", "deadlock", "cycle-limit", "wall-clock",
    "op-budget", "assert", "sim-crash",
})

#: The canned determinism-challenge unit: small enough to run in
#: seconds, wide enough (golden run + mask generation + classification)
#: to catch version skew anywhere in the record-producing path.
CHALLENGE_WIRE = {
    "unit": {"setup": "MaFIN-x86", "benchmark": "sha",
             "structure": "int_rf", "fault_type": "transient"},
    "spec": {"setups": ["MaFIN-x86"], "benchmarks": ["sha"],
             "structures": ["int_rf"], "injections": 2, "seed": 20257,
             "n_checkpoints": 1, "early_stop": False},
}


class RejectedComplete(Exception):
    """A ``/fleet/complete`` body failed semantic ingest validation."""

    def __init__(self, code: str, detail: str):
        super().__init__(f"{code}: {detail}")
        self.code = code
        self.detail = detail
        self.worker: str | None = None   # filled in by the fleet
        self.unit: str | None = None
        self.distrusted = False          # True when this reject tripped
                                         # the worker over reject_limit


class WorkerDistrusted(Exception):
    """The worker failed attestation and may not hold leases."""

    def __init__(self, name: str, reason: str):
        super().__init__(f"worker {name} distrusted: {reason}")
        self.name = name
        self.reason = reason


class ChallengePending(Exception):
    """The worker registered but has not passed its challenge yet."""

    def __init__(self, name: str):
        super().__init__(f"worker {name} has not completed its "
                         f"determinism challenge")
        self.name = name


@lru_cache(maxsize=None)
def structure_geometry(setup: str, scaled: bool) -> dict:
    """name -> (entries, bits_per_entry) for every injectable structure.

    Same cheap-machine idiom as ``sched.plan.structure_names``: the
    dispatcher builds its fault-site map in the constructor, so geometry
    is available without running a single simulated cycle.
    """
    from repro.bench import suite
    from repro.core.dispatcher import build_sim
    from repro.sim.config import setup_config

    config = setup_config(setup, scaled=scaled)
    program = suite.program("sha", config.isa, 1)
    sim = build_sim(program, config)
    return {name: (site.array.entries, site.array.bits_per_entry)
            for name, site in sim.fault_sites().items()}


def canonical_masks_text(unit: WorkUnit, spec: StudySpec,
                         total_cycles: int) -> str:
    """Regenerate the unit's deterministic mask stream, serialized
    exactly as ``MasksRepository`` writes it — the reference against
    which a shipped masks file is byte-compared."""
    geometry = structure_geometry(unit.setup, spec.scaled)
    if unit.structure not in geometry:
        raise RejectedComplete(
            "mask-stream",
            f"{unit.setup} has no structure {unit.structure!r}")
    entries, bits = geometry[unit.structure]
    info = StructureInfo(unit.structure, entries, bits)
    gen = FaultMaskGenerator(unit.seed(spec.seed))
    sets = gen.generate(info, total_cycles, count=spec.injections,
                        fault_type=unit.fault_type,
                        confidence=spec.confidence,
                        error_margin=spec.error_margin)
    return "".join(json.dumps(fs.to_dict()) + "\n" for fs in sets)


def _parse_logs(logs_text: str):
    """(golden, records ordered by file position) from shipped logs text."""
    golden = None
    records = []
    for n, line in enumerate(logs_text.splitlines(), 1):
        if not line.strip():
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError as exc:
            raise RejectedComplete("malformed-logs",
                                   f"logs line {n}: {exc}") from exc
        kind, data = row.get("kind"), row.get("data")
        try:
            if kind == "golden":
                golden = GoldenReference.from_dict(data)
            elif kind == "injection":
                records.append(InjectionRecord.from_dict(data))
            else:
                raise RejectedComplete("malformed-logs",
                                       f"logs line {n}: unknown kind "
                                       f"{kind!r}")
        except RejectedComplete:
            raise
        except (TypeError, AttributeError) as exc:
            raise RejectedComplete("malformed-logs",
                                   f"logs line {n}: {exc}") from exc
    return golden, records


def validate_complete(unit: WorkUnit, spec: StudySpec, result: dict,
                      logs_text: str, masks_text: str,
                      expect_golden: dict | None = None) -> dict:
    """Semantically validate one remote completion.

    Raises :class:`RejectedComplete` with one of the machine-readable
    codes ``malformed-logs``, ``missing-golden``, ``golden-mismatch``,
    ``record-count``, ``bad-classification`` or ``mask-stream``;
    returns ``{"golden": <dict>, "counts": <recomputed counts>}`` on
    success so the caller can register the golden for the family.
    """
    golden, records = _parse_logs(logs_text)
    if golden is None:
        raise RejectedComplete("missing-golden",
                               "logs carry no golden reference row")
    if expect_golden is not None and golden.to_dict() != expect_golden:
        raise RejectedComplete(
            "golden-mismatch",
            f"golden observables for {unit.setup}/{unit.benchmark} "
            f"diverge from the service's reference (cycles "
            f"{golden.cycles} vs {expect_golden['cycles']}, output "
            f"{golden.output_hex!r} vs {expect_golden['output_hex']!r})")

    # --- record counts must match the unit plan ----------------------
    claimed = result.get("injections")
    if len(records) != claimed:
        raise RejectedComplete(
            "record-count",
            f"logs hold {len(records)} records but the result claims "
            f"{claimed}")
    if spec.injections is not None and len(records) != spec.injections:
        raise RejectedComplete(
            "record-count",
            f"unit plan requires {spec.injections} injections, logs "
            f"hold {len(records)}")
    set_ids = sorted(rec.set_id for rec in records)
    if set_ids != list(range(len(records))):
        raise RejectedComplete(
            "record-count",
            f"set_ids are not exactly 0..{len(records) - 1}: "
            f"{set_ids[:8]}{'...' if len(set_ids) > 8 else ''}")

    # --- classifications must be legal and self-consistent -----------
    for rec in records:
        if rec.reason not in REASONS:
            raise RejectedComplete(
                "bad-classification",
                f"set {rec.set_id} has illegal reason {rec.reason!r}")
    counts = classify_all(records, golden)
    if result.get("counts") != counts:
        raise RejectedComplete(
            "bad-classification",
            f"claimed counts {result.get('counts')!r} != counts "
            f"recomputed from the records {counts!r}")

    # --- the mask-stream integrity digest ----------------------------
    expected = canonical_masks_text(unit, spec, golden.cycles)
    got = hashlib.sha256(masks_text.encode()).hexdigest()
    want = hashlib.sha256(expected.encode()).hexdigest()
    if got != want:
        raise RejectedComplete(
            "mask-stream",
            f"masks digest {got[:12]} != {want[:12]} regenerated from "
            f"seed {unit.seed(spec.seed)}")
    by_set = {}
    for line in expected.splitlines():
        row = json.loads(line)
        by_set[row["set_id"]] = row["masks"]
    for rec in records:
        if rec.masks != by_set.get(rec.set_id):
            raise RejectedComplete(
                "mask-stream",
                f"record {rec.set_id} does not carry the masks of its "
                f"own fault set")
    return {"golden": golden.to_dict(), "counts": counts}


# -- the determinism challenge ----------------------------------------

#: Heartbeat allowance for a worker that is still *executing* its
#: determinism challenge.  The agent is single-threaded: while the
#: canned unit runs it cannot heartbeat, and it holds no leases, so the
#: ordinary miss budget would evict every slow-but-honest host before
#: it could submit a proof.
CHALLENGE_GRACE_S = 300.0

_PROOF_MEMO: dict = {}


def execute_challenge(wire: dict, workdir) -> dict:
    """Run the challenge unit into *workdir* and return the proof.

    Used by both sides of the handshake: the worker agent executes the
    unit the server sent, the server executes the same wire once to
    compute its expectation.  The proof is the verbatim logs/masks text
    plus the pristine-snapshot ``state_digest`` — byte-identical on
    every honest, version-matched host.
    """
    from repro.bench import suite
    from repro.core.dispatcher import InjectorDispatcher
    from repro.guard.integrity import state_digest
    from repro.sched.worker import run_unit
    from repro.sim.config import setup_config

    # The proof depends only on the wire (the files are deterministic
    # wherever they are written), so one execution serves every caller
    # in the process — the service's expectation, re-registrations, and
    # every test that needs a proof.
    memo_key = json.dumps(wire, sort_keys=True)
    if memo_key in _PROOF_MEMO:
        return _PROOF_MEMO[memo_key]

    unit = WorkUnit.from_dict(wire["unit"])
    spec = StudySpec.parse(wire["spec"])
    workdir = Path(workdir)
    logs = workdir / "challenge-logs.jsonl"
    masks = workdir / "challenge-masks.jsonl"
    for path in (logs, masks):
        path.unlink(missing_ok=True)
    run_unit(unit, spec, logs_path=logs, masks_path=masks, fsync=False)

    config = setup_config(unit.setup, scaled=spec.scaled)
    program = suite.program(unit.benchmark, config.isa, spec.scale)
    dispatcher = InjectorDispatcher(config, program,
                                    n_checkpoints=spec.n_checkpoints)
    dispatcher.run_golden()
    proof = {"logs": logs.read_text(), "masks": masks.read_text(),
             "state_digest": state_digest(dispatcher._pristine)}
    _PROOF_MEMO[memo_key] = proof
    return proof


# -- scorecards, audit sampling, distrust -----------------------------

class WorkerScorecard:
    """Trust ledger of one remote worker."""

    __slots__ = ("name", "completes", "rejects", "divergences", "misses",
                 "challenges_failed", "challenged_ok", "distrusted",
                 "reason")

    def __init__(self, name: str):
        self.name = name
        self.completes = 0
        self.rejects = 0
        self.divergences = 0
        self.misses = 0
        self.challenges_failed = 0
        self.challenged_ok = False
        self.distrusted = False
        self.reason: str | None = None

    def state(self, challenge_enabled: bool) -> str:
        if self.distrusted:
            return "distrusted"
        if challenge_enabled and not self.challenged_ok:
            return "pending-challenge"
        return "ok"

    def to_dict(self, challenge_enabled: bool = False) -> dict:
        return {"state": self.state(challenge_enabled),
                "completes": self.completes, "rejects": self.rejects,
                "divergences": self.divergences, "misses": self.misses,
                "challenges_failed": self.challenges_failed,
                "reason": self.reason}


class AuditTicket:
    """One remotely-completed unit sampled for local re-execution."""

    __slots__ = ("study_id", "unit", "spec", "worker", "attempt",
                 "logs_digest", "masks_digest")

    def __init__(self, study_id: str, unit: WorkUnit, spec: StudySpec,
                 worker: str, attempt: int, logs_digest: str,
                 masks_digest: str):
        self.study_id = study_id
        self.unit = unit
        self.spec = spec
        self.worker = worker
        self.attempt = attempt
        self.logs_digest = logs_digest
        self.masks_digest = masks_digest


def _file_digest(path) -> str:
    return hashlib.sha256(Path(path).read_bytes()).hexdigest()


class Attestor:
    """Scorecards + ingest validation + audit sampling + distrust."""

    def __init__(self, *, metrics: MetricsRegistry | None = None,
                 audit_fraction: float = 0.0, audit_seed: int = 0,
                 reject_limit: int = 3, challenge: bool = False,
                 challenge_dir=None):
        if not 0.0 <= audit_fraction <= 1.0:
            raise ValueError("audit_fraction must be in [0, 1]")
        if reject_limit < 1:
            raise ValueError("reject_limit must be >= 1")
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.audit_fraction = audit_fraction
        self.reject_limit = reject_limit
        self.challenge_enabled = challenge
        self.challenge_dir = challenge_dir
        self.scorecards: dict[str, WorkerScorecard] = {}
        self.audit_queue: deque = deque()
        # Same idiom as prune.audit_plan: one seeded RNG decides which
        # completions get re-executed, so a CI run samples the same
        # units every time.
        self._audit_rng = random.Random(audit_seed)
        self._golden_seen: dict = {}
        self._challenge_expect: dict | None = None

    # -- scorecards ---------------------------------------------------

    def scorecard(self, name: str) -> WorkerScorecard:
        card = self.scorecards.get(name)
        if card is None:
            card = self.scorecards[name] = WorkerScorecard(name)
        return card

    def distrust(self, name: str, reason: str) -> None:
        card = self.scorecard(name)
        if card.distrusted:
            return
        card.distrusted = True
        card.reason = reason
        self.metrics.counter("svc.attest.distrusted").inc()

    def note_miss(self, name: str) -> None:
        self.scorecard(name).misses += 1

    def challenge_pending(self, name: str) -> bool:
        """True while *name* is registered but has not proven itself —
        the window in which it is busy running the challenge and cannot
        heartbeat (see :data:`CHALLENGE_GRACE_S`)."""
        card = self.scorecards.get(name)
        return (self.challenge_enabled and card is not None
                and not card.distrusted and not card.challenged_ok)

    # -- admission ----------------------------------------------------

    def register_gate(self, name: str) -> dict | None:
        """Gate ``/fleet/register``; returns the challenge wire (or
        ``None``) for the registration response."""
        card = self.scorecard(name)
        if card.distrusted:
            raise WorkerDistrusted(name, card.reason or "distrusted")
        if not self.challenge_enabled:
            return None
        # Re-registration must re-prove determinism: the worker may
        # have restarted on new code since it last passed.
        card.challenged_ok = False
        return CHALLENGE_WIRE

    def admit_gate(self, name: str) -> None:
        """Gate the lease pool: distrusted and unchallenged workers out."""
        card = self.scorecard(name)
        if card.distrusted:
            raise WorkerDistrusted(name, card.reason or "distrusted")
        if self.challenge_enabled and not card.challenged_ok:
            raise ChallengePending(name)

    def challenge_expectation(self) -> dict:
        if self._challenge_expect is None:
            if self.challenge_dir is None:
                raise RuntimeError("challenge_dir not configured")
            self._challenge_expect = execute_challenge(
                CHALLENGE_WIRE, self.challenge_dir)
        return self._challenge_expect

    def verify_challenge(self, name: str, logs_text: str,
                         masks_text: str, digest: str | None) -> bool:
        expect = self.challenge_expectation()
        card = self.scorecard(name)
        ok = (logs_text == expect["logs"]
              and masks_text == expect["masks"]
              and digest == expect["state_digest"])
        if ok:
            card.challenged_ok = True
            self.metrics.counter("svc.attest.challenges_passed").inc()
        else:
            card.challenges_failed += 1
            self.metrics.counter("svc.attest.challenges_failed").inc()
            self.distrust(name, "determinism challenge failed")
        return ok

    # -- ingest validation --------------------------------------------

    def golden_key(self, unit: WorkUnit, spec: StudySpec) -> tuple:
        return (unit.setup, unit.benchmark, spec.scaled, spec.scale,
                spec.n_checkpoints, spec.timeout_s, spec.guard,
                spec.prune)

    def check_complete(self, name: str, unit: WorkUnit, spec: StudySpec,
                       result: dict, logs_text: str,
                       masks_text: str) -> None:
        """Validate one remote completion; raises RejectedComplete."""
        card = self.scorecard(name)
        key = self.golden_key(unit, spec)
        try:
            info = validate_complete(unit, spec, result, logs_text,
                                     masks_text,
                                     expect_golden=self._golden_seen.get(key))
        except RejectedComplete as exc:
            card.rejects += 1
            self.metrics.counter("svc.attest.rejected").inc()
            exc.worker = name
            exc.unit = unit.unit_id
            if not card.distrusted and card.rejects >= self.reject_limit:
                self.distrust(name, f"{card.rejects} rejected completes")
                exc.distrusted = True
            raise
        self._golden_seen.setdefault(key, info["golden"])

    def observe_golden(self, unit: WorkUnit, spec: StudySpec,
                       logs_path) -> None:
        """Register the golden of a locally-executed unit as the
        authoritative reference for its family."""
        key = self.golden_key(unit, spec)
        if key in self._golden_seen:
            return
        try:
            text = Path(logs_path).read_text()
        except OSError:
            return
        golden = None
        for line in text.splitlines():
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                break
            if row.get("kind") == "golden":
                golden = row["data"]   # last wins, like LogsRepository
        if golden is not None:
            self._golden_seen[key] = golden

    # -- sampled re-execution audits ----------------------------------

    def note_complete(self, study_id: str, unit: WorkUnit,
                      spec: StudySpec, name: str, attempt: int,
                      logs_path, masks_path) -> AuditTicket | None:
        """Score an accepted remote completion; maybe sample an audit."""
        self.scorecard(name).completes += 1
        if self.audit_fraction <= 0.0:
            return None
        if self._audit_rng.random() >= self.audit_fraction:
            return None
        ticket = AuditTicket(study_id, unit, spec, name, attempt,
                             _file_digest(logs_path),
                             _file_digest(masks_path))
        self.audit_queue.append(ticket)
        self.metrics.counter("svc.attest.audits_sampled").inc()
        return ticket

    def judge_audit(self, ticket: AuditTicket, logs_path,
                    masks_path) -> bool:
        """Byte-compare a local re-execution against the shipped files."""
        match = (_file_digest(logs_path) == ticket.logs_digest
                 and _file_digest(masks_path) == ticket.masks_digest)
        if match:
            self.metrics.counter("svc.attest.audits_ok").inc()
        else:
            self.scorecard(ticket.worker).divergences += 1
            self.metrics.counter("svc.attest.audits_diverged").inc()
            self.distrust(ticket.worker,
                          f"audit divergence on {ticket.unit.unit_id}")
        return match

    # -- reporting ----------------------------------------------------

    def snapshot(self) -> dict:
        m = self.metrics
        return {
            "challenge": self.challenge_enabled,
            "audit_fraction": self.audit_fraction,
            "audit_queue": len(self.audit_queue),
            "rejected": m.counter_value("svc.attest.rejected"),
            "audits_sampled": m.counter_value("svc.attest.audits_sampled"),
            "audits_ok": m.counter_value("svc.attest.audits_ok"),
            "audits_diverged": m.counter_value("svc.attest.audits_diverged"),
            "audits_inconclusive":
                m.counter_value("svc.attest.audits_inconclusive"),
            "voided": m.counter_value("svc.attest.voided"),
            "distrusted": m.counter_value("svc.attest.distrusted"),
            "workers": {name: card.to_dict(self.challenge_enabled)
                        for name, card in sorted(self.scorecards.items())},
        }


__all__ = [
    "REASONS", "CHALLENGE_WIRE", "RejectedComplete", "WorkerDistrusted",
    "ChallengePending", "structure_geometry", "canonical_masks_text",
    "validate_complete", "execute_challenge", "WorkerScorecard",
    "AuditTicket", "Attestor",
]
