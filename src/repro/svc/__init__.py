"""repro.svc — campaign-as-a-service above the scheduler stack.

The paper's study model is one operator, one study, one scheduler.
This package turns that into a long-lived multi-tenant service: a
stdlib-asyncio HTTP front end (:mod:`repro.svc.api`) accepts
strictly-validated :class:`~repro.sched.plan.StudySpec` submissions,
a weighted deficit-round-robin queue (:mod:`repro.svc.queue`) shares
one worker fleet fairly across tenants under per-tenant quotas, the
fleet (:mod:`repro.svc.fleet`) reuses sched's lease/retry/quarantine
semantics and caches compressed golden payloads *across* studies, and
a durable service journal (:mod:`repro.svc.state`) makes the whole
service kill-and-restart safe — no unit lost, no unit re-run.

Every study the service runs uses the unchanged :mod:`repro.sched`
on-disk layout, so ``obs serve``, ``obs report`` and ``sched status``
work on a service study directory verbatim.

The fleet is not confined to one machine: :mod:`repro.svc.remote`
agents (``repro.tools svc worker``) lease units over HTTP with
monotonic fencing tokens, heartbeat liveness, and content-addressed
golden-blob fetch — and :mod:`repro.svc.chaos` injects transport
faults (drop/duplicate/delay/disconnect) to prove the records stay
byte-identical to an all-local run.

Remote results are *enforced*, not presumed, honest:
:mod:`repro.svc.attest` validates every shipped record file
semantically at ingest (422 on violation), challenges workers for
determinism at registration, re-executes a sampled fraction of remote
completions locally, and retracts (``audit_void``) everything an
eventually-distrusted worker produced.  ``repro.tools fsck``
(:mod:`repro.svc.fsck`) checks the same invariants offline.

CLI: ``python -m repro.tools svc
serve | submit | list | cancel | worker | fleet | gc`` and
``python -m repro.tools fsck`` (see docs/service.md).
"""

from repro.svc.api import ServiceServer, serve_service
from repro.svc.attest import (Attestor, ChallengePending, RejectedComplete,
                              WorkerDistrusted, WorkerScorecard)
from repro.svc.chaos import NULL_CHAOS, TransportChaos
from repro.svc.fleet import (Completion, RemoteLease, RemoteWorker,
                             StaleFence, StudyRun, UnknownWorker,
                             WorkerFleet)
from repro.svc.fsck import fsck_path, fsck_service, fsck_study
from repro.svc.queue import FairQueue, QuotaExceeded, TenantPolicy
from repro.svc.remote import WorkerAgent
from repro.svc.service import CampaignService, collect_garbage
from repro.svc.state import (ACCEPTED, CANCELLED, RUNNING, STUDY_DONE,
                             ServiceJournal, ServiceState, StudyRecord,
                             load_service, study_id_for)

__all__ = [
    "CampaignService", "ServiceServer", "serve_service",
    "FairQueue", "TenantPolicy", "QuotaExceeded",
    "WorkerFleet", "StudyRun", "Completion",
    "RemoteWorker", "RemoteLease", "StaleFence", "UnknownWorker",
    "WorkerAgent", "TransportChaos", "NULL_CHAOS", "collect_garbage",
    "ServiceJournal", "ServiceState", "StudyRecord", "load_service",
    "study_id_for",
    "ACCEPTED", "RUNNING", "STUDY_DONE", "CANCELLED",
    "Attestor", "WorkerScorecard", "RejectedComplete", "WorkerDistrusted",
    "ChallengePending", "fsck_path", "fsck_study", "fsck_service",
]
