"""Remote worker agent — scale the campaign service across machines.

``python -m repro.tools svc worker --connect URL`` runs one
:class:`WorkerAgent`: it registers with a campaign service, long-polls
``POST /fleet/lease`` for units, executes them with the *same*
:class:`~repro.sched.pool.LeasePool` machinery a local fleet uses, and
reports results through ``POST /fleet/complete``.  To the service a
remote unit is indistinguishable from a local one — same journal rows,
same retry/quarantine policy, and (because the agent ships its unit
files verbatim) byte-identical study records.

The network is assumed hostile (and the CI chaos harness makes it so):

* every call retries on transport errors with exponential backoff and
  full jitter — the service being down is a delay, never a failure;
* completes are identified by the lease's *fence*; a retried complete
  whose first attempt landed is a server-side duplicate (no-op), and a
  fence revoked while we worked gets ``409 stale-fence`` — the agent
  discards the result, because the unit was already re-leased
  elsewhere;
* heartbeats report the fences the agent holds; the reply lists fences
  the *server* revoked, whose local processes the agent kills;
* ``409 unregistered`` (server restarted or evicted us) makes the
  agent kill everything it is running — those fences died with the old
  epoch — and re-register from scratch;
* golden blobs are fetched by sha256 digest from ``GET /blobs/…`` and
  cached on local disk; the digest is self-verifying, so a cache hit
  costs nothing and a corrupt file is re-fetched, not trusted.

The agent is deliberately single-threaded: one loop polls the local
pool, heartbeats on the server's cadence, and long-polls for work when
slots are free (using a short wait while units are running so their
completions are not delayed).  Keepalive lines on the lease stream are
its liveness signal — a stream silent past the keepalive budget times
out and retries.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import socket
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.sched.plan import StudySpec, WorkUnit
from repro.sched.pool import CRASHED, LeasePool, RESULT
from repro.svc.chaos import ChaosDrop, TransportChaos
from repro.svc.fleet import pack_blob, pack_text

#: Exponential-backoff envelope for every HTTP call.
BACKOFF_BASE_S = 0.25
BACKOFF_MAX_S = 5.0

#: Lease long-poll wait while the agent is otherwise idle; with units
#: running it polls with a short wait instead so completions report
#: promptly.
IDLE_WAIT_S = 20.0
BUSY_WAIT_S = 0.5


class AgentStopped(Exception):
    """Raised out of a retry loop when :meth:`WorkerAgent.stop` fired."""


class WorkerAgent:
    """One remote worker: lease, execute, complete — despite the network."""

    def __init__(self, url: str, *, name: str | None = None,
                 token: str | None = None, workers: int = 2,
                 cache_dir=None, scratch_dir=None, fsync: bool = True,
                 chaos: TransportChaos | None = None,
                 backoff_base_s: float = BACKOFF_BASE_S,
                 backoff_max_s: float = BACKOFF_MAX_S,
                 idle_wait_s: float = IDLE_WAIT_S):
        self.url = url.rstrip("/")
        self.name = name or f"{socket.gethostname()}-{os.getpid()}"
        self.token = token
        self.fsync = fsync
        self.pool = LeasePool(max(workers, 1))
        base = Path(scratch_dir) if scratch_dir is not None \
            else Path(f".repro-worker-{self.name}")
        self.scratch_dir = base / "scratch"
        self.cache_dir = (Path(cache_dir) if cache_dir is not None
                          else base / "blob-cache")
        self.chaos = chaos if chaos is not None else TransportChaos.from_env()
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self.idle_wait_s = idle_wait_s
        self._rng = random.Random()
        self._stopping = False
        # Contract learned at registration.
        self.heartbeat_s = 5.0
        self.epoch: int | None = None
        self._last_beat = 0.0
        # Stats (CLI summary + tests).
        self.completed = 0
        self.discarded = 0           # stale-fence / revoked results
        self.registrations = 0

    # -- lifecycle ----------------------------------------------------------

    def run(self) -> None:
        """Blocking agent loop until :meth:`stop` (the CLI entry point)."""
        self.register()
        try:
            while not self._stopping:
                self.step()
        except AgentStopped:
            pass
        finally:
            self.pool.terminate_all()

    def stop(self) -> None:
        """Thread/signal-safe: finish the current call, then exit."""
        self._stopping = True

    def step(self) -> None:
        """One agent round: report, heartbeat, then ask for work."""
        for lease, kind, payload in self.pool.poll():
            self._report(lease, kind, payload)
        if time.monotonic() - self._last_beat >= self.heartbeat_s:
            self.heartbeat()
        if self.pool.free_slots > 0:
            wire = self._lease(BUSY_WAIT_S if self.pool.running
                               else self.idle_wait_s)
            if wire is not None:
                self._launch(wire)
        elif self.pool.running:
            time.sleep(0.02)

    # -- protocol -----------------------------------------------------------

    def register(self) -> None:
        """(Re-)register; adopts the server's lease contract."""
        status, payload = self._call("/fleet/register", {
            "worker": self.name,
            "meta": {"pid": os.getpid(), "host": socket.gethostname(),
                     "slots": self.pool.workers}})
        if status != 200:
            raise RuntimeError(f"registration rejected ({status}): "
                               f"{payload.get('error', payload)}")
        self.heartbeat_s = float(payload.get("heartbeat_s",
                                             self.heartbeat_s))
        self.epoch = payload.get("epoch")
        self._last_beat = time.monotonic()
        self.registrations += 1
        if payload.get("challenge"):
            self._prove_challenge(payload["challenge"])

    def _prove_challenge(self, wire: dict) -> None:
        """Execute the server's determinism challenge and send the proof.

        The agent runs the unit the *server* sent (not a local
        constant), so a version-skewed host fails the byte comparison
        instead of silently executing a different plan.
        """
        from repro.svc.attest import execute_challenge

        proof = execute_challenge(wire, self.scratch_dir / "challenge")
        status, payload = self._call("/fleet/challenge", {
            "worker": self.name,
            "logs": pack_text(proof["logs"]),
            "masks": pack_text(proof["masks"]),
            "state_digest": proof["state_digest"]})
        if status != 200 or not payload.get("admitted"):
            raise RuntimeError(
                f"determinism challenge rejected ({status}): "
                f"{payload.get('error', payload)}")

    def heartbeat(self) -> None:
        self._last_beat = time.monotonic()
        status, payload = self._call("/fleet/heartbeat", {
            "worker": self.name,
            "fences": [lease.meta["fence"] for lease in self.pool.running]})
        if status == 409:
            self._reset_and_register()
            return
        for fence in payload.get("revoked", ()):
            for lease in list(self.pool.running):
                if lease.meta["fence"] == fence:
                    self.pool.terminate(lease)
                    self.discarded += 1

    def _lease(self, wait_s: float) -> dict | None:
        """One long-poll for work; None on timeout/failure (retry later)."""
        try:
            row = self._stream("/fleet/lease",
                               {"worker": self.name, "wait_s": wait_s},
                               read_timeout_s=wait_s + 3 * self.heartbeat_s)
        except AgentStopped:
            raise
        except OSError:
            return None                # transport trouble; next step retries
        if row is None:
            return None
        if row.get("reason") == "unregistered" \
                or row.get("error") == "unregistered":
            self._reset_and_register()
            return None
        return row.get("lease")

    def _launch(self, wire: dict) -> None:
        unit = WorkUnit.from_dict(wire["unit"])
        spec = StudySpec.from_dict(wire["spec"])
        study_dir = self.scratch_dir / wire["study"]
        logs = study_dir / "logs" / f"{unit.file_id}.jsonl"
        masks = study_dir / "masks" / f"{unit.file_id}.jsonl"
        # A fresh attempt starts from clean files so the shipped text
        # is byte-identical to a unit that ran locally on the server.
        for path in (logs, masks):
            if path.exists():
                path.unlink()
        blob = self._fetch_blob(wire.get("golden_digest"))
        wire = dict(wire)
        wire["want_blob"] = bool(wire.get("want_blob")) or (
            wire.get("golden_digest") is not None and blob is None)
        self.pool.launch(unit, spec, logs_path=logs, masks_path=masks,
                         attempt=wire.get("attempt", 1), golden_blob=blob,
                         fsync=self.fsync, want_blob=wire["want_blob"],
                         deadline_s=wire.get("deadline_s"), meta=wire)

    def _report(self, lease, kind: str, payload) -> None:
        wire = lease.meta
        body = {"fence": wire["fence"], "worker": self.name}
        if kind == RESULT:
            res = dict(payload)
            blob = res.pop("golden_blob", None)
            body["result"] = res
            if res.get("ok"):
                body["logs"] = pack_text(
                    Path(wire_logs_path(self.scratch_dir, wire)).read_text())
                body["masks"] = pack_text(
                    Path(wire_masks_path(self.scratch_dir,
                                         wire)).read_text())
                if blob is not None and wire.get("want_blob"):
                    body["golden_blob"] = pack_blob(blob)
        else:
            body["reason"] = "crashed" if kind == CRASHED else "timeout"
            body["detail"] = str(payload)
        status, response = self._call("/fleet/complete", body)
        if status == 200 and response.get("accepted"):
            self.completed += 1
        elif status == 409:
            self.discarded += 1        # revoked while we worked
        else:
            self.discarded += 1

    def _reset_and_register(self) -> None:
        """The server forgot us: our fences are dead, so is our work."""
        killed = self.pool.terminate_all()
        self.discarded += len(killed)
        self.register()

    # -- golden blobs -------------------------------------------------------

    def _fetch_blob(self, digest: str | None) -> bytes | None:
        if digest is None:
            return None
        cached = self.cache_dir / f"{digest}.blob"
        if cached.exists():
            data = cached.read_bytes()
            if hashlib.sha256(data).hexdigest() == digest:
                return data
            cached.unlink()            # corrupt cache entry: re-fetch
        data = self._get_bytes(f"/blobs/{digest}")
        if data is None \
                or hashlib.sha256(data).hexdigest() != digest:
            return None                # 404/garbled: run golden locally
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        tmp = cached.with_suffix(".tmp")
        tmp.write_bytes(data)
        os.replace(tmp, cached)
        return data

    # -- transport ----------------------------------------------------------

    def _call(self, path: str, body: dict) -> tuple[int, dict]:
        """POST with infinite transport retry (backoff + full jitter).

        Chaos hooks fire per attempt: a dropped request surfaces as a
        transport error (retried), a duplicated one is sent twice —
        which is exactly what a retry against a lost *response* looks
        like, so the server must tolerate it either way.
        """
        attempt = 0
        while True:
            if self._stopping:
                raise AgentStopped()
            try:
                self.chaos.before_request()
                sends = 2 if self.chaos.duplicate_request() else 1
                status = payload = None
                for _ in range(sends):
                    status, payload = self._post_once(path, body)
                return status, payload
            except ChaosDrop:
                pass
            except (OSError, urllib.error.URLError):
                pass
            self._sleep_backoff(attempt)
            attempt += 1

    def _post_once(self, path: str, body: dict) -> tuple[int, dict]:
        req = urllib.request.Request(
            self.url + path, data=json.dumps(body).encode(),
            headers=self._headers({"Content-Type": "application/json"}),
            method="POST")
        try:
            with urllib.request.urlopen(req, timeout=30.0) as resp:
                return resp.status, self._parse(resp.read())
        except urllib.error.HTTPError as exc:
            data = exc.read()
            if exc.code == 401:
                raise RuntimeError(
                    f"service rejected our token (401): "
                    f"{self._parse(data).get('error', '')}") from None
            return exc.code, self._parse(data)

    def _stream(self, path: str, body: dict,
                read_timeout_s: float) -> dict | None:
        """POST an NDJSON long-poll; returns the first non-keepalive row.

        Keepalives are consumed as liveness; a stream silent past
        *read_timeout_s* raises ``OSError`` (socket timeout) and the
        caller treats it as a failed poll.  No duplication chaos here —
        duplicating a lease request would grant two leases on purpose.
        """
        if self._stopping:
            raise AgentStopped()
        self.chaos.before_request()
        req = urllib.request.Request(
            self.url + path, data=json.dumps(body).encode(),
            headers=self._headers({"Content-Type": "application/json"}),
            method="POST")
        try:
            with urllib.request.urlopen(req,
                                        timeout=read_timeout_s) as resp:
                for raw in resp:
                    row = self._parse(raw)
                    if row.get("keepalive"):
                        continue
                    return row
        except urllib.error.HTTPError as exc:
            data = exc.read()
            if exc.code == 401:
                raise RuntimeError(
                    f"service rejected our token (401): "
                    f"{self._parse(data).get('error', '')}") from None
            return self._parse(data)
        return None

    def _get_bytes(self, path: str) -> bytes | None:
        """GET raw bytes with the same retry envelope; None on 404."""
        attempt = 0
        while True:
            if self._stopping:
                raise AgentStopped()
            try:
                self.chaos.before_request()
                req = urllib.request.Request(self.url + path,
                                             headers=self._headers({}))
                with urllib.request.urlopen(req, timeout=30.0) as resp:
                    return resp.read()
            except urllib.error.HTTPError as exc:
                exc.read()
                if exc.code == 404:
                    return None
            except ChaosDrop:
                pass
            except (OSError, urllib.error.URLError):
                pass
            self._sleep_backoff(attempt)
            attempt += 1

    def _headers(self, headers: dict) -> dict:
        if self.token is not None:
            headers["Authorization"] = f"Bearer {self.token}"
        return headers

    @staticmethod
    def _parse(data: bytes) -> dict:
        try:
            row = json.loads(data.decode() or "null")
        except (json.JSONDecodeError, UnicodeDecodeError):
            return {}
        return row if isinstance(row, dict) else {}

    def _sleep_backoff(self, attempt: int) -> None:
        delay = min(self.backoff_max_s,
                    self.backoff_base_s * (2 ** attempt))
        time.sleep(delay * self._rng.uniform(0.5, 1.0))


def wire_logs_path(scratch_dir: Path, wire: dict) -> Path:
    unit = WorkUnit.from_dict(wire["unit"])
    return Path(scratch_dir) / wire["study"] / "logs" \
        / f"{unit.file_id}.jsonl"


def wire_masks_path(scratch_dir: Path, wire: dict) -> Path:
    unit = WorkUnit.from_dict(wire["unit"])
    return Path(scratch_dir) / wire["study"] / "masks" \
        / f"{unit.file_id}.jsonl"


__all__ = ["WorkerAgent", "AgentStopped", "IDLE_WAIT_S"]
