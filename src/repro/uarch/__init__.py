"""Microarchitectural building blocks, every one an injectable
storage array (caches, TLBs, BTBs, RAS, issue queue, prefetchers).
"""
