"""Stride prefetcher — the "New" MaFIN components of Table IV.

The paper *added* L1D and L1I prefetchers to MARSS ("Enhancement of the
x86 model of MARSS with new components (performance related) to fully
resemble a modern design") and made them injectable.  This is a classic
PC/region-indexed stride table: ``[valid | tag | last_addr | stride |
confidence]`` packed into an injectable :class:`WordArray`.  A corrupted
stride or last-address launches prefetches of the wrong lines — again a
perf/pollution effect rather than a correctness one.
"""

from __future__ import annotations

from repro.uarch.array import FaultSite, WordArray

_TAG_BITS = 10
_ADDR_BITS = 32
_STRIDE_BITS = 12  # signed


class StridePrefetcher:
    """Train on an access stream; emit prefetch addresses on confidence."""

    def __init__(self, name: str, entries: int = 16, line_size: int = 64):
        self.name = name
        self.entries = entries
        self.line_size = line_size
        # Packed: [valid | tag | last(32) | stride(12) | conf(2)]
        self.array = WordArray(
            name, entries, 1 + _TAG_BITS + _ADDR_BITS + _STRIDE_BITS + 2)
        self._conf_shift = 0
        self._stride_shift = 2
        self._last_shift = 2 + _STRIDE_BITS
        self._tag_shift = self._last_shift + _ADDR_BITS
        self._valid_bit = 1 << (self._tag_shift + _TAG_BITS)

    def _index_tag(self, key: int) -> tuple[int, int]:
        return key % self.entries, (key // self.entries) % (1 << _TAG_BITS)

    def train(self, key: int, addr: int, cycle: int = 0) -> int | None:
        """Observe an access; returns a prefetch address or None."""
        idx, tag = self._index_tag(key)
        packed = self.array.read(idx, cycle)
        valid = bool(packed & self._valid_bit)
        old_tag = (packed >> self._tag_shift) & ((1 << _TAG_BITS) - 1)
        if not valid or old_tag != tag:
            self._write(idx, tag, addr, 0, 0)
            return None
        last = (packed >> self._last_shift) & 0xFFFFFFFF
        stride_raw = (packed >> self._stride_shift) & ((1 << _STRIDE_BITS) - 1)
        stride = stride_raw - (1 << _STRIDE_BITS) \
            if stride_raw & (1 << (_STRIDE_BITS - 1)) else stride_raw
        conf = packed & 3
        new_stride = addr - last
        if not -(1 << (_STRIDE_BITS - 1)) <= new_stride \
                < (1 << (_STRIDE_BITS - 1)):
            self._write(idx, tag, addr, 0, 0)
            return None
        if new_stride == stride and stride != 0:
            conf = min(conf + 1, 3)
        else:
            conf = 0
        self._write(idx, tag, addr, new_stride, conf)
        if conf >= 2:
            return (addr + new_stride) & 0xFFFFFFFF
        return None

    def _write(self, idx: int, tag: int, last: int, stride: int,
               conf: int) -> None:
        packed = self._valid_bit | (tag << self._tag_shift) | \
            ((last & 0xFFFFFFFF) << self._last_shift) | \
            ((stride & ((1 << _STRIDE_BITS) - 1)) << self._stride_shift) | \
            (conf & 3)
        self.array.write(idx, packed)

    def site(self) -> FaultSite:
        def live(entry: int) -> bool:
            return bool(self.array.peek(entry) & self._valid_bit)
        return FaultSite(self.name, self.array, live=live,
                         desc=f"{self.name} stride table ({self.entries})")

    def snapshot(self):
        return self.array.snapshot()

    def restore(self, state) -> None:
        self.array.restore(state)
