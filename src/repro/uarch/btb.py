"""Branch target buffers, in the two organizations of Table II.

MARSS keeps two BTBs — a 4-way 1K-entry buffer for direct branches and a
4-way 512-entry buffer for indirect branches — while gem5 keeps a single
direct-mapped 2K-entry BTB for all branches.  Entries are stored packed
(``tag | target``) in an injectable :class:`WordArray`; a flipped target
bit steers the front end down a wrong path that the execute stage later
repairs (a perf-only event, which is why BTBs barely show up in the
vulnerability figures).
"""

from __future__ import annotations

from repro.uarch.array import FaultSite, WordArray

_TAG_BITS = 16
_TARGET_BITS = 32


class BTB:
    """Set-associative (or direct-mapped) branch target buffer."""

    def __init__(self, name: str, entries: int, assoc: int):
        self.name = name
        self.entries = entries
        self.assoc = assoc
        self.sets = entries // assoc
        # Packed entry: [valid(1) | tag(16) | target(32)]
        self.array = WordArray(name, entries, 1 + _TAG_BITS + _TARGET_BITS)
        self._valid_bit = 1 << (_TAG_BITS + _TARGET_BITS)
        self.lru = [list(range(assoc)) for _ in range(self.sets)]

    def _set_tag(self, pc: int) -> tuple[int, int]:
        set_idx = (pc >> 1) % self.sets
        tag = (pc >> 1) & ((1 << _TAG_BITS) - 1)
        return set_idx, tag

    def lookup(self, pc: int, cycle: int = 0) -> int | None:
        """Predicted target for *pc*, or None on a BTB miss."""
        set_idx, tag = self._set_tag(pc)
        base = set_idx * self.assoc
        for way in range(self.assoc):
            packed = self.array.read(base + way, cycle)
            if packed & self._valid_bit and \
                    ((packed >> _TARGET_BITS) & ((1 << _TAG_BITS) - 1)) == tag:
                order = self.lru[set_idx]
                if order[0] != way:
                    order.remove(way)
                    order.insert(0, way)
                return packed & 0xFFFFFFFF
        return None

    def update(self, pc: int, target: int) -> None:
        set_idx, tag = self._set_tag(pc)
        base = set_idx * self.assoc
        victim = None
        for way in range(self.assoc):
            packed = self.array.peek(base + way)
            if packed & self._valid_bit and \
                    ((packed >> _TARGET_BITS) & ((1 << _TAG_BITS) - 1)) == tag:
                victim = way
                break
            if victim is None and not packed & self._valid_bit:
                victim = way
        if victim is None:
            victim = self.lru[set_idx][-1]
        packed = self._valid_bit | (tag << _TARGET_BITS) | \
            (target & 0xFFFFFFFF)
        self.array.write(base + victim, packed)
        order = self.lru[set_idx]
        if order[0] != victim:
            order.remove(victim)
            order.insert(0, victim)

    def site(self) -> FaultSite:
        def live(entry: int) -> bool:
            return bool(self.array.peek(entry) & self._valid_bit)
        return FaultSite(self.name, self.array, live=live,
                         desc=f"{self.name} ({self.entries} entries, "
                              f"{self.assoc}-way)")

    def snapshot(self):
        return (self.array.snapshot(), [tuple(order) for order in self.lru])

    def restore(self, state) -> None:
        array, lru = state
        self.array.restore(array)
        self.lru = [list(order) for order in lru]
