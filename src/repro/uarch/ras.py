"""Return address stack (16 entries in all three configurations)."""

from __future__ import annotations

from repro.uarch.array import FaultSite, WordArray


class RAS:
    """Circular return-address stack; entries are injectable."""

    def __init__(self, name: str = "ras", entries: int = 16):
        self.name = name
        self.entries = entries
        self.array = WordArray(name, entries, 32)
        self.top = 0
        self.depth = 0

    def push(self, addr: int) -> None:
        self.top = (self.top + 1) % self.entries
        self.array.write(self.top, addr)
        self.depth = min(self.depth + 1, self.entries)

    def pop(self, cycle: int = 0) -> int | None:
        if self.depth == 0:
            return None
        addr = self.array.read(self.top, cycle)
        self.top = (self.top - 1) % self.entries
        self.depth -= 1
        return addr

    def site(self) -> FaultSite:
        def live(entry: int) -> bool:
            if self.depth == 0:
                return False
            # Live entries are the `depth` slots ending at `top`.
            dist = (self.top - entry) % self.entries
            return dist < self.depth
        return FaultSite(self.name, self.array, live=live,
                         desc=f"return address stack ({self.entries})")

    def snapshot(self):
        return (self.array.snapshot(), self.top, self.depth)

    def restore(self, state) -> None:
        array, top, depth = state
        self.array.restore(array)
        self.top = top
        self.depth = depth
