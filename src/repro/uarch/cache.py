"""Set-associative cache with injectable data and tag arrays.

Two write policies, matching the two simulators (§III.C and DESIGN.md):

* ``mirror=False`` (gem5-like): a true **write-back** cache.  Stores dirty
  lines; dirty evictions propagate (possibly corrupted) data downwards.
* ``mirror=True`` (MARSS-like): the data array is a **mirror** of
  architecturally-current memory, the way the paper had to bolt data
  arrays onto MARSS next to QEMU's own memory image.  Stores update every
  resident copy *and* main memory; evictions discard the line (memory is
  already current), so a fault that is never loaded again dies with the
  line — one of MaFIN's extra masking mechanisms.

The cache is purely a *state* model: hit/miss decisions, replacement and
data movement.  The pipelines assign latencies and keep statistics.
"""

from __future__ import annotations

from repro.uarch.array import FaultSite, LineArray, WordArray


class Cache:
    def __init__(self, name: str, size: int, assoc: int, line_size: int,
                 mirror: bool = False):
        if size % (assoc * line_size):
            raise ValueError(f"{name}: size not divisible by way size")
        self.name = name
        self.size = size
        self.assoc = assoc
        self.line_size = line_size
        self.mirror = mirror
        self.sets = size // (assoc * line_size)
        self.off_bits = line_size.bit_length() - 1
        self.set_bits = self.sets.bit_length() - 1
        self.tag_shift = self.off_bits + self.set_bits
        nlines = self.sets * assoc
        self.data = LineArray(name, nlines, line_size)
        # Packed tag entry: [dirty | valid | tag]; flipping a tag bit
        # causes false misses/hits, flipping valid drops a line.
        self.tag_bits = 32 - self.tag_shift
        self.tags = WordArray(name + "_tag", nlines, self.tag_bits + 2)
        self._valid_bit = 1 << self.tag_bits
        self._dirty_bit = 1 << (self.tag_bits + 1)
        # MRU-first replacement order per set.
        self.lru = [list(range(assoc)) for _ in range(self.sets)]

    # -- address helpers ---------------------------------------------------

    def set_of(self, addr: int) -> int:
        return (addr >> self.off_bits) & (self.sets - 1)

    def tag_of(self, addr: int) -> int:
        return (addr >> self.tag_shift) & ((1 << self.tag_bits) - 1)

    def line_base(self, addr: int) -> int:
        return addr & ~(self.line_size - 1)

    def line_index(self, set_idx: int, way: int) -> int:
        return set_idx * self.assoc + way

    def addr_of_line(self, line: int, cycle: int = 0) -> int:
        """Reconstruct the base address stored in a line's tag."""
        set_idx, way = divmod(line, self.assoc)
        packed = self.tags.peek(line)
        tag = packed & ((1 << self.tag_bits) - 1)
        return (tag << self.tag_shift) | (set_idx << self.off_bits)

    # -- lookup / access ------------------------------------------------------

    def lookup(self, addr: int, cycle: int = 0) -> int | None:
        """Return the hitting way, or None.  Reads the tag array."""
        set_idx = self.set_of(addr)
        want = self.tag_of(addr)
        tags = self.tags
        base = set_idx * self.assoc
        fast = not tags.stuck and tags.watch is None
        for way in range(self.assoc):
            packed = tags.data[base + way] if fast else \
                tags.read(base + way, cycle)
            if packed & self._valid_bit and \
                    (packed & ((1 << self.tag_bits) - 1)) == want:
                return way
        return None

    def touch(self, set_idx: int, way: int) -> None:
        order = self.lru[set_idx]
        if order[0] != way:
            order.remove(way)
            order.insert(0, way)

    def read_data(self, addr: int, size: int, way: int,
                  cycle: int = 0) -> bytes:
        line = self.line_index(self.set_of(addr), way)
        offset = addr & (self.line_size - 1)
        return self.data.read_bytes(line, offset, size, cycle)

    def write_data(self, addr: int, data: bytes, way: int,
                   set_dirty: bool = True) -> None:
        line = self.line_index(self.set_of(addr), way)
        offset = addr & (self.line_size - 1)
        self.data.write_bytes(line, offset, data)
        if set_dirty and not self.mirror:
            self.tags.write(line, self.tags.peek(line) | self._dirty_bit)

    def is_dirty(self, line: int) -> bool:
        return bool(self.tags.peek(line) & self._dirty_bit)

    def is_valid_line(self, line: int) -> bool:
        return bool(self.tags.peek(line) & self._valid_bit)

    # -- fill / evict ------------------------------------------------------------

    def victim_way(self, set_idx: int) -> int:
        base = set_idx * self.assoc
        for way in range(self.assoc):
            if not self.tags.peek(base + way) & self._valid_bit:
                return way
        return self.lru[set_idx][-1]

    def evict(self, set_idx: int, way: int, consume: bool = True):
        """Remove a line; returns (addr, data, dirty) or None if invalid.

        In mirror mode the data is discarded without reading it (memory
        is current), so a resident fault dies unobserved; in write-back
        mode a dirty line's data is read out for the writeback.
        """
        line = self.line_index(set_idx, way)
        packed = self.tags.peek(line)
        if not packed & self._valid_bit:
            return None
        tag = packed & ((1 << self.tag_bits) - 1)
        addr = (tag << self.tag_shift) | (set_idx << self.off_bits)
        dirty = bool(packed & self._dirty_bit)
        data = None
        if dirty and not self.mirror and consume:
            data = self.data.read_bytes(line, 0, self.line_size)
        self.tags.write(line, 0)
        self.data.invalidate(line)
        return (addr, data, dirty)

    def fill(self, addr: int, line_data: bytes, cycle: int = 0):
        """Install *line_data* at *addr*; returns the eviction (if any)."""
        set_idx = self.set_of(addr)
        way = self.victim_way(set_idx)
        evicted = self.evict(set_idx, way)
        line = self.line_index(set_idx, way)
        self.tags.write(line, self.tag_of(addr) | self._valid_bit)
        self.data.fill(line, line_data)
        self.touch(set_idx, way)
        return evicted

    # -- fault-injection support -----------------------------------------------------

    def data_site(self) -> FaultSite:
        return FaultSite(self.name, self.data,
                         live=self.data.is_filled,
                         desc=f"{self.name} data array "
                              f"({self.size}B, {self.assoc}-way)")

    def tag_site(self) -> FaultSite:
        return FaultSite(self.name + "_tag", self.tags,
                         live=self.is_valid_line,
                         desc=f"{self.name} tag/valid/dirty array")

    def occupancy(self) -> int:
        """Number of valid lines (used by tests and reports)."""
        return sum(1 for i in range(self.tags.entries)
                   if self.tags.peek(i) & self._valid_bit)

    # -- snapshot protocol -----------------------------------------------------

    def snapshot(self):
        return (self.data.snapshot(), self.tags.snapshot(),
                [tuple(order) for order in self.lru])

    def restore(self, state) -> None:
        data, tags, lru = state
        self.data.restore(data)
        self.tags.restore(tags)
        self.lru = [list(order) for order in lru]
