"""Tournament branch predictor with the two indexing schemes.

Both MARSS and gem5 implement tournament predictors (local + global +
chooser), but — as the paper's Remark 6 explains — MARSS binds the final
decision to the *branch address* while gem5 binds it to the *global
branch history* (gshare style, the branch address is not used by the
global side at all).  Both variants are implemented here; the simulators
pick one, and the resulting front-end divergence perturbs the L1I access
stream between the two tools.
"""

from __future__ import annotations


def _ctr_update(ctr: int, taken: bool) -> int:
    if taken:
        return min(ctr + 1, 3)
    return max(ctr - 1, 0)


class TournamentPredictor:
    """Local + global 2-bit predictors with a chooser.

    ``scheme`` is ``"pc"`` (MARSS-like: global/chooser indexed by branch
    address) or ``"history"`` (gem5-like: indexed by global history).
    """

    def __init__(self, local_entries: int = 512, global_entries: int = 2048,
                 scheme: str = "pc", history_bits: int = 12):
        if scheme not in ("pc", "history"):
            raise ValueError(f"bad predictor scheme {scheme!r}")
        self.scheme = scheme
        self.local_entries = local_entries
        self.global_entries = global_entries
        self.history_bits = history_bits
        self.local_hist = [0] * local_entries      # per-branch history
        self.local_ctr = [1] * local_entries       # 2-bit counters
        self.global_ctr = [1] * global_entries
        self.chooser = [1] * global_entries        # <2 → local, >=2 → global
        self.ghr = 0

    def _indices(self, pc: int) -> tuple[int, int, int]:
        li = (pc >> 1) % self.local_entries
        if self.scheme == "pc":
            gi = (pc >> 1) % self.global_entries
            ci = (pc >> 1) % self.global_entries
        else:
            gi = (self.ghr ^ 0) % self.global_entries
            ci = self.ghr % self.global_entries
        return li, gi, ci

    def predict(self, pc: int) -> bool:
        li, gi, ci = self._indices(pc)
        lh = self.local_hist[li] % self.local_entries
        local_taken = self.local_ctr[lh] >= 2
        global_taken = self.global_ctr[gi] >= 2
        use_global = self.chooser[ci] >= 2
        return global_taken if use_global else local_taken

    def update(self, pc: int, taken: bool) -> None:
        li, gi, ci = self._indices(pc)
        lh = self.local_hist[li] % self.local_entries
        local_taken = self.local_ctr[lh] >= 2
        global_taken = self.global_ctr[gi] >= 2
        if local_taken != global_taken:
            # Train the chooser towards whichever component was right.
            self.chooser[ci] = _ctr_update(self.chooser[ci],
                                           global_taken == taken)
        self.local_ctr[lh] = _ctr_update(self.local_ctr[lh], taken)
        self.global_ctr[gi] = _ctr_update(self.global_ctr[gi], taken)
        self.local_hist[li] = ((self.local_hist[li] << 1) |
                               (1 if taken else 0)) & 0x3FF
        self.ghr = ((self.ghr << 1) | (1 if taken else 0)) & \
            ((1 << self.history_bits) - 1)

    def snapshot(self):
        return (self.local_hist.copy(), self.local_ctr.copy(),
                self.global_ctr.copy(), self.chooser.copy(), self.ghr)

    def restore(self, state) -> None:
        local_hist, local_ctr, global_ctr, chooser, ghr = state
        self.local_hist = local_hist.copy()
        self.local_ctr = local_ctr.copy()
        self.global_ctr = global_ctr.copy()
        self.chooser = chooser.copy()
        self.ghr = ghr
