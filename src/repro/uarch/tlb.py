"""Instruction/data TLBs with injectable valid + tag (+ frame) bits.

Table IV lists "Data TLB — Valid, Tag" and "Instr. TLB — Valid, Tag" as
injectable in both tools.  Entries pack ``[valid | vpn-tag | pfn]``: a
flipped tag bit makes the entry match the wrong page (wrong translation)
or stop matching (extra walk); a flipped frame bit redirects accesses to
a different physical page.
"""

from __future__ import annotations

from repro.sim.memory import PAGE_SHIFT
from repro.uarch.array import FaultSite, WordArray

_VPN_BITS = 20
_PFN_BITS = 20


class TLB:
    """Fully-associative TLB with FIFO replacement."""

    def __init__(self, name: str, entries: int = 32):
        self.name = name
        self.entries = entries
        # Packed: [valid(1) | vpn(20) | pfn(20)]
        self.array = WordArray(name, entries, 1 + _VPN_BITS + _PFN_BITS)
        self._valid_bit = 1 << (_VPN_BITS + _PFN_BITS)
        self._next = 0
        # vpn -> pfn accelerator, rebuilt whenever a fault or replacement
        # touches the packed array (the array stays authoritative).
        self._lut: dict[int, int] = {}
        self._lut_epoch = 0

    def _rebuild_lut(self) -> None:
        self._lut.clear()
        for i in range(self.entries):
            packed = self.array.peek(i)
            if packed & self._valid_bit:
                vpn = (packed >> _PFN_BITS) & ((1 << _VPN_BITS) - 1)
                self._lut[vpn] = packed & ((1 << _PFN_BITS) - 1)
        self._lut_epoch = self.array.fault_epoch

    def translate(self, addr: int, cycle: int = 0) -> int | None:
        """Physical address for *addr*, or None on a TLB miss."""
        vpn = (addr >> PAGE_SHIFT) & ((1 << _VPN_BITS) - 1)
        arr = self.array
        if not arr.stuck and arr.watch is None:
            if self._lut_epoch != arr.fault_epoch:
                self._rebuild_lut()
            pfn = self._lut.get(vpn)
            if pfn is None:
                return None
            return (pfn << PAGE_SHIFT) | (addr & ((1 << PAGE_SHIFT) - 1))
        for i in range(self.entries):
            packed = arr.read(i, cycle)
            if packed & self._valid_bit and \
                    ((packed >> _PFN_BITS) & ((1 << _VPN_BITS) - 1)) == vpn:
                pfn = packed & ((1 << _PFN_BITS) - 1)
                return (pfn << PAGE_SHIFT) | (addr & ((1 << PAGE_SHIFT) - 1))
        return None

    def insert(self, addr: int, paddr: int) -> None:
        vpn = (addr >> PAGE_SHIFT) & ((1 << _VPN_BITS) - 1)
        pfn = (paddr >> PAGE_SHIFT) & ((1 << _PFN_BITS) - 1)
        packed = self._valid_bit | (vpn << _PFN_BITS) | pfn
        # Evict whatever the FIFO pointer holds from the accelerator.
        old = self.array.peek(self._next)
        if old & self._valid_bit:
            self._lut.pop((old >> _PFN_BITS) & ((1 << _VPN_BITS) - 1), None)
        self.array.write(self._next, packed)
        self._lut[vpn] = pfn
        self._next = (self._next + 1) % self.entries

    def site(self) -> FaultSite:
        def live(entry: int) -> bool:
            return bool(self.array.peek(entry) & self._valid_bit)
        return FaultSite(self.name, self.array, live=live,
                         desc=f"{self.name} valid+tag+frame "
                              f"({self.entries} entries)")

    def snapshot(self):
        # The LUT must travel with the array: its epoch can match the
        # restored fault_epoch while its contents are stale, which would
        # silently turn hits into misses (a timing divergence).
        return (self.array.snapshot(), self._next, dict(self._lut),
                self._lut_epoch)

    def restore(self, state) -> None:
        array, nxt, lut, lut_epoch = state
        self.array.restore(array)
        self._next = nxt
        self._lut = dict(lut)
        self._lut_epoch = lut_epoch
