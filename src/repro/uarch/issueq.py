"""Issue queue with packed, injectable entries.

Table IV lists the Issue Queue among the injectable structures of both
tools.  The *dataflow payload* of each entry — µop kind, operation,
destination/source physical tags, ready bits, immediate, access size —
is stored packed in a :class:`WordArray`, so a bit flip genuinely changes
which registers are read, which operation executes, or which immediate is
used.  (The ROB linkage is control logic, which performance simulators do
not model as arrays; the paper scopes injection to storage arrays.)

A decoded-entry cache keyed on the array's ``fault_epoch`` keeps the
fault machinery off the no-fault hot path.
"""

from __future__ import annotations

from repro.uarch.array import FaultSite, WordArray

KINDS = ("alu", "load", "store", "br", "jmp", "ijmp", "sys", "nop")
OPS = ("add", "sub", "and", "or", "xor", "shl", "shr", "sar", "mul", "div",
       "mod", "not", "neg", "mov", "movt", "cmp",
       "eq", "ne", "lt", "le", "gt", "ge", "ult", "ule", "ugt", "uge",
       "none")

_KIND_BITS = 3
_OP_BITS = 5
_TAG_BITS = 9
_SIZE_BITS = 3

# Field layout, LSB first.
_OFF_KIND = 0
_OFF_OP = _OFF_KIND + _KIND_BITS
_OFF_DST = _OFF_OP + _OP_BITS
_OFF_HAS_DST = _OFF_DST + _TAG_BITS
_OFF_SRC1 = _OFF_HAS_DST + 1
_OFF_HAS_SRC1 = _OFF_SRC1 + _TAG_BITS
_OFF_RDY1 = _OFF_HAS_SRC1 + 1
_OFF_SRC2 = _OFF_RDY1 + 1
_OFF_HAS_SRC2 = _OFF_SRC2 + _TAG_BITS
_OFF_RDY2 = _OFF_HAS_SRC2 + 1
_OFF_SIZE = _OFF_RDY2 + 1
_OFF_IMM = _OFF_SIZE + _SIZE_BITS
ENTRY_BITS = _OFF_IMM + 32

_TAG_MASK = (1 << _TAG_BITS) - 1


class IQSlot:
    """Decoded view of one issue-queue entry plus its ROB linkage."""

    __slots__ = ("kind", "op", "dst", "src1", "rdy1", "src2", "rdy2",
                 "size", "imm", "rob", "epoch")

    def __init__(self):
        self.rob = None
        self.epoch = -1


class IssueQueue:
    def __init__(self, name: str, size: int):
        self.name = name
        self.size = size
        self.array = WordArray(name, size, ENTRY_BITS)
        self.valid = [False] * size
        self.slots = [IQSlot() for _ in range(size)]
        self.free = list(range(size - 1, -1, -1))
        self.count = 0
        # Wakeup index: producing tag -> slot indices waiting on it.
        # Purely a scheduling accelerator; the packed array stays the
        # authoritative state (a corrupted tag can strand its consumer,
        # which deadlocks the pipeline — a realistic fault outcome).
        self.waiters: dict[int, list[int]] = {}

    # -- pack/unpack -------------------------------------------------------

    @staticmethod
    def pack(kind, op, dst, src1, rdy1, src2, rdy2, size, imm) -> int:
        word = KINDS.index(kind)
        word |= OPS.index(op if op is not None else "none") << _OFF_OP
        if dst is not None:
            word |= (dst & _TAG_MASK) << _OFF_DST
            word |= 1 << _OFF_HAS_DST
        if src1 is not None:
            word |= (src1 & _TAG_MASK) << _OFF_SRC1
            word |= 1 << _OFF_HAS_SRC1
            word |= (1 if rdy1 else 0) << _OFF_RDY1
        else:
            word |= 1 << _OFF_RDY1
        if src2 is not None:
            word |= (src2 & _TAG_MASK) << _OFF_SRC2
            word |= 1 << _OFF_HAS_SRC2
            word |= (1 if rdy2 else 0) << _OFF_RDY2
        else:
            word |= 1 << _OFF_RDY2
        word |= (size & ((1 << _SIZE_BITS) - 1)) << _OFF_SIZE
        word |= (imm & 0xFFFFFFFF) << _OFF_IMM
        return word

    def _unpack_into(self, slot: IQSlot, word: int) -> None:
        slot.kind = KINDS[word & ((1 << _KIND_BITS) - 1)]
        op_idx = (word >> _OFF_OP) & ((1 << _OP_BITS) - 1)
        slot.op = OPS[op_idx] if op_idx < len(OPS) else "none"
        slot.dst = (word >> _OFF_DST) & _TAG_MASK \
            if word & (1 << _OFF_HAS_DST) else None
        slot.src1 = (word >> _OFF_SRC1) & _TAG_MASK \
            if word & (1 << _OFF_HAS_SRC1) else None
        slot.rdy1 = bool(word & (1 << _OFF_RDY1))
        slot.src2 = (word >> _OFF_SRC2) & _TAG_MASK \
            if word & (1 << _OFF_HAS_SRC2) else None
        slot.rdy2 = bool(word & (1 << _OFF_RDY2))
        slot.size = (word >> _OFF_SIZE) & ((1 << _SIZE_BITS) - 1)
        imm = (word >> _OFF_IMM) & 0xFFFFFFFF
        slot.imm = imm - 0x100000000 if imm & 0x80000000 else imm
        slot.epoch = self.array.fault_epoch

    # -- queue operations -----------------------------------------------------

    def insert(self, rob, kind, op, dst, src1, rdy1, src2, rdy2, size,
               imm) -> int | None:
        """Allocate a slot; returns the index or None when full."""
        if not self.free:
            return None
        idx = self.free.pop()
        word = self.pack(kind, op, dst, src1, rdy1, src2, rdy2, size, imm)
        self.array.write(idx, word)
        slot = self.slots[idx]
        self._unpack_into(slot, word)
        slot.rob = rob
        self.valid[idx] = True
        self.count += 1
        if src1 is not None and not rdy1:
            self.waiters.setdefault(src1, []).append(idx)
        if src2 is not None and not rdy2 and src2 != src1:
            self.waiters.setdefault(src2, []).append(idx)
        return idx

    def view(self, idx: int, cycle: int = 0) -> IQSlot:
        """Decoded entry; re-reads the packed word after any fault."""
        slot = self.slots[idx]
        arr = self.array
        if arr.stuck or arr.watch is not None or \
                slot.epoch != arr.fault_epoch:
            self._unpack_into(slot, arr.read(idx, cycle))
        return slot

    def wake(self, tag: int) -> None:
        """Mark sources matching a produced physical tag as ready."""
        waiting = self.waiters.pop(tag, None)
        if not waiting:
            return
        arr = self.array
        for idx in waiting:
            if not self.valid[idx]:
                continue  # slot released or squashed since it enqueued
            word = arr.peek(idx)
            changed = False
            if word & (1 << _OFF_HAS_SRC1) and \
                    not word & (1 << _OFF_RDY1) and \
                    ((word >> _OFF_SRC1) & _TAG_MASK) == tag:
                word |= 1 << _OFF_RDY1
                changed = True
            if word & (1 << _OFF_HAS_SRC2) and \
                    not word & (1 << _OFF_RDY2) and \
                    ((word >> _OFF_SRC2) & _TAG_MASK) == tag:
                word |= 1 << _OFF_RDY2
                changed = True
            if changed:
                arr.write(idx, word)
                self._unpack_into(self.slots[idx], word)

    def release(self, idx: int) -> None:
        self.valid[idx] = False
        self.slots[idx].rob = None
        self.free.append(idx)
        self.count -= 1

    def occupied(self):
        """Indices of valid entries (oldest-first by ROB sequence)."""
        return [i for i in range(self.size) if self.valid[i]]

    def site(self) -> FaultSite:
        return FaultSite(self.name, self.array,
                         live=lambda e: self.valid[e],
                         desc=f"issue queue ({self.size} entries, packed)")

    # -- snapshot protocol ------------------------------------------------------

    def snapshot(self, copy_entry):
        """Flat state blob; *copy_entry* maps a live ROB entry into the
        snapshot's object graph (the core passes its memoised copier so
        IQ linkage, ROB list and event queues share one copy per entry).
        """
        slots = []
        for idx in range(self.size):
            if not self.valid[idx]:
                slots.append(None)
                continue
            s = self.slots[idx]
            slots.append((s.kind, s.op, s.dst, s.src1, s.rdy1, s.src2,
                          s.rdy2, s.size, s.imm, s.epoch,
                          copy_entry(s.rob)))
        return (self.array.snapshot(), tuple(self.valid), tuple(self.free),
                self.count,
                {tag: tuple(idxs) for tag, idxs in self.waiters.items()},
                slots)

    def restore(self, state, copy_entry) -> None:
        array, valid, free, count, waiters, slots = state
        self.array.restore(array)
        self.valid = list(valid)
        self.free = list(free)
        self.count = count
        self.waiters = {tag: list(idxs) for tag, idxs in waiters.items()}
        for idx, data in enumerate(slots):
            slot = self.slots[idx]
            if data is None:
                slot.rob = None
                slot.epoch = -1
                continue
            (slot.kind, slot.op, slot.dst, slot.src1, slot.rdy1, slot.src2,
             slot.rdy2, slot.size, slot.imm, slot.epoch, rob) = data
            slot.rob = copy_entry(rob)
