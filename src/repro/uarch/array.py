"""Injectable storage arrays — the foundation of the fault injectors.

The paper's central premise (§III.C) is that performance simulators model
array-based hardware structures (register files, cache data/tag arrays,
queues, buffers, TLBs, BTBs) faithfully enough that flipping a modeled
storage bit is "largely equivalent to injecting it on the actual
hardware".  Every such structure in both simulators stores its state in a
:class:`WordArray` or :class:`LineArray` so that the injectors address
any bit of any entry uniformly, for all three fault models:

* **transient** — one-shot XOR of a stored bit at a given cycle;
* **intermittent** — a bit reads as stuck at 0/1 during a cycle window;
* **permanent** — a bit reads as stuck at 0/1 forever.

The arrays also implement the campaign controller's two early-stop
optimizations (§III.B): they report whether an entry is *live* at
injection time (via an owner-provided liveness callback) and they watch
the injected entry to detect "overwritten before ever read".

Every array supports the structured snapshot protocol used by the
checkpoint engine: ``snapshot()`` returns a cheap flat blob of the
mutable state (data words/lines, stuck-bit list, watch state, fault
epoch) and ``restore(state)`` loads such a blob back *in place*, so the
owning structure keeps its identity — liveness closures and fault sites
that captured the array stay valid across restores.
"""

from __future__ import annotations


class StuckBit:
    """One stuck-at fault on (entry, bit) active during [start, end)."""

    __slots__ = ("entry", "bit", "value", "start", "end")

    def __init__(self, entry: int, bit: int, value: int,
                 start: int = 0, end: float = float("inf")):
        self.entry = entry
        self.bit = bit
        self.value = value
        self.start = start
        self.end = end

    def active(self, cycle: int) -> bool:
        return self.start <= cycle < self.end


class _WatchState:
    """Tracks the first read/write of a watched entry (early-stop rule)."""

    __slots__ = ("entry", "bit", "first_event")

    def __init__(self, entry: int, bit: int):
        self.entry = entry
        self.bit = bit
        self.first_event: str | None = None  # "read" | "overwritten"


class StorageArray:
    """Common fault/watch machinery; subclasses define the storage."""

    def __init__(self, name: str, entries: int, bits_per_entry: int):
        self.name = name
        self.entries = entries
        self.bits_per_entry = bits_per_entry
        self.stuck: list[StuckBit] = []
        self.watch: _WatchState | None = None
        # Bumped whenever a fault alters stored state so owners can
        # invalidate any decoded-entry caches they keep for speed.
        self.fault_epoch = 0

    @property
    def total_bits(self) -> int:
        return self.entries * self.bits_per_entry

    def locate(self, flat_bit: int) -> tuple[int, int]:
        """Map a flat bit offset to (entry, bit)."""
        if not 0 <= flat_bit < self.total_bits:
            raise IndexError(f"{self.name}: bit {flat_bit} out of range")
        return divmod(flat_bit, self.bits_per_entry)[0], \
            flat_bit % self.bits_per_entry

    # -- fault API -------------------------------------------------------------

    def flip(self, entry: int, bit: int) -> None:
        """Transient fault: XOR the stored bit right now."""
        self._check(entry, bit)
        self._flip_storage(entry, bit)
        self.fault_epoch += 1

    def set_stuck(self, entry: int, bit: int, value: int,
                  start: int = 0, end: float = float("inf")) -> None:
        """Intermittent (bounded window) or permanent (unbounded) fault."""
        self._check(entry, bit)
        self.stuck.append(StuckBit(entry, bit, value, start, end))
        self.fault_epoch += 1

    def clear_faults(self) -> None:
        self.stuck.clear()
        self.watch = None
        self.fault_epoch += 1

    def watch_entry(self, entry: int, bit: int) -> None:
        """Arm the overwritten-before-read detector on (entry, bit)."""
        self.watch = _WatchState(entry, bit)

    def watch_event(self) -> str | None:
        """First event seen on the watched entry, if any."""
        return self.watch.first_event if self.watch else None

    def _check(self, entry: int, bit: int) -> None:
        if not 0 <= entry < self.entries:
            raise IndexError(f"{self.name}: entry {entry} out of range")
        if not 0 <= bit < self.bits_per_entry:
            raise IndexError(f"{self.name}: bit {bit} out of range")

    # -- hooks used by subclasses -----------------------------------------------

    def _note_read(self, entry: int) -> None:
        w = self.watch
        if w is not None and w.entry == entry and w.first_event is None:
            w.first_event = "read"

    def _note_write(self, entry: int, covers_bit: bool) -> None:
        w = self.watch
        if w is not None and w.entry == entry and w.first_event is None \
                and covers_bit:
            w.first_event = "overwritten"

    def _flip_storage(self, entry: int, bit: int) -> None:
        raise NotImplementedError

    # -- snapshot protocol ------------------------------------------------------

    def _snapshot_faults(self):
        """Fault machinery state as a flat tuple.

        :class:`StuckBit` objects are never mutated after creation, so
        the list is shallow-copied and the items shared.
        """
        w = self.watch
        return (tuple(self.stuck),
                (w.entry, w.bit, w.first_event) if w is not None else None,
                self.fault_epoch)

    def _restore_faults(self, state) -> None:
        stuck, watch, epoch = state
        self.stuck = list(stuck)
        if watch is None:
            self.watch = None
        else:
            w = _WatchState(watch[0], watch[1])
            w.first_event = watch[2]
            self.watch = w
        self.fault_epoch = epoch


class WordArray(StorageArray):
    """Array of word-sized entries stored as Python ints.

    Used for register files, queue payloads, packed TLB/BTB/issue-queue
    entries and prefetcher tables.
    """

    def __init__(self, name: str, entries: int, bits_per_entry: int):
        super().__init__(name, entries, bits_per_entry)
        self.data = [0] * entries
        self._mask = (1 << bits_per_entry) - 1

    def read(self, entry: int, cycle: int = 0) -> int:
        value = self.data[entry]
        if self.stuck:
            value = self._apply_stuck(entry, value, cycle)
        if self.watch is not None:
            self._note_read(entry)
        return value

    def write(self, entry: int, value: int) -> None:
        self.data[entry] = value & self._mask
        if self.watch is not None:
            self._note_write(entry, covers_bit=True)

    def peek(self, entry: int) -> int:
        """Read without triggering watch events (debug/tests/stats)."""
        return self.data[entry]

    def _apply_stuck(self, entry: int, value: int, cycle: int) -> int:
        for sb in self.stuck:
            if sb.entry == entry and sb.active(cycle):
                if sb.value:
                    value |= (1 << sb.bit)
                else:
                    value &= ~(1 << sb.bit)
        return value

    def _flip_storage(self, entry: int, bit: int) -> None:
        self.data[entry] ^= (1 << bit)

    def snapshot(self):
        return (self.data.copy(), self._snapshot_faults())

    def restore(self, state) -> None:
        data, faults = state
        self.data = data.copy()
        self._restore_faults(faults)


class LineArray(StorageArray):
    """Array of cache-line-sized entries stored as bytearrays.

    Lines are allocated lazily (``None`` means the physical line holds
    unobserved garbage — it is always filled before any read).  Byte-
    granular writes only count as "overwritten" for the watch logic when
    they cover the watched bit's byte.
    """

    def __init__(self, name: str, lines: int, line_size: int):
        super().__init__(name, lines, line_size * 8)
        self.line_size = line_size
        self.lines: list[bytearray | None] = [None] * lines

    def read_bytes(self, line: int, offset: int, size: int,
                   cycle: int = 0) -> bytes:
        buf = self.lines[line]
        if buf is None:
            raise ValueError(f"{self.name}: read of unfilled line {line}")
        if self.stuck:
            buf = self._apply_stuck(line, buf, cycle)
        if self.watch is not None:
            self._note_read(line)
        return bytes(buf[offset:offset + size])

    def write_bytes(self, line: int, offset: int, data: bytes) -> None:
        buf = self.lines[line]
        if buf is None:
            raise ValueError(f"{self.name}: write to unfilled line {line}")
        buf[offset:offset + len(data)] = data
        if self.watch is not None:
            w = self.watch
            byte = w.bit // 8
            self._note_write(line, offset <= byte < offset + len(data))

    def fill(self, line: int, data: bytes) -> None:
        """Install a full line (refill); counts as a covering write."""
        self.lines[line] = bytearray(data)
        if self.watch is not None:
            self._note_write(line, covers_bit=True)

    def invalidate(self, line: int) -> None:
        self.lines[line] = None

    def is_filled(self, line: int) -> bool:
        return self.lines[line] is not None

    def peek_line(self, line: int) -> bytes | None:
        buf = self.lines[line]
        return bytes(buf) if buf is not None else None

    def _apply_stuck(self, line: int, buf: bytearray, cycle: int):
        out = bytearray(buf)
        for sb in self.stuck:
            if sb.entry == line and sb.active(cycle):
                byte, bit = divmod(sb.bit, 8)
                if sb.value:
                    out[byte] |= (1 << bit)
                else:
                    out[byte] &= ~(1 << bit)
        return out

    def _flip_storage(self, line: int, bit: int) -> None:
        buf = self.lines[line]
        if buf is None:
            # Physical garbage in a never-filled line: the flip cannot be
            # observed (any use is preceded by a fill).  Record nothing.
            return
        byte, bitpos = divmod(bit, 8)
        buf[byte] ^= (1 << bitpos)

    def snapshot(self):
        return ([bytes(buf) if buf is not None else None
                 for buf in self.lines],
                self._snapshot_faults())

    def restore(self, state) -> None:
        lines, faults = state
        self.lines = [bytearray(buf) if buf is not None else None
                      for buf in lines]
        self._restore_faults(faults)


class FaultSite:
    """One injectable structure exposed by a simulator.

    ``live`` answers "does entry *e* currently hold live state?" — the
    campaign controller's early-stop rule (i).  ``desc`` feeds the
    Table IV feature listing.
    """

    __slots__ = ("name", "array", "live", "desc")

    def __init__(self, name: str, array: StorageArray, live=None,
                 desc: str = ""):
        self.name = name
        self.array = array
        self.live = live if live is not None else (lambda entry: True)
        self.desc = desc or name

    @property
    def total_bits(self) -> int:
        return self.array.total_bits
