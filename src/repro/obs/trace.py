"""Event tracing: typed, timestamped campaign events to pluggable sinks.

The campaign stack (dispatcher, campaign controller, parallel runner)
emits a small vocabulary of events — ``golden_start``/``golden_end``,
``checkpoint_taken``/``checkpoint_restored``, ``inject_start``/
``inject_end``, ``early_stop``, ``classify``, ``campaign_start``/
``campaign_end`` — through a :class:`Tracer`.  Where they go is the
sink's business: a bounded in-memory ring buffer for tests and live
introspection, a JSONL file for offline analysis (``repro.tools obs
summarize``), or the null sink, which is the default and free.

Tracing never feeds back into simulation: events carry wall-clock
observations only, so enabling any sink cannot change campaign results
(the parallel==serial bit-identity tests run instrumented).
"""

from __future__ import annotations

import json
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

#: The documented event vocabulary, in the order a serial campaign with
#: a single classify() call emits them (checkpoint/inject events repeat).
#: The ``study_*``/``unit_*`` names are the scheduler's unit-lifecycle
#: layer (repro.sched) wrapped around per-unit campaign streams.
EVENT_NAMES = (
    "study_start",
    "heartbeat",
    "unit_leased",
    "golden_start", "checkpoint_taken", "golden_end",
    "maskgen_start", "maskgen_end",
    "campaign_start",
    "inject_start", "checkpoint_restored", "cold_start",
    "guard.contamination", "early_stop",
    "inject_end",
    "campaign_end",
    "classify",
    "unit_done", "unit_failed", "unit_quarantined",
    "study_end",
)


@dataclass(frozen=True)
class TraceEvent:
    """One telemetry event: a name, a wall-clock stamp, typed fields."""

    name: str
    ts: float                       # seconds since the epoch (time.time)
    fields: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"name": self.name, "ts": self.ts, **self.fields}

    @staticmethod
    def from_dict(d: dict) -> "TraceEvent":
        d = dict(d)
        name = d.pop("name")
        ts = d.pop("ts", 0.0)
        return TraceEvent(name=name, ts=ts, fields=d)


class NullSink:
    """Discards everything; the zero-cost default."""

    def write(self, event: TraceEvent) -> None:
        pass

    def close(self) -> None:
        pass


class RingBufferSink:
    """Keeps the last *capacity* events in memory."""

    def __init__(self, capacity: int = 4096):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._buf: deque = deque(maxlen=capacity)

    def write(self, event: TraceEvent) -> None:
        self._buf.append(event)

    def close(self) -> None:
        pass

    @property
    def events(self) -> list:
        return list(self._buf)

    def names(self) -> list:
        return [e.name for e in self._buf]

    def __len__(self) -> int:
        return len(self._buf)


class JSONLSink:
    """Appends one JSON object per event to *path*.

    The file format is the input of ``repro.tools obs summarize``; see
    docs/observability.md for the schema.
    """

    def __init__(self, path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a")

    def write(self, event: TraceEvent) -> None:
        if self._fh.closed:            # late emits (e.g. classify() after
            return                     # the campaign closed the file)
        self._fh.write(json.dumps(event.to_dict()) + "\n")

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()


class TeeSink:
    """Fans every event out to several sinks."""

    def __init__(self, *sinks):
        self.sinks = tuple(sinks)

    def write(self, event: TraceEvent) -> None:
        for sink in self.sinks:
            sink.write(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


class Tracer:
    """Front-end the instrumented code talks to.

    ``emit`` is a no-op when the sink is null — instrumentation sites in
    per-cycle loops additionally guard on :attr:`enabled` so disabled
    tracing costs one attribute read.
    """

    def __init__(self, sink=None):
        self.sink = sink if sink is not None else NullSink()
        self.enabled = not isinstance(self.sink, NullSink)

    def emit(self, name: str, **fields) -> None:
        if not self.enabled:
            return
        self.sink.write(TraceEvent(name=name, ts=time.time(),
                                   fields=fields))

    def close(self) -> None:
        self.sink.close()


#: Shared do-nothing tracer; instrumented modules default to this.
NULL_TRACER = Tracer()


def load_events(path) -> list:
    """Read a JSONL events file back into :class:`TraceEvent` objects."""
    events = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(TraceEvent.from_dict(json.loads(line)))
    return events
