"""Self-contained single-file HTML study report.

Rendered from the same :class:`~repro.obs.live.StudyView` snapshot the
status server exposes, in the spirit of the paper's figs. 2-6: per
structure×benchmark outcome stacked bars — proportions, not raw counts
— annotated with Wilson confidence intervals and the converged-at-
99 %/3 % flag, plus the phase/speedup breakdown, latency percentiles,
the guard/contamination section, and a scheduler lease timeline.

The output is one ``.html`` file with inline CSS and zero external
assets, scripts, or network fetches — it can be archived as a CI
artifact or mailed around and will render identically forever.
Rendering is deterministic: everything comes from the snapshot (pass a
fixed ``now``), so the same study directory yields byte-identical
reports (tested).
"""

from __future__ import annotations

import html

from repro.core.ioutil import atomic_write_text
from repro.obs.live import load_study_view

#: Fault-effect class palette (stacked-bar segment colours).
CLASS_COLORS = {
    "Masked": "#7cb342",
    "SDC": "#e53935",
    "DUE": "#fb8c00",
    "DUE (true)": "#fb8c00",
    "DUE (false)": "#ffb74d",
    "Timeout": "#8e24aa",
    "Crash": "#6d4c41",
    "Assert": "#1e88e5",
    "Non-Masked": "#e53935",
}
_FALLBACK_COLOR = "#90a4ae"

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Helvetica, Arial,
       sans-serif; margin: 2rem auto; max-width: 70rem; color: #263238;
       background: #fafafa; }
h1 { font-size: 1.5rem; } h2 { font-size: 1.15rem; margin-top: 2rem;
     border-bottom: 1px solid #cfd8dc; padding-bottom: .25rem; }
table { border-collapse: collapse; width: 100%; font-size: .85rem; }
th, td { text-align: left; padding: .3rem .5rem;
         border-bottom: 1px solid #eceff1; vertical-align: middle; }
th { color: #546e7a; font-weight: 600; }
.num { text-align: right; font-variant-numeric: tabular-nums; }
.bar { display: flex; height: 1.1rem; min-width: 14rem;
       border-radius: 2px; overflow: hidden; background: #eceff1; }
.bar span { display: block; height: 100%; }
.badge { display: inline-block; padding: .05rem .45rem;
         border-radius: 9px; font-size: .75rem; font-weight: 600; }
.ok { background: #dcedc8; color: #33691e; }
.warn { background: #ffecb3; color: #e65100; }
.bad { background: #ffcdd2; color: #b71c1c; }
.muted { color: #90a4ae; }
.legend span.swatch { display: inline-block; width: .8rem;
        height: .8rem; border-radius: 2px; margin: 0 .25rem 0 .9rem;
        vertical-align: -.1rem; }
.timeline { position: relative; height: 1rem; background: #eceff1;
            border-radius: 2px; min-width: 16rem; }
.timeline span { position: absolute; top: 0; height: 100%;
                 border-radius: 2px; opacity: .85; }
.kv { display: flex; flex-wrap: wrap; gap: .4rem 2rem;
      font-size: .9rem; margin: .6rem 0; }
.kv b { font-variant-numeric: tabular-nums; }
footer { margin-top: 2.5rem; font-size: .75rem; color: #90a4ae; }
"""


def _esc(text) -> str:
    return html.escape(str(text), quote=True)


def _fmt_s(seconds) -> str:
    if seconds is None:
        return "—"
    seconds = float(seconds)
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.1f}s"


def _class_color(cls: str) -> str:
    if cls in CLASS_COLORS:
        return CLASS_COLORS[cls]
    base = cls.split(" (")[0]
    return CLASS_COLORS.get(base, _FALLBACK_COLOR)


def _stacked_bar(convergence: dict) -> str:
    """One cell's outcome proportions as an inline stacked bar."""
    n = convergence["n"]
    if not n:
        return '<div class="bar"></div>'
    segs = []
    for cls, ci in convergence["classes"].items():
        if not ci["count"]:
            continue
        pct = 100.0 * ci["proportion"]
        tip = (f"{cls}: {ci['count']}/{n} = {pct:.1f}% "
               f"(99% CI {100 * ci['lo']:.1f}–{100 * ci['hi']:.1f}%)")
        segs.append(
            f'<span style="width:{pct:.3f}%;'
            f'background:{_class_color(cls)}" title="{_esc(tip)}"></span>')
    return f'<div class="bar">{"".join(segs)}</div>'


def _conv_badge(convergence: dict) -> str:
    margin = convergence["margin"]
    conf = int(round(100 * convergence["confidence"]))
    err = 100 * convergence["error_margin"]
    if convergence["converged"]:
        return (f'<span class="badge ok" title="every class interval '
                f'within ±{err:.0f}%">converged {conf}%/{err:.0f}%</span>')
    if convergence["n"] == 0:
        return '<span class="badge muted">no data</span>'
    return (f'<span class="badge warn">±{100 * margin:.1f}% '
            f'of ±{err:.0f}%</span>')


def _state_badge(cell: dict) -> str:
    state = cell["state"]
    css = {"done": "ok", "leased": "warn", "failed": "warn",
           "quarantined": "bad"}.get(state, "muted")
    extra = " STALLED" if cell.get("stalled") else ""
    return f'<span class="badge {css}">{_esc(state)}{_esc(extra)}</span>'


def _legend(classes) -> str:
    spans = "".join(
        f'<span class="swatch" style="background:{_class_color(c)}">'
        f'</span>{_esc(c)}' for c in classes)
    return f'<div class="legend">{spans}</div>'


def _outcome_section(snapshot: dict) -> list[str]:
    cells = snapshot["cells"]
    classes: list[str] = []
    for cell in cells:
        for cls in cell["convergence"]["classes"]:
            if cls not in classes:
                classes.append(cls)
    by_structure: dict[str, list[dict]] = {}
    for cell in cells:
        parts = cell["unit"].split("/")
        structure = parts[2] if len(parts) == 4 else cell["unit"]
        by_structure.setdefault(structure, []).append(cell)
    out = ["<h2>Outcome proportions by structure "
           "(Wilson 99&thinsp;% intervals)</h2>",
           _legend(classes)]
    for structure, group in by_structure.items():
        out.append(f"<h3>{_esc(structure)}</h3>")
        out.append("<table><tr><th>benchmark / setup</th><th>state</th>"
                   '<th class="num">n</th><th>outcomes</th>'
                   "<th>convergence</th></tr>")
        for cell in group:
            parts = cell["unit"].split("/")
            label = (f"{parts[1]} / {parts[0]} / {parts[3]}"
                     if len(parts) == 4 else cell["unit"])
            conv = cell["convergence"]
            planned = cell.get("planned")
            n_txt = (f"{conv['n']}/{planned}" if planned
                     else f"{conv['n']}")
            out.append(
                f"<tr><td>{_esc(label)}</td>"
                f"<td>{_state_badge(cell)}</td>"
                f'<td class="num">{_esc(n_txt)}</td>'
                f"<td>{_stacked_bar(conv)}</td>"
                f"<td>{_conv_badge(conv)}</td></tr>")
        out.append("</table>")
    return out


def _progress_section(snapshot: dict) -> list[str]:
    prog = snapshot["progress"]
    tally = snapshot["tally"]
    phases = snapshot["phases"]
    cp = snapshot["checkpoint"]
    total_phase = sum(phases.values()) or 1.0
    phase_bar = "".join(
        f'<span style="width:{100 * t / total_phase:.2f}%;'
        f'background:{color}" title="{_esc(name)} {t:.3f}s"></span>'
        for (name, t), color in zip(phases.items(),
                                    ("#1e88e5", "#8e24aa", "#fb8c00",
                                     "#7cb342")))
    eta = prog["eta_s"]
    planned = prog["planned_injections"]
    lat = snapshot["latency"]
    rows = []
    for name, h in (("inject", lat["inject_s"]), ("unit", lat["unit_s"])):
        if not h["count"]:
            continue
        rows.append(
            f"<tr><td>{name} wall</td>"
            f'<td class="num">{h["count"]}</td>'
            f'<td class="num">{h["p50"]:.3f}s</td>'
            f'<td class="num">{h["p90"]:.3f}s</td>'
            f'<td class="num">{h["p99"]:.3f}s</td>'
            f'<td class="num">{h["max"]:.3f}s</td></tr>')
    out = ["<h2>Progress &amp; throughput</h2>", '<div class="kv">']
    out.append(f"<span>injections <b>{snapshot['injections_done']}"
               + (f" / {planned}" if planned else "") + "</b></span>")
    out.append(f"<span>units done <b>{tally.get('done', 0)}"
               f" / {snapshot['units']}</b></span>")
    out.append(f"<span>rate <b>{prog['injections_per_sec']:.1f}/s</b>"
               "</span>")
    out.append(f"<span>ETA <b>{_fmt_s(eta)}</b></span>")
    out.append(f"<span>converged cells <b>{prog['converged_cells']}"
               f" / {snapshot['units']}</b></span>")
    out.append(f"<span>wall span <b>{_fmt_s(snapshot['wall_span_s'])}"
               "</b></span>")
    out.append("</div>")
    out.append(f'<div class="bar" style="max-width:32rem">{phase_bar}'
               "</div>")
    out.append('<p class="muted">phase wall time: '
               + " · ".join(f"{name[:-2]} {t:.3f}s"
                            for name, t in phases.items())
               + f" — checkpoint restores skipped "
                 f"{100 * cp['speedup_fraction']:.1f}% of faulty-run "
                 f"cycles ({cp['restores']} restores, "
                 f"{cp['cold_starts']} cold starts)</p>")
    if rows:
        out.append('<table style="max-width:40rem"><tr><th>phase</th>'
                   '<th class="num">n</th><th class="num">p50</th>'
                   '<th class="num">p90</th><th class="num">p99</th>'
                   '<th class="num">max</th></tr>'
                   + "".join(rows) + "</table>")
    return out


def _guard_section(snapshot: dict) -> list[str]:
    guard = snapshot["guard"]
    out = ["<h2>Guard &amp; contamination</h2>"]
    if not guard["contaminations"] and not guard["invariant_violations"]:
        out.append('<p class="muted">no contamination incidents, no '
                   "invariant violations</p>")
        return out
    out.append('<div class="kv">'
               f"<span>contamination incidents "
               f"<b>{guard['contaminations']}</b> "
               "(machine condemned and rebuilt)</span>"
               f"<span>invariant violations "
               f"<b>{guard['invariant_violations']}</b></span></div>")
    if guard["invariants"]:
        out.append("<table style=\"max-width:30rem\">"
                   "<tr><th>invariant</th>"
                   '<th class="num">violations</th></tr>')
        for inv, count in sorted(guard["invariants"].items()):
            out.append(f"<tr><td>{_esc(inv)}</td>"
                       f'<td class="num">{count}</td></tr>')
        out.append("</table>")
    return out


def _prune_section(snapshot: dict) -> list[str]:
    """Pruning summary — rendered only when a campaign actually pruned."""
    prune = snapshot.get("prune") or {}
    if not prune.get("plans"):
        return []
    out = ["<h2>Pruning</h2>"]
    rate = prune.get("rate", 0.0)
    out.append('<div class="kv">'
               f"<span>masked by analysis <b>{prune['masked']}</b></span>"
               f"<span>collapsed <b>{prune['collapsed']}</b> "
               f"({prune['classes']} classes)</span>"
               f"<span>simulated <b>{prune['simulated']}</b> of "
               f"{prune['masks']} masks</span>"
               f"<span>prune rate <b>{100 * rate:.1f}%</b></span>"
               f"<span>traces <b>{prune['traces_recorded']}</b> recorded, "
               f"<b>{prune['trace_cache_hits']}</b> cache hits</span>"
               + (f"<span>audit <b>{prune['audit_checked']}</b> "
                  f"re-simulated, <b>{prune['audit_divergences']}</b> "
                  "divergences</span>"
                  if prune.get("audit_checked") else "")
               + "</div>")
    if prune.get("rules"):
        out.append("<table style=\"max-width:30rem\">"
                   "<tr><th>rule</th><th class=\"num\">masks</th></tr>")
        for rule, count in sorted(prune["rules"].items()):
            out.append(f"<tr><td>{_esc(rule)}</td>"
                       f'<td class="num">{count}</td></tr>')
        out.append("</table>")
    return out


def _timeline_section(snapshot: dict, transitions) -> list[str]:
    spans: dict[str, list] = {}
    open_lease: dict[str, float] = {}
    t0 = t1 = None
    for row in transitions:
        ts = row.get("ts")
        uid = row.get("unit")
        state = row.get("state")
        if not isinstance(ts, (int, float)) or not uid:
            continue
        t0 = ts if t0 is None else min(t0, ts)
        t1 = ts if t1 is None else max(t1, ts)
        if state == "leased":
            open_lease[uid] = ts
        elif state in ("done", "failed", "quarantined"):
            start = open_lease.pop(uid, ts)
            spans.setdefault(uid, []).append((start, ts, state))
    for uid, start in open_lease.items():       # still running
        spans.setdefault(uid, []).append((start, t1, "leased"))
    out = ["<h2>Scheduler timeline</h2>"]
    if t0 is None or t1 is None or t1 <= t0:
        out.append('<p class="muted">no lease spans journaled yet</p>')
        return out
    width = t1 - t0
    colors = {"done": "#7cb342", "failed": "#fb8c00",
              "quarantined": "#e53935", "leased": "#1e88e5"}
    out.append("<table><tr><th>unit</th><th>attempts</th>"
               f"<th>lease spans over {_fmt_s(width)}</th></tr>")
    for cell in snapshot["cells"]:
        uid = cell["unit"]
        bars = "".join(
            f'<span style="left:{100 * (a - t0) / width:.2f}%;'
            f'width:{max(100 * (b - a) / width, 0.4):.2f}%;'
            f'background:{colors.get(state, _FALLBACK_COLOR)}" '
            f'title="{_esc(state)} {_fmt_s(b - a)}"></span>'
            for a, b, state in spans.get(uid, ()))
        out.append(f"<tr><td>{_esc(uid)}</td>"
                   f'<td class="num">{cell["attempts"]}</td>'
                   f'<td><div class="timeline">{bars}</div></td></tr>')
    out.append("</table>")
    return out


def render_html(snapshot: dict, transitions=(), title: str | None = None)\
        -> str:
    """Render one study snapshot as a self-contained HTML document."""
    title = title or f"study report — {snapshot.get('spec_hash') or '?'}"
    tally = snapshot["tally"]
    shard = snapshot.get("shard")
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{_esc(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{_esc(title)}</h1>",
        '<div class="kv">',
        f"<span>study <b>{_esc(snapshot['study_dir'])}</b></span>",
        f"<span>spec <b>{_esc(snapshot.get('spec_hash') or '?')}</b>"
        "</span>",
    ]
    if shard:
        parts.append(f"<span>shard <b>{shard[0]}/{shard[1]}</b></span>")
    parts.append(
        "<span>units " + " ".join(
            f'<span class="badge '
            f'{ {"done": "ok", "quarantined": "bad"}.get(k, "muted") }">'
            f"{k} {v}</span>"
            for k, v in tally.items() if v) + "</span>")
    status = ("complete" if snapshot["complete"] else
              ("stalled" if snapshot["stalled"] else "running"))
    css = {"complete": "ok", "running": "warn", "stalled": "bad"}[status]
    parts.append(f'<span><span class="badge {css}">{status}</span>'
                 "</span></div>")
    parts.extend(_outcome_section(snapshot))
    parts.extend(_progress_section(snapshot))
    parts.extend(_guard_section(snapshot))
    parts.extend(_prune_section(snapshot))
    parts.extend(_timeline_section(snapshot, transitions))
    parts.append("<footer>repro.obs.report — self-contained study "
                 "report; proportions carry Wilson score intervals at "
                 "the study's confidence level, and a cell is "
                 "<em>converged</em> when every interval half-width is "
                 "within the spec's error margin (the paper's "
                 "99&thinsp;%/3&thinsp;% sampling rule).</footer>")
    parts.append("</body></html>")
    return "\n".join(parts)


def report_study(study_dir, out_path=None, now: float | None = None,
                 title: str | None = None) -> str:
    """Render a study directory's report; returns the HTML text.

    ``now`` defaults to the newest timestamp observed in the study's
    streams, which makes the output a pure function of the directory
    contents — re-rendering an unchanged study is byte-identical.
    """
    view = load_study_view(study_dir)
    if now is None:
        now = view.latest_ts if view.latest_ts is not None else 0.0
    text = render_html(view.snapshot(now=now), view.transitions,
                       title=title)
    if out_path is not None:
        # Atomic: a report consumer (CI artifact collection, a
        # dashboard refresh) never sees a half-written file.
        atomic_write_text(out_path, text)
    return text


__all__ = ["render_html", "report_study", "CLASS_COLORS"]
