"""Turn a JSONL campaign event stream into a human-readable report.

``repro.tools obs summarize events.jsonl`` is the CLI face of this
module.  The input is whatever a :class:`repro.obs.trace.JSONLSink`
captured — one or more campaigns' worth of events — and the output
reports the numbers the paper's analysis leans on: injections/sec,
per-phase wall time (golden / maskgen / inject / classify), the
early-stop rate by reason, the outcome distribution, and the fraction
of faulty-run cycles the checkpoint restores skipped (§III.B's 30-70 %
speedup claim, measured).  Streams captured by a ``repro.sched`` study
additionally get a scheduler section — unit leases, retries, timeouts,
quarantines, and injections recovered from logs on resume.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path

from repro.obs.metrics import Histogram


def load_events(path) -> list[dict]:
    """Parse a JSONL events file into plain dicts (schema-tolerant).

    A torn *trailing* line — the write a killed campaign never finished
    — is dropped with a warning, matching the journal's torn-tail
    replay semantics.  Corruption anywhere else still raises.
    """
    events = []
    pending_error = None            # (lineno, message) of a bad line
    with open(path) as fh:
        for n, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            if pending_error is not None:
                # The bad line had complete lines after it: real
                # corruption, not a torn tail.
                raise ValueError("{}:{}: {}".format(path, *pending_error))
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                pending_error = (n, f"not valid JSON: {exc}")
                continue
            if "name" not in row:
                pending_error = (n, "event without a name")
                continue
            events.append(row)
    if pending_error is not None:
        warnings.warn(
            f"{path}:{pending_error[0]}: dropping torn trailing line "
            f"({pending_error[1]}) — campaign was likely killed "
            f"mid-write", RuntimeWarning, stacklevel=2)
    return events


class SummaryAccumulator:
    """Incrementally folds an event stream into the summary dict.

    ``summarize_events`` feeds it a whole list; the live layer
    (:mod:`repro.obs.live`) feeds it tailed batches from a running
    study and re-reads :meth:`summary` between polls.
    """

    def __init__(self):
        self.events = 0
        self.campaigns: list[dict] = []
        self.golden = {"wall_s": 0.0, "cycles": 0, "checkpoints": 0,
                       "runs": 0, "snapshot_s": 0.0, "checkpoint_bytes": 0}
        self.maskgen = {"wall_s": 0.0, "masks": 0}
        self.inject = {"runs": 0, "wall_s": 0.0, "sim_cycles": 0,
                       "saved_cycles": 0, "restores": 0, "cold_starts": 0,
                       "restore_s": 0.0}
        self.outcomes: dict[str, int] = {}
        self.early_stops: dict[str, int] = {}
        self.classify = {"wall_s": 0.0, "calls": 0}
        self.span = {"first_ts": None, "last_ts": None}
        self.sched = {"studies": 0, "units": 0, "leases": 0, "retries": 0,
                      "done": 0, "resumed_injections": 0, "failed": 0,
                      "timeouts": 0, "quarantined": 0, "unit_wall_s": 0.0,
                      "interrupted": 0, "heartbeats": 0}
        self.svc = {"submitted": 0, "resumed": 0, "done": 0,
                    "cancelled": 0, "quota_rejections": 0,
                    "heartbeats": 0, "tenants": {},
                    "quota_reasons": {}}
        self.fleet = {"registrations": 0, "workers": {}, "lost": 0,
                      "revoked_fences": 0, "rejected_fences": 0,
                      "remote_leases": 0, "gc_purged": 0,
                      "attest_rejected": 0, "challenges_passed": 0,
                      "challenges_failed": 0, "distrusted": 0,
                      "audits_ok": 0, "audits_diverged": 0,
                      "audits_inconclusive": 0, "voided": 0,
                      "reopened": 0, "blobs_evicted": 0}
        self.guard = {"contaminations": 0, "invariant_violations": 0,
                      "invariants": {}}
        self.prune = {"plans": 0, "masks": 0, "masked": 0, "collapsed": 0,
                      "classes": 0, "simulated": 0, "rules": {},
                      "traces_recorded": 0, "trace_cache_hits": 0,
                      "audit_checked": 0, "audit_divergences": 0}
        self.inject_hist = Histogram()      # per-injection wall time
        self.unit_hist = Histogram()        # per-unit wall time

    def add(self, ev: dict) -> None:
        self.events += 1
        name = ev.get("name")
        ts = ev.get("ts")
        if isinstance(ts, (int, float)):
            if self.span["first_ts"] is None:
                self.span["first_ts"] = ts
            self.span["last_ts"] = ts
        golden, maskgen, inject = self.golden, self.maskgen, self.inject
        sched, guard = self.sched, self.guard
        if name == "campaign_start":
            self.campaigns.append({k: ev.get(k) for k in
                                   ("setup", "benchmark", "structure",
                                    "masks")})
        elif name == "golden_end":
            golden["runs"] += 1
            golden["wall_s"] += ev.get("wall_s", 0.0)
            golden["cycles"] = ev.get("cycles", golden["cycles"])
            golden["checkpoints"] = ev.get("checkpoints",
                                           golden["checkpoints"])
            golden["snapshot_s"] += ev.get("snapshot_s", 0.0)
            golden["checkpoint_bytes"] += ev.get("checkpoint_bytes", 0)
        elif name == "maskgen_end":
            maskgen["wall_s"] += ev.get("wall_s", 0.0)
            maskgen["masks"] += ev.get("masks", 0)
        elif name == "inject_end":
            inject["runs"] += 1
            inject["wall_s"] += ev.get("wall_s", 0.0)
            inject["sim_cycles"] += ev.get("sim_cycles", 0)
            inject["restore_s"] += ev.get("restore_s", 0.0)
            self.inject_hist.observe(ev.get("wall_s", 0.0))
            saved = ev.get("saved_cycles", 0)
            inject["saved_cycles"] += saved
            if saved > 0:
                inject["restores"] += 1
            else:
                inject["cold_starts"] += 1
            reason = ev.get("reason", "unknown")
            self.outcomes[reason] = self.outcomes.get(reason, 0) + 1
            stop = ev.get("early_stop")
            if stop:
                self.early_stops[stop] = self.early_stops.get(stop, 0) + 1
            inv = ev.get("invariant")
            if inv:
                guard["invariant_violations"] += 1
                guard["invariants"][inv] = \
                    guard["invariants"].get(inv, 0) + 1
        elif name == "guard.contamination":
            guard["contaminations"] += 1
        elif name == "prune_plan":
            prune = self.prune
            prune["plans"] += 1
            for key in ("masks", "masked", "collapsed", "classes",
                        "simulated"):
                prune[key] += ev.get(key, 0)
        elif name == "pruned":
            rule = ev.get("rule", "unknown")
            self.prune["rules"][rule] = \
                self.prune["rules"].get(rule, 0) + 1
        elif name == "prune_audit":
            self.prune["audit_checked"] += ev.get("checked", 0)
            self.prune["audit_divergences"] += ev.get("divergences", 0)
        elif name == "trace_recorded":
            self.prune["traces_recorded"] += 1
        elif name == "trace_cache_hit":
            self.prune["trace_cache_hits"] += 1
        elif name == "classify":
            self.classify["calls"] += 1
            self.classify["wall_s"] += ev.get("wall_s", 0.0)
        elif name == "study_start":
            sched["studies"] += 1
            sched["units"] += ev.get("units", 0)
        elif name == "unit_leased":
            sched["leases"] += 1
            if ev.get("attempt", 1) > 1:
                sched["retries"] += 1
            if ev.get("worker"):       # remote leases carry the worker
                self.fleet["remote_leases"] += 1
        elif name == "unit_done":
            sched["done"] += 1
            sched["resumed_injections"] += ev.get("resumed", 0)
            sched["unit_wall_s"] += ev.get("wall_s", 0.0)
            self.unit_hist.observe(ev.get("wall_s", 0.0))
        elif name == "unit_failed":
            sched["failed"] += 1
            if ev.get("reason") == "timeout":
                sched["timeouts"] += 1
        elif name == "unit_quarantined":
            sched["quarantined"] += 1
        elif name == "heartbeat":
            sched["heartbeats"] += 1
        elif name == "study_end":
            if ev.get("interrupted"):
                sched["interrupted"] += 1
        elif name in ("study_submitted", "study_resumed", "study_done",
                      "study_cancelled"):
            svc = self.svc
            svc[name.split("_", 1)[1]] += 1
            tenant = ev.get("tenant")
            # Per-tenant counts are submissions, not lifecycle events.
            if tenant and name == "study_submitted":
                svc["tenants"][tenant] = svc["tenants"].get(tenant, 0) + 1
        elif name == "quota_rejected":
            self.svc["quota_rejections"] += 1
            reason = ev.get("reason", "unknown")
            self.svc["quota_reasons"][reason] = \
                self.svc["quota_reasons"].get(reason, 0) + 1
        elif name == "svc_heartbeat":
            self.svc["heartbeats"] += 1
        elif name == "worker_registered":
            self.fleet["registrations"] += 1
            worker = ev.get("worker", "?")
            self.fleet["workers"][worker] = \
                self.fleet["workers"].get(worker, 0) + 1
        elif name == "worker_lost":
            self.fleet["lost"] += 1
        elif name == "lease_revoked":
            self.fleet["revoked_fences"] += len(ev.get("fences") or ())
        elif name == "fence_rejected":
            self.fleet["rejected_fences"] += 1
        elif name == "study_gc":
            self.fleet["gc_purged"] += len(ev.get("purged") or ())
        elif name == "attest_rejected":
            self.fleet["attest_rejected"] += 1
        elif name == "challenge_passed":
            self.fleet["challenges_passed"] += 1
        elif name == "challenge_failed":
            self.fleet["challenges_failed"] += 1
        elif name == "worker_distrusted":
            self.fleet["distrusted"] += 1
        elif name == "audit_ok":
            self.fleet["audits_ok"] += 1
        elif name == "audit_divergence":
            self.fleet["audits_diverged"] += 1
        elif name == "audit_inconclusive":
            self.fleet["audits_inconclusive"] += 1
        elif name == "audit_void":
            self.fleet["voided"] += 1
        elif name == "study_reopened":
            self.fleet["reopened"] += 1
        elif name == "blobs_evicted":
            self.fleet["blobs_evicted"] += ev.get("count", 0)

    def add_all(self, events) -> "SummaryAccumulator":
        for ev in events:
            self.add(ev)
        return self

    def summary(self) -> dict:
        golden, maskgen, inject = self.golden, self.maskgen, self.inject
        denom = inject["sim_cycles"] + inject["saved_cycles"]
        return {
            "events": self.events,
            "campaigns": list(self.campaigns),
            "phases": {
                "golden_s": golden["wall_s"],
                "maskgen_s": maskgen["wall_s"],
                "inject_s": inject["wall_s"],
                "classify_s": self.classify["wall_s"],
            },
            "golden": dict(golden),
            "masks_generated": maskgen["masks"],
            "injections": inject["runs"],
            "injections_per_sec": (inject["runs"] / inject["wall_s"]
                                   if inject["wall_s"] else 0.0),
            "outcomes": dict(sorted(self.outcomes.items())),
            "early_stops": dict(sorted(self.early_stops.items())),
            "early_stop_rate": (sum(self.early_stops.values())
                                / inject["runs"]
                                if inject["runs"] else 0.0),
            "checkpoint": {
                "restores": inject["restores"],
                "cold_starts": inject["cold_starts"],
                "cycles_saved": inject["saved_cycles"],
                "cycles_simulated": inject["sim_cycles"],
                "speedup_fraction": (inject["saved_cycles"] / denom
                                     if denom else 0.0),
                "snapshot_s": golden["snapshot_s"],
                "restore_s": inject["restore_s"],
                "bytes": golden["checkpoint_bytes"],
            },
            "latency": {
                "inject_s": self.inject_hist.summary(),
                "unit_s": self.unit_hist.summary(),
            },
            "wall_span_s": ((self.span["last_ts"] - self.span["first_ts"])
                            if self.span["first_ts"] is not None else 0.0),
            "sched": dict(self.sched),
            "svc": {**self.svc,
                    "tenants": dict(sorted(self.svc["tenants"].items())),
                    "quota_reasons": dict(sorted(
                        self.svc["quota_reasons"].items()))},
            "fleet": {**self.fleet,
                      "workers": dict(sorted(
                          self.fleet["workers"].items()))},
            "guard": {**self.guard,
                      "invariants": dict(self.guard["invariants"])},
            "prune": {**self.prune,
                      "rules": dict(sorted(self.prune["rules"].items())),
                      "rate": ((self.prune["masked"]
                                + self.prune["collapsed"])
                               / self.prune["masks"]
                               if self.prune["masks"] else 0.0)},
        }


def summarize_events(events: list[dict]) -> dict:
    """Aggregate an event stream into one summary dict."""
    return SummaryAccumulator().add_all(events).summary()


def render_report(summary: dict) -> str:
    """ASCII campaign report from a :func:`summarize_events` summary."""
    lines = ["campaign telemetry report",
             "=" * 52]
    if summary["campaigns"]:
        for c in summary["campaigns"]:
            cell = " / ".join(str(c.get(k, "?")) for k in
                              ("setup", "benchmark", "structure"))
            lines.append(f"campaign   {cell}  ({c.get('masks', '?')} masks)")
    else:
        lines.append("campaign   (no campaign_start events)")
    lines.append(f"events     {summary['events']}  "
                 f"spanning {summary['wall_span_s']:.3f}s")
    lines.append("")
    ph = summary["phases"]
    total = sum(ph.values()) or 1.0
    lines.append("phase timing")
    for phase in ("golden", "maskgen", "inject", "classify"):
        t = ph[f"{phase}_s"]
        lines.append(f"  {phase:<9s}{t:>10.3f}s  {100 * t / total:5.1f}%  "
                     f"|{'#' * round(30 * t / total):<30s}|")
    lines.append("")
    lines.append(f"injections {summary['injections']}  "
                 f"({summary['injections_per_sec']:,.1f}/sec)")
    lat = summary.get("latency", {}).get("inject_s", {})
    if lat.get("count"):
        lines.append(
            f"inject wall  p50 {1e3 * lat['p50']:.1f}ms  "
            f"p90 {1e3 * lat['p90']:.1f}ms  p99 {1e3 * lat['p99']:.1f}ms  "
            f"(mean {1e3 * lat['mean']:.1f}ms, max {1e3 * lat['max']:.1f}ms)")
    lines.append("outcomes")
    n_inj = summary["injections"] or 1
    for reason, count in summary["outcomes"].items():
        lines.append(f"  {reason:<12s}{count:>6d}  "
                     f"{100 * count / n_inj:5.1f}%")
    lines.append(f"early stops  rate {100 * summary['early_stop_rate']:.1f}%")
    for reason, count in summary["early_stops"].items():
        lines.append(f"  {reason:<14s}{count:>6d}  "
                     f"{100 * count / n_inj:5.1f}%")
    cp = summary["checkpoint"]
    lines.append(
        f"checkpointing  {cp['restores']} restores, "
        f"{cp['cold_starts']} cold starts — "
        f"{100 * cp['speedup_fraction']:.1f}% of faulty-run cycles skipped "
        f"({cp['cycles_saved']} of "
        f"{cp['cycles_saved'] + cp['cycles_simulated']})")
    lines.append(
        f"snapshots  take {cp['snapshot_s']:.3f}s, "
        f"restore {cp['restore_s']:.3f}s, {cp['bytes']:,} bytes stored")
    g = summary["golden"]
    lines.append(f"golden     {g['runs']} run(s), {g['cycles']} cycles, "
                 f"{g['checkpoints']} checkpoints")
    pr = summary.get("prune", {})
    if pr.get("plans"):
        lines.append("")
        lines.append(
            f"pruning    {pr['masked']} masked by analysis + "
            f"{pr['collapsed']} collapsed ({pr['classes']} classes) -> "
            f"{pr['simulated']} of {pr['masks']} masks simulated "
            f"({100 * pr['rate']:.1f}% pruned)")
        for rule, count in pr.get("rules", {}).items():
            lines.append(f"  {rule:<20s}{count:>6d}")
        lines.append(
            f"           traces: {pr['traces_recorded']} recorded, "
            f"{pr['trace_cache_hits']} cache hits"
            + (f"; audit: {pr['audit_checked']} re-simulated, "
               f"{pr['audit_divergences']} divergences"
               if pr.get("audit_checked") else ""))
    gd = summary.get("guard", {})
    if gd.get("contaminations") or gd.get("invariant_violations"):
        lines.append("")
        lines.append(
            f"guard      {gd['contaminations']} contamination incidents "
            f"(machine condemned and rebuilt), "
            f"{gd['invariant_violations']} invariant violations")
        for inv, count in sorted(gd.get("invariants", {}).items()):
            lines.append(f"  {inv:<26s}{count:>6d}")
    sc = summary.get("sched", {})
    if sc.get("studies") or sc.get("leases"):
        lines.append("")
        lines.append(
            f"scheduler  {sc['units']} units over {sc['studies']} "
            f"study run(s): {sc['done']} done, {sc['failed']} failed "
            f"attempts ({sc['timeouts']} timeouts), "
            f"{sc['retries']} retries, {sc['quarantined']} quarantined")
        lines.append(
            f"           {sc['leases']} leases, "
            f"{sc['resumed_injections']} injections recovered from logs "
            f"on resume, unit wall {sc['unit_wall_s']:.3f}s"
            + ("  [interrupted]" if sc.get("interrupted") else ""))
        unit_lat = summary.get("latency", {}).get("unit_s", {})
        if unit_lat.get("count"):
            lines.append(
                f"           unit wall  p50 {unit_lat['p50']:.3f}s  "
                f"p90 {unit_lat['p90']:.3f}s  p99 {unit_lat['p99']:.3f}s")
    sv = summary.get("svc", {})
    if sv.get("submitted") or sv.get("quota_rejections"):
        lines.append("")
        lines.append(
            f"service    {sv['submitted']} studies submitted "
            f"({sv['resumed']} resumed after restart): {sv['done']} done, "
            f"{sv['cancelled']} cancelled; "
            f"{sv['quota_rejections']} quota rejections")
        for tenant, count in sv.get("tenants", {}).items():
            lines.append(f"  tenant {tenant:<16s}{count:>6d} studies")
        for reason, count in sv.get("quota_reasons", {}).items():
            lines.append(f"  429 {reason:<19s}{count:>6d}")
    fl = summary.get("fleet", {})
    if fl.get("registrations") or fl.get("remote_leases") \
            or fl.get("voided") or fl.get("blobs_evicted"):
        lines.append("")
        lines.append(
            f"remote fleet  {len(fl.get('workers', {}))} worker(s), "
            f"{fl['registrations']} registrations, {fl['lost']} lost; "
            f"{fl['remote_leases']} remote leases, "
            f"{fl['revoked_fences']} fences revoked, "
            f"{fl['rejected_fences']} stale completes rejected"
            + (f"; {fl['gc_purged']} studies gc'd"
               if fl.get("gc_purged") else ""))
        for worker, count in fl.get("workers", {}).items():
            lines.append(f"  worker {worker:<16s}{count:>6d} "
                         f"registration(s)")
        if any(fl.get(k) for k in ("attest_rejected", "challenges_passed",
                                   "challenges_failed", "distrusted",
                                   "audits_ok", "audits_diverged",
                                   "audits_inconclusive", "voided",
                                   "reopened", "blobs_evicted")):
            lines.append(
                f"  attest: {fl['attest_rejected']} completes rejected, "
                f"{fl['challenges_passed']}/{fl['challenges_failed']} "
                f"challenges passed/failed, "
                f"{fl['distrusted']} workers distrusted")
            lines.append(
                f"  audits: {fl['audits_ok']} ok, "
                f"{fl['audits_diverged']} diverged, "
                f"{fl['audits_inconclusive']} inconclusive; "
                f"{fl['voided']} completions voided, "
                f"{fl['reopened']} studies reopened, "
                f"{fl['blobs_evicted']} golden blobs evicted")
    return "\n".join(lines)


def summarize_file(path) -> str:
    """One-call path: JSONL events file in, rendered report out."""
    return render_report(summarize_events(load_events(Path(path))))
