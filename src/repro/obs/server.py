"""Streaming status server for a running study (stdlib asyncio only).

``python -m repro.tools obs serve --study-dir DIR`` exposes one study
directory over three endpoints:

* ``GET /status`` — the full :meth:`StudyView.snapshot` as JSON:
  per-unit state, live outcome counts with Wilson intervals, the
  converged-at-99 %/3 % flags, injections/sec, ETA, stall list, phase
  and checkpoint breakdowns.
* ``GET /events`` — an NDJSON stream of journal unit transitions
  (``leased``/``done``/``failed``/``quarantined``), replayed from the
  start (or ``?since=SEQ``) and then followed live; when every unit is
  terminal a final ``study_complete`` line is emitted and the stream
  closes, so clients (and CI) can read-to-EOF deterministically.
* ``GET /`` — a small self-contained dashboard page that polls
  ``/status`` and re-renders itself; no external assets.

The server is read-only over the study directory and single-threaded
(one asyncio loop), so it can watch a study another process is
actively running — the underlying :class:`~repro.obs.live.StudyView`
tailer tolerates torn tails and concurrent writers by construction.
"""

from __future__ import annotations

import asyncio
import json
from urllib.parse import parse_qs, urlsplit

from repro.obs.live import DEFAULT_STALL_AFTER_S, StudyView

#: How often /events re-polls the study directory for new transitions.
EVENTS_POLL_S = 0.25

#: Quiet-stream liveness: an /events stream with nothing to say emits
#: a ``{"keepalive": true}`` line this often, so clients can tell an
#: idle study from a dead connection (and time out when neither rows
#: nor keepalives arrive).
KEEPALIVE_S = 15.0

_DASHBOARD = """<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>repro study — live</title>
<style>
body { font-family: -apple-system, 'Segoe UI', Helvetica, Arial,
       sans-serif; margin: 2rem auto; max-width: 64rem; color: #263238; }
h1 { font-size: 1.3rem; }
table { border-collapse: collapse; width: 100%; font-size: .85rem; }
th, td { text-align: left; padding: .25rem .5rem;
         border-bottom: 1px solid #eceff1; }
.num { text-align: right; font-variant-numeric: tabular-nums; }
.badge { padding: .05rem .45rem; border-radius: 9px; font-size: .75rem;
         font-weight: 600; }
.ok { background: #dcedc8; color: #33691e; }
.warn { background: #ffecb3; color: #e65100; }
.bad { background: #ffcdd2; color: #b71c1c; }
.muted { color: #90a4ae; }
#kv { display: flex; gap: 2rem; flex-wrap: wrap; margin: .8rem 0; }
</style></head><body>
<h1>repro study <span id="spec" class="muted"></span></h1>
<div id="kv"></div>
<table id="cells"><tr><th>unit</th><th>state</th>
<th class="num">injections</th><th class="num">margin</th>
<th>converged</th></tr></table>
<p class="muted">auto-refreshes from <code>/status</code> every 2s;
full report: <code>repro.tools obs report</code></p>
<script>
function badge(s) {
  const css = {done: "ok", leased: "warn", failed: "warn",
               quarantined: "bad"}[s] || "muted";
  return '<span class="badge ' + css + '">' + s + "</span>";
}
async function tick() {
  try {
    const s = await (await fetch("/status")).json();
    document.getElementById("spec").textContent = s.spec_hash || "";
    const p = s.progress, eta = p.eta_s == null ? "—"
        : (p.eta_s > 90 ? (p.eta_s / 60).toFixed(1) + "m"
                        : p.eta_s.toFixed(0) + "s");
    document.getElementById("kv").innerHTML =
      "<span>injections <b>" + s.injections_done +
      (p.planned_injections ? " / " + p.planned_injections : "") +
      "</b></span><span>rate <b>" + p.injections_per_sec.toFixed(1) +
      "/s</b></span><span>ETA <b>" + eta + "</b></span>" +
      "<span>converged <b>" + p.converged_cells + " / " + s.units +
      "</b></span><span>" + badge(s.complete ? "done" : "leased") +
      (s.stalled.length ? ' <span class="badge bad">stalled: ' +
       s.stalled.length + "</span>" : "") + "</span>";
    const rows = s.cells.map(c =>
      "<tr><td>" + c.unit + "</td><td>" + badge(c.state) +
      (c.stalled ? ' <span class="badge bad">stalled</span>' : "") +
      '</td><td class="num">' + c.injections +
      (c.planned ? " / " + c.planned : "") +
      '</td><td class="num">±' +
      (100 * c.convergence.margin).toFixed(1) + "%</td><td>" +
      (c.convergence.converged ? '<span class="badge ok">99%/3%</span>'
                               : '<span class="muted">not yet</span>') +
      "</td></tr>").join("");
    document.getElementById("cells").innerHTML =
      "<tr><th>unit</th><th>state</th><th class=num>injections</th>" +
      "<th class=num>margin</th><th>converged</th></tr>" + rows;
  } catch (e) { /* server restarting; retry next tick */ }
}
tick(); setInterval(tick, 2000);
</script></body></html>
"""


def _http_head(status: str, content_type: str,
               length: int | None = None) -> bytes:
    head = [f"HTTP/1.1 {status}",
            f"Content-Type: {content_type}",
            "Cache-Control: no-store",
            "Connection: close"]
    if length is not None:
        head.append(f"Content-Length: {length}")
    return ("\r\n".join(head) + "\r\n\r\n").encode()


class StatusServer:
    """Serves one study directory's live view over HTTP."""

    def __init__(self, study_dir, host: str = "127.0.0.1",
                 port: int = 8436,
                 stall_after_s: float = DEFAULT_STALL_AFTER_S,
                 follow: bool = True):
        self.view = StudyView(study_dir, stall_after_s=stall_after_s)
        self.host = host
        self.port = port           # updated to the bound port on start
        self.follow = follow       # /events keeps following a live study
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None

    # -- request handling --------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                head = await asyncio.wait_for(
                    reader.readuntil(b"\r\n\r\n"), timeout=10.0)
            except (asyncio.IncompleteReadError, asyncio.TimeoutError,
                    asyncio.LimitOverrunError):
                return
            request_line = head.split(b"\r\n", 1)[0].decode(
                "latin-1", errors="replace")
            parts = request_line.split()
            if len(parts) < 2 or parts[0] not in ("GET", "HEAD"):
                writer.write(_http_head("405 Method Not Allowed",
                                        "text/plain", 0))
                return
            url = urlsplit(parts[1])
            query = parse_qs(url.query)
            if url.path == "/status":
                await self._serve_status(writer)
            elif url.path == "/events":
                await self._serve_events(writer, query)
            elif url.path in ("/", "/index.html"):
                body = _DASHBOARD.encode()
                writer.write(_http_head("200 OK",
                                        "text/html; charset=utf-8",
                                        len(body)))
                writer.write(body)
            else:
                body = b'{"error": "not found"}'
                writer.write(_http_head("404 Not Found",
                                        "application/json", len(body)))
                writer.write(body)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _serve_status(self, writer: asyncio.StreamWriter) -> None:
        self.view.refresh()
        body = json.dumps(self.view.snapshot()).encode()
        writer.write(_http_head("200 OK", "application/json", len(body)))
        writer.write(body)

    async def _serve_events(self, writer: asyncio.StreamWriter,
                            query: dict) -> None:
        try:
            seq = int(query.get("since", ["0"])[0])
        except ValueError:
            seq = 0
        writer.write(_http_head("200 OK", "application/x-ndjson"))
        last_line = asyncio.get_event_loop().time()
        while True:
            self.view.refresh()
            while seq < len(self.view.transitions):
                row = self.view.transitions[seq]
                writer.write((json.dumps(row) + "\n").encode())
                seq += 1
                last_line = asyncio.get_event_loop().time()
            if (asyncio.get_event_loop().time() - last_line
                    >= KEEPALIVE_S):
                writer.write(b'{"keepalive": true}\n')
                last_line = asyncio.get_event_loop().time()
            await writer.drain()
            if self.view.complete() or not self.follow:
                final = {
                    "name": "study_complete",
                    "complete": self.view.complete(),
                    "tally": self.view.tally(),
                    "injections_done": self.view.injections_done(),
                    "units": {uid: dict(self.view.units[uid].best_counts())
                              for uid in self.view.unit_ids},
                }
                writer.write((json.dumps(final) + "\n").encode())
                await writer.drain()
                return
            await asyncio.sleep(EVENTS_POLL_S)

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> asyncio.AbstractServer:
        """Bind and start serving; returns the asyncio server."""
        server = await asyncio.start_server(self._handle, self.host,
                                            self.port)
        self.port = server.sockets[0].getsockname()[1]
        return server

    async def _main(self, on_ready=None) -> None:
        self._stop = asyncio.Event()
        server = await self.start()
        if on_ready is not None:
            on_ready(self)
        async with server:
            await self._stop.wait()

    def serve_forever(self, on_ready=None) -> None:
        """Blocking entry point (the CLI's ``obs serve``).

        *on_ready* is called with the server once the port is bound —
        tests and scripts use it to learn an ephemeral port.  Stop from
        another thread with :meth:`stop`.
        """
        self._loop = asyncio.new_event_loop()
        try:
            self._loop.run_until_complete(self._main(on_ready))
        finally:
            try:
                self._loop.close()
            finally:
                self._loop = None

    def stop(self) -> None:
        """Thread-safe shutdown of :meth:`serve_forever`."""
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None:
            loop.call_soon_threadsafe(stop.set)


def serve_study(study_dir, host: str = "127.0.0.1", port: int = 8436,
                on_ready=None, **kwargs) -> None:
    """One-call blocking server over *study_dir* (CLI plumbing)."""
    StatusServer(study_dir, host=host, port=port,
                 **kwargs).serve_forever(on_ready)


__all__ = ["StatusServer", "serve_study", "EVENTS_POLL_S", "KEEPALIVE_S"]
