"""Statistical convergence of a running campaign's outcome proportions.

The paper sizes its campaigns with Leveugle et al.'s sampling formula
(:mod:`repro.core.sampling`): 1843 injections buy every outcome
proportion a ±3 % margin at 99 % confidence.  While a study is *still
running* the interesting question is the inverse — given the
injections a cell has completed so far, how tight are its proportions
already, and has the cell reached the paper's 99 %/3 % rule?

Proportions here get **Wilson score intervals** rather than the normal
(Wald) approximation: Wilson stays inside [0, 1] and behaves at the
extreme proportions fault campaigns actually produce (a structure that
is 98 % Masked has classes sitting right at the boundary, where the
Wald interval collapses to a point and lies).  A cell is *converged*
when every class's half-width is at or below the requested error
margin — with the conservative p=0.5 sizing this happens exactly when
``n >= required_injections(...)``, so the flag matches the paper's
sampling rule while giving partial credit earlier for lopsided cells.
"""

from __future__ import annotations

import math

from repro.core.sampling import required_injections, z_score


def wilson_interval(k: int, n: int,
                    confidence: float = 0.99) -> tuple[float, float]:
    """Wilson score interval for a proportion of *k* successes in *n*.

    Returns ``(lo, hi)`` bounds, both within [0, 1].  ``n == 0`` yields
    the vacuous interval (0, 1).
    """
    if k < 0 or n < 0 or k > n:
        raise ValueError(f"need 0 <= k <= n, got k={k} n={n}")
    if n == 0:
        return 0.0, 1.0
    z = z_score(confidence)
    p = k / n
    z2 = z * z
    denom = 1 + z2 / n
    center = (p + z2 / (2 * n)) / denom
    spread = (z / denom) * math.sqrt(p * (1 - p) / n + z2 / (4 * n * n))
    return max(center - spread, 0.0), min(center + spread, 1.0)


def proportion_ci(k: int, n: int, confidence: float = 0.99) -> dict:
    """One class's running estimate: proportion, bounds, half-width."""
    lo, hi = wilson_interval(k, n, confidence)
    return {
        "count": k,
        "proportion": k / n if n else 0.0,
        "lo": lo,
        "hi": hi,
        "halfwidth": (hi - lo) / 2,
    }


def cell_convergence(counts: dict, confidence: float = 0.99,
                     error_margin: float = 0.03) -> dict:
    """Convergence state of one structure×benchmark cell.

    *counts* maps outcome class -> running count (e.g. the live
    classification of a unit's logs repository).  The cell is converged
    when every class's Wilson half-width is within *error_margin* —
    the running analogue of the paper's "1843 injections for 99 %/3 %"
    sizing rule, which the ``required_n`` field restates.
    """
    n = sum(counts.values())
    classes = {cls: proportion_ci(k, n, confidence)
               for cls, k in sorted(counts.items())}
    margin = (max(c["halfwidth"] for c in classes.values())
              if classes and n else 1.0)
    required = required_injections(confidence=confidence,
                                   error_margin=error_margin)
    return {
        "n": n,
        "classes": classes,
        "margin": margin,
        "converged": n > 0 and margin <= error_margin,
        "confidence": confidence,
        "error_margin": error_margin,
        "required_n": required,
    }


__all__ = ["wilson_interval", "proportion_ci", "cell_convergence"]
