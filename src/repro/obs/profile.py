"""Profiling hooks and the per-campaign telemetry summary.

The dispatcher cheaply measures each phase it owns — the golden run and
every injection run — into plain sample records
(:class:`GoldenSample`, :class:`InjectionSample`).  The campaign layer
folds samples into a :class:`~repro.obs.metrics.MetricsRegistry` via the
``record_*`` helpers and finally condenses the registry into a
:class:`CampaignTelemetry`, which hangs off ``CampaignResult.telemetry``.

Both the serial and the parallel campaign paths go through the same
helpers, which is what makes their deterministic metrics identical: a
worker process ships each run's sample home with the record, and the
parent records it exactly as the serial loop would have.

Paper hook: §III.B claims 30-70 % per-run savings from checkpointing and
early-stop; :attr:`CampaignTelemetry.checkpoint_speedup` is the measured
fraction of golden-path cycles the restores actually skipped.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.obs.metrics import MetricsRegistry


@dataclass
class GoldenSample:
    """Measurements of one golden (fault-free) reference run."""

    wall_s: float = 0.0
    cycles: int = 0
    checkpoints: int = 0
    snapshot_s: float = 0.0       # wall time spent taking snapshots
    checkpoint_bytes: int = 0     # serialized size of pristine+checkpoints

    def to_dict(self) -> dict:
        return asdict(self)

    @staticmethod
    def from_dict(d: dict) -> "GoldenSample":
        return GoldenSample(**d)


@dataclass
class InjectionSample:
    """Measurements of one injection run (alongside its record)."""

    set_id: int = 0
    wall_s: float = 0.0
    restore_cycle: int = 0        # snapshot cycle the run resumed from
    end_cycle: int = 0            # sim.cycle when the run finished
    restore_s: float = 0.0        # wall time of the snapshot restore
    integrity_checks: int = 0     # guard digests verified for this run
    contaminations: int = 0       # guard condemn/rebuild incidents

    @property
    def sim_cycles(self) -> int:
        """Cycles actually stepped (the restore skipped the rest)."""
        return max(self.end_cycle - self.restore_cycle, 0)

    def to_dict(self) -> dict:
        return asdict(self)

    @staticmethod
    def from_dict(d: dict) -> "InjectionSample":
        return InjectionSample(**d)


# -- registry recording (shared by the serial and parallel paths) ---------

def record_golden(metrics: MetricsRegistry, sample: GoldenSample) -> None:
    metrics.histogram("time.golden_s").observe(sample.wall_s)
    metrics.histogram("time.snapshot_s").observe(sample.snapshot_s)
    metrics.gauge("golden.cycles").set(sample.cycles)
    metrics.gauge("golden.checkpoints").set(sample.checkpoints)
    metrics.gauge("checkpoint.bytes").set(sample.checkpoint_bytes)


def record_maskgen(metrics: MetricsRegistry, wall_s: float,
                   masks: int) -> None:
    metrics.histogram("time.maskgen_s").observe(wall_s)
    metrics.counter("masks_generated").inc(masks)


def record_injection(metrics: MetricsRegistry, record,
                     sample: InjectionSample) -> None:
    """Fold one finished injection run into the campaign registry."""
    metrics.counter("injections_total").inc()
    metrics.counter(f"outcomes.{record.reason}").inc()
    if record.early_stop is not None:
        metrics.counter(f"early_stops.{record.early_stop}").inc()
    metrics.counter("cycles.simulated").inc(sample.sim_cycles)
    metrics.counter("cycles.saved").inc(sample.restore_cycle)
    if sample.restore_cycle > 0:
        metrics.counter("checkpoint.restores").inc()
    else:
        metrics.counter("checkpoint.cold_starts").inc()
    metrics.histogram("time.inject_s").observe(sample.wall_s)
    metrics.histogram("time.restore_s").observe(sample.restore_s)
    # Guard telemetry rides on the sample/record so the parallel path
    # (workers ship both home) folds in exactly like the serial loop.
    if sample.integrity_checks:
        metrics.counter("guard.integrity_checks").inc(
            sample.integrity_checks)
    if sample.contaminations:
        metrics.counter("guard.contamination").inc(sample.contaminations)
    invariant = getattr(record, "invariant", None)
    if invariant:
        metrics.counter("guard.invariant_violations").inc()
        metrics.counter(f"guard.invariant.{invariant}").inc()


def record_pruned(metrics: MetricsRegistry, record) -> None:
    """Fold one analysis-pruned (or collapsed) record into the registry.

    Pruned records count as classified injections with an outcome, but
    carry no checkpoint/cycle/wall-time telemetry — nothing was
    simulated for them.
    """
    metrics.counter("injections_total").inc()
    metrics.counter(f"outcomes.{record.reason}").inc()
    if record.pruned == "equivalent":
        metrics.counter("prune.collapsed").inc()
    else:
        metrics.counter("prune.masked").inc()
    structure = record.masks[0]["structure"] if record.masks else "?"
    metrics.counter(f"prune.structure.{structure}").inc()


def record_prune_plan(metrics: MetricsRegistry, stats: dict) -> None:
    """Record a prune plan's class count (per-mask counts arrive via
    :func:`record_pruned` as the campaign walks the mask stream)."""
    metrics.counter("prune.classes").inc(stats.get("classes", 0))


def record_classify(metrics: MetricsRegistry, wall_s: float) -> None:
    metrics.histogram("time.classify_s").observe(wall_s)


# -- the summary ----------------------------------------------------------

@dataclass
class CampaignTelemetry:
    """Condensed per-campaign observability report.

    Attached to ``CampaignResult.telemetry`` by both campaign runners;
    merge across cells with :meth:`merge` for figure-level totals.
    """

    golden_s: float = 0.0
    maskgen_s: float = 0.0
    inject_s: float = 0.0
    classify_s: float = 0.0
    wall_s: float = 0.0
    snapshot_s: float = 0.0
    restore_s: float = 0.0
    injections: int = 0
    golden_cycles: int = 0
    golden_checkpoints: int = 0
    checkpoint_bytes: int = 0
    cycles_simulated: int = 0
    cycles_saved: int = 0
    checkpoint_restores: int = 0
    cold_starts: int = 0
    outcomes: dict = field(default_factory=dict)
    early_stops: dict = field(default_factory=dict)
    #: ``repro.prune`` counters, suffix-keyed ("masked", "collapsed",
    #: "classes", "structure.<name>"); empty when pruning was off.
    prunes: dict = field(default_factory=dict)

    # -- derived ----------------------------------------------------------

    @property
    def injections_per_sec(self) -> float:
        return self.injections / self.inject_s if self.inject_s else 0.0

    @property
    def early_stop_rate(self) -> float:
        total = sum(self.early_stops.values())
        return total / self.injections if self.injections else 0.0

    @property
    def checkpoint_speedup(self) -> float:
        """Fraction of faulty-run cycles skipped by snapshot restores."""
        denom = self.cycles_simulated + self.cycles_saved
        return self.cycles_saved / denom if denom else 0.0

    @property
    def prune_rate(self) -> float:
        """Fraction of injections resolved without simulation."""
        pruned = (self.prunes.get("masked", 0)
                  + self.prunes.get("collapsed", 0))
        return pruned / self.injections if self.injections else 0.0

    # -- construction ------------------------------------------------------

    @classmethod
    def from_metrics(cls, metrics: MetricsRegistry,
                     wall_s: float = 0.0) -> "CampaignTelemetry":
        return cls(
            golden_s=metrics.histogram("time.golden_s").total,
            maskgen_s=metrics.histogram("time.maskgen_s").total,
            inject_s=metrics.histogram("time.inject_s").total,
            classify_s=metrics.histogram("time.classify_s").total,
            wall_s=wall_s,
            snapshot_s=metrics.histogram("time.snapshot_s").total,
            restore_s=metrics.histogram("time.restore_s").total,
            injections=metrics.counter_value("injections_total"),
            golden_cycles=int(metrics.gauge("golden.cycles").value),
            golden_checkpoints=int(
                metrics.gauge("golden.checkpoints").value),
            checkpoint_bytes=int(metrics.gauge("checkpoint.bytes").value),
            cycles_simulated=metrics.counter_value("cycles.simulated"),
            cycles_saved=metrics.counter_value("cycles.saved"),
            checkpoint_restores=metrics.counter_value(
                "checkpoint.restores"),
            cold_starts=metrics.counter_value("checkpoint.cold_starts"),
            outcomes=metrics.family("outcomes."),
            early_stops=metrics.family("early_stops."),
            prunes=metrics.family("prune."),
        )

    def merge(self, other: "CampaignTelemetry") -> "CampaignTelemetry":
        """Accumulate another campaign's telemetry into this one."""
        for attr in ("golden_s", "maskgen_s", "inject_s", "classify_s",
                     "wall_s", "snapshot_s", "restore_s", "injections",
                     "golden_cycles", "checkpoint_bytes",
                     "cycles_simulated", "cycles_saved",
                     "checkpoint_restores", "cold_starts"):
            setattr(self, attr, getattr(self, attr) + getattr(other, attr))
        self.golden_checkpoints = max(self.golden_checkpoints,
                                      other.golden_checkpoints)
        for src, dst in ((other.outcomes, self.outcomes),
                         (other.early_stops, self.early_stops),
                         (other.prunes, self.prunes)):
            for k, v in src.items():
                dst[k] = dst.get(k, 0) + v
        return self

    def to_dict(self) -> dict:
        d = asdict(self)
        d["injections_per_sec"] = self.injections_per_sec
        d["early_stop_rate"] = self.early_stop_rate
        d["checkpoint_speedup"] = self.checkpoint_speedup
        d["prune_rate"] = self.prune_rate
        return d

    @staticmethod
    def from_dict(d: dict) -> "CampaignTelemetry":
        d = {k: v for k, v in d.items()
             if k not in ("injections_per_sec", "early_stop_rate",
                          "checkpoint_speedup", "prune_rate")}
        return CampaignTelemetry(**d)

    def summary(self) -> str:
        """Multi-line human-readable rendering."""
        lines = [
            "campaign telemetry",
            f"  injections          {self.injections}",
            f"  injections/sec      {self.injections_per_sec:,.1f}",
            "  phase timing        "
            f"golden {self.golden_s:.3f}s | maskgen {self.maskgen_s:.3f}s"
            f" | inject {self.inject_s:.3f}s"
            f" | classify {self.classify_s:.3f}s",
            f"  golden run          {self.golden_cycles} cycles, "
            f"{self.golden_checkpoints} checkpoints",
            "  snapshot engine     "
            f"take {self.snapshot_s:.3f}s | restore {self.restore_s:.3f}s"
            f" | {self.checkpoint_bytes:,} checkpoint bytes",
            f"  checkpoint speedup  {100 * self.checkpoint_speedup:.1f}% "
            f"of cycles skipped ({self.checkpoint_restores} restores, "
            f"{self.cold_starts} cold starts)",
            f"  early-stop rate     {100 * self.early_stop_rate:.1f}%"
            + ("".join(f"  [{k}: {v}]"
                       for k, v in sorted(self.early_stops.items()))
               if self.early_stops else ""),
            *([
                f"  prune rate          {100 * self.prune_rate:.1f}% "
                f"({self.prunes.get('masked', 0)} masked by analysis, "
                f"{self.prunes.get('collapsed', 0)} collapsed into "
                f"{self.prunes.get('classes', 0)} classes)"
            ] if self.prunes else []),
            "  outcomes            "
            + (" ".join(f"{k}={v}" for k, v in sorted(self.outcomes.items()))
               or "(none)"),
        ]
        return "\n".join(lines)
