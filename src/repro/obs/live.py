"""Live study monitoring: tail a study directory into a rolling view.

A running ``repro.sched`` study leaves three kinds of append-only JSONL
streams in its directory — the write-ahead journal (unit state
transitions), the trace event stream (``events.jsonl``), and one logs
repository per unit (golden reference + raw injection records, written
per injection).  :class:`StudyView` tails all of them incrementally —
tolerant of torn tails and of the scheduler still writing — and
maintains the live picture the status server, the HTML report, and
``sched status --watch`` render:

* per-unit lease/retry/quarantine state and lease ages, with
  worker-stall detection (a leased unit whose logs stopped growing);
* live outcome classification per unit — records are classified
  against the unit's golden reference as they land, so proportions and
  Wilson confidence intervals update mid-unit, not only at unit
  completion;
* statistical convergence per structure×benchmark cell
  (:mod:`repro.obs.convergence`) against the spec's confidence/error
  margin — the paper's 99 %/3 % sampling rule as a live flag;
* throughput (injections/sec over a sliding window) and an ETA from
  the remaining injections;
* the phase/checkpoint breakdown of :mod:`repro.obs.summarize`, fed
  incrementally.

Everything is read-only: a view never writes into the study directory,
so any number of observers can watch one running study.
"""

from __future__ import annotations

import json
import time
from collections import deque
from pathlib import Path

from repro.core.outcome import GoldenReference, InjectionRecord
from repro.core.parser import classify
from repro.obs.convergence import cell_convergence
from repro.obs.summarize import SummaryAccumulator

JOURNAL_NAME = "journal.jsonl"
EVENTS_NAME = "events.jsonl"

#: A leased unit whose logs have not grown for this long is "stalled".
DEFAULT_STALL_AFTER_S = 120.0

#: Sliding window for the live injections/sec estimate.
RATE_WINDOW_S = 60.0


class JSONLTailer:
    """Incremental reader of a JSONL file another process is appending.

    Remembers its byte offset between :meth:`poll` calls and only ever
    consumes newline-terminated lines — a torn tail (the line a crash
    or a concurrent writer left half-written) stays buffered until its
    newline arrives.  A complete line that is not valid JSON is
    skipped and counted in :attr:`bad_lines`.  A file that shrinks
    (truncation/rotation) resets the tail to the start.
    """

    def __init__(self, path):
        self.path = Path(path)
        self.offset = 0
        self.bad_lines = 0
        self._partial = ""

    def poll(self) -> list[dict]:
        """Return the complete JSON rows appended since the last poll."""
        try:
            size = self.path.stat().st_size
        except FileNotFoundError:
            return []
        if size < self.offset:               # truncated out from under us
            self.offset = 0
            self._partial = ""
        if size == self.offset:
            return []
        with open(self.path, "rb") as fh:
            fh.seek(self.offset)
            data = fh.read()
        self.offset += len(data)
        chunk = self._partial + data.decode("utf-8", errors="replace")
        lines = chunk.split("\n")
        self._partial = lines.pop()          # torn tail ("" if clean)
        rows = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError:
                self.bad_lines += 1
        return rows


class UnitView:
    """Rolling state of one work unit, merged from journal + logs."""

    __slots__ = ("unit_id", "state", "attempts", "lease_ts", "detail",
                 "journal_injections", "resumed", "wall_s", "records",
                 "counts", "golden", "pending", "planned",
                 "last_progress", "done_counts")

    def __init__(self, unit_id: str):
        self.unit_id = unit_id
        self.state = "pending"
        self.attempts = 0
        self.lease_ts: float | None = None
        self.detail: str | None = None
        self.journal_injections = 0
        self.resumed = 0
        self.wall_s = 0.0
        self.records = 0                     # live records seen in logs
        self.counts: dict[str, int] = {}     # live class -> count
        self.done_counts: dict | None = None  # journal's final counts
        self.golden: GoldenReference | None = None
        self.pending: list[InjectionRecord] = []   # records before golden
        self.planned: int | None = None      # masks generated (if known)
        self.last_progress: float | None = None

    @property
    def file_id(self) -> str:
        return self.unit_id.replace("/", "__")

    def classify_record(self, rec: InjectionRecord) -> None:
        if self.golden is None:
            self.pending.append(rec)
            return
        cls = classify(rec, self.golden)
        self.counts[cls] = self.counts.get(cls, 0) + 1
        self.records += 1

    def set_golden(self, golden: GoldenReference) -> None:
        self.golden = golden
        pending, self.pending = self.pending, []
        for rec in pending:
            self.classify_record(rec)

    def best_counts(self) -> dict:
        """Most authoritative outcome counts available right now."""
        if self.done_counts is not None and \
                sum(self.done_counts.values()) >= sum(self.counts.values()):
            return self.done_counts
        return self.counts


class StudyView:
    """A rolling, tail-maintained view over one study directory."""

    def __init__(self, study_dir, stall_after_s: float =
                 DEFAULT_STALL_AFTER_S):
        self.study_dir = Path(study_dir)
        self.stall_after_s = stall_after_s
        self.journal_tail = JSONLTailer(self.study_dir / JOURNAL_NAME)
        self.events_tail = JSONLTailer(self.study_dir / EVENTS_NAME)
        self.accumulator = SummaryAccumulator()
        self.spec_dict: dict | None = None
        self.spec_hash: str | None = None
        self.shard: tuple | None = None
        self.unit_ids: list[str] = []
        self.units: dict[str, UnitView] = {}
        self.transitions: list[dict] = []     # journal rows + seq, in order
        self.last_heartbeat_ts: float | None = None
        self.latest_ts: float | None = None   # newest ts in any stream
        self._logs_tails: dict[str, JSONLTailer] = {}
        self._masks_tails: dict[str, JSONLTailer] = {}
        self._arrivals: deque = deque()       # record-arrival times (live)

    # -- tail plumbing -----------------------------------------------------

    def _unit(self, unit_id: str) -> UnitView:
        uv = self.units.get(unit_id)
        if uv is None:
            uv = self.units[unit_id] = UnitView(unit_id)
            if unit_id not in self.unit_ids:
                self.unit_ids.append(unit_id)
        return uv

    def _apply_journal(self, row: dict) -> None:
        kind = row.get("kind")
        ts = row.get("ts")
        if isinstance(ts, (int, float)):
            self.latest_ts = max(self.latest_ts or ts, ts)
        if kind == "study":
            self.spec_dict = row.get("spec")
            self.spec_hash = row.get("spec_hash")
            shard = row.get("shard")
            self.shard = tuple(shard) if shard else None
            for uid in row.get("units", []):
                self._unit(uid)
        elif kind == "unit":
            uid = row.get("unit")
            if not uid:
                return
            uv = self._unit(uid)
            state = row.get("state", uv.state)
            uv.state = state
            if state == "leased":
                uv.attempts += 1
                uv.lease_ts = ts
                uv.last_progress = ts
            elif state == "done":
                uv.done_counts = row.get("counts")
                uv.journal_injections = row.get("injections", 0)
                uv.resumed = row.get("resumed", 0)
                uv.wall_s = row.get("wall_s", 0.0)
            elif state in ("failed", "quarantined"):
                uv.detail = row.get("detail") or row.get("reason")
            self.transitions.append(
                {"seq": len(self.transitions), **row})

    def _poll_logs(self, now: float) -> None:
        logs_dir = self.study_dir / "logs"
        masks_dir = self.study_dir / "masks"
        for uv in self.units.values():
            tail = self._logs_tails.get(uv.unit_id)
            if tail is None:
                tail = self._logs_tails[uv.unit_id] = \
                    JSONLTailer(logs_dir / f"{uv.file_id}.jsonl")
            for row in tail.poll():
                data = row.get("data", {})
                if row.get("kind") == "golden":
                    uv.set_golden(GoldenReference.from_dict(data))
                elif row.get("kind") == "injection":
                    try:
                        uv.classify_record(InjectionRecord.from_dict(data))
                    except (TypeError, ValueError, KeyError):
                        continue          # schema drift; never crash a view
                    uv.last_progress = now
                    self._arrivals.append(now)
            mtail = self._masks_tails.get(uv.unit_id)
            if mtail is None:
                mtail = self._masks_tails[uv.unit_id] = \
                    JSONLTailer(masks_dir / f"{uv.file_id}.jsonl")
            planned = len(mtail.poll())
            if planned:
                uv.planned = (uv.planned or 0) + planned

    def refresh(self, now: float | None = None) -> "StudyView":
        """Consume everything appended since the last refresh."""
        now = time.time() if now is None else now
        for row in self.journal_tail.poll():
            self._apply_journal(row)
        for ev in self.events_tail.poll():
            self.accumulator.add(ev)
            ts = ev.get("ts")
            if isinstance(ts, (int, float)):
                self.latest_ts = max(self.latest_ts or ts, ts)
            if ev.get("name") == "heartbeat":
                self.last_heartbeat_ts = ts
        self._poll_logs(now)
        while self._arrivals and now - self._arrivals[0] > RATE_WINDOW_S:
            self._arrivals.popleft()
        return self

    # -- derived quantities ------------------------------------------------

    def tally(self) -> dict:
        tally = {"pending": 0, "leased": 0, "done": 0, "failed": 0,
                 "quarantined": 0}
        for uv in self.units.values():
            tally[uv.state] = tally.get(uv.state, 0) + 1
        return tally

    def complete(self) -> bool:
        return bool(self.units) and all(
            uv.state in ("done", "quarantined")
            for uv in self.units.values())

    def state(self) -> str:
        """Coarse study state: ``queued`` | ``running`` | ``complete``.

        ``queued`` covers the window before the scheduler's first
        journal line lands (a service-admitted study waiting for a
        worker slot, or a directory handed to ``obs serve`` ahead of
        ``sched run``) — the /status snapshot is well-formed there,
        just all-pending with zero progress.
        """
        if self.complete():
            return "complete"
        if any(uv.state != "pending" for uv in self.units.values()):
            return "running"
        return "queued"

    def injections_done(self) -> int:
        return sum(max(uv.records, uv.journal_injections)
                   for uv in self.units.values())

    def planned_injections(self) -> int | None:
        """Total study size, when every unit's mask count is known."""
        spec = self.spec_dict or {}
        fixed = spec.get("injections")
        total = 0
        for uv in self.units.values():
            planned = uv.planned if uv.planned is not None else fixed
            if planned is None:
                if uv.state == "done":
                    planned = uv.journal_injections
                else:
                    return None            # sampler-sized unit not started
            total += planned
        return total

    def live_rate(self, now: float | None = None) -> float:
        """Injections/sec: sliding arrival window while running, the
        whole-study average once every unit is terminal (a finished
        study's backlog arrives in one poll burst, which would read as
        an absurd instantaneous rate)."""
        now = time.time() if now is None else now
        if self.complete():
            span = self.accumulator.summary()["wall_span_s"]
            done = self.injections_done()
            if span and span > 0:
                return done / span
        if not self._arrivals:
            return 0.0
        span = max(now - self._arrivals[0], 1e-9)
        return len(self._arrivals) / span

    def eta_s(self, now: float | None = None) -> float | None:
        """Seconds until study completion, from the live/observed rate."""
        planned = self.planned_injections()
        if planned is None:
            return None
        remaining = max(planned - self.injections_done(), 0)
        if remaining == 0:
            return 0.0
        rate = self.live_rate(now)
        if rate <= 0.0:
            # Fall back to the historical per-injection wall time from
            # the event stream's time histograms.
            lat = self.accumulator.inject_hist
            if lat.count == 0:
                return None
            rate = 1.0 / max(lat.mean, 1e-9)
        return remaining / rate

    def stalled_units(self, now: float | None = None) -> list[str]:
        """Leased units whose logs stopped growing for stall_after_s."""
        now = time.time() if now is None else now
        out = []
        for uv in self.units.values():
            if uv.state != "leased":
                continue
            last = uv.last_progress if uv.last_progress is not None \
                else uv.lease_ts
            if last is not None and now - last > self.stall_after_s:
                out.append(uv.unit_id)
        return sorted(out)

    # -- the snapshot ------------------------------------------------------

    def snapshot(self, now: float | None = None) -> dict:
        """One JSON-serialisable status dict: the /status payload.

        Pass a fixed *now* for deterministic output (reports, tests);
        it defaults to wall-clock time.
        """
        now = time.time() if now is None else now
        spec = self.spec_dict or {}
        confidence = spec.get("confidence", 0.99)
        error_margin = spec.get("error_margin", 0.03)
        stalled = set(self.stalled_units(now))
        summary = self.accumulator.summary()
        cells = []
        converged_cells = 0
        for uid in self.unit_ids:
            uv = self.units[uid]
            counts = uv.best_counts()
            conv = cell_convergence(counts, confidence=confidence,
                                    error_margin=error_margin)
            converged_cells += bool(conv["converged"])
            lease_age = (now - uv.lease_ts
                         if uv.state == "leased" and uv.lease_ts is not None
                         else None)
            cells.append({
                "unit": uid,
                "state": uv.state,
                "attempts": uv.attempts,
                "injections": max(uv.records, uv.journal_injections),
                "planned": uv.planned if uv.planned is not None
                else spec.get("injections"),
                "counts": dict(counts),
                "convergence": conv,
                "lease_age_s": lease_age,
                "stalled": uid in stalled,
                "resumed": uv.resumed,
                "wall_s": uv.wall_s,
                "error": uv.detail,
            })
        eta = self.eta_s(now)
        return {
            "study_dir": str(self.study_dir),
            "spec_hash": self.spec_hash,
            "spec": spec or None,
            "shard": list(self.shard) if self.shard else None,
            "units": len(self.unit_ids),
            "tally": self.tally(),
            "state": self.state(),
            "complete": self.complete(),
            "injections_done": self.injections_done(),
            "progress": {
                "planned_injections": self.planned_injections(),
                "injections_per_sec": self.live_rate(now),
                "eta_s": eta,
                "converged_cells": converged_cells,
            },
            "confidence": confidence,
            "error_margin": error_margin,
            "stalled": sorted(stalled),
            "heartbeat_age_s": (now - self.last_heartbeat_ts
                                if self.last_heartbeat_ts is not None
                                else None),
            "phases": summary["phases"],
            "checkpoint": summary["checkpoint"],
            "latency": summary["latency"],
            "outcomes": summary["outcomes"],
            "guard": summary["guard"],
            "prune": summary["prune"],
            "sched": summary["sched"],
            "svc": summary["svc"],
            "events_seen": summary["events"],
            "wall_span_s": summary["wall_span_s"],
            "cells": cells,
        }


def load_study_view(study_dir, stall_after_s: float =
                    DEFAULT_STALL_AFTER_S) -> StudyView:
    """Build a view and consume everything the study has written so far."""
    view = StudyView(study_dir, stall_after_s=stall_after_s)
    view.refresh()
    if view.spec_dict is None:
        raise FileNotFoundError(
            f"{view.study_dir / JOURNAL_NAME}: no study journal (yet)")
    return view


__all__ = ["JSONLTailer", "StudyView", "UnitView", "load_study_view",
           "DEFAULT_STALL_AFTER_S"]
