"""repro.obs — campaign observability: tracing, metrics, profiling.

The paper's analysis (Remarks 1-11) depends on explaining outcome
differences with runtime statistics; this package makes the campaign
stack itself observable.  Three layers, composable and all
zero-cost-by-default:

* :mod:`repro.obs.trace` — typed, timestamped events
  (``golden_start`` … ``campaign_end``) to pluggable sinks: null
  (default), in-memory ring buffer, JSONL file.
* :mod:`repro.obs.metrics` — counters/gauges/histograms in a
  :class:`MetricsRegistry` that serialises and merges across worker
  processes, so parallel campaigns report the same numbers as serial.
* :mod:`repro.obs.profile` — per-phase wall-time samples and the
  :class:`CampaignTelemetry` summary attached to every
  ``CampaignResult``.

``repro.tools obs summarize events.jsonl`` renders a captured event
stream as a report (see :mod:`repro.obs.summarize`), and the live
layer watches a *running* study directory: :mod:`repro.obs.live` tails
journal/event/log streams into a rolling :class:`StudyView` with
Wilson-interval convergence tracking (:mod:`repro.obs.convergence`),
:mod:`repro.obs.server` serves it over HTTP (``obs serve``), and
:mod:`repro.obs.report` renders it as a self-contained HTML report
(``obs report``).

Telemetry never alters campaign behaviour: the instrumented code paths
are bit-identical with any sink attached (tested).
"""

from repro.obs.convergence import (cell_convergence, proportion_ci,
                                   wilson_interval)
from repro.obs.live import (JSONLTailer, StudyView, UnitView,
                            load_study_view)
from repro.obs.metrics import (Counter, Gauge, Histogram, METRIC_NAMES,
                               MetricsRegistry)
from repro.obs.profile import (CampaignTelemetry, GoldenSample,
                               InjectionSample, record_classify,
                               record_golden, record_injection,
                               record_maskgen)
from repro.obs.report import render_html, report_study
from repro.obs.server import StatusServer, serve_study
from repro.obs.summarize import (SummaryAccumulator,
                                 load_events as load_event_dicts,
                                 render_report, summarize_events,
                                 summarize_file)
from repro.obs.trace import (EVENT_NAMES, JSONLSink, NULL_TRACER, NullSink,
                             RingBufferSink, TeeSink, TraceEvent, Tracer,
                             load_events)

__all__ = [
    "Tracer", "TraceEvent", "NullSink", "RingBufferSink", "JSONLSink",
    "TeeSink", "NULL_TRACER", "EVENT_NAMES", "load_events",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "METRIC_NAMES",
    "GoldenSample", "InjectionSample", "CampaignTelemetry",
    "record_golden", "record_maskgen", "record_injection",
    "record_classify",
    "summarize_events", "render_report", "summarize_file",
    "load_event_dicts", "SummaryAccumulator",
    "wilson_interval", "proportion_ci", "cell_convergence",
    "JSONLTailer", "StudyView", "UnitView", "load_study_view",
    "render_html", "report_study",
    "StatusServer", "serve_study",
]
