"""Campaign metrics: counters, gauges and histograms that merge.

A :class:`MetricsRegistry` aggregates one campaign's statistics —
injection counts, outcome distribution, early-stop hits by reason,
cycles simulated vs cycles skipped by checkpoint restores, per-phase
wall times.  Registries serialise to plain dicts and merge
associatively, which is what lets ``run_campaign_parallel`` report the
same numbers as the serial path: each worker's per-run deltas are
shipped back with the record and folded into the parent registry.

Metric names are dotted strings; the campaign stack uses the fixed
vocabulary in :data:`METRIC_NAMES` (see docs/observability.md).
"""

from __future__ import annotations

import math

# The metric vocabulary the campaign stack emits.  Families ending in a
# dot are label-suffixed at runtime (e.g. ``outcomes.exit``).
METRIC_NAMES = {
    "injections_total": "counter — injection runs completed",
    "masks_generated": "counter — fault sets produced by the generator",
    "outcomes.": "counter family — runs by raw reason (exit, killed, "
                 "panic, deadlock, cycle-limit, assert, sim-crash)",
    "early_stops.": "counter family — §III.B early stops by reason "
                    "(invalid-entry, overwritten)",
    "prune.masked": "counter — masks pre-classified Masked by the "
                    "golden-trace analyzer (no simulation)",
    "prune.collapsed": "counter — masks resolved by fault-equivalence "
                       "fan-out from a class representative",
    "prune.classes": "counter — equivalence classes that fanned out "
                     "(one representative simulated each)",
    "prune.structure.": "counter family — pruned+collapsed masks by "
                        "target structure (rate denominator is the "
                        "campaign's mask count)",
    "guard.integrity_checks": "counter — restore digests verified by "
                              "the integrity guard",
    "guard.contamination": "counter — contaminated-state incidents "
                           "(machine condemned and rebuilt)",
    "guard.invariant_violations": "counter — faulty runs stopped by a "
                                  "guard invariant (Assert class)",
    "guard.invariant.": "counter family — invariant violations by "
                        "invariant name",
    "cycles.simulated": "counter — faulty cycles actually stepped",
    "cycles.saved": "counter — cycles skipped by checkpoint restores",
    "checkpoint.restores": "counter — injection runs started from a "
                           "snapshot",
    "checkpoint.cold_starts": "counter — injection runs started from "
                              "reset",
    "golden.cycles": "gauge — golden run length in cycles",
    "golden.checkpoints": "gauge — snapshots captured by the golden run",
    "time.golden_s": "histogram — golden run wall time",
    "time.maskgen_s": "histogram — mask generation wall time",
    "time.inject_s": "histogram — per-injection wall time",
    "time.classify_s": "histogram — classification wall time",
    "time.unit_s": "histogram — per-unit wall time (scheduler)",
    "sched.units_done": "counter — study units completed",
    "sched.units_failed": "counter — unit attempts that failed",
    "sched.retries": "counter — failed units re-queued for another try",
    "sched.timeouts": "counter — unit leases killed by the wall-clock "
                      "timeout",
    "sched.quarantined": "counter — poison units retired after exhausting "
                         "their retries",
    "sched.queue_depth": "gauge — units waiting or running right now",
    "svc.studies_submitted": "counter — studies admitted by the service",
    "svc.studies_done": "counter — service studies run to completion",
    "svc.studies_cancelled": "counter — service studies cancelled",
    "svc.quota_rejections": "counter — submissions refused by a tenant "
                            "quota (HTTP 429)",
    "svc.queue_depth": "gauge — service units queued or in flight",
    "svc.busy_workers": "gauge — fleet workers currently leasing a unit",
    "svc.tenant_queued.": "gauge family — queued units by tenant "
                          "(fairness observability)",
    "svc.tenant_inflight.": "gauge family — in-flight units by tenant",
    "svc.golden_cache_entries": "gauge — cross-study golden payloads "
                                "held by the fleet cache",
}


class Counter:
    """Monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self, value: int = 0):
        self.value = value

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        self.value += n


class Gauge:
    """Last-write-wins scalar."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0):
        self.value = value

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Mergeable summary of a distribution, with percentile estimates.

    Deliberately keeps no raw samples — instead of a sample list it
    bins positive observations into logarithmic buckets (8 per decade),
    so summaries still merge associatively across worker processes and
    serialise to a handful of numbers.  :meth:`percentile` answers from
    the buckets with a bounded relative error (one bucket is a ×1.33
    span; the estimate is the bucket's geometric midpoint clamped to
    the observed min/max), which is plenty for wall-time reporting.
    """

    __slots__ = ("count", "total", "min", "max", "buckets", "zeros")

    #: Log-bucket resolution: buckets per decade of value.
    BUCKETS_PER_DECADE = 8

    def __init__(self, count: int = 0, total: float = 0.0,
                 min: float | None = None, max: float | None = None,
                 buckets: dict | None = None, zeros: int = 0):
        self.count = count
        self.total = total
        self.min = min
        self.max = max
        # bucket index -> observation count; keys may arrive as str
        # (JSON round trip) and are normalised to int.
        self.buckets = {int(k): v for k, v in (buckets or {}).items()}
        self.zeros = zeros                 # observations <= 0

    @classmethod
    def _bucket_of(cls, value: float) -> int:
        return math.floor(math.log10(value) * cls.BUCKETS_PER_DECADE)

    @classmethod
    def _bucket_mid(cls, index: int) -> float:
        # Geometric midpoint of [10^(i/8), 10^((i+1)/8)).
        return 10.0 ** ((index + 0.5) / cls.BUCKETS_PER_DECADE)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if value > 0.0:
            idx = self._bucket_of(value)
            self.buckets[idx] = self.buckets.get(idx, 0) + 1
        else:
            self.zeros += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated *q*-th percentile (q in [0, 100]) of observations.

        Zero/negative observations count as 0.0; the estimate is
        clamped to the observed [min, max], so single-valued
        distributions report exactly.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile wants q in [0, 100], got {q}")
        if self.count == 0:
            return 0.0
        target = max(1, math.ceil(q / 100.0 * self.count))
        cum = self.zeros
        estimate = 0.0
        if target > cum:
            for idx in sorted(self.buckets):
                cum += self.buckets[idx]
                if cum >= target:
                    estimate = self._bucket_mid(idx)
                    break
        lo = self.min if self.min is not None else estimate
        hi = self.max if self.max is not None else estimate
        return min(max(estimate, lo), hi)

    def summary(self) -> dict:
        """Condensed distribution: count/mean/min/max + p50/p90/p99."""
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }

    def merge(self, other: "Histogram") -> None:
        self.count += other.count
        self.total += other.total
        for attr, pick in (("min", min), ("max", max)):
            mine, theirs = getattr(self, attr), getattr(other, attr)
            if theirs is not None:
                setattr(self, attr,
                        theirs if mine is None else pick(mine, theirs))
        for idx, n in other.buckets.items():
            self.buckets[idx] = self.buckets.get(idx, 0) + n
        self.zeros += other.zeros

    def to_dict(self) -> dict:
        d = {"count": self.count, "total": self.total,
             "min": self.min, "max": self.max}
        if self.buckets:
            d["buckets"] = {str(k): v
                            for k, v in sorted(self.buckets.items())}
        if self.zeros:
            d["zeros"] = self.zeros
        return d

    @staticmethod
    def from_dict(d: dict) -> "Histogram":
        return Histogram(**d)


class MetricsRegistry:
    """Named counters/gauges/histograms for one campaign (or worker)."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- get-or-create accessors ------------------------------------------

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge()
        return g

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram()
        return h

    # -- read side --------------------------------------------------------

    def counter_value(self, name: str, default: int = 0) -> int:
        c = self._counters.get(name)
        return c.value if c is not None else default

    def family(self, prefix: str) -> dict:
        """All counters under a dotted prefix, suffix-keyed."""
        return {name[len(prefix):]: c.value
                for name, c in sorted(self._counters.items())
                if name.startswith(prefix)}

    def names(self) -> list:
        return sorted([*self._counters, *self._gauges, *self._histograms])

    # -- serialisation / merging ------------------------------------------

    def to_dict(self) -> dict:
        return {
            "counters": {k: c.value
                         for k, c in sorted(self._counters.items())},
            "gauges": {k: g.value
                       for k, g in sorted(self._gauges.items())},
            "histograms": {k: h.to_dict()
                           for k, h in sorted(self._histograms.items())},
        }

    @staticmethod
    def from_dict(d: dict) -> "MetricsRegistry":
        reg = MetricsRegistry()
        for k, v in d.get("counters", {}).items():
            reg.counter(k).inc(v)
        for k, v in d.get("gauges", {}).items():
            reg.gauge(k).set(v)
        for k, v in d.get("histograms", {}).items():
            reg._histograms[k] = Histogram.from_dict(v)
        return reg

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold *other* into this registry (gauges: last write wins)."""
        for k, c in other._counters.items():
            self.counter(k).inc(c.value)
        for k, g in other._gauges.items():
            self.gauge(k).set(g.value)
        for k, h in other._histograms.items():
            self.histogram(k).merge(h)
        return self
