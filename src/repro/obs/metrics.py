"""Campaign metrics: counters, gauges and histograms that merge.

A :class:`MetricsRegistry` aggregates one campaign's statistics —
injection counts, outcome distribution, early-stop hits by reason,
cycles simulated vs cycles skipped by checkpoint restores, per-phase
wall times.  Registries serialise to plain dicts and merge
associatively, which is what lets ``run_campaign_parallel`` report the
same numbers as the serial path: each worker's per-run deltas are
shipped back with the record and folded into the parent registry.

Metric names are dotted strings; the campaign stack uses the fixed
vocabulary in :data:`METRIC_NAMES` (see docs/observability.md).
"""

from __future__ import annotations

# The metric vocabulary the campaign stack emits.  Families ending in a
# dot are label-suffixed at runtime (e.g. ``outcomes.exit``).
METRIC_NAMES = {
    "injections_total": "counter — injection runs completed",
    "masks_generated": "counter — fault sets produced by the generator",
    "outcomes.": "counter family — runs by raw reason (exit, killed, "
                 "panic, deadlock, cycle-limit, assert, sim-crash)",
    "early_stops.": "counter family — §III.B early stops by reason "
                    "(invalid-entry, overwritten)",
    "guard.integrity_checks": "counter — restore digests verified by "
                              "the integrity guard",
    "guard.contamination": "counter — contaminated-state incidents "
                           "(machine condemned and rebuilt)",
    "guard.invariant_violations": "counter — faulty runs stopped by a "
                                  "guard invariant (Assert class)",
    "guard.invariant.": "counter family — invariant violations by "
                        "invariant name",
    "cycles.simulated": "counter — faulty cycles actually stepped",
    "cycles.saved": "counter — cycles skipped by checkpoint restores",
    "checkpoint.restores": "counter — injection runs started from a "
                           "snapshot",
    "checkpoint.cold_starts": "counter — injection runs started from "
                              "reset",
    "golden.cycles": "gauge — golden run length in cycles",
    "golden.checkpoints": "gauge — snapshots captured by the golden run",
    "time.golden_s": "histogram — golden run wall time",
    "time.maskgen_s": "histogram — mask generation wall time",
    "time.inject_s": "histogram — per-injection wall time",
    "time.classify_s": "histogram — classification wall time",
    "time.unit_s": "histogram — per-unit wall time (scheduler)",
    "sched.units_done": "counter — study units completed",
    "sched.units_failed": "counter — unit attempts that failed",
    "sched.retries": "counter — failed units re-queued for another try",
    "sched.timeouts": "counter — unit leases killed by the wall-clock "
                      "timeout",
    "sched.quarantined": "counter — poison units retired after exhausting "
                         "their retries",
    "sched.queue_depth": "gauge — units waiting or running right now",
}


class Counter:
    """Monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self, value: int = 0):
        self.value = value

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        self.value += n


class Gauge:
    """Last-write-wins scalar."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0):
        self.value = value

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Mergeable summary of a distribution: count/total/min/max.

    Deliberately keeps no samples — summaries merge associatively
    across worker processes and serialise to four numbers.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self, count: int = 0, total: float = 0.0,
                 min: float | None = None, max: float | None = None):
        self.count = count
        self.total = total
        self.min = min
        self.max = max

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        self.count += other.count
        self.total += other.total
        for attr, pick in (("min", min), ("max", max)):
            mine, theirs = getattr(self, attr), getattr(other, attr)
            if theirs is not None:
                setattr(self, attr,
                        theirs if mine is None else pick(mine, theirs))

    def to_dict(self) -> dict:
        return {"count": self.count, "total": self.total,
                "min": self.min, "max": self.max}

    @staticmethod
    def from_dict(d: dict) -> "Histogram":
        return Histogram(**d)


class MetricsRegistry:
    """Named counters/gauges/histograms for one campaign (or worker)."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- get-or-create accessors ------------------------------------------

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge()
        return g

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram()
        return h

    # -- read side --------------------------------------------------------

    def counter_value(self, name: str, default: int = 0) -> int:
        c = self._counters.get(name)
        return c.value if c is not None else default

    def family(self, prefix: str) -> dict:
        """All counters under a dotted prefix, suffix-keyed."""
        return {name[len(prefix):]: c.value
                for name, c in sorted(self._counters.items())
                if name.startswith(prefix)}

    def names(self) -> list:
        return sorted([*self._counters, *self._gauges, *self._histograms])

    # -- serialisation / merging ------------------------------------------

    def to_dict(self) -> dict:
        return {
            "counters": {k: c.value
                         for k, c in sorted(self._counters.items())},
            "gauges": {k: g.value
                       for k, g in sorted(self._gauges.items())},
            "histograms": {k: h.to_dict()
                           for k, h in sorted(self._histograms.items())},
        }

    @staticmethod
    def from_dict(d: dict) -> "MetricsRegistry":
        reg = MetricsRegistry()
        for k, v in d.get("counters", {}).items():
            reg.counter(k).inc(v)
        for k, v in d.get("gauges", {}).items():
            reg.gauge(k).set(v)
        for k, v in d.get("histograms", {}).items():
            reg._histograms[k] = Histogram.from_dict(v)
        return reg

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold *other* into this registry (gauges: last write wins)."""
        for k, c in other._counters.items():
            self.counter(k).inc(c.value)
        for k, g in other._gauges.items():
            self.gauge(k).set(g.value)
        for k, h in other._histograms.items():
            self.histogram(k).merge(h)
        return self
