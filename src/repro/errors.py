"""Exception hierarchy shared across the simulators and the injectors.

The distinction between :class:`SimAssertError` and :class:`SimCrashError`
is load-bearing for the study: the MARSS-like simulator performs dense
internal consistency checking and surfaces corrupted microarchitectural
state as *assertions*, while the gem5-like simulator checks sparsely and
lets corrupted state propagate until the simulator process itself dies
(Remark 8 of the paper).  The campaign controller catches both and the
parser maps them to the ``Assert`` and ``Crash (simulator)`` classes.
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimAssertError(ReproError):
    """An internal simulator assertion failed (maps to the Assert class)."""


class SimCrashError(ReproError):
    """The simulator itself died (maps to Crash / simulator sub-class)."""


class AsmError(ReproError):
    """Assembly-language source could not be assembled."""


class CompileError(ReproError):
    """MiniC source could not be compiled."""


class CampaignError(ReproError):
    """A fault-injection campaign was misconfigured or cannot make
    durable progress (e.g. a journal or repository append failed with
    ``ENOSPC``); the message names the path and the remedy."""
