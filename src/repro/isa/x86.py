"""A compact CISC (x86-like) toy ISA with a real byte-level encoding.

Design goals (they drive the differential study, see DESIGN.md):

* **Variable-length encoding** (1–6 bytes) with imm8/disp8 short forms, so
  average code density beats the fixed 4-byte ARM-like ISA — the paper's
  Remark 7 L1I replacement asymmetry depends on this.
* **Two-address ALU ops**, a hardware stack (``push``/``pop``/``call``
  store through memory) and **load-op** instructions that crack into
  multiple µops — x86-flavoured memory traffic.
* **Undefined opcode holes** and reserved must-be-zero encoding bits, so a
  bit flip in the instruction bytes decodes into the authentic mix of
  "different valid instruction", "undefined instruction" and "suspicious
  encoding" (the latter is what the MARSS-like simulator asserts on).

Register convention: ``r0..r14`` general purpose, ``r15`` is the stack
pointer (aliased ``sp``).
"""

from __future__ import annotations

import struct

from repro.isa.common import Instr, UOp, REG_T0

NAME = "x86"
MAX_ILEN = 6
SP = 15

_CONDS = ("eq", "ne", "lt", "le", "gt", "ge", "ult", "ule", "ugt", "uge")

# Encoding formats:
#   RR    op modrm                      (2)  modrm = (rd << 4) | rs
#   RI8   op modrm imm8                 (3)  signed immediate
#   RI32  op modrm imm32                (6)
#   M32   op modrm disp32               (6)  rd, [rs + disp]
#   M8    op modrm disp8                (3)
#   REL32 op rel32                      (5)  target = pc + len + rel
#   REL8  op rel8                       (2)
#   R     op modrm                      (2)  register in low nibble, high
#                                            nibble must be zero
#   N     op                            (1)

_ALU_RR = {0x01: "add", 0x05: "sub", 0x09: "and", 0x0D: "or", 0x11: "xor",
           0x15: "shl", 0x19: "shr", 0x1D: "sar", 0x21: "mul", 0x25: "div",
           0x29: "mod"}
_ALU_RI32 = {0x02: "add", 0x06: "sub", 0x0A: "and", 0x0E: "or", 0x12: "xor",
             0x22: "mul"}
_ALU_RI8 = {0x04: "add", 0x08: "sub", 0x0B: "and", 0x0F: "or", 0x13: "xor",
            0x16: "shl", 0x1A: "shr", 0x1E: "sar", 0x24: "mul"}
_ALU_M32 = {0x03: "add", 0x07: "sub", 0x23: "mul"}   # load-op, disp32
_ALU_M8 = {0x2A: "add", 0x2B: "sub", 0x2C: "mul"}    # load-op, disp8

_OP_NOT = 0x2D
_OP_NEG = 0x2E
_OP_MOV_RR = 0x31
_OP_MOV_RI32 = 0x32
_OP_MOV_RI8 = 0x33
_OP_LOAD = 0x35
_OP_LOAD8 = 0x36
_OP_LOAD_D8 = 0x37
_OP_LOAD8_D8 = 0x38
_OP_STORE = 0x39
_OP_STORE8 = 0x3A
_OP_STORE_D8 = 0x3B
_OP_STORE8_D8 = 0x3C
_OP_CMP_RR = 0x41
_OP_CMP_RI32 = 0x42
_OP_CMP_RI8 = 0x43
_OP_JCC_BASE = 0x45          # 0x45..0x4E, rel32
_OP_JCC8_BASE = 0x65         # 0x65..0x6E, rel8
_OP_JMP = 0x51
_OP_JMPR = 0x52
_OP_JMP8 = 0x71
_OP_CALL = 0x55
_OP_RET = 0x56
_OP_PUSH = 0x59
_OP_POP = 0x5A
_OP_SYSCALL = 0x61
_OP_NOP = 0x90


def _s8(b: int) -> int:
    return b - 256 if b & 0x80 else b


def _s32(buf: bytes) -> int:
    return struct.unpack("<i", buf)[0]


def _crack_alu(op, rd, rs2=None, imm=0):
    if op in ("not", "neg"):
        return [UOp("alu", op, rd, rs1=rd)]
    return [UOp("alu", op, rd, rs1=rd, rs2=rs2, imm=imm)]


def decode_window(window: bytes, pc: int) -> Instr:
    """Decode one instruction from *window* (bytes starting at *pc*).

    Never raises on bad encodings: undefined opcodes decode to the
    pseudo-instruction ``"<ud>"`` (length 1) and suspicious-but-decodable
    encodings set ``Instr.raw`` plus a ``"!"`` suffix convention handled by
    the pipelines.  The window must contain at least :data:`MAX_ILEN`
    bytes unless the instruction ends the code segment.
    """
    opc = window[0]
    quirky = False

    def ins(mnem, length, uops, **kw):
        instr = Instr(mnem, length, uops, raw=bytes(window[:length]), **kw)
        return instr

    if opc in _ALU_RR or opc in (_OP_MOV_RR, _OP_CMP_RR):
        modrm = window[1]
        rd, rs = modrm >> 4, modrm & 0xF
        if opc == _OP_MOV_RR:
            return ins("mov", 2, [UOp("alu", "mov", rd, rs1=rs)])
        if opc == _OP_CMP_RR:
            return ins("cmp", 2, [UOp("alu", "cmp", None, rs1=rd, rs2=rs)])
        op = _ALU_RR[opc]
        return ins(op, 2, _crack_alu(op, rd, rs2=rs))
    if opc in _ALU_RI32 or opc in (_OP_MOV_RI32, _OP_CMP_RI32):
        modrm = window[1]
        rd = modrm >> 4
        quirky = bool(modrm & 0xF)
        imm = _s32(window[2:6])
        if opc == _OP_MOV_RI32:
            u = [UOp("alu", "mov", rd, imm=imm)]
            return ins("mov", 6, u)
        if opc == _OP_CMP_RI32:
            return ins("cmp", 6, [UOp("alu", "cmp", None, rs1=rd, imm=imm)])
        op = _ALU_RI32[opc]
        i = ins(op, 6, _crack_alu(op, rd, imm=imm))
        i.mnemonic += "!" if quirky else ""
        return i
    if opc in _ALU_RI8 or opc in (_OP_MOV_RI8, _OP_CMP_RI8):
        modrm = window[1]
        rd = modrm >> 4
        quirky = bool(modrm & 0xF)
        imm = _s8(window[2])
        if opc == _OP_MOV_RI8:
            return ins("mov", 3, [UOp("alu", "mov", rd, imm=imm)])
        if opc == _OP_CMP_RI8:
            return ins("cmp", 3, [UOp("alu", "cmp", None, rs1=rd, imm=imm)])
        op = _ALU_RI8[opc]
        i = ins(op, 3, _crack_alu(op, rd, imm=imm))
        i.mnemonic += "!" if quirky else ""
        return i
    if opc in _ALU_M32 or opc in _ALU_M8:
        modrm = window[1]
        rd, base = modrm >> 4, modrm & 0xF
        if opc in _ALU_M32:
            op, disp, length = _ALU_M32[opc], _s32(window[2:6]), 6
        else:
            op, disp, length = _ALU_M8[opc], _s8(window[2]), 3
        uops = [UOp("load", None, REG_T0, rs1=base, imm=disp),
                UOp("alu", op, rd, rs1=rd, rs2=REG_T0)]
        return ins(op + "m", length, uops)
    if opc in (_OP_LOAD, _OP_LOAD8, _OP_LOAD_D8, _OP_LOAD8_D8):
        modrm = window[1]
        rd, base = modrm >> 4, modrm & 0xF
        size = 1 if opc in (_OP_LOAD8, _OP_LOAD8_D8) else 4
        if opc in (_OP_LOAD, _OP_LOAD8):
            disp, length = _s32(window[2:6]), 6
        else:
            disp, length = _s8(window[2]), 3
        return ins("load", length,
                   [UOp("load", None, rd, rs1=base, imm=disp, size=size)])
    if opc in (_OP_STORE, _OP_STORE8, _OP_STORE_D8, _OP_STORE8_D8):
        modrm = window[1]
        base, src = modrm >> 4, modrm & 0xF
        size = 1 if opc in (_OP_STORE8, _OP_STORE8_D8) else 4
        if opc in (_OP_STORE, _OP_STORE8):
            disp, length = _s32(window[2:6]), 6
        else:
            disp, length = _s8(window[2]), 3
        return ins("store", length,
                   [UOp("store", None, rs1=base, rs2=src, imm=disp, size=size)])
    if opc in (_OP_NOT, _OP_NEG):
        modrm = window[1]
        rd = modrm & 0xF
        quirky = bool(modrm >> 4)
        op = "not" if opc == _OP_NOT else "neg"
        i = ins(op, 2, _crack_alu(op, rd))
        i.mnemonic += "!" if quirky else ""
        return i
    if _OP_JCC_BASE <= opc < _OP_JCC_BASE + 10:
        cond = _CONDS[opc - _OP_JCC_BASE]
        target = (pc + 5 + _s32(window[1:5])) & 0xFFFFFFFF
        return ins("j" + cond, 5, [UOp("br", cond, imm=target)],
                   is_branch=True, is_cond=True, target=target)
    if _OP_JCC8_BASE <= opc < _OP_JCC8_BASE + 10:
        cond = _CONDS[opc - _OP_JCC8_BASE]
        target = (pc + 2 + _s8(window[1])) & 0xFFFFFFFF
        return ins("j" + cond, 2, [UOp("br", cond, imm=target)],
                   is_branch=True, is_cond=True, target=target)
    if opc == _OP_JMP:
        target = (pc + 5 + _s32(window[1:5])) & 0xFFFFFFFF
        return ins("jmp", 5, [UOp("jmp", imm=target)],
                   is_branch=True, target=target)
    if opc == _OP_JMP8:
        target = (pc + 2 + _s8(window[1])) & 0xFFFFFFFF
        return ins("jmp", 2, [UOp("jmp", imm=target)],
                   is_branch=True, target=target)
    if opc == _OP_JMPR:
        modrm = window[1]
        rs = modrm & 0xF
        quirky = bool(modrm >> 4)
        i = ins("jmpr", 2, [UOp("ijmp", rs1=rs)],
                is_branch=True, is_indirect=True)
        i.mnemonic += "!" if quirky else ""
        return i
    if opc == _OP_CALL:
        target = (pc + 5 + _s32(window[1:5])) & 0xFFFFFFFF
        ret = pc + 5
        uops = [UOp("alu", "sub", SP, rs1=SP, imm=4),
                UOp("alu", "mov", REG_T0, imm=ret),
                UOp("store", None, rs1=SP, rs2=REG_T0, imm=0),
                UOp("jmp", imm=target)]
        return ins("call", 5, uops, is_branch=True, is_call=True,
                   target=target)
    if opc == _OP_RET:
        uops = [UOp("load", None, REG_T0, rs1=SP, imm=0),
                UOp("alu", "add", SP, rs1=SP, imm=4),
                UOp("ijmp", rs1=REG_T0)]
        return ins("ret", 1, uops, is_branch=True, is_ret=True,
                   is_indirect=True)
    if opc == _OP_PUSH:
        modrm = window[1]
        rs = modrm & 0xF
        quirky = bool(modrm >> 4)
        uops = [UOp("alu", "sub", SP, rs1=SP, imm=4),
                UOp("store", None, rs1=SP, rs2=rs, imm=0)]
        i = ins("push", 2, uops)
        i.mnemonic += "!" if quirky else ""
        return i
    if opc == _OP_POP:
        modrm = window[1]
        rd = modrm & 0xF
        quirky = bool(modrm >> 4)
        uops = [UOp("load", None, rd, rs1=SP, imm=0),
                UOp("alu", "add", SP, rs1=SP, imm=4)]
        i = ins("pop", 2, uops)
        i.mnemonic += "!" if quirky else ""
        return i
    if opc == _OP_SYSCALL:
        return ins("syscall", 1, [UOp("sys")])
    if opc == _OP_NOP:
        return ins("nop", 1, [UOp("nop")])
    return ins("<ud>", 1, [])


# ---------------------------------------------------------------------------
# Encoding (used by the assembler).

def _pack_modrm(hi: int, lo: int) -> bytes:
    return bytes([((hi & 0xF) << 4) | (lo & 0xF)])


def _wrap_s32(v: int) -> int:
    """Fold any Python int into the signed 32-bit encoding range."""
    v &= 0xFFFFFFFF
    return v - 0x100000000 if v & 0x80000000 else v


def _fits8(v: int) -> bool:
    return -128 <= v <= 127


def encode_alu_rr(op: str, rd: int, rs: int) -> bytes:
    inv = {v: k for k, v in _ALU_RR.items()}
    return bytes([inv[op]]) + _pack_modrm(rd, rs)


def encode_alu_ri(op: str, rd: int, imm: int) -> bytes:
    imm = _wrap_s32(imm)
    inv8 = {v: k for k, v in _ALU_RI8.items()}
    inv32 = {v: k for k, v in _ALU_RI32.items()}
    if op in inv8 and _fits8(imm):
        return bytes([inv8[op]]) + _pack_modrm(rd, 0) + struct.pack("<b", imm)
    if op not in inv32:
        raise ValueError(f"{op} has no imm32 form")
    return bytes([inv32[op]]) + _pack_modrm(rd, 0) + struct.pack("<i", imm)


def encode_alu_m(op: str, rd: int, base: int, disp: int) -> bytes:
    inv8 = {v: k for k, v in _ALU_M8.items()}
    inv32 = {v: k for k, v in _ALU_M32.items()}
    if op in inv8 and _fits8(disp):
        return bytes([inv8[op]]) + _pack_modrm(rd, base) + struct.pack("<b", disp)
    return bytes([inv32[op]]) + _pack_modrm(rd, base) + struct.pack("<i", disp)


def encode_mov_rr(rd: int, rs: int) -> bytes:
    return bytes([_OP_MOV_RR]) + _pack_modrm(rd, rs)


def encode_mov_ri(rd: int, imm: int) -> bytes:
    imm = _wrap_s32(imm)
    if _fits8(imm):
        return bytes([_OP_MOV_RI8]) + _pack_modrm(rd, 0) + struct.pack("<b", imm)
    return bytes([_OP_MOV_RI32]) + _pack_modrm(rd, 0) + struct.pack("<i", imm)


def encode_cmp_rr(r1: int, r2: int) -> bytes:
    return bytes([_OP_CMP_RR]) + _pack_modrm(r1, r2)


def encode_cmp_ri(r1: int, imm: int) -> bytes:
    imm = _wrap_s32(imm)
    if _fits8(imm):
        return bytes([_OP_CMP_RI8]) + _pack_modrm(r1, 0) + struct.pack("<b", imm)
    return bytes([_OP_CMP_RI32]) + _pack_modrm(r1, 0) + struct.pack("<i", imm)


def encode_mem(mnem: str, reg: int, base: int, disp: int) -> bytes:
    table = {
        ("load", 4, True): _OP_LOAD_D8, ("load", 4, False): _OP_LOAD,
        ("load", 1, True): _OP_LOAD8_D8, ("load", 1, False): _OP_LOAD8,
        ("store", 4, True): _OP_STORE_D8, ("store", 4, False): _OP_STORE,
        ("store", 1, True): _OP_STORE8_D8, ("store", 1, False): _OP_STORE8,
    }
    kind, size = ("load", 4) if mnem == "load" else \
                 ("load", 1) if mnem == "load8" else \
                 ("store", 4) if mnem == "store" else ("store", 1)
    short = _fits8(disp)
    opc = table[(kind, size, short)]
    if kind == "load":
        modrm = _pack_modrm(reg, base)
    else:
        modrm = _pack_modrm(base, reg)
    imm = struct.pack("<b", disp) if short else struct.pack("<i", disp)
    return bytes([opc]) + modrm + imm


def encode_unary(op: str, rd: int) -> bytes:
    opc = _OP_NOT if op == "not" else _OP_NEG
    return bytes([opc]) + _pack_modrm(0, rd)


def encode_branch(mnem: str, rel: int, short: bool) -> bytes:
    """Encode jcc/jmp/call; *rel* is relative to the end of the instruction."""
    if mnem == "call":
        return bytes([_OP_CALL]) + struct.pack("<i", rel)
    if mnem == "jmp":
        if short:
            return bytes([_OP_JMP8]) + struct.pack("<b", rel)
        return bytes([_OP_JMP]) + struct.pack("<i", rel)
    cond = mnem[1:]
    idx = _CONDS.index(cond)
    if short:
        return bytes([_OP_JCC8_BASE + idx]) + struct.pack("<b", rel)
    return bytes([_OP_JCC_BASE + idx]) + struct.pack("<i", rel)


def encode_simple(mnem: str, reg: int | None = None) -> bytes:
    if mnem == "ret":
        return bytes([_OP_RET])
    if mnem == "syscall":
        return bytes([_OP_SYSCALL])
    if mnem == "nop":
        return bytes([_OP_NOP])
    if mnem == "push":
        return bytes([_OP_PUSH]) + _pack_modrm(0, reg)
    if mnem == "pop":
        return bytes([_OP_POP]) + _pack_modrm(0, reg)
    if mnem == "jmpr":
        return bytes([_OP_JMPR]) + _pack_modrm(0, reg)
    raise ValueError(f"unknown simple instruction {mnem}")
