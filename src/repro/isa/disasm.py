"""Disassembler for both toy ISAs.

Formats decoded instructions back into the assembler's input dialect, so
``assemble(disassemble(assemble(src)))`` is byte-identical — a property
the test suite checks.  Used by the debugging/trace utilities and handy
when inspecting fault-corrupted code.
"""

from __future__ import annotations

from repro.isa import arm, x86
from repro.isa.common import Instr, Program

_ISA = {"x86": x86, "arm": arm}


def _reg(isa: str, n: int) -> str:
    if isa == "x86" and n == x86.SP:
        return "sp"
    if isa == "arm" and n == arm.SP:
        return "sp"
    if isa == "arm" and n == arm.LR:
        return "lr"
    return f"r{n}"


def _x86_operands(instr: Instr) -> str:
    m = instr.mnemonic.rstrip("!")
    uops = instr.uops
    if m in ("nop", "syscall", "ret", "<ud>"):
        return ""
    if m == "push":
        return _reg("x86", uops[1].rs2)
    if m == "pop":
        return _reg("x86", uops[0].rd)
    if m == "jmpr":
        return _reg("x86", uops[0].rs1)
    if m in ("jmp", "call") or m.startswith("j"):
        return f"{instr.target:#x}"
    if m == "load":
        u = uops[0]
        return f"r{u.rd}, [{_reg('x86', u.rs1)}{u.imm:+d}]"
    if m == "store":
        u = uops[0]
        return f"[{_reg('x86', u.rs1)}{u.imm:+d}], {_reg('x86', u.rs2)}"
    if m.endswith("m") and len(uops) == 2 and uops[0].kind == "load":
        load, alu = uops
        return f"r{alu.rd}, [{_reg('x86', load.rs1)}{load.imm:+d}]"
    if m == "cmp":
        u = uops[0]
        rhs = _reg("x86", u.rs2) if u.rs2 is not None else str(u.imm)
        return f"{_reg('x86', u.rs1)}, {rhs}"
    if m == "mov":
        u = uops[0]
        rhs = _reg("x86", u.rs1) if u.rs1 is not None else str(u.imm)
        return f"{_reg('x86', u.rd)}, {rhs}"
    if m in ("not", "neg"):
        return _reg("x86", uops[0].rd)
    # Two-address ALU.
    u = uops[0]
    rhs = _reg("x86", u.rs2) if u.rs2 is not None else str(u.imm)
    return f"{_reg('x86', u.rd)}, {rhs}"


def _x86_mnemonic(instr: Instr) -> str:
    m = instr.mnemonic.rstrip("!")
    if m == "load" and instr.uops and instr.uops[0].size == 1:
        return "load8"
    if m == "store" and instr.uops and instr.uops[0].size == 1:
        return "store8"
    if m.endswith("m") and len(instr.uops) == 2 and \
            instr.uops[0].kind == "load":
        return m  # addm/subm/mulm keep their names
    return m


def _arm_operands(instr: Instr) -> str:
    m = instr.mnemonic.rstrip("!")
    uops = instr.uops
    if m in ("nop", "svc", "<ud>"):
        return ""
    if m == "bx":
        return _reg("arm", uops[0].rs1)
    if m in ("b", "bl") or (m.startswith("b") and instr.is_cond):
        return f"{instr.target:#x}"
    if m in ("ldr", "ldrb"):
        u = uops[0]
        return f"r{u.rd}, [{_reg('arm', u.rs1)}{u.imm:+d}]"
    if m in ("str", "strb"):
        u = uops[0]
        return f"r{u.rs2}, [{_reg('arm', u.rs1)}{u.imm:+d}]"
    if m == "cmp" or m == "cmpi":
        u = uops[0]
        rhs = _reg("arm", u.rs2) if u.rs2 is not None else str(u.imm)
        return f"{_reg('arm', u.rs1)}, {rhs}"
    if m == "mov":
        u = uops[0]
        return f"{_reg('arm', u.rd)}, {_reg('arm', u.rs1)}"
    if m == "movi":
        u = uops[0]
        return f"{_reg('arm', u.rd)}, {u.imm}"
    if m == "movt":
        u = uops[0]
        return f"{_reg('arm', u.rd)}, {u.imm}"
    if m == "mvn":
        u = uops[0]
        return f"{_reg('arm', u.rd)}, {_reg('arm', u.rs1)}"
    # Three-address ALU (rr or ri).
    u = uops[0]
    rhs = _reg("arm", u.rs2) if u.rs2 is not None else str(u.imm)
    return f"{_reg('arm', u.rd)}, {_reg('arm', u.rs1)}, {rhs}"


def _arm_mnemonic(instr: Instr) -> str:
    m = instr.mnemonic.rstrip("!")
    if m == "movi":
        return "mov"
    if m.endswith("i") and m[:-1] in ("add", "sub", "and", "or", "xor",
                                      "shl", "shr", "sar", "cmp"):
        return m[:-1]
    return m


def disassemble_one(instr: Instr, isa: str) -> str:
    """One instruction as assembler-dialect text."""
    if instr.mnemonic == "<ud>":
        return f".byte {', '.join(str(b) for b in instr.raw)} ; <ud>"
    if isa == "x86":
        return f"{_x86_mnemonic(instr)} {_x86_operands(instr)}".rstrip()
    return f"{_arm_mnemonic(instr)} {_arm_operands(instr)}".rstrip()


def disassemble_range(data: bytes, base: int, isa: str):
    """Yield (addr, raw_bytes, text) over a code blob."""
    mod = _ISA[isa]
    pc = base
    end = base + len(data)
    while pc < end:
        off = pc - base
        window = data[off:off + mod.MAX_ILEN]
        if len(window) < mod.MAX_ILEN:
            window = window + bytes(mod.MAX_ILEN - len(window))
        instr = mod.decode_window(window, pc)
        yield pc, data[off:off + instr.length], disassemble_one(instr, isa)
        pc += instr.length


def disassemble_program(program: Program) -> str:
    """Full listing of a linked program's code sections."""
    lines = []
    symbols_by_addr = {}
    for name, addr in program.symbols.items():
        symbols_by_addr.setdefault(addr, []).append(name)
    for section in program.sections:
        if not section.executable:
            continue
        for pc, raw, text in disassemble_range(section.data, section.base,
                                               program.isa):
            for name in symbols_by_addr.get(pc, []):
                lines.append(f"{name}:")
            lines.append(f"  {pc:#07x}:  {raw.hex():<14s} {text}")
    return "\n".join(lines)
