"""ISA-independent instruction and micro-op model.

Both toy ISAs (:mod:`repro.isa.x86` and :mod:`repro.isa.arm`) decode their
byte encodings into :class:`Instr` objects which *crack* into a shared
micro-op (:class:`UOp`) vocabulary.  The functional reference simulator
and both out-of-order timing simulators execute only µops, so the two
ISAs differ exactly where real ISAs differ: register pressure, encoding
density, cracking (x86 load-op / push / call do memory work), and
exception surface — not in executor semantics.

Register file layout (architectural integer space)::

    0..15   general purpose registers (ISA conventions differ)
    16      FLAGS / CPSR  (written by cmp, read by conditional branches)
    17..19  cracking temporaries (invisible to compilers/assemblers)

A separate 16-entry floating-point architectural space exists so the
simulators expose an injectable FP physical register file (Table II/IV of
the paper) even though the integer MiBench-like workloads never touch it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

NUM_GPR = 16
REG_FLAGS = 16
REG_T0 = 17
REG_T1 = 18
REG_T2 = 19
NUM_ARCH_REGS = 20
NUM_FP_ARCH_REGS = 16

MASK32 = 0xFFFFFFFF

# FLAGS bit positions (subset of a real status register: N, Z, C, V).
FLAG_N = 0x1
FLAG_Z = 0x2
FLAG_C = 0x4
FLAG_V = 0x8

ALU_OPS = frozenset(
    {
        "add", "sub", "and", "or", "xor", "shl", "shr", "sar",
        "mul", "div", "mod", "not", "neg", "mov", "cmp", "movt",
    }
)

# µop kinds.  ``sys`` executes at commit; ``br``/``jmp``/``ijmp`` resolve
# at execute and squash on misprediction.
UOP_KINDS = frozenset({"alu", "load", "store", "br", "jmp", "ijmp", "sys", "nop"})

BRANCH_CONDS = frozenset(
    {"eq", "ne", "lt", "le", "gt", "ge", "ult", "ule", "ugt", "uge"}
)

# Multi-cycle ALU latencies; everything else is single cycle.
ALU_LATENCY = {"mul": 3, "div": 12, "mod": 12}


def u32(x: int) -> int:
    """Wrap *x* to an unsigned 32-bit value."""
    return x & MASK32


def s32(x: int) -> int:
    """Interpret the low 32 bits of *x* as a signed value."""
    x &= MASK32
    return x - 0x100000000 if x & 0x80000000 else x


def compute_flags(a: int, b: int) -> int:
    """Flags produced by ``cmp a, b`` (a - b), matching the µop executor."""
    a &= MASK32
    b &= MASK32
    diff = (a - b) & MASK32
    flags = 0
    if diff & 0x80000000:
        flags |= FLAG_N
    if diff == 0:
        flags |= FLAG_Z
    if a < b:  # unsigned borrow
        flags |= FLAG_C
    sa, sb, sd = a >> 31, b >> 31, diff >> 31
    if sa != sb and sd != sa:  # signed overflow
        flags |= FLAG_V
    return flags


def cond_holds(cond: str, flags: int) -> bool:
    """Evaluate a branch condition against a FLAGS value."""
    n = bool(flags & FLAG_N)
    z = bool(flags & FLAG_Z)
    c = bool(flags & FLAG_C)
    v = bool(flags & FLAG_V)
    if cond == "eq":
        return z
    if cond == "ne":
        return not z
    if cond == "lt":
        return n != v
    if cond == "ge":
        return n == v
    if cond == "le":
        return z or n != v
    if cond == "gt":
        return not z and n == v
    if cond == "ult":
        return c
    if cond == "uge":
        return not c
    if cond == "ule":
        return c or z
    if cond == "ugt":
        return not c and not z
    raise ValueError(f"unknown branch condition {cond!r}")


class ArithFault(Exception):
    """Architectural arithmetic fault (division by zero)."""


def alu_exec(op: str, a: int, b: int, old_dst: int = 0) -> int:
    """Execute one ALU µop; all executors (functional and OoO) share this.

    ``a``/``b`` are the resolved source values (``b`` already holds the
    immediate for reg-imm forms), ``old_dst`` is the previous destination
    value (needed only by ``movt``).  Returns the 32-bit result; ``cmp``
    returns the FLAGS value.
    """
    if op == "add":
        return (a + b) & MASK32
    if op == "sub":
        return (a - b) & MASK32
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    if op == "xor":
        return a ^ b
    if op == "shl":
        return (a << (b & 31)) & MASK32
    if op == "shr":
        return (a & MASK32) >> (b & 31)
    if op == "sar":
        return (s32(a) >> (b & 31)) & MASK32
    if op == "mul":
        return (a * b) & MASK32
    if op == "div":
        sb = s32(b)
        if sb == 0:
            raise ArithFault("div0")
        sa = s32(a)
        q = abs(sa) // abs(sb)
        if (sa < 0) != (sb < 0):
            q = -q
        return q & MASK32
    if op == "mod":
        sb = s32(b)
        if sb == 0:
            raise ArithFault("div0")
        sa = s32(a)
        q = abs(sa) // abs(sb)
        if (sa < 0) != (sb < 0):
            q = -q
        return (sa - q * sb) & MASK32
    if op == "not":
        return ~a & MASK32
    if op == "neg":
        return (-a) & MASK32
    if op == "mov":
        return b & MASK32 if a is None else a & MASK32
    if op == "movt":
        return ((old_dst & 0xFFFF) | ((b & 0xFFFF) << 16)) & MASK32
    if op == "cmp":
        return compute_flags(a, b)
    raise ValueError(f"unknown ALU op {op!r}")


class UOp:
    """One micro-operation.

    Fields are interpreted per *kind*:

    ``alu``
        ``rd = op(rs1, rs2 or imm)``; ``cmp`` writes :data:`REG_FLAGS`;
        ``mov`` copies ``rs1`` (or ``imm`` when ``rs1 is None``);
        ``movt`` sets the high 16 bits of ``rd`` keeping the low bits.
    ``load``
        ``rd = mem[rs1 + imm]`` of ``size`` bytes (zero-extended).
    ``store``
        ``mem[rs1 + imm] = rs2`` of ``size`` bytes.
    ``br``
        conditional; ``op`` is the condition, reads FLAGS, ``imm`` is the
        absolute target.
    ``jmp``
        unconditional; ``imm`` is the absolute target.
    ``ijmp``
        indirect; target is ``rs1 + imm``.
    ``sys``
        system call, executed at commit by the kernel model.
    """

    __slots__ = ("kind", "op", "rd", "rs1", "rs2", "imm", "size",
                 "srcs_t", "dst_t")

    def __init__(self, kind, op=None, rd=None, rs1=None, rs2=None, imm=0, size=4):
        self.kind = kind
        self.op = op
        self.rd = rd
        self.rs1 = rs1
        self.rs2 = rs2
        self.imm = imm
        self.size = size
        self.srcs_t = None       # lazily cached tuple of srcs()
        self.dst_t = -1          # lazily cached dst() (-1 = not computed)

    def srcs(self):
        """Architectural source registers read by this µop."""
        regs = []
        if self.kind == "alu":
            if self.rs1 is not None:
                regs.append(self.rs1)
            if self.rs2 is not None:
                regs.append(self.rs2)
            if self.op == "movt":
                regs.append(self.rd)
        elif self.kind == "load":
            regs.append(self.rs1)
        elif self.kind == "store":
            regs.append(self.rs1)
            regs.append(self.rs2)
        elif self.kind == "br":
            regs.append(REG_FLAGS)
        elif self.kind == "ijmp":
            regs.append(self.rs1)
        return regs

    def dst(self):
        """Architectural destination register, or ``None``."""
        if self.kind == "alu":
            return REG_FLAGS if self.op == "cmp" else self.rd
        if self.kind == "load":
            return self.rd
        return None

    def is_branch(self) -> bool:
        return self.kind in ("br", "jmp", "ijmp")

    def srcs_cached(self):
        t = self.srcs_t
        if t is None:
            t = tuple(self.srcs())
            self.srcs_t = t
        return t

    def dst_cached(self):
        d = self.dst_t
        if d == -1:
            d = self.dst()
            self.dst_t = d
        return d

    def __repr__(self):
        return (
            f"UOp({self.kind},{self.op},rd={self.rd},rs1={self.rs1},"
            f"rs2={self.rs2},imm={self.imm:#x},sz={self.size})"
        )

    def __deepcopy__(self, memo):
        # µops are immutable once decoded; checkpoints share them.
        return self


@dataclass
class Instr:
    """One decoded architectural instruction."""

    mnemonic: str
    length: int
    uops: list = field(default_factory=list)
    needs: tuple | None = None   # cached (nuops, niq, nloads, nstores, ndst)
    # Static branch metadata used by the front end.
    is_branch: bool = False
    is_call: bool = False
    is_ret: bool = False
    is_indirect: bool = False
    is_cond: bool = False
    target: int | None = None  # static target for direct branches
    raw: bytes = b""

    def __repr__(self):
        return f"Instr({self.mnemonic!r}, len={self.length})"

    def __deepcopy__(self, memo):
        # Decoded instructions are immutable; checkpoints share them.
        return self


@dataclass
class Section:
    """A contiguous region of a program image."""

    base: int
    data: bytes
    writable: bool
    executable: bool


@dataclass
class Program:
    """A fully linked program image for one ISA.

    Attributes
    ----------
    isa:
        ``"x86"`` or ``"arm"``.
    entry:
        Address of the first instruction.
    sections:
        Code and data sections to map before execution.
    symbols:
        Label → address map (useful in tests and debugging).
    """

    isa: str
    entry: int
    sections: list
    symbols: dict = field(default_factory=dict)

    @property
    def code_size(self) -> int:
        return sum(len(s.data) for s in self.sections if s.executable)

    @property
    def data_size(self) -> int:
        return sum(len(s.data) for s in self.sections if not s.executable)
