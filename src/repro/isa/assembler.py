"""Two-ISA assembler producing linked :class:`~repro.isa.common.Program`\\ s.

The MiniC code generators emit textual assembly; this module turns it
into byte-accurate program images.  One front end parses both dialects
(they share the operand grammar); per-ISA back ends pick encodings.

Supported syntax::

    .text                     ; section switches
    .data
    label:                    ; labels (own line or before an instruction)
    mov r0, 5                 ; instructions, operands comma separated
    load r0, [r1+8]           ; memory operands
    li r0, =buf               ; pseudo: load address of label
    .word 1, 2, label         ; data directives
    .byte 1, 2, 3
    .space 64
    ; comment

Branch and immediate encodings are chosen by iterative relaxation: every
span-dependent instruction starts at its widest form and shrinks until a
fixed point, which is safe because shrinking only reduces distances.
"""

from __future__ import annotations

import re
import struct

from repro.errors import AsmError
from repro.isa import arm, x86
from repro.isa.common import Program, Section

_REG_ALIASES_X86 = {"sp": 15}
_REG_ALIASES_ARM = {"sp": 13, "lr": 14}

_X86_JCC = {"j" + c for c in
            ("eq", "ne", "lt", "le", "gt", "ge", "ult", "ule", "ugt", "uge")}
_ARM_BCC = {"b" + c for c in
            ("eq", "ne", "lt", "le", "gt", "ge", "ult", "ule", "ugt", "uge")}

_MEM_RE = re.compile(r"^\[\s*(\w+)\s*(?:([+-])\s*(\w+))?\s*\]$")

CODE_BASE = 0x1000
PAGE = 0x1000


class _Operand:
    __slots__ = ("kind", "reg", "value", "label", "disp_label")

    def __init__(self, kind, reg=None, value=0, label=None, disp_label=None):
        self.kind = kind          # "reg" | "imm" | "label" | "mem" | "addr"
        self.reg = reg
        self.value = value
        self.label = label
        self.disp_label = disp_label


class _Item:
    """One assembled item: instruction or data directive."""

    __slots__ = ("mnem", "ops", "size", "line", "addr", "data")

    def __init__(self, mnem, ops, line):
        self.mnem = mnem
        self.ops = ops
        self.line = line
        self.size = 0
        self.addr = 0
        self.data = b""


def _parse_reg(tok: str, aliases) -> int | None:
    tok = tok.lower()
    if tok in aliases:
        return aliases[tok]
    if re.fullmatch(r"r\d+", tok):
        n = int(tok[1:])
        if 0 <= n < 16:
            return n
    return None


def _parse_int(tok: str) -> int | None:
    try:
        return int(tok, 0)
    except ValueError:
        return None


def _parse_operand(tok: str, aliases) -> _Operand:
    tok = tok.strip()
    m = _MEM_RE.match(tok)
    if m:
        base = _parse_reg(m.group(1), aliases)
        if base is None:
            raise AsmError(f"bad base register in {tok!r}")
        disp = 0
        disp_label = None
        if m.group(3) is not None:
            v = _parse_int(m.group(3))
            if v is None:
                disp_label = m.group(3)
            else:
                disp = -v if m.group(2) == "-" else v
        return _Operand("mem", reg=base, value=disp, disp_label=disp_label)
    if tok.startswith("="):
        return _Operand("addr", label=tok[1:])
    reg = _parse_reg(tok, aliases)
    if reg is not None:
        return _Operand("reg", reg=reg)
    val = _parse_int(tok)
    if val is not None:
        return _Operand("imm", value=val)
    if re.fullmatch(r"[A-Za-z_.$][\w.$]*", tok):
        return _Operand("label", label=tok)
    raise AsmError(f"cannot parse operand {tok!r}")


def _split_operands(rest: str):
    ops, depth, cur = [], 0, []
    for ch in rest:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch == "," and depth == 0:
            ops.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
    if cur and "".join(cur).strip():
        ops.append("".join(cur))
    return [o.strip() for o in ops if o.strip()]


def _parse(source: str, aliases):
    """Parse into (text_items, data_items, label → (section, index))."""
    text, data, labels = [], [], {}
    section = "text"
    for lineno, raw in enumerate(source.splitlines(), 1):
        line = raw.split(";")[0].strip()
        if not line:
            continue
        while True:
            m = re.match(r"^([A-Za-z_.$][\w.$]*):\s*", line)
            if not m:
                break
            name = m.group(1)
            if name in labels:
                raise AsmError(f"line {lineno}: duplicate label {name!r}")
            items = text if section == "text" else data
            labels[name] = (section, len(items))
            line = line[m.end():]
        if not line:
            continue
        if line.startswith("."):
            parts = line.split(None, 1)
            directive = parts[0]
            rest = parts[1] if len(parts) > 1 else ""
            if directive == ".text":
                section = "text"
                continue
            if directive == ".data":
                section = "data"
                continue
            if directive in (".word", ".byte", ".space"):
                ops = [_parse_operand(t, aliases)
                       for t in _split_operands(rest)]
                item = _Item(directive, ops, lineno)
                (text if section == "text" else data).append(item)
                continue
            raise AsmError(f"line {lineno}: unknown directive {directive}")
        parts = line.split(None, 1)
        mnem = parts[0].lower()
        rest = parts[1] if len(parts) > 1 else ""
        ops = [_parse_operand(t, aliases) for t in _split_operands(rest)]
        item = _Item(mnem, ops, lineno)
        (text if section == "text" else data).append(item)
    return text, data, labels


def _resolve(op: _Operand, symtab) -> int:
    if op.kind == "imm":
        return op.value
    if op.kind in ("label", "addr"):
        if op.label not in symtab:
            raise AsmError(f"undefined label {op.label!r}")
        return symtab[op.label]
    raise AsmError("expected immediate or label operand")


def _data_size(item: _Item, symtab=None) -> int:
    if item.mnem == ".word":
        return 4 * len(item.ops)
    if item.mnem == ".byte":
        return len(item.ops)
    if item.mnem == ".space":
        return item.ops[0].value
    raise AsmError(f"bad data directive {item.mnem}")


def _encode_data(item: _Item, symtab) -> bytes:
    if item.mnem == ".word":
        return b"".join(struct.pack("<I", _resolve(o, symtab) & 0xFFFFFFFF)
                        for o in item.ops)
    if item.mnem == ".byte":
        return bytes((_resolve(o, symtab)) & 0xFF for o in item.ops)
    if item.mnem == ".space":
        return bytes(item.ops[0].value)
    raise AsmError(f"bad data directive {item.mnem}")


# ---------------------------------------------------------------------------
# Per-ISA instruction sizing and encoding.

def _x86_size(item: _Item, symtab) -> int:
    """Minimal size for *item* at current symbol values (or widest form)."""
    m, ops = item.mnem, item.ops
    if m in (".word", ".byte", ".space"):
        return _data_size(item)
    if m in ("nop", "ret", "syscall"):
        return 1
    if m in ("push", "pop", "jmpr"):
        return 2
    if m == "call":
        return 5
    if m in _X86_JCC or m == "jmp":
        if symtab is None:
            return 5
        target = _resolve(ops[0], symtab)
        rel_short = target - (item.addr + 2)
        return 2 if -128 <= rel_short <= 127 else 5
    if m in ("not", "neg"):
        return 2
    if m in ("mov", "cmp") and ops[1].kind == "reg":
        return 2
    if m in ("mov", "cmp", "li"):
        if ops[1].kind == "imm":
            val = ops[1].value
        elif symtab is not None:
            val = _resolve(ops[1], symtab)
        else:
            val = 1 << 20
        return 3 if -128 <= val <= 127 else 6
    if m in ("load", "load8", "store", "store8"):
        memop = ops[1] if m.startswith("load") else ops[0]
        disp = memop.value
        return 3 if -128 <= disp <= 127 else 6
    if m in ("addm", "subm", "mulm"):
        disp = ops[1].value
        return 3 if -128 <= disp <= 127 else 6
    # remaining: two-operand ALU
    if len(ops) == 2 and ops[1].kind == "reg":
        return 2
    if len(ops) == 2:
        if ops[1].kind == "imm":
            val = ops[1].value
        elif symtab is not None:
            val = _resolve(ops[1], symtab)
        else:
            val = 1 << 20
        return 3 if -128 <= val <= 127 else 6
    raise AsmError(f"line {item.line}: cannot size x86 {m!r}")


def _x86_encode(item: _Item, symtab) -> bytes:
    m, ops, addr = item.mnem, item.ops, item.addr

    def imm_of(op):
        return _resolve(op, symtab) if op.kind != "imm" else op.value

    if m in (".word", ".byte", ".space"):
        return _encode_data(item, symtab)
    if m in ("nop", "ret", "syscall"):
        return x86.encode_simple(m)
    if m in ("push", "pop", "jmpr"):
        return x86.encode_simple(m, ops[0].reg)
    if m in ("not", "neg"):
        return x86.encode_unary(m, ops[0].reg)
    if m in _X86_JCC or m in ("jmp", "call"):
        target = _resolve(ops[0], symtab)
        short = item.size == 2
        rel = target - (addr + item.size)
        return x86.encode_branch(m, rel, short)
    if m in ("mov", "li"):
        if m == "mov" and ops[1].kind == "reg":
            return x86.encode_mov_rr(ops[0].reg, ops[1].reg)
        return x86.encode_mov_ri(ops[0].reg, imm_of(ops[1]))
    if m == "cmp":
        if ops[1].kind == "reg":
            return x86.encode_cmp_rr(ops[0].reg, ops[1].reg)
        return x86.encode_cmp_ri(ops[0].reg, imm_of(ops[1]))
    if m in ("load", "load8"):
        memop = ops[1]
        return x86.encode_mem(m, ops[0].reg, memop.reg, memop.value)
    if m in ("store", "store8"):
        memop = ops[0]
        return x86.encode_mem(m, ops[1].reg, memop.reg, memop.value)
    if m in ("addm", "subm", "mulm"):
        memop = ops[1]
        return x86.encode_alu_m(m[:-1], ops[0].reg, memop.reg, memop.value)
    if len(ops) == 2 and ops[1].kind == "reg":
        return x86.encode_alu_rr(m, ops[0].reg, ops[1].reg)
    if len(ops) == 2:
        return x86.encode_alu_ri(m, ops[0].reg, imm_of(ops[1]))
    raise AsmError(f"line {item.line}: cannot encode x86 {m!r}")


def _arm_fits16(v: int) -> bool:
    return -32768 <= v <= 32767


def _arm_size(item: _Item, symtab) -> int:
    m, ops = item.mnem, item.ops
    if m in (".word", ".byte", ".space"):
        return _data_size(item)
    if m == "li":
        if ops[1].kind == "imm" and _arm_fits16(ops[1].value):
            return 4
        if symtab is not None:
            val = _resolve(ops[1], symtab)
            if _arm_fits16(val):
                return 4
        return 8
    return 4


def _arm_encode(item: _Item, symtab) -> bytes:
    m, ops, addr = item.mnem, item.ops, item.addr

    def imm_of(op):
        return _resolve(op, symtab) if op.kind != "imm" else op.value

    if m in (".word", ".byte", ".space"):
        return _encode_data(item, symtab)
    if m == "nop":
        return arm.encode_simple("nop")
    if m == "svc":
        return arm.encode_simple("svc")
    if m == "bx":
        return arm.encode_simple("bx", ops[0].reg)
    if m in _ARM_BCC or m in ("b", "bl"):
        target = _resolve(ops[0], symtab)
        rel = target - (addr + 4)
        return arm.encode_branch(m, rel)
    if m == "li":
        val = imm_of(ops[1]) & 0xFFFFFFFF
        sval = val - 0x100000000 if val & 0x80000000 else val
        if item.size == 4:
            return arm.encode_mov_ri(ops[0].reg, sval)
        low = val & 0xFFFF
        slow = low - 0x10000 if low & 0x8000 else low
        return (arm.encode_mov_ri(ops[0].reg, slow) +
                arm.encode_movt(ops[0].reg, (val >> 16) & 0xFFFF))
    if m == "mov":
        if ops[1].kind == "reg":
            return arm.encode_mov_rr(ops[0].reg, ops[1].reg)
        return arm.encode_mov_ri(ops[0].reg, imm_of(ops[1]))
    if m == "movt":
        return arm.encode_movt(ops[0].reg, imm_of(ops[1]))
    if m == "mvn":
        return arm.encode_mvn(ops[0].reg, ops[1].reg)
    if m == "cmp":
        if ops[1].kind == "reg":
            return arm.encode_cmp_rr(ops[0].reg, ops[1].reg)
        return arm.encode_cmp_ri(ops[0].reg, imm_of(ops[1]))
    if m in ("ldr", "ldrb"):
        memop = ops[1]
        return arm.encode_mem(m, ops[0].reg, memop.reg, memop.value)
    if m in ("str", "strb"):
        memop = ops[1]
        return arm.encode_mem(m, ops[0].reg, memop.reg, memop.value)
    if len(ops) == 3 and ops[2].kind == "reg":
        return arm.encode_alu_rr(m, ops[0].reg, ops[1].reg, ops[2].reg)
    if len(ops) == 3:
        return arm.encode_alu_ri(m, ops[0].reg, ops[1].reg, imm_of(ops[2]))
    raise AsmError(f"line {item.line}: cannot encode arm {m!r}")


_BACKENDS = {
    "x86": (_x86_size, _x86_encode, _REG_ALIASES_X86),
    "arm": (_arm_size, _arm_encode, _REG_ALIASES_ARM),
}


def assemble(source: str, isa: str, code_base: int = CODE_BASE,
             entry_label: str = "_start") -> Program:
    """Assemble *source* for *isa* into a linked :class:`Program`.

    The data section is placed at the first page boundary after the code
    so page permissions (code RX, data RW) fall out naturally.
    """
    if isa not in _BACKENDS:
        raise AsmError(f"unknown ISA {isa!r}")
    size_fn, encode_fn, aliases = _BACKENDS[isa]
    text, data, labels = _parse(source, aliases)

    # Initial worst-case sizes.
    for item in text + data:
        item.size = size_fn(item, None)

    def layout():
        addr = code_base
        for item in text:
            item.addr = addr
            addr += item.size
        data_base = (addr + PAGE - 1) & ~(PAGE - 1)
        if not text:
            data_base = code_base
        addr = data_base
        for item in data:
            item.addr = addr
            addr += item.size
        symtab = {}
        for name, (section, idx) in labels.items():
            items = text if section == "text" else data
            symtab[name] = items[idx].addr if idx < len(items) else addr
        return symtab, data_base

    symtab, data_base = layout()
    for _ in range(16):
        changed = False
        for item in text:
            new = size_fn(item, symtab)
            if new < item.size:
                item.size = new
                changed = True
        symtab, data_base = layout()
        if not changed:
            break

    code = bytearray()
    for item in text:
        enc = encode_fn(item, symtab)
        if len(enc) != item.size:
            raise AsmError(
                f"line {item.line}: size mismatch for {item.mnem!r} "
                f"({len(enc)} != {item.size})")
        code += enc
    blob = bytearray()
    for item in data:
        blob += encode_fn(item, symtab)

    sections = [Section(code_base, bytes(code), writable=False,
                        executable=True)]
    if blob:
        sections.append(Section(data_base, bytes(blob), writable=True,
                                executable=False))
    if entry_label not in symtab:
        raise AsmError(f"missing entry label {entry_label!r}")
    return Program(isa=isa, entry=symtab[entry_label], sections=sections,
                   symbols=dict(symtab))
