"""Instruction-set layer: two toy ISAs, assembler and disassembler.

``x86`` is variable-length, two-address, load-op, stack-machine
flavoured; ``arm`` is fixed-width, three-address, load/store flavoured.
Both decode to the shared µop vocabulary in :mod:`repro.isa.common`.
"""
