"""A RISC (ARM-like) toy ISA with a fixed 4-byte word encoding.

Design goals (see DESIGN.md):

* **Fixed-length 32-bit encoding** — code is less dense than the x86-like
  ISA (large constants need ``mov``+``movt`` pairs, there is no load-op),
  which gives the ARM configurations a larger instruction footprint and
  more L1I replacement traffic, the mechanism behind the paper's Remark 7.
* **Load/store architecture with three-address ALU ops** and 13 usable
  general-purpose registers, so compiled code keeps locals in registers
  and produces fewer data-memory accesses than the register-starved
  x86-like code generator.
* **Undefined opcode space and must-be-zero fields**, so I-side bit flips
  produce undefined-instruction exceptions or silently different valid
  instructions, as on real hardware.

Register convention: ``r0..r12`` general purpose (``r0..r3`` argument /
return registers), ``r13`` = ``sp``, ``r14`` = ``lr``.  Word loads and
stores require 4-byte alignment; the kernel model fixes up unaligned
accesses and logs an exception event (a DUE source).

Word layout (little-endian in memory)::

    [31:26] opcode   [25:22] rd/cond   [21:18] rn   [17:0] operand

Operand field per format: RR → ``rm`` in [3:0], bits [17:4] must be zero;
RI → signed imm16 in [15:0], bits [17:16] must be zero; memory → signed
imm14 displacement; branches use [21:0] as a signed word offset.
"""

from __future__ import annotations

import struct

from repro.isa.common import Instr, UOp

NAME = "arm"
MAX_ILEN = 4
SP = 13
LR = 14

_CONDS = ("eq", "ne", "lt", "le", "gt", "ge", "ult", "ule", "ugt", "uge")

_ALU_RR = {0x01: "add", 0x03: "sub", 0x05: "and", 0x07: "or", 0x09: "xor",
           0x0B: "shl", 0x0D: "shr", 0x0F: "sar", 0x11: "mul", 0x12: "div"}
_ALU_RI = {0x02: "add", 0x04: "sub", 0x06: "and", 0x08: "or", 0x0A: "xor",
           0x0C: "shl", 0x0E: "shr", 0x10: "sar"}

_OP_MVN = 0x13
_OP_MOV_RR = 0x14
_OP_MOV_RI = 0x15
_OP_MOVT = 0x16
_OP_CMP_RR = 0x17
_OP_CMP_RI = 0x18
_OP_LDR = 0x19
_OP_STR = 0x1A
_OP_LDRB = 0x1B
_OP_STRB = 0x1C
_OP_NOP = 0x1F
_OP_B = 0x20          # cond field: 0 = always, 1..10 = _CONDS
_OP_BL = 0x21
_OP_BX = 0x22
_OP_SVC = 0x23

_INV_ALU_RR = {v: k for k, v in _ALU_RR.items()}
_INV_ALU_RI = {v: k for k, v in _ALU_RI.items()}


def _sext(v: int, bits: int) -> int:
    sign = 1 << (bits - 1)
    return (v & (sign - 1)) - (v & sign)


def decode_window(window: bytes, pc: int) -> Instr:
    """Decode one 4-byte instruction word starting at *pc*.

    Undefined opcodes decode to the ``"<ud>"`` pseudo-instruction; words
    with must-be-zero bits set decode normally but carry a ``"!"``
    mnemonic suffix (the MARSS-like simulator asserts on those, the
    gem5-like one ignores them — Remark 8).
    """
    word = struct.unpack("<I", window[:4])[0]
    opc = (word >> 26) & 0x3F
    rd = (word >> 22) & 0xF
    rn = (word >> 18) & 0xF
    low18 = word & 0x3FFFF

    def ins(mnem, uops, quirky=False, **kw):
        return Instr(mnem + ("!" if quirky else ""), 4, uops,
                     raw=bytes(window[:4]), **kw)

    if opc in _ALU_RR:
        rm = low18 & 0xF
        quirky = bool(low18 >> 4)
        return ins(_ALU_RR[opc], [UOp("alu", _ALU_RR[opc], rd, rs1=rn, rs2=rm)],
                   quirky)
    if opc in _ALU_RI:
        imm = _sext(low18, 16)
        quirky = bool(low18 >> 16)
        return ins(_ALU_RI[opc] + "i",
                   [UOp("alu", _ALU_RI[opc], rd, rs1=rn, imm=imm)], quirky)
    if opc == _OP_MVN:
        quirky = bool(low18 >> 4)
        rm = low18 & 0xF
        return ins("mvn", [UOp("alu", "not", rd, rs1=rm)], quirky)
    if opc == _OP_MOV_RR:
        rm = low18 & 0xF
        quirky = bool(low18 >> 4) or bool(rn)
        return ins("mov", [UOp("alu", "mov", rd, rs1=rm)], quirky)
    if opc == _OP_MOV_RI:
        imm = _sext(low18, 16)
        quirky = bool(low18 >> 16) or bool(rn)
        return ins("movi", [UOp("alu", "mov", rd, imm=imm)], quirky)
    if opc == _OP_MOVT:
        imm = low18 & 0xFFFF
        quirky = bool(low18 >> 16) or bool(rn)
        return ins("movt", [UOp("alu", "movt", rd, imm=imm)], quirky)
    if opc == _OP_CMP_RR:
        rm = low18 & 0xF
        quirky = bool(low18 >> 4) or bool(rd)
        return ins("cmp", [UOp("alu", "cmp", None, rs1=rn, rs2=rm)], quirky)
    if opc == _OP_CMP_RI:
        imm = _sext(low18, 16)
        quirky = bool(low18 >> 16) or bool(rd)
        return ins("cmpi", [UOp("alu", "cmp", None, rs1=rn, imm=imm)], quirky)
    if opc in (_OP_LDR, _OP_LDRB):
        disp = _sext(low18 & 0x3FFF, 14)
        quirky = bool(low18 >> 14)
        size = 4 if opc == _OP_LDR else 1
        return ins("ldr" if size == 4 else "ldrb",
                   [UOp("load", None, rd, rs1=rn, imm=disp, size=size)], quirky)
    if opc in (_OP_STR, _OP_STRB):
        disp = _sext(low18 & 0x3FFF, 14)
        quirky = bool(low18 >> 14)
        size = 4 if opc == _OP_STR else 1
        return ins("str" if size == 4 else "strb",
                   [UOp("store", None, rs1=rn, rs2=rd, imm=disp, size=size)],
                   quirky)
    if opc == _OP_NOP:
        return ins("nop", [UOp("nop")], quirky=bool(word & 0x03FFFFFF))
    if opc == _OP_B:
        cond_idx = rd
        offset = _sext(word & 0x3FFFFF, 22) * 4
        target = (pc + 4 + offset) & 0xFFFFFFFF
        if cond_idx == 0:
            return ins("b", [UOp("jmp", imm=target)], is_branch=True,
                       target=target)
        if cond_idx <= 10:
            cond = _CONDS[cond_idx - 1]
            return ins("b" + cond, [UOp("br", cond, imm=target)],
                       is_branch=True, is_cond=True, target=target)
        return ins("<ud>", [])
    if opc == _OP_BL:
        offset = _sext(word & 0x3FFFFF, 22) * 4
        target = (pc + 4 + offset) & 0xFFFFFFFF
        uops = [UOp("alu", "mov", LR, imm=pc + 4), UOp("jmp", imm=target)]
        return ins("bl", uops, is_branch=True, is_call=True, target=target)
    if opc == _OP_BX:
        rm = low18 & 0xF
        quirky = bool(low18 >> 4) or bool(rd) or bool(rn)
        return ins("bx", [UOp("ijmp", rs1=rm)], quirky, is_branch=True,
                   is_indirect=True, is_ret=(rm == LR))
    if opc == _OP_SVC:
        return ins("svc", [UOp("sys")])
    return ins("<ud>", [])


# ---------------------------------------------------------------------------
# Encoding (used by the assembler).

def _word(opc: int, rd: int = 0, rn: int = 0, low18: int = 0) -> bytes:
    w = ((opc & 0x3F) << 26) | ((rd & 0xF) << 22) | ((rn & 0xF) << 18) | \
        (low18 & 0x3FFFF)
    return struct.pack("<I", w)


def encode_alu_rr(op: str, rd: int, rn: int, rm: int) -> bytes:
    return _word(_INV_ALU_RR[op], rd, rn, rm)


def encode_alu_ri(op: str, rd: int, rn: int, imm: int) -> bytes:
    if not -32768 <= imm <= 32767:
        raise ValueError(f"imm16 out of range: {imm}")
    return _word(_INV_ALU_RI[op], rd, rn, imm & 0xFFFF)


def encode_mvn(rd: int, rm: int) -> bytes:
    return _word(_OP_MVN, rd, 0, rm)


def encode_mov_rr(rd: int, rm: int) -> bytes:
    return _word(_OP_MOV_RR, rd, 0, rm)


def encode_mov_ri(rd: int, imm: int) -> bytes:
    if not -32768 <= imm <= 32767:
        raise ValueError(f"imm16 out of range: {imm}")
    return _word(_OP_MOV_RI, rd, 0, imm & 0xFFFF)


def encode_movt(rd: int, imm: int) -> bytes:
    if not 0 <= imm <= 0xFFFF:
        raise ValueError(f"movt imm out of range: {imm}")
    return _word(_OP_MOVT, rd, 0, imm)


def encode_cmp_rr(rn: int, rm: int) -> bytes:
    return _word(_OP_CMP_RR, 0, rn, rm)


def encode_cmp_ri(rn: int, imm: int) -> bytes:
    if not -32768 <= imm <= 32767:
        raise ValueError(f"imm16 out of range: {imm}")
    return _word(_OP_CMP_RI, 0, rn, imm & 0xFFFF)


def encode_mem(mnem: str, rd: int, rn: int, disp: int) -> bytes:
    if not -8192 <= disp <= 8191:
        raise ValueError(f"disp14 out of range: {disp}")
    opc = {"ldr": _OP_LDR, "str": _OP_STR,
           "ldrb": _OP_LDRB, "strb": _OP_STRB}[mnem]
    return _word(opc, rd, rn, disp & 0x3FFF)


def encode_branch(mnem: str, rel_bytes: int) -> bytes:
    """Encode b/bcc/bl; *rel_bytes* is relative to the end of the word."""
    if rel_bytes % 4:
        raise ValueError("branch target not word aligned")
    off = rel_bytes // 4
    if not -(1 << 21) <= off < (1 << 21):
        raise ValueError("branch offset out of range")
    if mnem == "b":
        return struct.pack("<I", (_OP_B << 26) | (off & 0x3FFFFF))
    if mnem == "bl":
        return struct.pack("<I", (_OP_BL << 26) | (off & 0x3FFFFF))
    cond = mnem[1:]
    idx = _CONDS.index(cond) + 1
    return struct.pack("<I", (_OP_B << 26) | (idx << 22) | (off & 0x3FFFFF))


def encode_simple(mnem: str, reg: int | None = None) -> bytes:
    if mnem == "nop":
        return _word(_OP_NOP)
    if mnem == "svc":
        return _word(_OP_SVC)
    if mnem == "bx":
        return _word(_OP_BX, 0, 0, reg)
    raise ValueError(f"unknown simple instruction {mnem}")
