"""Per-unit campaign execution inside a scheduler worker process.

:func:`run_unit` is one leased cell of a study executed end to end:
build (or adopt) the golden run, regenerate the unit's deterministic
masks, skip every ``set_id`` its logs repository already holds (the
mid-unit resume path), inject the rest, and classify.  It reuses
``repro.core.parallel``'s compressed golden/checkpoint shipping — the
scheduler caches one :func:`build_golden_payload` blob per
(setup, benchmark) and ships it to every later unit of that pair, so
only the first unit of a pair pays for the golden execution.

:func:`unit_entry` is the ``multiprocessing.Process`` target: it sends
the result dict (records summary, trace events, metrics, optionally
the golden blob for the parent's cache) back over a pipe and never
raises — failures travel home as ``{"ok": False, ...}`` and become
journal ``failed`` transitions, retries, and eventually quarantine.

Chaos hook (tests/CI only): the ``REPRO_SCHED_CHAOS`` environment
variable — ``"<unit_id>=fail:N"`` or ``"<unit_id>=hang:N"`` entries
separated by ``;`` — makes a unit raise or hang while the lease's
attempt number is ≤ N, which is how the retry/backoff/timeout/
quarantine machinery is exercised deterministically.
"""

from __future__ import annotations

import os
import time

from repro.core.dispatcher import InjectorDispatcher
from repro.core.maskgen import FaultMaskGenerator, StructureInfo
from repro.core.parallel import (_ListSink, adopt_golden_payload,
                                 build_golden_payload)
from repro.core.parser import classify_all
from repro.core.repository import LogsRepository, MasksRepository
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import (record_golden, record_injection,
                               record_prune_plan, record_pruned)
from repro.obs.trace import Tracer
from repro.prune import (PRUNE_OFF, build_prune_plan, clone_record,
                         synthetic_masked_record)
from repro.sched.plan import StudySpec, WorkUnit
from repro.sim.config import setup_config


class ChaosFailure(RuntimeError):
    """Deliberate failure injected through ``REPRO_SCHED_CHAOS``."""


def _chaos(unit_id: str, attempt: int) -> None:
    """Apply the test-only chaos directive for this unit, if any."""
    directives = os.environ.get("REPRO_SCHED_CHAOS", "")
    for entry in directives.split(";"):
        entry = entry.strip()
        if not entry or "=" not in entry:
            continue
        uid, _, action = entry.rpartition("=")
        if uid != unit_id:
            continue
        mode, _, bound = action.partition(":")
        try:
            bound_n = int(bound) if bound else 1
        except ValueError:
            continue
        if attempt > bound_n:
            return
        if mode == "fail":
            raise ChaosFailure(f"chaos fail (attempt {attempt})")
        if mode == "hang":
            time.sleep(3600)


def run_unit(unit: WorkUnit, spec: StudySpec, logs_path, masks_path=None,
             attempt: int = 1, golden_blob: bytes | None = None,
             fsync: bool = False, want_blob: bool = False) -> dict:
    """Execute one work unit; returns a plain result dict.

    Idempotent under interruption: masks are regenerated from the
    unit's deterministic seed, and any ``set_id`` already present in
    the logs repository is skipped, so a unit killed mid-campaign
    finishes exactly the injections it was missing.
    """
    from repro.bench import suite

    t0 = time.perf_counter()
    _chaos(unit.unit_id, attempt)
    sink = _ListSink()
    tracer = Tracer(sink)
    metrics = MetricsRegistry()
    config = setup_config(unit.setup, scaled=spec.scaled)
    program = suite.program(unit.benchmark, config.isa, spec.scale)
    # The guard's SIGALRM watchdog arms here for real: run_unit executes
    # on the main thread of a dedicated spawned process, so a hang
    # inside one sim.step() raises WatchdogTimeout and records a
    # Timeout instead of burning the unit's whole lease.
    dispatcher = InjectorDispatcher(config, program,
                                    n_checkpoints=spec.n_checkpoints,
                                    tracer=tracer,
                                    timeout_s=spec.timeout_s,
                                    guard=spec.guard)
    prune = spec.prune
    ran_golden = golden_blob is None
    if not ran_golden:
        adopt_golden_payload(dispatcher, golden_blob)
        golden = dispatcher.golden
        if prune != PRUNE_OFF and dispatcher.access_trace is None:
            # The cached blob predates pruning (built without a trace):
            # fall back to a fresh golden run that records one.
            ran_golden = True
    if ran_golden:
        dispatcher.record_trace = prune != PRUNE_OFF
        golden = dispatcher.run_golden()
        record_golden(metrics, dispatcher.golden_sample)
        if dispatcher.access_trace is not None:
            dispatcher.access_trace.benchmark = unit.benchmark
    trace = dispatcher.access_trace

    sites = dispatcher.fault_sites()
    if unit.structure not in sites:
        raise KeyError(f"{unit.setup} has no structure "
                       f"{unit.structure!r}; available: {sorted(sites)}")
    info = StructureInfo.of_site(sites[unit.structure])
    gen = FaultMaskGenerator(unit.seed(spec.seed))
    sets = gen.generate(info, golden.cycles, count=spec.injections,
                        fault_type=unit.fault_type,
                        confidence=spec.confidence,
                        error_margin=spec.error_margin)

    logs = LogsRepository(logs_path, fsync=fsync)
    logs.set_golden(golden)
    if masks_path is not None:
        MasksRepository(masks_path, fsync=fsync).add_all(sets)
    done_ids = logs.set_ids
    stray = done_ids - {fs.set_id for fs in sets}
    if stray:
        raise ValueError(
            f"{logs_path} holds set_ids {sorted(stray)[:5]} outside this "
            f"unit's mask stream — logs do not belong to this spec")
    # set_ids alone are just 0..N-1; the masks themselves must match the
    # regenerated stream or a resume would silently mix two studies.
    expected = {fs.set_id: [m.to_dict() for m in fs.masks] for fs in sets}
    for rec in logs.records:
        if rec.masks != expected[rec.set_id]:
            raise ValueError(
                f"{logs_path} record {rec.set_id} was injected with "
                f"different masks — logs do not belong to this unit's "
                f"mask stream")

    plan = None
    if prune != PRUNE_OFF:
        plan = build_prune_plan(sets, trace, prune)
        stats = plan.stats()
        record_prune_plan(metrics, stats)
        tracer.emit("prune_plan", structure=unit.structure, policy=prune,
                    masks=stats["masks"], masked=stats["masked"],
                    collapsed=stats["collapsed"],
                    classes=stats["classes"],
                    simulated=stats["simulated"], unit=unit.unit_id)

    tracer.emit("campaign_start", setup=unit.setup,
                benchmark=unit.benchmark, structure=unit.structure,
                masks=len(sets), unit=unit.unit_id,
                resumed=len(done_ids))
    fresh = 0
    pruned_n = 0
    # Class representatives always precede their clones in set order, so
    # walking in order keeps by_id complete: a clone's representative is
    # either resumed (already in the logs) or was just handled.
    by_id = {rec.set_id: rec for rec in logs.records}
    for fault_set in sets:
        if fault_set.set_id in done_ids:
            continue
        decision = plan.decision(fault_set.set_id) \
            if plan is not None else None
        if decision is None:
            record = dispatcher.inject(fault_set,
                                       early_stop=spec.early_stop)
            record_injection(metrics, record, dispatcher.last_sample)
        elif decision[0] == "masked":
            record = synthetic_masked_record(fault_set, golden,
                                             decision[1])
            record_pruned(metrics, record)
            tracer.emit("pruned", set_id=fault_set.set_id,
                        rule=decision[1])
            pruned_n += 1
        else:
            record = clone_record(by_id[decision[1]], fault_set)
            record_pruned(metrics, record)
            tracer.emit("pruned", set_id=fault_set.set_id,
                        rule="equivalent", rep=decision[1])
            pruned_n += 1
        by_id[record.set_id] = record
        logs.add(record)
        fresh += 1
    records = logs.records
    counts = classify_all(records, golden)
    # Clones copy their representative's early_stop (the Parser needs it
    # to classify them identically); only really-simulated runs count.
    early_stops = sum(1 for r in records
                      if r.early_stop is not None and r.pruned is None)
    wall_s = time.perf_counter() - t0
    tracer.emit("campaign_end", setup=unit.setup,
                benchmark=unit.benchmark, structure=unit.structure,
                injections=len(records), early_stops=early_stops,
                wall_s=wall_s, unit=unit.unit_id)
    return {
        "ok": True,
        "unit": unit.unit_id,
        "counts": counts,
        "injections": len(records),
        "fresh": fresh,
        "resumed": len(done_ids),
        "early_stops": early_stops,
        "pruned": pruned_n,
        "prune": plan.stats() if plan is not None else None,
        "wall_s": wall_s,
        "events": list(sink.rows),
        "metrics": metrics.to_dict(),
        # The blob carries the access trace when pruning, so later units
        # of the same (setup, benchmark) pair skip re-recording too.
        "golden_blob": (build_golden_payload(
                            dispatcher,
                            include_trace=prune != PRUNE_OFF)
                        if want_blob and ran_golden else None),
    }


def unit_entry(conn, payload: dict) -> None:
    """Process target: run the unit, ship the result dict, never raise."""
    try:
        result = run_unit(
            unit=WorkUnit.from_dict(payload["unit"]),
            spec=StudySpec.from_dict(payload["spec"]),
            logs_path=payload["logs_path"],
            masks_path=payload.get("masks_path"),
            attempt=payload.get("attempt", 1),
            golden_blob=payload.get("golden_blob"),
            fsync=payload.get("fsync", False),
            want_blob=payload.get("want_blob", False),
        )
    except Exception as exc:
        import traceback
        result = {"ok": False,
                  "unit": payload["unit"].get("setup", "?"),
                  "error": f"{type(exc).__name__}: {exc}",
                  "traceback": traceback.format_exc()}
    try:
        conn.send(result)
    finally:
        conn.close()
