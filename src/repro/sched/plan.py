"""Study specification and campaign plan — the sched unit of work.

A :class:`StudySpec` names the axes of a full study — setups ×
benchmarks × structures × fault models — plus the per-cell campaign
parameters.  :class:`CampaignPlan` expands the spec into addressable
:class:`WorkUnit`\\ s, one per grid cell, each with a stable ``unit_id``
and a deterministic per-unit seed.  Everything downstream — the
journal, the scheduler, sharding, merging — speaks unit ids.

Sharding is a pure function of the unit id (CRC-32 mod *n*), so *n*
independent hosts can each run ``plan.shard(i, n)`` against their own
journal and the shards are guaranteed disjoint and collectively
exhaustive without any coordination.

Per-cell injection counts come from :mod:`repro.core.sampling` when
``injections`` is None: each unit's worker sizes its campaign from the
structure's fault population (bits × golden cycles) at the spec's
confidence/error margin, exactly like ``FaultMaskGenerator.generate``.
"""

from __future__ import annotations

import hashlib
import json
import zlib
from dataclasses import dataclass, fields
from functools import lru_cache

from repro.core.fault import FAULT_TYPES, TRANSIENT


@lru_cache(maxsize=None)
def structure_names(setup: str) -> tuple[str, ...]:
    """The injectable structure names of *setup*, without a golden run.

    Builds one throwaway machine (cheap — construction only, no
    simulation) and enumerates its fault sites; cached per setup so
    service-boundary validation costs nothing after the first call.
    """
    from repro.bench import suite
    from repro.core.dispatcher import build_sim
    from repro.sim.config import setup_config
    config = setup_config(setup)
    program = suite.program("sha", config.isa, 1)
    return tuple(sorted(build_sim(program, config).fault_sites()))


def shard_of(unit_id: str, shards: int) -> int:
    """Deterministic shard index of a unit id (stable across hosts)."""
    if shards <= 0:
        raise ValueError("shard count must be positive")
    return zlib.crc32(unit_id.encode()) % shards


@dataclass(frozen=True)
class WorkUnit:
    """One addressable cell of a study: a campaign the scheduler leases."""

    setup: str
    benchmark: str
    structure: str
    fault_type: str = TRANSIENT

    @property
    def unit_id(self) -> str:
        return (f"{self.setup}/{self.benchmark}/{self.structure}/"
                f"{self.fault_type}")

    @property
    def file_id(self) -> str:
        """Filesystem-safe unit id (log/event file names)."""
        return self.unit_id.replace("/", "__")

    def seed(self, study_seed: int) -> int:
        """Deterministic per-unit mask seed derived from the study seed.

        Stable across processes and hosts (CRC-32, not Python's
        randomized ``hash``), and distinct per unit so no two cells
        replay the same mask stream.
        """
        return (study_seed * 1_000_003
                + zlib.crc32(self.unit_id.encode())) & 0x7FFFFFFF

    def to_dict(self) -> dict:
        return {"setup": self.setup, "benchmark": self.benchmark,
                "structure": self.structure, "fault_type": self.fault_type}

    @staticmethod
    def from_dict(d: dict) -> "WorkUnit":
        return WorkUnit(**d)

    @staticmethod
    def from_id(unit_id: str) -> "WorkUnit":
        parts = unit_id.split("/")
        if len(parts) != 4:
            raise ValueError(f"malformed unit id {unit_id!r}")
        return WorkUnit(*parts)


@dataclass(frozen=True)
class StudySpec:
    """The axes and campaign parameters of one full study."""

    setups: tuple = ()
    benchmarks: tuple = ()
    structures: tuple = ()
    fault_types: tuple = (TRANSIENT,)
    injections: int | None = None      # None -> sized by core.sampling
    confidence: float = 0.99
    error_margin: float = 0.03
    seed: int = 1
    early_stop: bool = True
    scaled: bool = True
    scale: int = 1
    n_checkpoints: int = 10
    timeout_s: float | None = None     # per-injection wall-clock budget
    guard: str = "off"                 # repro.guard preset for every unit
    prune: str = "off"                 # repro.prune policy for every unit

    def __post_init__(self):
        for name in ("setups", "benchmarks", "structures", "fault_types"):
            value = getattr(self, name)
            if isinstance(value, (str, bytes)):
                # tuple("sha") silently becomes ('s','h','a') — the
                # classic malformed-grid submission.  Refuse it here so
                # no code path can expand a one-string axis into junk.
                raise ValueError(
                    f"study spec field {name!r} must be a list of names, "
                    f"got the bare string {value!r} — wrap it in a list")
            object.__setattr__(self, name, tuple(value))

    def validate(self) -> None:
        for name in ("setups", "benchmarks", "structures", "fault_types"):
            values = getattr(self, name)
            if not values:
                raise ValueError(f"study spec has no {name}")
            for v in values:
                if not isinstance(v, str) or not v:
                    raise ValueError(
                        f"study spec field {name!r} must contain "
                        f"non-empty strings, got {v!r}")
            if len(set(values)) != len(values):
                dupes = sorted({v for v in values if values.count(v) > 1})
                raise ValueError(f"study spec field {name!r} lists "
                                 f"{', '.join(dupes)} more than once")
        for ft in self.fault_types:
            if ft not in FAULT_TYPES:
                raise ValueError(f"unknown fault type {ft!r}; "
                                 f"choose from {list(FAULT_TYPES)}")
        if self.injections is not None:
            if not isinstance(self.injections, int) \
                    or isinstance(self.injections, bool):
                raise ValueError(f"injections must be an integer, "
                                 f"got {self.injections!r}")
            if self.injections <= 0:
                raise ValueError("injections must be positive")
        for name, lo, hi in (("confidence", 0.0, 1.0),
                             ("error_margin", 0.0, 1.0)):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) \
                    or isinstance(value, bool) or not lo < value < hi:
                raise ValueError(f"{name} must be a number strictly "
                                 f"between {lo} and {hi}, got {value!r}")
        for name, minimum in (("seed", 0), ("scale", 1),
                              ("n_checkpoints", 1)):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < minimum:
                raise ValueError(f"{name} must be an integer >= "
                                 f"{minimum}, got {value!r}")
        if self.timeout_s is not None:
            if not isinstance(self.timeout_s, (int, float)) \
                    or isinstance(self.timeout_s, bool) \
                    or self.timeout_s <= 0:
                raise ValueError(f"timeout_s must be a positive number "
                                 f"or null, got {self.timeout_s!r}")
        for name in ("early_stop", "scaled"):
            if not isinstance(getattr(self, name), bool):
                raise ValueError(f"{name} must be a boolean, got "
                                 f"{getattr(self, name)!r}")
        from repro.guard import PRESETS
        if self.guard not in PRESETS:
            raise ValueError(f"unknown guard preset {self.guard!r}; "
                             f"choose from {sorted(PRESETS)}")
        from repro.prune import PRUNE_POLICIES
        if self.prune not in PRUNE_POLICIES:
            raise ValueError(f"unknown prune policy {self.prune!r}; "
                             f"choose from {PRUNE_POLICIES}")

    def validate_grid(self) -> None:
        """Resolve every axis name against the real registries.

        The service boundary's half of validation: :meth:`validate`
        checks shape and ranges cheaply, this checks that every named
        setup, benchmark and structure actually exists — so an HTTP
        submission with a typo'd grid is a 400 with the valid choices
        spelled out, not three retries and a quarantined unit.
        """
        from repro.bench.suite import BENCHMARKS
        from repro.sim.config import CONFIG_SETUPS
        for s in self.setups:
            if s not in CONFIG_SETUPS:
                raise ValueError(f"unknown setup {s!r}; "
                                 f"choose from {list(CONFIG_SETUPS)}")
        for b in self.benchmarks:
            if b not in BENCHMARKS:
                raise ValueError(f"unknown benchmark {b!r}; "
                                 f"choose from {list(BENCHMARKS)}")
        for s in self.setups:
            known = structure_names(s)
            for st in self.structures:
                if st not in known:
                    raise ValueError(
                        f"setup {s!r} has no structure {st!r}; "
                        f"available: {', '.join(known)}")

    @classmethod
    def parse(cls, d: dict) -> "StudySpec":
        """Strict service-boundary constructor for untrusted dicts.

        Unknown fields, bare-string axes, out-of-range numbers and
        unresolvable grid names all raise ``ValueError`` with the valid
        choices — HTTP submission makes bad input routine, so every
        rejection must say what to fix.
        """
        if not isinstance(d, dict):
            raise ValueError(f"study spec must be a JSON object, "
                             f"got {type(d).__name__}")
        valid = {f.name for f in fields(cls)}
        unknown = sorted(set(d) - valid)
        if unknown:
            raise ValueError(
                f"unknown study-spec field(s) {', '.join(unknown)}; "
                f"valid fields: {', '.join(sorted(valid))}")
        try:
            spec = cls.from_dict(d)
        except TypeError as exc:
            raise ValueError(f"malformed study spec: {exc}") from None
        spec.validate()
        spec.validate_grid()
        return spec

    def to_dict(self) -> dict:
        return {
            "setups": list(self.setups),
            "benchmarks": list(self.benchmarks),
            "structures": list(self.structures),
            "fault_types": list(self.fault_types),
            "injections": self.injections,
            "confidence": self.confidence,
            "error_margin": self.error_margin,
            "seed": self.seed,
            "early_stop": self.early_stop,
            "scaled": self.scaled,
            "scale": self.scale,
            "n_checkpoints": self.n_checkpoints,
            "timeout_s": self.timeout_s,
            "guard": self.guard,
            "prune": self.prune,
        }

    @staticmethod
    def from_dict(d: dict) -> "StudySpec":
        d = dict(d)
        for name in ("setups", "benchmarks", "structures", "fault_types"):
            # Leave bare strings alone so __post_init__ rejects them
            # with the wrap-it-in-a-list message instead of exploding
            # "sha" into ('s', 'h', 'a').
            if name in d and not isinstance(d[name], (str, bytes)):
                d[name] = tuple(d[name])
        return StudySpec(**d)

    @property
    def spec_hash(self) -> str:
        """Stable digest of the spec — journals refuse to mix studies."""
        blob = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha1(blob.encode()).hexdigest()[:12]


class CampaignPlan:
    """A spec expanded into work units, optionally restricted to a shard."""

    def __init__(self, spec: StudySpec, units=None, shard=None):
        spec.validate()
        self.spec = spec
        self.shard_id = shard          # (index, count) or None
        if units is None:
            units = [WorkUnit(s, b, st, ft)
                     for s in spec.setups
                     for b in spec.benchmarks
                     for st in spec.structures
                     for ft in spec.fault_types]
        self.units: list[WorkUnit] = list(units)

    @classmethod
    def from_spec(cls, spec: StudySpec) -> "CampaignPlan":
        return cls(spec)

    def shard(self, index: int, count: int) -> "CampaignPlan":
        """The sub-plan this shard is responsible for (disjoint by id)."""
        if not 0 <= index < count:
            raise ValueError(f"shard index {index} out of range 0..{count - 1}")
        units = [u for u in self.units
                 if shard_of(u.unit_id, count) == index]
        return CampaignPlan(self.spec, units=units, shard=(index, count))

    def unit(self, unit_id: str) -> WorkUnit:
        for u in self.units:
            if u.unit_id == unit_id:
                return u
        raise KeyError(unit_id)

    def unit_ids(self) -> list[str]:
        return [u.unit_id for u in self.units]

    def grid_ids(self) -> list[str]:
        """Every unit id of the *full* (unsharded) grid."""
        return [u.unit_id for u in CampaignPlan(self.spec).units]

    def __len__(self) -> int:
        return len(self.units)

    def __iter__(self):
        return iter(self.units)


# Re-exported convenience: build a spec with keyword overrides.
def study_spec(**kwargs) -> StudySpec:
    """Keyword-style :class:`StudySpec` constructor (CLI plumbing)."""
    return StudySpec(**kwargs)


__all__ = ["CampaignPlan", "StudySpec", "WorkUnit", "shard_of",
           "structure_names", "study_spec"]
