"""Study specification and campaign plan — the sched unit of work.

A :class:`StudySpec` names the axes of a full study — setups ×
benchmarks × structures × fault models — plus the per-cell campaign
parameters.  :class:`CampaignPlan` expands the spec into addressable
:class:`WorkUnit`\\ s, one per grid cell, each with a stable ``unit_id``
and a deterministic per-unit seed.  Everything downstream — the
journal, the scheduler, sharding, merging — speaks unit ids.

Sharding is a pure function of the unit id (CRC-32 mod *n*), so *n*
independent hosts can each run ``plan.shard(i, n)`` against their own
journal and the shards are guaranteed disjoint and collectively
exhaustive without any coordination.

Per-cell injection counts come from :mod:`repro.core.sampling` when
``injections`` is None: each unit's worker sizes its campaign from the
structure's fault population (bits × golden cycles) at the spec's
confidence/error margin, exactly like ``FaultMaskGenerator.generate``.
"""

from __future__ import annotations

import hashlib
import json
import zlib
from dataclasses import dataclass

from repro.core.fault import FAULT_TYPES, TRANSIENT


def shard_of(unit_id: str, shards: int) -> int:
    """Deterministic shard index of a unit id (stable across hosts)."""
    if shards <= 0:
        raise ValueError("shard count must be positive")
    return zlib.crc32(unit_id.encode()) % shards


@dataclass(frozen=True)
class WorkUnit:
    """One addressable cell of a study: a campaign the scheduler leases."""

    setup: str
    benchmark: str
    structure: str
    fault_type: str = TRANSIENT

    @property
    def unit_id(self) -> str:
        return (f"{self.setup}/{self.benchmark}/{self.structure}/"
                f"{self.fault_type}")

    @property
    def file_id(self) -> str:
        """Filesystem-safe unit id (log/event file names)."""
        return self.unit_id.replace("/", "__")

    def seed(self, study_seed: int) -> int:
        """Deterministic per-unit mask seed derived from the study seed.

        Stable across processes and hosts (CRC-32, not Python's
        randomized ``hash``), and distinct per unit so no two cells
        replay the same mask stream.
        """
        return (study_seed * 1_000_003
                + zlib.crc32(self.unit_id.encode())) & 0x7FFFFFFF

    def to_dict(self) -> dict:
        return {"setup": self.setup, "benchmark": self.benchmark,
                "structure": self.structure, "fault_type": self.fault_type}

    @staticmethod
    def from_dict(d: dict) -> "WorkUnit":
        return WorkUnit(**d)

    @staticmethod
    def from_id(unit_id: str) -> "WorkUnit":
        parts = unit_id.split("/")
        if len(parts) != 4:
            raise ValueError(f"malformed unit id {unit_id!r}")
        return WorkUnit(*parts)


@dataclass(frozen=True)
class StudySpec:
    """The axes and campaign parameters of one full study."""

    setups: tuple = ()
    benchmarks: tuple = ()
    structures: tuple = ()
    fault_types: tuple = (TRANSIENT,)
    injections: int | None = None      # None -> sized by core.sampling
    confidence: float = 0.99
    error_margin: float = 0.03
    seed: int = 1
    early_stop: bool = True
    scaled: bool = True
    scale: int = 1
    n_checkpoints: int = 10
    timeout_s: float | None = None     # per-injection wall-clock budget
    guard: str = "off"                 # repro.guard preset for every unit
    prune: str = "off"                 # repro.prune policy for every unit

    def __post_init__(self):
        for name in ("setups", "benchmarks", "structures", "fault_types"):
            object.__setattr__(self, name, tuple(getattr(self, name)))

    def validate(self) -> None:
        for name in ("setups", "benchmarks", "structures", "fault_types"):
            if not getattr(self, name):
                raise ValueError(f"study spec has no {name}")
        for ft in self.fault_types:
            if ft not in FAULT_TYPES:
                raise ValueError(f"unknown fault type {ft!r}")
        if self.injections is not None and self.injections <= 0:
            raise ValueError("injections must be positive")
        from repro.guard import PRESETS
        if self.guard not in PRESETS:
            raise ValueError(f"unknown guard preset {self.guard!r}; "
                             f"choose from {sorted(PRESETS)}")
        from repro.prune import PRUNE_POLICIES
        if self.prune not in PRUNE_POLICIES:
            raise ValueError(f"unknown prune policy {self.prune!r}; "
                             f"choose from {PRUNE_POLICIES}")

    def to_dict(self) -> dict:
        return {
            "setups": list(self.setups),
            "benchmarks": list(self.benchmarks),
            "structures": list(self.structures),
            "fault_types": list(self.fault_types),
            "injections": self.injections,
            "confidence": self.confidence,
            "error_margin": self.error_margin,
            "seed": self.seed,
            "early_stop": self.early_stop,
            "scaled": self.scaled,
            "scale": self.scale,
            "n_checkpoints": self.n_checkpoints,
            "timeout_s": self.timeout_s,
            "guard": self.guard,
            "prune": self.prune,
        }

    @staticmethod
    def from_dict(d: dict) -> "StudySpec":
        d = dict(d)
        for name in ("setups", "benchmarks", "structures", "fault_types"):
            if name in d:
                d[name] = tuple(d[name])
        return StudySpec(**d)

    @property
    def spec_hash(self) -> str:
        """Stable digest of the spec — journals refuse to mix studies."""
        blob = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha1(blob.encode()).hexdigest()[:12]


class CampaignPlan:
    """A spec expanded into work units, optionally restricted to a shard."""

    def __init__(self, spec: StudySpec, units=None, shard=None):
        spec.validate()
        self.spec = spec
        self.shard_id = shard          # (index, count) or None
        if units is None:
            units = [WorkUnit(s, b, st, ft)
                     for s in spec.setups
                     for b in spec.benchmarks
                     for st in spec.structures
                     for ft in spec.fault_types]
        self.units: list[WorkUnit] = list(units)

    @classmethod
    def from_spec(cls, spec: StudySpec) -> "CampaignPlan":
        return cls(spec)

    def shard(self, index: int, count: int) -> "CampaignPlan":
        """The sub-plan this shard is responsible for (disjoint by id)."""
        if not 0 <= index < count:
            raise ValueError(f"shard index {index} out of range 0..{count - 1}")
        units = [u for u in self.units
                 if shard_of(u.unit_id, count) == index]
        return CampaignPlan(self.spec, units=units, shard=(index, count))

    def unit(self, unit_id: str) -> WorkUnit:
        for u in self.units:
            if u.unit_id == unit_id:
                return u
        raise KeyError(unit_id)

    def unit_ids(self) -> list[str]:
        return [u.unit_id for u in self.units]

    def grid_ids(self) -> list[str]:
        """Every unit id of the *full* (unsharded) grid."""
        return [u.unit_id for u in CampaignPlan(self.spec).units]

    def __len__(self) -> int:
        return len(self.units)

    def __iter__(self):
        return iter(self.units)


# Re-exported convenience: build a spec with keyword overrides.
def study_spec(**kwargs) -> StudySpec:
    """Keyword-style :class:`StudySpec` constructor (CLI plumbing)."""
    return StudySpec(**kwargs)


__all__ = ["CampaignPlan", "StudySpec", "WorkUnit", "shard_of",
           "study_spec"]
