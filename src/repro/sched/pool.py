"""Worker-process lease pool — the mechanics under every unit lease.

One :class:`LeasePool` owns a fixed number of worker slots and the
process lifecycle of every lease running in them: spawn a
:func:`~repro.sched.worker.unit_entry` process with its payload, poll
the result pipe, detect worker death, and enforce the per-lease
wall-clock deadline.  It makes no policy decisions — journaling,
retries, backoff and quarantine belong to its callers:

* :class:`~repro.sched.scheduler.Scheduler` drives one study's plan
  through a pool;
* :class:`repro.svc.fleet.WorkerFleet` multiplexes units from many
  concurrent studies onto one shared pool (the campaign-as-a-service
  write side).

A lease carries an opaque ``meta`` slot so multi-study callers can
route a completion back to the study that owns it.
"""

from __future__ import annotations

import multiprocessing as mp
import time

from repro.sched.worker import unit_entry

#: Completion kinds yielded by :meth:`LeasePool.poll`.
RESULT = "result"          # worker sent a result dict (ok True or False)
CRASHED = "crashed"        # worker died without sending anything
TIMEOUT = "timeout"        # lease exceeded its wall-clock deadline


class Lease:
    """One unit running in one worker process."""

    __slots__ = ("unit", "attempt", "proc", "conn", "started",
                 "deadline_s", "meta")

    def __init__(self, unit, attempt, proc, conn, started,
                 deadline_s=None, meta=None):
        self.unit = unit
        self.attempt = attempt
        self.proc = proc
        self.conn = conn
        self.started = started
        self.deadline_s = deadline_s
        self.meta = meta

    def age_s(self, now: float | None = None) -> float:
        return (time.monotonic() if now is None else now) - self.started


class LeasePool:
    """Launches and polls unit worker processes, up to *workers* at once."""

    def __init__(self, workers: int = 2):
        # 0 is legal: a service can run with no local slots at all and
        # let remote agents (repro.svc.remote) do every unit.
        self.workers = max(workers, 0)
        self._ctx = mp.get_context(
            "spawn" if mp.get_start_method(True) == "spawn" else "fork")
        self.running: list[Lease] = []

    @property
    def free_slots(self) -> int:
        return self.workers - len(self.running)

    def launch(self, unit, spec, *, logs_path, masks_path, attempt: int = 1,
               golden_blob: bytes | None = None, fsync: bool = True,
               want_blob: bool = False, deadline_s: float | None = None,
               meta=None) -> Lease:
        """Start one unit worker; the lease joins :attr:`running`."""
        recv, send = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=unit_entry,
            args=(send, {
                "unit": unit.to_dict(),
                "spec": spec.to_dict(),
                "logs_path": str(logs_path),
                "masks_path": str(masks_path),
                "attempt": attempt,
                "golden_blob": golden_blob,
                "fsync": fsync,
                "want_blob": want_blob,
            }),
            daemon=True)
        proc.start()
        send.close()
        lease = Lease(unit, attempt, proc, recv, time.monotonic(),
                      deadline_s=deadline_s, meta=meta)
        self.running.append(lease)
        return lease

    def poll(self) -> list[tuple[Lease, str, object]]:
        """Leases that finished since the last poll, removed from the pool.

        Each entry is ``(lease, kind, payload)``: ``RESULT`` carries the
        worker's result dict (which may still say ``ok: False``),
        ``CRASHED`` and ``TIMEOUT`` carry a human-readable detail
        string.  Checked in that order, so a worker that produced a
        result just before its deadline is never misreported.
        """
        finished = []
        for lease in list(self.running):
            res = None
            if lease.conn.poll():
                try:
                    res = lease.conn.recv()
                except EOFError:
                    res = None
            if res is not None:
                lease.proc.join()
                self.running.remove(lease)
                finished.append((lease, RESULT, res))
            elif not lease.proc.is_alive():
                self.running.remove(lease)
                finished.append((lease, CRASHED,
                                 f"worker exited with code "
                                 f"{lease.proc.exitcode}"))
            elif (lease.deadline_s is not None and
                  lease.age_s() > lease.deadline_s):
                self.terminate(lease)
                finished.append((lease, TIMEOUT,
                                 f"unit exceeded {lease.deadline_s}s "
                                 f"wall clock"))
        return finished

    def terminate(self, lease: Lease) -> None:
        """Kill one lease's worker and drop it from the pool."""
        lease.proc.terminate()
        lease.proc.join(timeout=5)
        if lease in self.running:
            self.running.remove(lease)

    def terminate_all(self) -> list[Lease]:
        """Kill every running lease; returns what was terminated."""
        leases = list(self.running)
        for lease in leases:
            self.terminate(lease)
        return leases


__all__ = ["Lease", "LeasePool", "RESULT", "CRASHED", "TIMEOUT"]
