"""Durable campaign scheduler: lease, retry, quarantine, resume, merge.

The :class:`Scheduler` drives a :class:`~repro.sched.plan.CampaignPlan`
to completion with local worker processes.  Every unit state transition
is journaled (write-ahead, fsync'd) before the scheduler acts on it, so
a study killed at any point — including SIGKILL — resumes losslessly:

* completed units are never re-run (their classification rides in the
  journal's ``done`` record);
* a unit interrupted mid-campaign resumes from its logs repository and
  injects only the masks it is missing (``set_id``-keyed idempotence);
* stale leases left by a dead scheduler count as spent attempts.

Failure policy: a unit that fails (worker exception, worker death, or
per-unit wall-clock timeout) is retried with exponential backoff up to
``max_retries`` times; after that it is quarantined as a poison unit
and the study completes without it (reported, never silently dropped).

Sharding: ``plan.shard(i, n)`` restricts a host to the units whose id
hashes to shard *i*; shards journal independently and
:func:`merge_studies` checks spec compatibility and coverage before
folding the per-unit classifications together.  Per-unit logs files
are named by unit id, so shard output directories merge cleanly.

Observability: unit-lifecycle trace events (``study_start``,
``unit_leased``, ``unit_done``, ``unit_failed``, ``unit_quarantined``,
``study_end``), ``sched.*`` counters (retries, timeouts, quarantined)
and a queue-depth gauge flow through :mod:`repro.obs`; worker trace
events and metrics are shipped home exactly like the parallel runner's.
With ``heartbeat_s`` set, the run loop additionally emits periodic
``heartbeat`` events carrying the leases in flight and their ages —
the liveness signal :mod:`repro.obs.live` and ``obs serve`` use to
tell a slow unit from a dead scheduler.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import JSONLSink, NULL_TRACER, TraceEvent, Tracer
from repro.sched.journal import (DONE, FAILED, LEASED, PENDING, QUARANTINED,
                                 Journal, JournalState, load_journal)
from repro.sched.plan import CampaignPlan, StudySpec, WorkUnit
from repro.sched.pool import CRASHED, RESULT, LeasePool

JOURNAL_NAME = "journal.jsonl"
EVENTS_NAME = "events.jsonl"


@dataclass
class CellOutcome:
    """Terminal (or last-known) state of one unit after a run."""

    unit_id: str
    state: str
    counts: dict | None = None
    injections: int = 0
    early_stops: int = 0
    attempts: int = 0
    error: str | None = None


@dataclass
class StudyResult:
    """What one scheduler run (or resume) produced."""

    spec: StudySpec
    shard: tuple | None
    cells: dict = field(default_factory=dict)   # unit_id -> CellOutcome
    interrupted: bool = False
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        return (not self.interrupted and
                all(c.state == DONE for c in self.cells.values()))

    def classifications(self) -> dict:
        """unit_id -> classification counts for every completed unit."""
        return {uid: c.counts for uid, c in sorted(self.cells.items())
                if c.state == DONE and c.counts is not None}

    def totals(self) -> dict:
        """Merged class -> count over all completed units."""
        totals: dict = {}
        for counts in self.classifications().values():
            for cls, n in counts.items():
                totals[cls] = totals.get(cls, 0) + n
        return totals

    def quarantined(self) -> list:
        return sorted(uid for uid, c in self.cells.items()
                      if c.state == QUARANTINED)


class Scheduler:
    """Runs a plan's units to completion against a durable journal."""

    def __init__(self, plan: CampaignPlan, study_dir,
                 workers: int = 2, unit_timeout_s: float | None = None,
                 max_retries: int = 2, backoff_s: float = 0.5,
                 fsync: bool = True, tracer=None, metrics=None,
                 events: bool = True, progress=None,
                 heartbeat_s: float | None = None):
        self.plan = plan
        self.study_dir = Path(study_dir)
        self.workers = max(workers, 1)
        self.unit_timeout_s = unit_timeout_s
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        self.fsync = fsync
        self.heartbeat_s = heartbeat_s
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.progress = progress
        self._own_tracer = None
        if tracer is None and events:
            tracer = self._own_tracer = Tracer(
                JSONLSink(self.study_dir / EVENTS_NAME))
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._cancelled = False
        self._paused = False
        self._draining = False

    # -- construction from an existing study ------------------------------

    @classmethod
    def resume(cls, study_dir, **overrides) -> "Scheduler":
        """Rebuild a scheduler from a study directory's journal.

        The plan (spec + shard) comes from the journal header; runtime
        knobs (workers, timeouts, retries...) may be overridden.
        """
        study_dir = Path(study_dir)
        state = load_journal(study_dir / JOURNAL_NAME)
        spec = StudySpec.from_dict(state.spec_dict)
        plan = CampaignPlan.from_spec(spec)
        if state.shard is not None:
            plan = plan.shard(*state.shard)
        return cls(plan, study_dir, **overrides)

    def cancel(self) -> None:
        """Graceful shutdown: terminate leases, leave the journal durable."""
        self._cancelled = True

    def pause(self) -> None:
        """Stop granting new leases; keep polling the ones in flight.

        Thread-safe programmatic control for embedding callers (the
        service layer, tests): a paused scheduler holds its queue until
        :meth:`unpause`, :meth:`drain` or :meth:`cancel`.
        """
        self._paused = True

    def unpause(self) -> None:
        """Resume granting leases after :meth:`pause`."""
        self._paused = False

    def drain(self) -> None:
        """Finish the leases in flight, then return without new work.

        Unlike :meth:`cancel`, nothing is terminated: running units
        complete and journal normally, queued units stay pending (the
        run returns ``interrupted`` if any remain) and a later
        ``resume`` picks them up.
        """
        self._draining = True

    # -- the run loop ------------------------------------------------------

    def run(self, resume: bool = False) -> StudyResult:
        self.study_dir.mkdir(parents=True, exist_ok=True)
        journal_path = self.study_dir / JOURNAL_NAME
        prior = None
        if journal_path.exists() and journal_path.stat().st_size > 0:
            if not resume:
                raise FileExistsError(
                    f"{journal_path} already exists — resume the study "
                    f"(sched resume) or pick a fresh directory")
            prior = load_journal(journal_path)
            if prior.spec_hash != self.plan.spec.spec_hash:
                raise ValueError(
                    f"journal {journal_path} belongs to spec "
                    f"{prior.spec_hash}, not {self.plan.spec.spec_hash}")

        journal = Journal(journal_path, fsync=self.fsync)
        try:
            if prior is None:
                journal.write_header(self.plan.spec.to_dict(),
                                     self.plan.unit_ids(),
                                     shard=self.plan.shard_id)
            return self._loop(journal, prior)
        finally:
            journal.close()
            if self._own_tracer is not None:
                self._own_tracer.close()
                self._own_tracer = None

    def _loop(self, journal: Journal,
              prior: JournalState | None) -> StudyResult:
        t0 = time.monotonic()
        result = StudyResult(spec=self.plan.spec,
                             shard=self.plan.shard_id)
        attempts: dict[str, int] = {}
        queue: list[tuple[float, WorkUnit]] = []     # (eligible_at, unit)
        for unit in self.plan:
            uid = unit.unit_id
            state = prior.state_of(uid) if prior is not None else PENDING
            attempts[uid] = prior.attempts.get(uid, 0) if prior else 0
            if state == DONE:
                row = prior.results[uid]
                result.cells[uid] = CellOutcome(
                    uid, DONE, counts=row.get("counts"),
                    injections=row.get("injections", 0),
                    early_stops=row.get("early_stops", 0),
                    attempts=attempts[uid])
            elif state == QUARANTINED:
                result.cells[uid] = CellOutcome(
                    uid, QUARANTINED, attempts=attempts[uid],
                    error=prior.last[uid].get("detail"))
            else:
                # PENDING, stale LEASED, or FAILED mid-retry: (re)queue.
                queue.append((0.0, unit))
        queue.sort(key=lambda item: item[0])

        pool = LeasePool(self.workers)
        golden_blobs: dict[tuple, bytes] = {}
        self.tracer.emit("study_start", units=len(self.plan),
                         pending=len(queue), workers=self.workers,
                         shard=list(self.plan.shard_id)
                         if self.plan.shard_id else None,
                         spec_hash=self.plan.spec.spec_hash,
                         resumed=prior is not None)

        def queue_depth() -> None:
            self.metrics.gauge("sched.queue_depth").set(
                len(queue) + len(pool.running))

        # Liveness hook for the live-monitoring layer (repro.obs.live):
        # a periodic heartbeat event carrying the leases in flight and
        # their ages, so an external observer can tell "scheduler alive,
        # unit slow" from "scheduler gone" without process introspection.
        last_beat = time.monotonic()

        def heartbeat() -> None:
            nonlocal last_beat
            if self.heartbeat_s is None or not self.tracer.enabled:
                return
            now_mono = time.monotonic()
            if now_mono - last_beat < self.heartbeat_s:
                return
            last_beat = now_mono
            done_n = sum(1 for c in result.cells.values()
                         if c.state == DONE)
            self.tracer.emit(
                "heartbeat", workers=self.workers,
                running=[{"unit": lease.unit.unit_id,
                          "attempt": lease.attempt,
                          "age_s": lease.age_s(now_mono)}
                         for lease in pool.running],
                queued=len(queue), done=done_n, units=len(self.plan))

        def finish_failure(lease, reason: str, detail: str) -> None:
            uid = lease.unit.unit_id
            journal.record(uid, FAILED, attempt=lease.attempt,
                           reason=reason, detail=detail)
            self.tracer.emit("unit_failed", unit=uid,
                             attempt=lease.attempt, reason=reason)
            self.metrics.counter("sched.units_failed").inc()
            if reason == "timeout":
                self.metrics.counter("sched.timeouts").inc()
            if lease.attempt > self.max_retries:
                journal.record(uid, QUARANTINED, attempts=lease.attempt,
                               detail=detail)
                self.tracer.emit("unit_quarantined", unit=uid,
                                 attempts=lease.attempt)
                self.metrics.counter("sched.quarantined").inc()
                result.cells[uid] = CellOutcome(
                    uid, QUARANTINED, attempts=lease.attempt, error=detail)
                self._notify(uid, QUARANTINED, result)
            else:
                self.metrics.counter("sched.retries").inc()
                delay = self.backoff_s * (2 ** (lease.attempt - 1))
                queue.append((time.monotonic() + delay, lease.unit))
                self._notify(uid, FAILED, result)

        def finish_success(lease, res: dict) -> None:
            uid = lease.unit.unit_id
            journal.record(uid, DONE, attempt=lease.attempt,
                           counts=res["counts"],
                           injections=res["injections"],
                           early_stops=res["early_stops"],
                           pruned=res.get("pruned", 0),
                           resumed=res["resumed"], wall_s=res["wall_s"])
            blob = res.get("golden_blob")
            if blob is not None:
                golden_blobs[self._pair(lease.unit)] = blob
            if self.tracer.enabled:
                for ev in res["events"]:
                    self.tracer.sink.write(TraceEvent.from_dict(ev))
            self.metrics.merge(MetricsRegistry.from_dict(res["metrics"]))
            self.metrics.counter("sched.units_done").inc()
            self.metrics.histogram("time.unit_s").observe(res["wall_s"])
            self.tracer.emit("unit_done", unit=uid, attempt=lease.attempt,
                             injections=res["injections"],
                             pruned=res.get("pruned", 0),
                             resumed=res["resumed"], wall_s=res["wall_s"])
            result.cells[uid] = CellOutcome(
                uid, DONE, counts=res["counts"],
                injections=res["injections"],
                early_stops=res["early_stops"], attempts=lease.attempt)
            self._notify(uid, DONE, result)

        while queue or pool.running:
            if self._cancelled:
                pool.terminate_all()
                result.interrupted = True
                break
            if self._draining and not pool.running:
                result.interrupted = bool(queue)
                break

            # Launch leases while there are slots and eligible units.
            now = time.monotonic()
            while (pool.free_slots > 0 and
                   not (self._paused or self._draining)):
                idx = next((i for i, (at, _) in enumerate(queue)
                            if at <= now), None)
                if idx is None:
                    break
                _, unit = queue.pop(idx)
                uid = unit.unit_id
                attempts[uid] += 1
                attempt = attempts[uid]
                # Write-ahead: the lease is durable before work starts.
                journal.record(uid, LEASED, attempt=attempt)
                self.tracer.emit("unit_leased", unit=uid, attempt=attempt)
                pair = self._pair(unit)
                blob = golden_blobs.get(pair)
                pool.launch(unit, self.plan.spec, attempt=attempt,
                            logs_path=self._logs_path(unit),
                            masks_path=self._masks_path(unit),
                            golden_blob=blob, fsync=self.fsync,
                            want_blob=blob is None,
                            deadline_s=self.unit_timeout_s)
                queue_depth()

            # Results first, then deaths, then timeouts (pool order).
            for lease, kind, payload in pool.poll():
                if kind == RESULT:
                    if payload.get("ok"):
                        finish_success(lease, payload)
                    else:
                        finish_failure(lease, "error",
                                       payload.get("error", "worker error"))
                else:
                    finish_failure(lease,
                                   "crashed" if kind == CRASHED
                                   else "timeout", payload)
                queue_depth()

            heartbeat()
            if queue or pool.running:
                time.sleep(0.01)

        result.wall_s = time.monotonic() - t0
        tally = {DONE: 0, QUARANTINED: 0}
        for cell in result.cells.values():
            tally[cell.state] = tally.get(cell.state, 0) + 1
        self.tracer.emit("study_end", done=tally.get(DONE, 0),
                         quarantined=tally.get(QUARANTINED, 0),
                         interrupted=result.interrupted,
                         wall_s=result.wall_s)
        return result

    # -- layout helpers ----------------------------------------------------

    @staticmethod
    def _pair(unit: WorkUnit) -> tuple:
        return (unit.setup, unit.benchmark)

    def _logs_path(self, unit: WorkUnit) -> Path:
        return self.study_dir / "logs" / f"{unit.file_id}.jsonl"

    def _masks_path(self, unit: WorkUnit) -> Path:
        return self.study_dir / "masks" / f"{unit.file_id}.jsonl"

    def _notify(self, uid: str, state: str, result: StudyResult) -> None:
        if self.progress is not None:
            self.progress(uid, state,
                          sum(1 for c in result.cells.values()
                              if c.state == DONE),
                          len(self.plan))


def run_study(spec: StudySpec, study_dir, shard=None,
              resume: bool = False, **kwargs) -> StudyResult:
    """One-call study: expand *spec*, (optionally) shard, run to done."""
    plan = CampaignPlan.from_spec(spec)
    if shard is not None:
        plan = plan.shard(*shard)
    if resume:
        sched = Scheduler.resume(study_dir, **kwargs)
        return sched.run(resume=True)
    return Scheduler(plan, study_dir, **kwargs).run()


# -- status / merge --------------------------------------------------------

def study_status(study_dir) -> dict:
    """Machine-readable status of a study directory's journal."""
    study_dir = Path(study_dir)
    state = load_journal(study_dir / JOURNAL_NAME)
    cells = []
    injections = 0
    for uid in state.unit_ids:
        st = state.state_of(uid)
        row = state.results.get(uid, {})
        if st == DONE:
            injections += row.get("injections", 0)
        cells.append({"unit": uid, "state": st,
                      "attempts": state.attempts.get(uid, 0),
                      "injections": row.get("injections", 0)})
    return {
        "study_dir": str(study_dir),
        "spec_hash": state.spec_hash,
        "shard": list(state.shard) if state.shard else None,
        "units": len(state.unit_ids),
        "tally": state.tally(),
        "injections_done": injections,
        "cells": cells,
    }


def merge_studies(study_dirs) -> dict:
    """Fold several shard journals of one study into one result.

    Verifies every journal shares the spec (by hash), unions the
    per-unit classifications (flagging conflicting duplicates), and
    reports coverage against the spec's full grid — so a missing shard
    shows up as ``complete: false`` with the units it owes.
    """
    states = []
    for d in study_dirs:
        states.append(load_journal(Path(d) / JOURNAL_NAME))
    if not states:
        raise ValueError("nothing to merge")
    spec_hash = states[0].spec_hash
    for st in states[1:]:
        if st.spec_hash != spec_hash:
            raise ValueError(
                f"spec mismatch: {st.spec_hash} vs {spec_hash} — these "
                f"journals belong to different studies")
    spec = StudySpec.from_dict(states[0].spec_dict)
    grid = CampaignPlan.from_spec(spec).unit_ids()

    units: dict[str, dict] = {}
    conflicts: list[str] = []
    quarantined: set = set()
    for st in states:
        for uid, row in st.results.items():
            counts = row.get("counts", {})
            if uid in units and units[uid]["counts"] != counts:
                conflicts.append(uid)
            units[uid] = {"counts": counts,
                          "injections": row.get("injections", 0)}
        for uid in st.unit_ids:
            if st.state_of(uid) == QUARANTINED:
                quarantined.add(uid)
    missing = [uid for uid in grid if uid not in units]
    totals: dict = {}
    for u in units.values():
        for cls, n in u["counts"].items():
            totals[cls] = totals.get(cls, 0) + n
    return {
        "sources": len(states),
        "spec_hash": spec_hash,
        "complete": not missing and not conflicts,
        "missing": missing,
        "conflicts": sorted(set(conflicts)),
        "quarantined": sorted(quarantined),
        "units": {uid: units[uid]["counts"] for uid in sorted(units)},
        "injections": sum(u["injections"] for u in units.values()),
        "totals": totals,
    }
