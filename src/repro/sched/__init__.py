"""repro.sched — durable campaign orchestration above the campaign stack.

The paper's 300 000-injection study ran for a month on ten
workstations; this package is the layer that makes such a study
operable: a :class:`StudySpec` expands into an addressable
:class:`CampaignPlan` (setups × benchmarks × structures × fault
models), a write-ahead journal makes every unit state transition
durable, and the :class:`Scheduler` leases units to worker processes
with per-unit wall-clock timeouts, bounded exponential-backoff
retries, and poison-unit quarantine.  Kill it at any point — SIGTERM,
SIGKILL, power loss — and ``sched resume`` continues from the journal
without re-running completed units or re-injecting completed masks.
``--shard i/n`` splits one study across hosts deterministically, and
:func:`merge_studies` folds shard journals back into one result.

CLI: ``python -m repro.tools sched run | resume | status | merge``
(see docs/scheduler.md).
"""

from repro.sched.journal import (DONE, FAILED, LEASED, PENDING, QUARANTINED,
                                 Journal, JournalState, load_journal)
from repro.sched.plan import (CampaignPlan, StudySpec, WorkUnit, shard_of,
                              structure_names, study_spec)
from repro.sched.pool import Lease, LeasePool
from repro.sched.scheduler import (CellOutcome, Scheduler, StudyResult,
                                   merge_studies, run_study, study_status)
from repro.sched.worker import run_unit

__all__ = [
    "CampaignPlan", "StudySpec", "WorkUnit", "shard_of",
    "structure_names", "study_spec",
    "Journal", "JournalState", "load_journal",
    "PENDING", "LEASED", "DONE", "FAILED", "QUARANTINED",
    "Lease", "LeasePool",
    "Scheduler", "StudyResult", "CellOutcome",
    "run_study", "run_unit", "study_status", "merge_studies",
]
