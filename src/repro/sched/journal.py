"""Write-ahead journal for durable campaign studies.

One JSONL file per (study, shard): a header record binding the journal
to a :class:`~repro.sched.plan.StudySpec` (by content *and* by hash),
then one record per unit state transition::

    pending ──lease──▶ leased ──▶ done
                         │
                         ├──▶ failed ──(retry)──▶ leased …
                         └──▶ failed ──(attempts exhausted)──▶ quarantined

Every append is flushed and ``fsync``'d before the scheduler acts on
it (write-ahead: the intent is durable before the work starts), so a
killed study — SIGKILL, power loss, OOM — can always be resumed from
its journal.  ``done`` records carry the unit's classification counts;
resume never re-runs a completed unit, and partially-completed units
resume mid-campaign from their logs repository (records are keyed by
``set_id`` — see :mod:`repro.core.repository`).

Replay is crash-tolerant: a torn final line (the write the crash
interrupted) is ignored.  Stale leases — a ``leased`` record with no
terminal transition — are what an interrupted run leaves behind; the
scheduler counts them as spent attempts and re-queues the unit.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.errors import CampaignError

# Unit states (journal record vocabulary).
PENDING = "pending"          # implicit: in the plan, nothing journaled
LEASED = "leased"
DONE = "done"
FAILED = "failed"
QUARANTINED = "quarantined"
AUDIT_VOID = "audit_void"    # a done result retracted by attestation:
                             # the worker that produced it was
                             # distrusted, the unit is pending again

TERMINAL_STATES = (DONE, QUARANTINED)


class Journal:
    """Append-only, fsync'd JSONL journal of one study shard."""

    def __init__(self, path, fsync: bool = True):
        self.path = Path(path)
        self.fsync = fsync
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a")

    # -- writing ----------------------------------------------------------

    def write_header(self, spec_dict: dict, unit_ids, shard=None) -> None:
        self._append({"kind": "study", "spec": spec_dict,
                      "spec_hash": _spec_hash(spec_dict),
                      "units": list(unit_ids),
                      "shard": list(shard) if shard else None,
                      "ts": time.time()})

    def record(self, unit_id: str, state: str, **fields) -> None:
        """Journal one unit state transition (durably, before acting)."""
        self._append({"kind": "unit", "unit": unit_id, "state": state,
                      "ts": time.time(), **fields})

    def _append(self, row: dict) -> None:
        try:
            self._fh.write(json.dumps(row) + "\n")
            self._fh.flush()
            if self.fsync:
                os.fsync(self._fh.fileno())
        except OSError as exc:
            raise CampaignError(
                f"cannot append to journal {self.path}: {exc} — the "
                f"study cannot continue durably; free space or fix "
                f"permissions, then run `repro.tools fsck --repair` on "
                f"the study directory before resuming") from exc

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            if self.fsync:
                os.fsync(self._fh.fileno())
            self._fh.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


class JournalState:
    """The replayed state of a journal: who is where, with what result."""

    def __init__(self):
        self.spec_dict: dict | None = None
        self.spec_hash: str | None = None
        self.unit_ids: list[str] = []
        self.shard: tuple | None = None
        self.last: dict[str, dict] = {}       # unit -> last transition row
        self.attempts: dict[str, int] = {}    # unit -> leases journaled
        self.results: dict[str, dict] = {}    # unit -> done payload

    # -- queries ----------------------------------------------------------

    def state_of(self, unit_id: str) -> str:
        row = self.last.get(unit_id)
        return row["state"] if row else PENDING

    def is_done(self, unit_id: str) -> bool:
        return self.state_of(unit_id) == DONE

    def counts_by_unit(self) -> dict:
        """unit_id -> classification counts for every completed unit."""
        return {uid: row.get("counts", {})
                for uid, row in self.results.items()}

    def tally(self) -> dict:
        """State -> unit count over the journal's plan."""
        tally = {PENDING: 0, LEASED: 0, DONE: 0, FAILED: 0, QUARANTINED: 0}
        for uid in self.unit_ids:
            state = self.state_of(uid)
            if state == AUDIT_VOID:
                state = PENDING    # a voided unit is back in the queue
            tally[state] += 1
        return tally


def _spec_hash(spec_dict: dict) -> str:
    import hashlib
    blob = json.dumps(spec_dict, sort_keys=True)
    return hashlib.sha1(blob.encode()).hexdigest()[:12]


def load_journal(path) -> JournalState:
    """Replay a journal file into a :class:`JournalState`.

    Tolerates a torn (partially-written) final line — everything before
    it is, by the fsync discipline, durable and consistent.
    """
    state = JournalState()
    path = Path(path)
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                break                      # torn tail from a crash
            kind = row.get("kind")
            if kind == "study":
                state.spec_dict = row.get("spec")
                state.spec_hash = row.get("spec_hash")
                state.unit_ids = list(row.get("units", []))
                shard = row.get("shard")
                state.shard = tuple(shard) if shard else None
            elif kind == "unit":
                uid = row["unit"]
                state.last[uid] = row
                if row["state"] == LEASED:
                    state.attempts[uid] = state.attempts.get(uid, 0) + 1
                elif row["state"] == DONE:
                    state.results[uid] = row
                elif row["state"] == AUDIT_VOID:
                    state.results.pop(uid, None)
    if state.spec_dict is None:
        raise ValueError(f"{path}: not a study journal (no header)")
    return state
