"""repro — differential fault injection on microarchitectural simulators.

A from-scratch reproduction of Kaliorakis et al., *"Differential Fault
Injection on Microarchitectural Simulators"* (IISWC 2015): two
cycle-level out-of-order full-system simulators (MARSS-like and
gem5-like), two toy ISAs (x86-like and ARM-like), a MiniC compiler with
the study's 10 MiBench-like workloads, and the MaFIN/GeFIN fault
injectors — fault-mask generation, statistical sampling, campaign
control with checkpointing and early-stop, and a reconfigurable
fault-effect parser.

Quickstart::

    from repro import MaFIN

    result = MaFIN().campaign("sha", "l1d", injections=50)
    print(result.classify())          # Masked/SDC/DUE/Timeout/Crash/Assert
    print(result.vulnerability())     # share of non-masked outcomes

See DESIGN.md for the system map and EXPERIMENTS.md for the
paper-versus-measured experiment index.
"""

from repro.core.campaign import (CampaignResult, InjectionCampaign,
                                 run_campaign)
from repro.core.parallel import run_campaign_parallel
from repro.core.fault import (INTERMITTENT, PERMANENT, TRANSIENT, FaultMask,
                              FaultSet)
from repro.core.maskgen import FaultMaskGenerator, StructureInfo
from repro.core.outcome import (ASSERT, CLASSES, CRASH, DUE, MASKED, SDC,
                                TIMEOUT, GoldenReference, InjectionRecord)
from repro.core.parser import (DEFAULT_POLICY, ParserPolicy, classify,
                               classify_all, vulnerability)
from repro.core.report import (SETUPS, FigureResult, golden_stats,
                               run_figure)
from repro.core.sampling import (achieved_error_margin, fault_space,
                                 required_injections)
from repro.guard import (GuardPolicy, IntegrityVerifier,
                         InvariantViolation, check_invariants,
                         state_digest)
from repro.injectors.gefin import GeFIN
from repro.injectors.mafin import MaFIN
from repro.obs import (CampaignTelemetry, JSONLSink, MetricsRegistry,
                       NullSink, RingBufferSink, Tracer)
from repro.sched import (CampaignPlan, Scheduler, StudyResult, StudySpec,
                         WorkUnit, merge_studies, run_study, study_status)
from repro.sim.config import (CONFIG_SETUPS, SimConfig, paper_config,
                              scaled_config, setup_config)

__version__ = "1.0.0"

__all__ = [
    "CampaignResult", "InjectionCampaign", "run_campaign",
    "run_campaign_parallel",
    "Tracer", "NullSink", "RingBufferSink", "JSONLSink",
    "MetricsRegistry", "CampaignTelemetry",
    "TRANSIENT", "INTERMITTENT", "PERMANENT", "FaultMask", "FaultSet",
    "FaultMaskGenerator", "StructureInfo",
    "MASKED", "SDC", "DUE", "TIMEOUT", "CRASH", "ASSERT", "CLASSES",
    "GoldenReference", "InjectionRecord",
    "ParserPolicy", "DEFAULT_POLICY", "classify", "classify_all",
    "vulnerability",
    "StudySpec", "CampaignPlan", "WorkUnit", "Scheduler", "StudyResult",
    "run_study", "study_status", "merge_studies",
    "FigureResult", "run_figure", "golden_stats", "SETUPS",
    "required_injections", "achieved_error_margin", "fault_space",
    "GuardPolicy", "IntegrityVerifier", "InvariantViolation",
    "check_invariants", "state_digest",
    "MaFIN", "GeFIN",
    "SimConfig", "paper_config", "scaled_config", "setup_config",
    "CONFIG_SETUPS",
    "__version__",
]
