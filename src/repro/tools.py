"""Command-line entry points.

``python -m repro.tools figures`` regenerates the paper's Figs. 2-6
content (classification per structure × benchmark × setup) and writes
text renderings plus machine-readable JSON.

``python -m repro.tools stats`` dumps the golden runtime statistics
behind the paper's remark explanations.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.core.report import SETUPS, golden_stats, run_figure

FIGURE_STRUCTURES = {
    "fig2": "int_rf",
    "fig3": "l1d",
    "fig4": "l1i",
    "fig5": "l2",
    "fig6": "lsq",
}


def _cmd_figures(args) -> int:
    outdir = Path(args.out)
    outdir.mkdir(parents=True, exist_ok=True)
    structures = args.structures or list(FIGURE_STRUCTURES.values())
    benchmarks = args.benchmarks or None
    for structure in structures:
        fig_name = next((k for k, v in FIGURE_STRUCTURES.items()
                         if v == structure), structure)
        t0 = time.time()

        def progress(bench, setup, result, _t0=t0, _s=structure):
            print(f"[{time.time() - _t0:7.1f}s] {_s:7s} {bench:7s} "
                  f"{setup:10s} vuln={100 * result.vulnerability():5.1f}% "
                  f"early={result.early_stops}/{result.injections}",
                  flush=True)

        fig = run_figure(structure, benchmarks=benchmarks,
                         injections=args.injections, seed=args.seed,
                         progress=progress)
        text = fig.render()
        (outdir / f"{fig_name}_{structure}.txt").write_text(text)
        rows = fig.summary_rows()
        (outdir / f"{fig_name}_{structure}.json").write_text(
            json.dumps(rows, indent=1))
        print(text, flush=True)
    return 0


def _cmd_stats(args) -> int:
    stats = golden_stats(benchmarks=args.benchmarks or None)
    rows = {f"{bench}/{setup}": s for (bench, setup), s in stats.items()}
    out = json.dumps(rows, indent=1)
    if args.out:
        Path(args.out).write_text(out)
    print(out)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools",
        description="MaFIN/GeFIN differential-study drivers")
    sub = parser.add_subparsers(dest="cmd", required=True)

    p_fig = sub.add_parser("figures", help="regenerate Figs. 2-6 content")
    p_fig.add_argument("--structures", nargs="*",
                       help="structures (default: the five paper figures)")
    p_fig.add_argument("--benchmarks", nargs="*",
                       help="benchmark subset (default: all ten)")
    p_fig.add_argument("--injections", type=int, default=None,
                       help="injections per cell (paper: 2000)")
    p_fig.add_argument("--seed", type=int, default=1)
    p_fig.add_argument("--out", default="results")
    p_fig.set_defaults(fn=_cmd_figures)

    p_st = sub.add_parser("stats", help="golden runtime statistics")
    p_st.add_argument("--benchmarks", nargs="*")
    p_st.add_argument("--out", default=None)
    p_st.set_defaults(fn=_cmd_stats)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
