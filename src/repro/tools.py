"""Command-line entry points.

``python -m repro.tools figures`` regenerates the paper's Figs. 2-6
content (classification per structure × benchmark × setup) and writes
text renderings plus machine-readable JSON.

``python -m repro.tools stats`` dumps the golden runtime statistics
behind the paper's remark explanations.

``python -m repro.tools campaign`` runs one (setup, benchmark,
structure) cell — serial or parallel — with optional JSONL event
capture (``--events``) and log persistence (``--logs``), and prints the
classification plus the telemetry summary.

``python -m repro.tools obs summarize events.jsonl`` renders a captured
event stream as a campaign report (``--follow`` tails a stream a
campaign is still writing); ``obs serve`` exposes a running study
directory over HTTP (/status JSON, /events NDJSON, a dashboard) and
``obs report`` renders it as a self-contained HTML file (see
docs/observability.md).

``python -m repro.tools sched run | resume | status | merge`` drives
full studies through the durable campaign scheduler (``repro.sched``):
journaled kill-and-resume, bounded retries with backoff, poison-unit
quarantine, and deterministic ``--shard i/n`` splitting across hosts
(see docs/scheduler.md).

``python -m repro.tools svc serve`` runs the campaign service — HTTP
study submission, weighted-fair multiplexing of many studies onto one
worker fleet, per-tenant quotas, durable kill-and-restart resume —
and ``svc submit | list | status | cancel`` are its thin HTTP clients.
``svc worker`` joins a remote worker agent to a running service
(fenced leases, heartbeats, content-addressed golden blobs) and
``svc gc`` applies per-tenant result retention.  All svc endpoints can
be guarded with a shared bearer token (``--token`` / ``SVC_TOKEN``).
Remote results are attested — ingest validation, determinism
challenges (``--challenge``) and sampled re-execution audits
(``--audit-fraction``) — and ``svc fleet`` prints the per-worker
trust scorecards.  (See docs/service.md and docs/robustness.md.)

``python -m repro.tools fsck PATH`` checks a study directory or a
whole service root offline — journal replay, repository set_id
uniqueness, record/golden/blob digests — and ``--repair`` truncates
torn tails (see docs/robustness.md).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.core.ioutil import atomic_write_text
from repro.core.report import SETUPS, golden_stats, run_figure

FIGURE_STRUCTURES = {
    "fig2": "int_rf",
    "fig3": "l1d",
    "fig4": "l1i",
    "fig5": "l2",
    "fig6": "lsq",
}


def _cmd_figures(args) -> int:
    outdir = Path(args.out)
    outdir.mkdir(parents=True, exist_ok=True)
    structures = args.structures or list(FIGURE_STRUCTURES.values())
    benchmarks = args.benchmarks or None
    for structure in structures:
        fig_name = next((k for k, v in FIGURE_STRUCTURES.items()
                         if v == structure), structure)
        t0 = time.time()

        def progress(bench, setup, result, _t0=t0, _s=structure):
            print(f"[{time.time() - _t0:7.1f}s] {_s:7s} {bench:7s} "
                  f"{setup:10s} vuln={100 * result.vulnerability():5.1f}% "
                  f"early={result.early_stops}/{result.injections}",
                  flush=True)

        events_path = (outdir / f"{fig_name}_{structure}.events.jsonl"
                       if args.events else None)
        fig = run_figure(structure, benchmarks=benchmarks,
                         injections=args.injections, seed=args.seed,
                         progress=progress, events_path=events_path)
        text = fig.render()
        atomic_write_text(outdir / f"{fig_name}_{structure}.txt", text)
        rows = fig.summary_rows()
        atomic_write_text(outdir / f"{fig_name}_{structure}.json",
                          json.dumps(rows, indent=1))
        print(text, flush=True)
    return 0


def _cmd_campaign(args) -> int:
    from repro.core.campaign import run_campaign
    from repro.core.parallel import run_campaign_parallel
    from repro.obs import JSONLSink, NullSink, Tracer

    sink = JSONLSink(args.events) if args.events else NullSink()
    tracer = Tracer(sink)
    try:
        kwargs = dict(injections=args.injections, seed=args.seed,
                      fault_type=args.fault_type,
                      early_stop=not args.no_early_stop,
                      logs_path=args.logs, tracer=tracer,
                      timeout_s=args.timeout_s, guard=args.guard,
                      prune=args.prune, trace_cache=args.trace_cache,
                      audit=args.audit)
        if args.workers > 0:
            result = run_campaign_parallel(args.setup, args.benchmark,
                                           args.structure,
                                           workers=args.workers, **kwargs)
        else:
            result = run_campaign(args.setup, args.benchmark,
                                  args.structure, **kwargs)
        counts = result.classify()
        if args.json:
            payload = {
                "setup": args.setup,
                "benchmark": args.benchmark,
                "structure": args.structure,
                "fault_type": args.fault_type,
                "seed": args.seed,
                "injections": result.injections,
                "counts": counts,
                "vulnerability": result.vulnerability(),
                "early_stops": result.early_stops,
                "prune": result.prune,
                "telemetry": result.telemetry.to_dict(),
            }
            print(json.dumps(payload, indent=1))
            return 0
        print(f"{args.setup} / {args.benchmark} / {args.structure} — "
              f"{result.injections} injections "
              f"({args.fault_type}, seed {args.seed})")
        print("  " + "  ".join(f"{k}={v}" for k, v in counts.items()))
        print(f"  vulnerability: {100 * result.vulnerability():.1f}%")
        if result.prune is not None:
            p = result.prune
            print(f"  prune [{p['policy']}]: {p['masked']} masked by "
                  f"analysis + {p['collapsed']} collapsed "
                  f"({p['classes']} classes) -> {p['simulated']} of "
                  f"{p['masks']} simulated  "
                  f"(trace: {p.get('trace_source')})")
            audit = p.get("audit")
            if audit is not None:
                verdict = ("OK" if not audit["divergences"]
                           and audit["pristine_digest_ok"] else "FAILED")
                print(f"  prune audit: {audit['checked']}/"
                      f"{audit['candidates']} re-simulated, "
                      f"{len(audit['divergences'])} divergences, "
                      f"pristine digest "
                      f"{'ok' if audit['pristine_digest_ok'] else 'BAD'}"
                      f"  [{verdict}]")
        print()
        print(result.telemetry.summary())
        if args.events:
            print(f"\nevents written to {args.events} "
                  f"(render with: python -m repro.tools obs summarize "
                  f"{args.events})")
    finally:
        tracer.close()
    return 0


def _cmd_obs_summarize(args) -> int:
    from repro.obs import load_event_dicts, render_report, summarize_events
    if args.follow:
        return _follow_summarize(args)
    try:
        summary = summarize_events(load_event_dicts(args.events))
    except FileNotFoundError:
        print(f"repro.tools obs summarize: no such events file: "
              f"{args.events}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"repro.tools obs summarize: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(summary, indent=1))
    else:
        print(render_report(summary))
    return 0


def _follow_summarize(args) -> int:
    """``obs summarize --follow``: tail the stream, re-render per poll."""
    from repro.obs import JSONLTailer, SummaryAccumulator, render_report
    tailer = JSONLTailer(args.events)
    acc = SummaryAccumulator()
    ended = False
    try:
        while True:
            rows = tailer.poll()
            for row in rows:
                if "name" not in row:
                    continue
                acc.add(row)
                if row["name"] == "study_end":
                    ended = True
            if rows:
                summary = acc.summary()
                if args.json:
                    print(json.dumps(summary, indent=1), flush=True)
                else:
                    print(render_report(summary), flush=True)
                    print("-" * 52, flush=True)
            elif ended:
                return 0          # stream complete and drained
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 130


def _cmd_obs_serve(args) -> int:
    from repro.obs.live import JOURNAL_NAME
    from repro.obs.server import serve_study
    study_dir = Path(args.study_dir)
    if not study_dir.is_dir():
        # A directory that exists but has no journal yet is a queued
        # study (serve it — /status reports state "queued"); a missing
        # directory is a typo.
        print(f"repro.tools obs serve: no journal under {args.study_dir}",
              file=sys.stderr)
        return 2
    waiting = not (study_dir / JOURNAL_NAME).exists()

    def ready(server):
        note = (" — journal not written yet; reporting state "
                "\"queued\" until the scheduler starts" if waiting else "")
        print(f"watching {args.study_dir} — "
              f"http://{server.host}:{server.port}/  "
              f"(/status JSON, /events NDJSON){note}", flush=True)

    try:
        serve_study(args.study_dir, host=args.host, port=args.port,
                    stall_after_s=args.stall_after_s, on_ready=ready)
    except KeyboardInterrupt:
        return 130
    return 0


def _cmd_obs_report(args) -> int:
    from repro.obs.report import report_study
    try:
        text = report_study(args.study_dir, out_path=args.out,
                            title=args.title)
    except FileNotFoundError:
        print(f"repro.tools obs report: no journal under "
              f"{args.study_dir}", file=sys.stderr)
        return 2
    if args.out:
        print(f"wrote {args.out} ({len(text.encode())} bytes, "
              f"self-contained)")
    else:
        print(text)
    return 0


def _stat_distributions(rows: dict) -> dict:
    """Aggregate each numeric stat across cells into p50/p90/p99."""
    from repro.obs import Histogram
    hists: dict[str, Histogram] = {}
    for s in rows.values():
        for name, value in s.items():
            if isinstance(value, (int, float)):
                hists.setdefault(name, Histogram()).observe(float(value))
    return {name: hist.summary() for name, hist in sorted(hists.items())}


def _cmd_stats(args) -> int:
    stats = golden_stats(benchmarks=args.benchmarks or None)
    rows = {f"{bench}/{setup}": s for (bench, setup), s in stats.items()}
    payload = dict(rows)
    payload["_distributions"] = _stat_distributions(rows)
    out = json.dumps(payload, indent=1)
    if args.out:
        atomic_write_text(args.out, out)
    if args.json or not sys.stdout.isatty():
        print(out)
    else:
        for cell, s in rows.items():
            pairs = "  ".join(f"{k}={v}" for k, v in sorted(s.items()))
            print(f"{cell:24s} {pairs}")
        print("across cells:")
        for name, dist in payload["_distributions"].items():
            print(f"  {name:20s} p50={dist['p50']:.0f} "
                  f"p90={dist['p90']:.0f} p99={dist['p99']:.0f}")
    return 0


def _parse_shard(text):
    try:
        index, count = text.split("/")
        return int(index), int(count)
    except Exception:
        raise argparse.ArgumentTypeError(
            f"--shard wants i/n (e.g. 0/2), got {text!r}")


def _spec_from_args(args):
    from repro.sched import StudySpec
    return StudySpec(
        setups=tuple(args.setups), benchmarks=tuple(args.benchmarks),
        structures=tuple(args.structures),
        fault_types=tuple(args.fault_types),
        injections=args.injections, confidence=args.confidence,
        error_margin=args.error_margin, seed=args.seed,
        early_stop=not args.no_early_stop,
        timeout_s=args.timeout_s, guard=args.guard, prune=args.prune)


def _sched_knobs(args) -> dict:
    return dict(workers=args.workers, unit_timeout_s=args.unit_timeout_s,
                max_retries=args.retries, backoff_s=args.backoff_s,
                fsync=not args.no_fsync, heartbeat_s=args.heartbeat_s)


def _print_study_result(result, as_json: bool) -> int:
    from repro.core.parser import vulnerability
    from repro.sched import DONE
    if as_json:
        print(json.dumps({
            "ok": result.ok,
            "interrupted": result.interrupted,
            "wall_s": result.wall_s,
            "units": result.classifications(),
            "totals": result.totals(),
            "quarantined": result.quarantined(),
        }, indent=1))
    else:
        for uid, cell in sorted(result.cells.items()):
            if cell.state == DONE:
                vuln = 100 * vulnerability(cell.counts)
                print(f"  {uid:44s} done  {cell.injections:4d} inj  "
                      f"vuln {vuln:5.1f}%  (attempt {cell.attempts})")
            else:
                print(f"  {uid:44s} {cell.state}  ({cell.error})")
        totals = result.totals()
        if totals:
            print("  totals: " + "  ".join(f"{k}={v}"
                                           for k, v in totals.items())
                  + f"  vuln {100 * vulnerability(totals):.1f}%")
        if result.interrupted:
            print("  study interrupted — resume with: "
                  "python -m repro.tools sched resume <dir>")
        elif result.quarantined():
            print(f"  quarantined: {', '.join(result.quarantined())}")
    if result.interrupted:
        return 130
    return 0 if result.ok else 3


def _run_scheduler(sched, resume: bool, as_json: bool) -> int:
    import signal

    def on_term(signum, frame):
        sched.cancel()

    previous = None
    try:
        previous = signal.signal(signal.SIGTERM, on_term)
    except ValueError:
        pass                        # not the main thread; no handler
    try:
        result = sched.run(resume=resume)
    finally:
        if previous is not None:
            signal.signal(signal.SIGTERM, previous)
    return _print_study_result(result, as_json)


def _cmd_sched_run(args) -> int:
    from repro.sched import CampaignPlan, Scheduler
    plan = CampaignPlan.from_spec(_spec_from_args(args))
    if args.shard is not None:
        plan = plan.shard(*args.shard)
    if not args.json:
        shard = (f" (shard {args.shard[0]}/{args.shard[1]})"
                 if args.shard else "")
        print(f"study: {len(plan)} units{shard} -> {args.out}")
    sched = Scheduler(plan, args.out, **_sched_knobs(args))
    return _run_scheduler(sched, resume=False, as_json=args.json)


def _cmd_sched_resume(args) -> int:
    from repro.sched import Scheduler
    try:
        sched = Scheduler.resume(args.study_dir, **_sched_knobs(args))
    except FileNotFoundError:
        print(f"repro.tools sched resume: no journal under "
              f"{args.study_dir}", file=sys.stderr)
        return 2
    return _run_scheduler(sched, resume=True, as_json=args.json)


def _fmt_eta(eta_s) -> str:
    if eta_s is None:
        return "-"
    if eta_s >= 90:
        return f"{eta_s / 60:.1f}m"
    return f"{eta_s:.0f}s"


def _print_sched_status(status: dict) -> None:
    shard = (f" shard {status['shard'][0]}/{status['shard'][1]}"
             if status["shard"] else "")
    print(f"study {status['study_dir']}  spec {status['spec_hash']}{shard}")
    tally = status["tally"]
    print("  " + "  ".join(f"{k}={v}" for k, v in tally.items())
          + f"  injections_done={status['injections_done']}")
    prog = status["progress"]
    planned = prog["planned_injections"]
    line = (f"  rate {prog['injections_per_sec']:.1f}/s  "
            f"eta {_fmt_eta(prog['eta_s'])}  "
            f"converged {prog['converged_cells']}/{status['units']} cells")
    if planned:
        line += f"  planned {planned}"
    print(line)
    if status["stalled"]:
        print(f"  STALLED: {', '.join(status['stalled'])}")
    for cell in status["cells"]:
        conv = cell["convergence"]
        flag = "converged" if conv["converged"] else (
            "" if conv["n"] == 0 else f"±{100 * conv['margin']:.1f}%")
        extra = "  STALLED" if cell["stalled"] else ""
        print(f"  {cell['unit']:44s} {cell['state']:11s} "
              f"attempts={cell['attempts']} inj={cell['injections']:4d} "
              f"{flag}{extra}")


def _cmd_sched_status(args) -> int:
    from repro.obs.live import load_study_view
    try:
        view = load_study_view(args.study_dir,
                               stall_after_s=args.stall_after_s)
    except FileNotFoundError:
        print(f"repro.tools sched status: no journal under "
              f"{args.study_dir}", file=sys.stderr)
        return 2
    try:
        while True:
            status = view.snapshot()
            if args.json:
                print(json.dumps(status, indent=1), flush=True)
            else:
                _print_sched_status(status)
            if args.watch is None or status["complete"]:
                return 0
            time.sleep(args.watch)
            view.refresh()
            if not args.json:
                print()
    except KeyboardInterrupt:
        return 130


def _cmd_sched_merge(args) -> int:
    from repro.sched import merge_studies
    try:
        merged = merge_studies(args.study_dirs)
    except (FileNotFoundError, ValueError) as exc:
        print(f"repro.tools sched merge: {exc}", file=sys.stderr)
        return 2
    out = json.dumps(merged, indent=1)
    if args.out:
        # Atomic: a partially-written merge JSON would read as a
        # corrupt (or silently truncated) study result downstream.
        atomic_write_text(args.out, out)
    if args.json:
        print(out)
    else:
        print(f"merged {merged['sources']} shard journal(s), spec "
              f"{merged['spec_hash']}: "
              f"{'complete' if merged['complete'] else 'INCOMPLETE'}")
        print("  totals: " + "  ".join(f"{k}={v}" for k, v in
                                       merged["totals"].items()))
        if merged["missing"]:
            print(f"  missing: {', '.join(merged['missing'])}")
        if merged["conflicts"]:
            print(f"  conflicts: {', '.join(merged['conflicts'])}")
        if merged["quarantined"]:
            print(f"  quarantined: {', '.join(merged['quarantined'])}")
    return 0 if merged["complete"] else 3


def _parse_tenant_policy(text):
    """--tenant NAME[:key=value,...] -> (name, TenantPolicy)."""
    name, _, rest = text.partition(":")
    if not name:
        raise argparse.ArgumentTypeError(
            f"--tenant wants NAME[:key=value,...], got {text!r}")
    try:
        return name, _parse_policy_kwargs(rest)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def _parse_policy_kwargs(text):
    """'weight=3,max_queued=64' -> TenantPolicy (empty -> defaults)."""
    from repro.svc import TenantPolicy
    integral = ("max_queued", "max_concurrent", "burst")
    kwargs = {}
    for part in filter(None, (p.strip() for p in text.split(","))):
        key, sep, value = part.partition("=")
        key = key.strip()
        if not sep or key not in ("weight", "rate", "retention_s") \
                + integral:
            raise ValueError(
                f"bad policy entry {part!r}; keys: weight, max_queued, "
                f"max_concurrent, rate, burst, retention_s")
        try:
            kwargs[key] = int(value) if key in integral else float(value)
        except ValueError:
            raise ValueError(f"policy key {key} wants a number, "
                             f"got {value!r}") from None
    return TenantPolicy(**kwargs)


def _svc_token(args) -> str | None:
    """--token wins; falls back to the SVC_TOKEN environment variable."""
    token = getattr(args, "token", None)
    if token is None:
        token = os.environ.get("SVC_TOKEN") or None
    return token


def _cmd_svc_serve(args) -> int:
    import signal

    from repro.svc import CampaignService, ServiceServer
    service = CampaignService(
        args.root, workers=args.workers,
        policies=dict(args.tenant or []),
        default_policy=args.default_policy,
        aging_s=args.aging_s, unit_timeout_s=args.unit_timeout_s,
        max_retries=args.retries, backoff_s=args.backoff_s,
        fsync=not args.no_fsync, heartbeat_s=args.heartbeat_s,
        lease_heartbeat_s=args.lease_heartbeat_s,
        miss_budget=args.miss_budget,
        attest=not args.no_attest, audit_fraction=args.audit_fraction,
        audit_seed=args.audit_seed, challenge=args.challenge,
        reject_limit=args.reject_limit)
    server = ServiceServer(service, host=args.host, port=args.port,
                           token=_svc_token(args))
    terminated = []

    def on_term(signum, frame):
        terminated.append(signum)
        server.stop()

    previous = None
    try:
        previous = signal.signal(signal.SIGTERM, on_term)
    except ValueError:
        pass                        # not the main thread; no handler

    def ready(srv):
        print(f"campaign service over {args.root} — "
              f"http://{srv.host}:{srv.port}/status  "
              f"(POST /studies to submit)", flush=True)

    try:
        server.serve_forever(ready)
    except KeyboardInterrupt:
        terminated.append(signal.SIGINT)
    finally:
        service.close()
        if previous is not None:
            signal.signal(signal.SIGTERM, previous)
    return 130 if terminated else 0


def _svc_http(url: str, method: str, path: str, payload=None,
              timeout_s: float = 30.0, token: str | None = None):
    """One JSON request against a service; returns (status, payload)."""
    import urllib.error
    import urllib.request
    data = json.dumps(payload).encode() if payload is not None else None
    headers = {"Content-Type": "application/json"} if data else {}
    if token is not None:
        headers["Authorization"] = f"Bearer {token}"
    req = urllib.request.Request(
        url.rstrip("/") + path, data=data, method=method, headers=headers)
    try:
        with urllib.request.urlopen(req, timeout=timeout_s) as resp:
            return resp.status, json.loads(resp.read() or b"null")
    except urllib.error.HTTPError as exc:
        try:
            return exc.code, json.loads(exc.read() or b"null")
        except json.JSONDecodeError:
            return exc.code, {"error": f"HTTP {exc.code}"}


_SVC_CONNECT_HINT = ("is `repro.tools svc serve` running there? "
                     "(--url must match its host:port)")


def _cmd_svc_submit(args) -> int:
    import urllib.error
    if args.spec_json is not None:
        raw = args.spec_json
    elif args.spec_file == "-":
        raw = sys.stdin.read()
    else:
        try:
            raw = Path(args.spec_file).read_text()
        except FileNotFoundError:
            print(f"repro.tools svc submit: no such spec file: "
                  f"{args.spec_file}", file=sys.stderr)
            return 2
    try:
        spec = json.loads(raw)
    except json.JSONDecodeError as exc:
        print(f"repro.tools svc submit: spec is not JSON: {exc}",
              file=sys.stderr)
        return 2
    try:
        status, body = _svc_http(args.url, "POST", "/studies",
                                 {"tenant": args.tenant, "spec": spec},
                                 token=_svc_token(args))
    except urllib.error.URLError as exc:
        print(f"repro.tools svc submit: {exc.reason} — "
              f"{_SVC_CONNECT_HINT}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(body, indent=1))
    elif status == 202:
        print(f"accepted: {body['id']} (tenant {body['tenant']}) — "
              f"status at {args.url.rstrip('/')}{body['status_url']}")
    else:
        print(f"repro.tools svc submit: HTTP {status}: "
              f"{body.get('error', body)}", file=sys.stderr)
    if status == 202:
        return 0
    return 3 if status == 429 else 2


def _cmd_svc_list(args) -> int:
    import urllib.error
    try:
        status, body = _svc_http(args.url, "GET", "/studies",
                                 token=_svc_token(args))
    except urllib.error.URLError as exc:
        print(f"repro.tools svc list: {exc.reason} — {_SVC_CONNECT_HINT}",
              file=sys.stderr)
        return 2
    if status != 200:
        print(f"repro.tools svc list: HTTP {status}: {body}",
              file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(body, indent=1))
        return 0
    for row in body["studies"]:
        tally = row.get("tally") or {}
        done = tally.get("done", 0)
        units = row.get("units", tally.get("units", "?"))
        print(f"  {row['id']:<22s} {row['tenant']:12s} "
              f"{row['state']:9s} {done}/{units} units  "
              f"{row.get('injections_done', 0)} injections")
    if not body["studies"]:
        print("  (no studies submitted yet)")
    return 0


def _cmd_svc_status(args) -> int:
    import urllib.error
    path = f"/studies/{args.study_id}/status" if args.study_id \
        else "/status"
    try:
        status, body = _svc_http(args.url, "GET", path,
                                 token=_svc_token(args))
    except urllib.error.URLError as exc:
        print(f"repro.tools svc status: {exc.reason} — "
              f"{_SVC_CONNECT_HINT}", file=sys.stderr)
        return 2
    if status != 200:
        print(f"repro.tools svc status: HTTP {status}: "
              f"{body.get('error', body)}", file=sys.stderr)
        return 2
    print(json.dumps(body, indent=1))
    return 0


def _cmd_svc_cancel(args) -> int:
    import urllib.error
    try:
        status, body = _svc_http(args.url, "POST",
                                 f"/studies/{args.study_id}/cancel",
                                 token=_svc_token(args))
    except urllib.error.URLError as exc:
        print(f"repro.tools svc cancel: {exc.reason} — "
              f"{_SVC_CONNECT_HINT}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(body, indent=1))
    elif status == 200:
        print(f"cancelled {body['id']}: {body['dropped']} queued "
              f"dropped, {body['killed']} leases killed")
    else:
        print(f"repro.tools svc cancel: HTTP {status}: "
              f"{body.get('error', body)}", file=sys.stderr)
    if status == 200:
        return 0
    return 3 if status == 409 else 2


def _cmd_svc_worker(args) -> int:
    import signal

    from repro.svc.remote import WorkerAgent
    agent = WorkerAgent(args.connect, name=args.name,
                        token=_svc_token(args), workers=args.workers,
                        cache_dir=args.cache_dir,
                        scratch_dir=args.scratch_dir,
                        fsync=not args.no_fsync)
    terminated = []

    def on_term(signum, frame):
        terminated.append(signum)
        agent.stop()

    previous = None
    try:
        previous = signal.signal(signal.SIGTERM, on_term)
    except ValueError:
        pass                        # not the main thread; no handler
    print(f"worker {agent.name} -> {agent.url} "
          f"({agent.pool.workers} slots)", flush=True)
    try:
        agent.run()
    except KeyboardInterrupt:
        terminated.append(signal.SIGINT)
    except RuntimeError as exc:     # bad token / rejected registration
        print(f"repro.tools svc worker: {exc}", file=sys.stderr)
        return 2
    finally:
        agent.pool.terminate_all()
        if previous is not None:
            signal.signal(signal.SIGTERM, previous)
    print(f"worker {agent.name}: {agent.completed} completed, "
          f"{agent.discarded} discarded, "
          f"{agent.registrations} registrations", flush=True)
    return 130 if terminated else 0


def _cmd_svc_gc(args) -> int:
    from repro.svc.service import collect_garbage
    report = collect_garbage(args.root,
                             policies=dict(args.tenant or []),
                             default_policy=args.default_policy,
                             dry_run=args.dry_run)
    if args.json:
        print(json.dumps(report, indent=1))
        return 0
    verb = "would purge" if report["dry_run"] else "purged"
    rows = report["candidates"] if report["dry_run"] else report["purged"]
    for row in rows:
        print(f"  {verb} {row['id']:<22s} {row['tenant']:12s} "
              f"{row['state']:9s} age {row['age_s']:.0f}s "
              f"(retention {row['retention_s']:.0f}s)")
    for study_id in report["resweeps"]:
        print(f"  swept {study_id} (journaled by an earlier gc)")
    if not rows and not report["resweeps"]:
        print("  nothing past retention")
    return 0


def _cmd_svc_fleet(args) -> int:
    import urllib.error
    try:
        status, body = _svc_http(args.url, "GET", "/status",
                                 token=_svc_token(args))
    except urllib.error.URLError as exc:
        print(f"repro.tools svc fleet: {exc.reason} — "
              f"{_SVC_CONNECT_HINT}", file=sys.stderr)
        return 2
    if status != 200:
        print(f"repro.tools svc fleet: HTTP {status}: "
              f"{body.get('error', body)}", file=sys.stderr)
        return 2
    attest = body.get("attest")
    if args.json:
        print(json.dumps({"remote": body.get("remote"),
                          "attest": attest}, indent=1))
        return 0
    remote = body.get("remote") or {}
    print(f"remote workers: {remote.get('workers', 0)}  "
          f"active leases: {remote.get('leases', 0)}")
    if attest is None:
        print("  (attestation disabled — service runs with --no-attest)")
        return 0
    print(f"attestation: challenge={'on' if attest['challenge'] else 'off'}"
          f"  audit_fraction={attest['audit_fraction']:g}"
          f"  audit_queue={attest['audit_queue']}")
    print(f"  rejected {attest['rejected']}  "
          f"audits ok/diverged/inconclusive "
          f"{attest['audits_ok']}/{attest['audits_diverged']}/"
          f"{attest['audits_inconclusive']}  "
          f"voided {attest['voided']}  distrusted {attest['distrusted']}")
    workers = attest.get("workers") or {}
    if not workers:
        print("  (no workers have registered yet)")
        return 0
    print(f"  {'worker':<22s} {'state':<17s} {'completes':>9s} "
          f"{'rejects':>7s} {'diverge':>7s} {'misses':>6s}")
    for name, card in workers.items():
        line = (f"  {name:<22s} {card['state']:<17s} "
                f"{card['completes']:>9d} {card['rejects']:>7d} "
                f"{card['divergences']:>7d} {card['misses']:>6d}")
        if card.get("reason"):
            line += f"  ({card['reason']})"
        print(line)
    return 0


def _cmd_fsck(args) -> int:
    from repro.svc.fsck import fsck_path
    try:
        kind, findings = fsck_path(args.path, repair=args.repair)
    except ValueError as exc:
        print(f"repro.tools fsck: {exc}", file=sys.stderr)
        return 2
    unrepaired = [f for f in findings if not f["repaired"]]
    if args.json:
        print(json.dumps({"kind": kind, "findings": findings,
                          "clean": not unrepaired}, indent=1))
        return 0 if not unrepaired else 3
    for f in findings:
        mark = "repaired" if f["repaired"] else "FINDING"
        print(f"{mark}: {f['path']}: {f['check']} — {f['detail']}")
    if unrepaired:
        print(f"fsck({kind}): {len(unrepaired)} finding(s)"
              + ("" if args.repair else " — torn tails are repairable "
                                        "with --repair"))
        return 3
    print(f"fsck({kind}): clean"
          + (f" ({len(findings)} tail(s) repaired)" if findings else ""))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools",
        description="MaFIN/GeFIN differential-study drivers")
    sub = parser.add_subparsers(dest="cmd", required=True)

    p_fig = sub.add_parser("figures", help="regenerate Figs. 2-6 content")
    p_fig.add_argument("--structures", nargs="*",
                       help="structures (default: the five paper figures)")
    p_fig.add_argument("--benchmarks", nargs="*",
                       help="benchmark subset (default: all ten)")
    p_fig.add_argument("--injections", type=int, default=None,
                       help="injections per cell (paper: 2000)")
    p_fig.add_argument("--seed", type=int, default=1)
    p_fig.add_argument("--out", default="results")
    p_fig.add_argument("--events", action="store_true",
                       help="capture per-structure telemetry event "
                            "streams next to the figure outputs")
    p_fig.set_defaults(fn=_cmd_figures)

    p_st = sub.add_parser("stats", help="golden runtime statistics")
    p_st.add_argument("--benchmarks", nargs="*")
    p_st.add_argument("--out", default=None)
    p_st.add_argument("--json", action="store_true",
                      help="print machine-readable JSON instead of a table "
                           "(implied when stdout is not a tty)")
    p_st.set_defaults(fn=_cmd_stats)

    p_camp = sub.add_parser("campaign",
                            help="run one campaign cell with telemetry")
    p_camp.add_argument("setup", help="MaFIN-x86 | GeFIN-x86 | GeFIN-ARM")
    p_camp.add_argument("benchmark")
    p_camp.add_argument("structure")
    p_camp.add_argument("--injections", type=int, default=None)
    p_camp.add_argument("--seed", type=int, default=1,
                        help="mask-generation RNG seed — the same seed "
                             "replays the same fault list (default: 1)")
    p_camp.add_argument("--fault-type", default="transient",
                        choices=["transient", "intermittent", "permanent"])
    p_camp.add_argument("--workers", type=int, default=0,
                        help="process-pool size (0 = serial)")
    p_camp.add_argument("--timeout-s", type=float, default=None,
                        help="per-injection wall-clock budget in seconds; "
                             "runs past it classify as Timeout (default: "
                             "no limit)")
    p_camp.add_argument("--guard", choices=["off", "basic", "strict"],
                        default="off",
                        help="hardening policy: invariant checks, crash "
                             "containment, restore integrity "
                             "(docs/robustness.md)")
    p_camp.add_argument("--no-early-stop", action="store_true")
    p_camp.add_argument("--prune", choices=["off", "analyze", "collapse"],
                        default="off",
                        help="golden-trace pre-classification: 'analyze' "
                             "marks provably-Masked masks without "
                             "simulation; 'collapse' also simulates one "
                             "representative per fault-equivalence class "
                             "(docs/performance.md)")
    p_camp.add_argument("--trace-cache", default=None, metavar="DIR",
                        help="directory caching the golden access trace "
                             "per (setup, benchmark)")
    p_camp.add_argument("--audit", type=int, default=0, metavar="N",
                        help="really simulate N pruned masks and report "
                             "classification divergences (prune "
                             "soundness check)")
    p_camp.add_argument("--json", action="store_true",
                        help="machine-readable result (counts, prune "
                             "stats, telemetry) instead of text")
    p_camp.add_argument("--events", default=None,
                        help="capture the event stream to this JSONL file")
    p_camp.add_argument("--logs", default=None,
                        help="persist golden + records to this JSONL file")
    p_camp.set_defaults(fn=_cmd_campaign)

    p_obs = sub.add_parser("obs", help="telemetry utilities")
    obs_sub = p_obs.add_subparsers(dest="obs_cmd", required=True)
    p_sum = obs_sub.add_parser(
        "summarize", help="render a JSONL event stream as a report")
    p_sum.add_argument("events", help="events file from a JSONL sink")
    p_sum.add_argument("--json", action="store_true",
                       help="machine-readable summary instead of text")
    p_sum.add_argument("--follow", action="store_true",
                       help="keep tailing the stream, re-rendering as "
                            "events arrive; exits after study_end")
    p_sum.add_argument("--interval", type=float, default=2.0,
                       help="--follow poll interval in seconds "
                            "(default: 2)")
    p_sum.set_defaults(fn=_cmd_obs_summarize)

    p_srv = obs_sub.add_parser(
        "serve", help="HTTP status server over a running study directory")
    p_srv.add_argument("--study-dir", required=True,
                       help="study directory (another process may still "
                            "be writing it)")
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port", type=int, default=8436,
                       help="TCP port (0 = pick a free one; default: 8436)")
    p_srv.add_argument("--stall-after-s", type=float, default=120.0,
                       help="flag a leased unit as stalled after this "
                            "many seconds without log growth")
    p_srv.set_defaults(fn=_cmd_obs_serve)

    p_rep = obs_sub.add_parser(
        "report", help="self-contained HTML report from a study directory")
    p_rep.add_argument("--study-dir", required=True)
    p_rep.add_argument("--out", default=None,
                       help="write the HTML here (default: print to "
                            "stdout)")
    p_rep.add_argument("--title", default=None,
                       help="report title (default: the study directory)")
    p_rep.set_defaults(fn=_cmd_obs_report)

    p_sched = sub.add_parser(
        "sched", help="durable study scheduler (journal, resume, shards)")
    sched_sub = p_sched.add_subparsers(dest="sched_cmd", required=True)

    def add_knobs(p):
        p.add_argument("--workers", type=int, default=2,
                       help="concurrent unit leases (default: 2)")
        p.add_argument("--unit-timeout-s", type=float, default=None,
                       help="kill a unit's worker after this many seconds "
                            "and count the attempt as failed")
        p.add_argument("--retries", type=int, default=2,
                       help="failed attempts before quarantine (default: 2)")
        p.add_argument("--backoff-s", type=float, default=0.5,
                       help="base retry delay, doubled per attempt")
        p.add_argument("--no-fsync", action="store_true",
                       help="skip fsync on journal/log appends (faster, "
                            "loses crash durability)")
        p.add_argument("--heartbeat-s", type=float, default=None,
                       help="emit a scheduler heartbeat event at this "
                            "interval (needs event tracing; lets "
                            "observers tell a slow unit from a dead "
                            "scheduler)")
        p.add_argument("--json", action="store_true",
                       help="machine-readable result instead of text")

    p_run = sched_sub.add_parser(
        "run", help="expand a study spec and run it to completion")
    p_run.add_argument("--out", required=True,
                       help="study directory (journal, events, logs, masks)")
    p_run.add_argument("--setups", nargs="+",
                       default=["MaFIN-x86", "GeFIN-x86"])
    p_run.add_argument("--benchmarks", nargs="+", required=True)
    p_run.add_argument("--structures", nargs="+", required=True)
    p_run.add_argument("--fault-types", nargs="+", default=["transient"],
                       choices=["transient", "intermittent", "permanent"])
    p_run.add_argument("--injections", type=int, default=None,
                       help="injections per cell (default: the §III.C "
                            "statistical sample size)")
    p_run.add_argument("--confidence", type=float, default=0.99)
    p_run.add_argument("--error-margin", type=float, default=0.03)
    p_run.add_argument("--seed", type=int, default=1,
                       help="study seed; each unit derives its own "
                            "mask-generation seed from it")
    p_run.add_argument("--timeout-s", type=float, default=None,
                       help="per-injection wall-clock budget (see "
                            "campaign --timeout-s)")
    p_run.add_argument("--guard", choices=["off", "basic", "strict"],
                       default="off",
                       help="hardening policy applied in every unit "
                            "worker (docs/robustness.md)")
    p_run.add_argument("--no-early-stop", action="store_true")
    p_run.add_argument("--prune", choices=["off", "analyze", "collapse"],
                       default="off",
                       help="golden-trace pre-classification in every "
                            "unit worker (see campaign --prune)")
    p_run.add_argument("--shard", type=_parse_shard, default=None,
                       metavar="I/N",
                       help="run only this host's deterministic 1/N "
                            "slice of the unit grid")
    add_knobs(p_run)
    p_run.set_defaults(fn=_cmd_sched_run)

    p_res = sched_sub.add_parser(
        "resume", help="continue an interrupted study from its journal")
    p_res.add_argument("study_dir")
    add_knobs(p_res)
    p_res.set_defaults(fn=_cmd_sched_resume)

    p_stat = sched_sub.add_parser(
        "status", help="report per-unit progress from a study journal")
    p_stat.add_argument("study_dir")
    p_stat.add_argument("--json", action="store_true",
                        help="machine-readable status instead of text")
    p_stat.add_argument("--watch", type=float, default=None, metavar="N",
                        help="re-poll and re-print every N seconds; "
                             "exits when the study completes")
    p_stat.add_argument("--stall-after-s", type=float, default=120.0,
                        help="flag a leased unit as stalled after this "
                             "many seconds without log growth")
    p_stat.set_defaults(fn=_cmd_sched_status)

    p_mrg = sched_sub.add_parser(
        "merge", help="combine shard study dirs into one result")
    p_mrg.add_argument("study_dirs", nargs="+")
    p_mrg.add_argument("--out", default=None,
                       help="also write the merged JSON to this file")
    p_mrg.add_argument("--json", action="store_true",
                       help="print the merged JSON to stdout")
    p_mrg.set_defaults(fn=_cmd_sched_merge)

    p_svc = sub.add_parser(
        "svc", help="campaign service (HTTP submission, fair queueing)")
    svc_sub = p_svc.add_subparsers(dest="svc_cmd", required=True)

    p_serve = svc_sub.add_parser(
        "serve", help="run the campaign service over a root directory")
    p_serve.add_argument("--root", required=True,
                         help="service root (service journal + one "
                              "study directory per submission)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8437,
                         help="TCP port (0 = pick a free one; "
                              "default: 8437)")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="shared worker-fleet size (default: 2)")
    p_serve.add_argument("--tenant", action="append", default=[],
                         type=_parse_tenant_policy, metavar="NAME[:K=V,..]",
                         help="per-tenant policy, repeatable — e.g. "
                              "'alice:weight=3,max_queued=64,"
                              "max_concurrent=2,rate=1,burst=5'")
    p_serve.add_argument("--default-policy", default=None,
                         type=_parse_policy_kwargs, metavar="K=V,..",
                         help="policy for tenants without a --tenant "
                              "entry (same keys)")
    p_serve.add_argument("--aging-s", type=float, default=60.0,
                         help="dispatch any unit queued longer than this "
                              "ahead of the fair rotation (default: 60)")
    p_serve.add_argument("--unit-timeout-s", type=float, default=None,
                         help="kill a unit's worker after this many "
                              "seconds and count the attempt as failed")
    p_serve.add_argument("--retries", type=int, default=2,
                         help="failed attempts before quarantine "
                              "(default: 2)")
    p_serve.add_argument("--backoff-s", type=float, default=0.5,
                         help="base retry delay, doubled per attempt")
    p_serve.add_argument("--no-fsync", action="store_true",
                         help="skip fsync on journal appends (faster, "
                              "loses crash durability)")
    p_serve.add_argument("--heartbeat-s", type=float, default=5.0,
                         help="svc_heartbeat event interval in seconds "
                              "(default: 5)")
    p_serve.add_argument("--lease-heartbeat-s", type=float, default=5.0,
                         help="remote-worker heartbeat cadence "
                              "(default: 5)")
    p_serve.add_argument("--miss-budget", type=int, default=3,
                         help="missed heartbeats before a remote "
                              "worker's leases are revoked (default: 3)")
    p_serve.add_argument("--token", default=None,
                         help="require this bearer token on every "
                              "endpoint (default: $SVC_TOKEN, else "
                              "no auth)")
    p_serve.add_argument("--no-attest", action="store_true",
                         help="trust remote completes verbatim (skip "
                              "ingest validation, audits, challenges)")
    p_serve.add_argument("--audit-fraction", type=float, default=0.0,
                         help="re-execute this fraction of remote "
                              "completions locally and diff the records "
                              "byte-for-byte (default: 0)")
    p_serve.add_argument("--audit-seed", type=int, default=0,
                         help="seed for the audit sampling RNG "
                              "(default: 0)")
    p_serve.add_argument("--challenge", action="store_true",
                         help="require a determinism challenge (canned "
                              "unit, byte-identical records) before a "
                              "worker may hold leases")
    p_serve.add_argument("--reject-limit", type=int, default=3,
                         help="rejected completes before a worker is "
                              "distrusted outright (default: 3)")
    p_serve.set_defaults(fn=_cmd_svc_serve)

    def add_svc_client(p):
        p.add_argument("--url", default="http://127.0.0.1:8437",
                       help="service base URL (default: "
                            "http://127.0.0.1:8437)")
        p.add_argument("--json", action="store_true",
                       help="machine-readable response instead of text")
        p.add_argument("--token", default=None,
                       help="bearer token for an authenticated service "
                            "(default: $SVC_TOKEN)")

    p_sub2 = svc_sub.add_parser(
        "submit", help="submit a study spec to a running service")
    p_sub2.add_argument("--tenant", default="default")
    spec_src = p_sub2.add_mutually_exclusive_group(required=True)
    spec_src.add_argument("--spec-file", default=None,
                          help="JSON StudySpec file ('-' for stdin)")
    spec_src.add_argument("--spec-json", default=None,
                          help="inline JSON StudySpec")
    add_svc_client(p_sub2)
    p_sub2.set_defaults(fn=_cmd_svc_submit)

    p_list = svc_sub.add_parser("list", help="list submitted studies")
    add_svc_client(p_list)
    p_list.set_defaults(fn=_cmd_svc_list)

    p_sstat = svc_sub.add_parser(
        "status", help="service snapshot, or one study's status")
    p_sstat.add_argument("study_id", nargs="?", default=None)
    add_svc_client(p_sstat)
    p_sstat.set_defaults(fn=_cmd_svc_status)

    p_cxl = svc_sub.add_parser("cancel", help="cancel a study")
    p_cxl.add_argument("study_id")
    add_svc_client(p_cxl)
    p_cxl.set_defaults(fn=_cmd_svc_cancel)

    p_wkr = svc_sub.add_parser(
        "worker", help="join this machine to a campaign service as a "
                       "remote worker")
    p_wkr.add_argument("--connect", required=True, metavar="URL",
                       help="service base URL, e.g. "
                            "http://svc-host:8437")
    p_wkr.add_argument("--name", default=None,
                       help="worker name (default: <host>-<pid>)")
    p_wkr.add_argument("--workers", type=int, default=2,
                       help="local unit slots (default: 2)")
    p_wkr.add_argument("--cache-dir", default=None,
                       help="golden-blob cache directory (default: "
                            "under the scratch dir)")
    p_wkr.add_argument("--scratch-dir", default=None,
                       help="where unit files are staged before "
                            "shipping (default: .repro-worker-<name>)")
    p_wkr.add_argument("--no-fsync", action="store_true",
                       help="skip fsync on scratch unit files")
    p_wkr.add_argument("--token", default=None,
                       help="bearer token for an authenticated service "
                            "(default: $SVC_TOKEN)")
    p_wkr.set_defaults(fn=_cmd_svc_worker)

    p_gc = svc_sub.add_parser(
        "gc", help="delete terminal study dirs past tenant retention")
    p_gc.add_argument("--root", required=True,
                      help="service root to sweep")
    p_gc.add_argument("--tenant", action="append", default=[],
                      type=_parse_tenant_policy, metavar="NAME[:K=V,..]",
                      help="per-tenant policy incl. retention_s, "
                           "repeatable — e.g. 'alice:retention_s=86400'")
    p_gc.add_argument("--default-policy", default=None,
                      type=_parse_policy_kwargs, metavar="K=V,..",
                      help="policy for tenants without a --tenant entry")
    p_gc.add_argument("--dry-run", action="store_true",
                      help="report what would be purged, delete nothing")
    p_gc.add_argument("--json", action="store_true",
                      help="machine-readable report")
    p_gc.set_defaults(fn=_cmd_svc_gc)

    p_fleet = svc_sub.add_parser(
        "fleet", help="per-worker trust scorecards and audit state")
    add_svc_client(p_fleet)
    p_fleet.set_defaults(fn=_cmd_svc_fleet)

    p_fsck = sub.add_parser(
        "fsck", help="offline integrity check of a study directory or "
                     "service root")
    p_fsck.add_argument("path",
                        help="study directory (journal.jsonl) or "
                             "service root (service.jsonl)")
    p_fsck.add_argument("--repair", action="store_true",
                        help="truncate torn (crash-interrupted) final "
                             "lines — the only mutation fsck makes")
    p_fsck.add_argument("--json", action="store_true",
                        help="machine-readable findings")
    p_fsck.set_defaults(fn=_cmd_fsck)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
