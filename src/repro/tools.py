"""Command-line entry points.

``python -m repro.tools figures`` regenerates the paper's Figs. 2-6
content (classification per structure × benchmark × setup) and writes
text renderings plus machine-readable JSON.

``python -m repro.tools stats`` dumps the golden runtime statistics
behind the paper's remark explanations.

``python -m repro.tools campaign`` runs one (setup, benchmark,
structure) cell — serial or parallel — with optional JSONL event
capture (``--events``) and log persistence (``--logs``), and prints the
classification plus the telemetry summary.

``python -m repro.tools obs summarize events.jsonl`` renders a captured
event stream as a campaign report (see docs/observability.md).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.core.report import SETUPS, golden_stats, run_figure

FIGURE_STRUCTURES = {
    "fig2": "int_rf",
    "fig3": "l1d",
    "fig4": "l1i",
    "fig5": "l2",
    "fig6": "lsq",
}


def _cmd_figures(args) -> int:
    outdir = Path(args.out)
    outdir.mkdir(parents=True, exist_ok=True)
    structures = args.structures or list(FIGURE_STRUCTURES.values())
    benchmarks = args.benchmarks or None
    for structure in structures:
        fig_name = next((k for k, v in FIGURE_STRUCTURES.items()
                         if v == structure), structure)
        t0 = time.time()

        def progress(bench, setup, result, _t0=t0, _s=structure):
            print(f"[{time.time() - _t0:7.1f}s] {_s:7s} {bench:7s} "
                  f"{setup:10s} vuln={100 * result.vulnerability():5.1f}% "
                  f"early={result.early_stops}/{result.injections}",
                  flush=True)

        events_path = (outdir / f"{fig_name}_{structure}.events.jsonl"
                       if args.events else None)
        fig = run_figure(structure, benchmarks=benchmarks,
                         injections=args.injections, seed=args.seed,
                         progress=progress, events_path=events_path)
        text = fig.render()
        (outdir / f"{fig_name}_{structure}.txt").write_text(text)
        rows = fig.summary_rows()
        (outdir / f"{fig_name}_{structure}.json").write_text(
            json.dumps(rows, indent=1))
        print(text, flush=True)
    return 0


def _cmd_campaign(args) -> int:
    from repro.core.campaign import run_campaign
    from repro.core.parallel import run_campaign_parallel
    from repro.obs import JSONLSink, NullSink, Tracer

    sink = JSONLSink(args.events) if args.events else NullSink()
    tracer = Tracer(sink)
    try:
        kwargs = dict(injections=args.injections, seed=args.seed,
                      fault_type=args.fault_type,
                      early_stop=not args.no_early_stop,
                      logs_path=args.logs, tracer=tracer)
        if args.workers > 0:
            result = run_campaign_parallel(args.setup, args.benchmark,
                                           args.structure,
                                           workers=args.workers, **kwargs)
        else:
            result = run_campaign(args.setup, args.benchmark,
                                  args.structure, **kwargs)
        counts = result.classify()
        print(f"{args.setup} / {args.benchmark} / {args.structure} — "
              f"{result.injections} injections "
              f"({args.fault_type}, seed {args.seed})")
        print("  " + "  ".join(f"{k}={v}" for k, v in counts.items()))
        print(f"  vulnerability: {100 * result.vulnerability():.1f}%")
        print()
        print(result.telemetry.summary())
        if args.events:
            print(f"\nevents written to {args.events} "
                  f"(render with: python -m repro.tools obs summarize "
                  f"{args.events})")
    finally:
        tracer.close()
    return 0


def _cmd_obs_summarize(args) -> int:
    from repro.obs import load_event_dicts, render_report, summarize_events
    try:
        summary = summarize_events(load_event_dicts(args.events))
    except FileNotFoundError:
        print(f"repro.tools obs summarize: no such events file: "
              f"{args.events}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"repro.tools obs summarize: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(summary, indent=1))
    else:
        print(render_report(summary))
    return 0


def _cmd_stats(args) -> int:
    stats = golden_stats(benchmarks=args.benchmarks or None)
    rows = {f"{bench}/{setup}": s for (bench, setup), s in stats.items()}
    out = json.dumps(rows, indent=1)
    if args.out:
        Path(args.out).write_text(out)
    print(out)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools",
        description="MaFIN/GeFIN differential-study drivers")
    sub = parser.add_subparsers(dest="cmd", required=True)

    p_fig = sub.add_parser("figures", help="regenerate Figs. 2-6 content")
    p_fig.add_argument("--structures", nargs="*",
                       help="structures (default: the five paper figures)")
    p_fig.add_argument("--benchmarks", nargs="*",
                       help="benchmark subset (default: all ten)")
    p_fig.add_argument("--injections", type=int, default=None,
                       help="injections per cell (paper: 2000)")
    p_fig.add_argument("--seed", type=int, default=1)
    p_fig.add_argument("--out", default="results")
    p_fig.add_argument("--events", action="store_true",
                       help="capture per-structure telemetry event "
                            "streams next to the figure outputs")
    p_fig.set_defaults(fn=_cmd_figures)

    p_st = sub.add_parser("stats", help="golden runtime statistics")
    p_st.add_argument("--benchmarks", nargs="*")
    p_st.add_argument("--out", default=None)
    p_st.set_defaults(fn=_cmd_stats)

    p_camp = sub.add_parser("campaign",
                            help="run one campaign cell with telemetry")
    p_camp.add_argument("setup", help="MaFIN-x86 | GeFIN-x86 | GeFIN-ARM")
    p_camp.add_argument("benchmark")
    p_camp.add_argument("structure")
    p_camp.add_argument("--injections", type=int, default=None)
    p_camp.add_argument("--seed", type=int, default=1)
    p_camp.add_argument("--fault-type", default="transient",
                        choices=["transient", "intermittent", "permanent"])
    p_camp.add_argument("--workers", type=int, default=0,
                        help="process-pool size (0 = serial)")
    p_camp.add_argument("--no-early-stop", action="store_true")
    p_camp.add_argument("--events", default=None,
                        help="capture the event stream to this JSONL file")
    p_camp.add_argument("--logs", default=None,
                        help="persist golden + records to this JSONL file")
    p_camp.set_defaults(fn=_cmd_campaign)

    p_obs = sub.add_parser("obs", help="telemetry utilities")
    obs_sub = p_obs.add_subparsers(dest="obs_cmd", required=True)
    p_sum = obs_sub.add_parser(
        "summarize", help="render a JSONL event stream as a report")
    p_sum.add_argument("events", help="events file from a JSONL sink")
    p_sum.add_argument("--json", action="store_true",
                       help="machine-readable summary instead of text")
    p_sum.set_defaults(fn=_cmd_obs_summarize)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
