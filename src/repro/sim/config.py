"""Simulator configurations — Table II of the paper, plus a scaled set.

``paper_config`` reproduces Table II exactly (sizes, organizations, FU
counts).  ``scaled_config`` keeps every ratio (associativity, line size,
relative capacities, queue sizes) but shrinks the caches so the scaled
MiBench-like workloads exercise the same occupancy/replacement regimes at
tractable simulation cost; DESIGN.md documents this substitution.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class CacheConfig:
    size: int
    assoc: int
    line_size: int = 64

    @property
    def sets(self) -> int:
        return self.size // (self.assoc * self.line_size)


@dataclass(frozen=True)
class BTBConfig:
    entries: int
    assoc: int


@dataclass(frozen=True)
class SimConfig:
    """Complete parameterization of one simulated machine."""

    name: str                      # "marss" or "gem5"
    isa: str                       # "x86" or "arm"
    label: str                     # e.g. "MaFIN-x86", "GeFIN-ARM"

    # Pipeline shape.
    fetch_width: int = 4
    issue_width: int = 4
    commit_width: int = 4
    rob_size: int = 64
    iq_size: int = 32
    lsq_unified: bool = True       # MARSS: one queue holds loads+stores
    lsq_size: int = 32             # unified size, or per-queue when split
    redirect_penalty: int = 5

    # Register files.
    phys_int_regs: int = 256
    phys_fp_regs: int = 256

    # Functional units: (#simple ALU, #complex ALU, #memory ports).
    int_alus: int = 2
    complex_alus: int = 1
    mem_ports: int = 4
    fp_alus: int = 2

    # Memory hierarchy.
    l1i: CacheConfig = CacheConfig(32 * 1024, 4)
    l1d: CacheConfig = CacheConfig(32 * 1024, 4)
    l2: CacheConfig = CacheConfig(1024 * 1024, 16)
    l1_latency: int = 2
    l2_latency: int = 12
    mem_latency: int = 60
    mem_size: int = 1 << 20

    # Front end.
    btb_direct: BTBConfig = BTBConfig(1024, 4)
    btb_indirect: BTBConfig | None = BTBConfig(512, 4)  # MARSS only
    predictor_scheme: str = "pc"   # "pc" (MARSS) | "history" (gem5)
    predictor_local: int = 512
    predictor_global: int = 2048
    ras_entries: int = 16
    itlb_entries: int = 32
    dtlb_entries: int = 32

    # Simulator-identity knobs (the paper's divergence mechanisms).
    mirror_caches: bool = True     # MARSS data arrays mirror memory
    hypervisor: bool = True        # MARSS delegates system work to QEMU
    aggressive_loads: bool = True  # MARSS issues loads before older stores
    dense_asserts: bool = True     # MARSS asserts densely; gem5 crashes
    prefetchers: bool = True       # MaFIN's added L1D/L1I prefetchers
    hypervisor_latency: int = 40   # cycles per hypervisor excursion

    def summary(self) -> dict:
        """Rows mirroring Table II (used by the config-table bench)."""
        lsq = (f"{self.lsq_size} (unified)" if self.lsq_unified
               else f"{self.lsq_size} (load)/ {self.lsq_size} (store)")
        btb = (f"direct {self.btb_direct.entries} ({self.btb_direct.assoc}-"
               f"way)")
        if self.btb_indirect:
            btb += (f" + indirect {self.btb_indirect.entries} "
                    f"({self.btb_indirect.assoc}-way)")
        return {
            "Pipeline": "OoO",
            "Physical register file":
                f"{self.phys_int_regs} int; {self.phys_fp_regs} FP",
            "Issue Queue entries": str(self.iq_size),
            "Load/Store Queue entries": lsq,
            "ROB entries": str(self.rob_size),
            "Functional units":
                f"{self.int_alus} int ALUs; {self.complex_alus} complex; "
                f"{self.mem_ports} mem ports; {self.fp_alus} FP",
            "L1 Instruction Cache":
                f"{self.l1i.size // 1024}KB, {self.l1i.line_size}B line, "
                f"{self.l1i.sets} sets, {self.l1i.assoc}-way, write back",
            "L1 Data Cache":
                f"{self.l1d.size // 1024}KB, {self.l1d.line_size}B line, "
                f"{self.l1d.sets} sets, {self.l1d.assoc}-way, write back",
            "L2 Cache":
                f"{self.l2.size // 1024}KB, {self.l2.line_size}B line, "
                f"{self.l2.sets} sets, {self.l2.assoc}-way, write back",
            "Branch Predictor": f"Tournament ({self.predictor_scheme}-"
                                "indexed)",
            "Branch Target Buffer": btb,
            "RAS": f"{self.ras_entries} entries",
        }


def paper_config(sim: str, isa: str) -> SimConfig:
    """Exact Table II parameters for (simulator, ISA)."""
    if sim == "marss":
        if isa != "x86":
            raise ValueError("MARSS models only the x86 ISA")
        return SimConfig(
            name="marss", isa="x86", label="MaFIN-x86",
            rob_size=64, lsq_unified=True, lsq_size=32,
            phys_int_regs=256, phys_fp_regs=256,
            int_alus=2, complex_alus=1, mem_ports=4, fp_alus=2,
            btb_direct=BTBConfig(1024, 4), btb_indirect=BTBConfig(512, 4),
            predictor_scheme="pc",
            mirror_caches=True, hypervisor=True, aggressive_loads=True,
            dense_asserts=True, prefetchers=True,
        )
    if sim == "gem5":
        if isa == "x86":
            alus, cplx, mem_ports, fps = 6, 2, 4, 4
        elif isa == "arm":
            alus, cplx, mem_ports, fps = 2, 1, 2, 2
        else:
            raise ValueError(f"gem5 config supports x86/arm, not {isa!r}")
        return SimConfig(
            name="gem5", isa=isa, label=f"GeFIN-{isa.upper() if isa == 'arm' else isa}",
            rob_size=40, lsq_unified=False, lsq_size=16,
            phys_int_regs=256, phys_fp_regs=128,
            int_alus=alus, complex_alus=cplx, mem_ports=mem_ports,
            fp_alus=fps,
            btb_direct=BTBConfig(2048, 1), btb_indirect=None,
            predictor_scheme="history",
            mirror_caches=False, hypervisor=False, aggressive_loads=False,
            dense_asserts=False, prefetchers=False,
        )
    raise ValueError(f"unknown simulator {sim!r}")


# Scaled hierarchy: capacities shrink with the workload footprints so
# occupancy, replacement and L1->L2 refill behaviour stay in the same
# regimes as the paper's full-size runs (see DESIGN.md).
_SCALED_L1I = CacheConfig(1024, 4)
_SCALED_L1D = CacheConfig(1024, 4)
_SCALED_L2 = CacheConfig(8 * 1024, 16)


def scaled_config(sim: str, isa: str) -> SimConfig:
    """Table II organization with capacities scaled to the workloads."""
    cfg = paper_config(sim, isa)
    return replace(cfg,
                   l1i=_SCALED_L1I, l1d=_SCALED_L1D, l2=_SCALED_L2,
                   mem_size=1 << 18)


CONFIG_SETUPS = ("MaFIN-x86", "GeFIN-x86", "GeFIN-ARM")


def setup_config(label: str, scaled: bool = True) -> SimConfig:
    """Config by paper label: MaFIN-x86 / GeFIN-x86 / GeFIN-ARM."""
    factory = scaled_config if scaled else paper_config
    if label == "MaFIN-x86":
        return factory("marss", "x86")
    if label == "GeFIN-x86":
        return factory("gem5", "x86")
    if label == "GeFIN-ARM":
        return factory("gem5", "arm")
    raise ValueError(f"unknown setup {label!r}; one of {CONFIG_SETUPS}")
