"""Flat physical memory with a page-permission map.

Both simulators and the functional reference interpreter share this
model.  Addressing is identity-mapped (virtual == physical); the page
table only carries permissions, which is all the fault study needs — the
TLB arrays in the timing simulators cache (page → page, perms) entries so
TLB tag/valid bit flips still cause wrong translations.
"""

from __future__ import annotations

import struct

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT

PERM_R = 1
PERM_W = 2
PERM_X = 4
PERM_KERNEL = 8  # accessible only to kernel-mode accesses


class MemFault(Exception):
    """An architectural memory fault.

    ``kind`` is ``"pf"`` (unmapped page) or ``"gp"`` (permission
    violation).  Caught by the pipelines and delivered to the kernel
    model at commit time.
    """

    def __init__(self, kind: str, addr: int):
        super().__init__(f"{kind} @ {addr:#x}")
        self.kind = kind
        self.addr = addr


class Memory:
    """Byte-addressable memory of ``size`` bytes plus a permission map."""

    def __init__(self, size: int = 1 << 20):
        self.size = size
        self.data = bytearray(size)
        self.perms: dict[int, int] = {}

    # -- mapping ----------------------------------------------------------

    def map_region(self, base: int, length: int, perms: int) -> None:
        """Grant *perms* to every page overlapping [base, base+length)."""
        first = base >> PAGE_SHIFT
        last = (base + length - 1) >> PAGE_SHIFT
        for page in range(first, last + 1):
            self.perms[page] = perms

    def load_program(self, sections) -> None:
        for sec in sections:
            end = sec.base + len(sec.data)
            if end > self.size:
                raise ValueError(f"section at {sec.base:#x} exceeds memory")
            self.data[sec.base:end] = sec.data
            perms = PERM_R
            if sec.writable:
                perms |= PERM_W
            if sec.executable:
                perms |= PERM_X
            self.map_region(sec.base, max(len(sec.data), 1), perms)

    def check(self, addr: int, size: int, want: int, kernel: bool = False):
        """Raise :class:`MemFault` unless the access is permitted."""
        if addr < 0 or addr + size > self.size:
            raise MemFault("pf", addr)
        first = addr >> PAGE_SHIFT
        last = (addr + size - 1) >> PAGE_SHIFT
        for page in range(first, last + 1):
            perms = self.perms.get(page)
            if perms is None:
                raise MemFault("pf", addr)
            if (perms & PERM_KERNEL) and not kernel:
                raise MemFault("gp", addr)
            if not perms & want:
                raise MemFault("gp", addr)

    def page_perms(self, addr: int) -> int:
        """Permission bits for the page containing *addr* (0 if unmapped)."""
        return self.perms.get(addr >> PAGE_SHIFT, 0)

    # -- typed access (checked) -------------------------------------------

    def read(self, addr: int, size: int, kernel: bool = False) -> int:
        self.check(addr, size, PERM_R, kernel)
        if size == 4:
            return struct.unpack_from("<I", self.data, addr)[0]
        if size == 1:
            return self.data[addr]
        if size == 2:
            return struct.unpack_from("<H", self.data, addr)[0]
        raise ValueError(f"bad access size {size}")

    def write(self, addr: int, size: int, value: int,
              kernel: bool = False) -> None:
        self.check(addr, size, PERM_W, kernel)
        if size == 4:
            struct.pack_into("<I", self.data, addr, value & 0xFFFFFFFF)
        elif size == 1:
            self.data[addr] = value & 0xFF
        elif size == 2:
            struct.pack_into("<H", self.data, addr, value & 0xFFFF)
        else:
            raise ValueError(f"bad access size {size}")

    def fetch_window(self, addr: int, length: int) -> bytes:
        self.check(addr, 1, PERM_X)
        end = min(addr + length, self.size)
        return bytes(self.data[addr:end])

    # -- raw line access for the cache models (no permission checks; the
    #    pipelines check permissions at the access, not at the fill) ------

    def read_block(self, addr: int, length: int) -> bytes:
        block = bytes(self.data[addr:addr + length])
        if len(block) < length:
            # Out-of-range physical reads (only reachable through fault-
            # corrupted translations) return zero-fill, like an open bus.
            block += bytes(length - len(block))
        return block

    def write_block(self, addr: int, data: bytes) -> None:
        self.data[addr:addr + len(data)] = data

    # -- snapshot protocol ------------------------------------------------

    def snapshot(self):
        return (bytes(self.data), dict(self.perms))

    def restore(self, state) -> None:
        data, perms = state
        # In-place so the kernel model and caches keep their reference.
        self.data[:] = data
        self.perms.clear()
        self.perms.update(perms)
