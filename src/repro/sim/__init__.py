"""Simulators: flat memory + kernel model, the functional reference,
and the two cycle-level OoO personalities (MARSS-like, gem5-like).
"""
