"""Architectural (functional) reference simulator.

Executes a :class:`~repro.isa.common.Program` instruction-at-a-time with
no timing model.  It is the oracle for the compiler and ISA tests, the
source of golden outputs in unit tests, and a fast way to size workloads.
Both timing simulators must produce byte-identical program output to this
interpreter on fault-free runs (asserted by the integration tests).
"""

from __future__ import annotations

from repro.isa import arm as arm_isa
from repro.isa import x86 as x86_isa
from repro.isa.common import (NUM_ARCH_REGS, REG_FLAGS, ArithFault, Program,
                              alu_exec, cond_holds, u32)
from repro.sim.kernel import Kernel, ProcessExit, ProcessKilled
from repro.sim.memory import MemFault, Memory

_ISA_MODULES = {"x86": x86_isa, "arm": arm_isa}


class FunctionalResult:
    """Outcome of a functional run."""

    def __init__(self, reason, exit_code, output, events, stats):
        self.reason = reason          # "exit" | "killed:<SIG>" | "limit"
        self.exit_code = exit_code
        self.output = output
        self.events = events
        self.stats = stats

    @property
    def ok(self) -> bool:
        return self.reason == "exit" and self.exit_code == 0


class FunctionalSim:
    """Reference interpreter for one program."""

    def __init__(self, program: Program, mem_size: int = 1 << 20,
                 max_write: int = 4096):
        self.program = program
        self.isa = _ISA_MODULES[program.isa]
        self.mem = Memory(mem_size)
        self.mem.load_program(program.sections)
        self.kernel = Kernel(self.mem, program.isa, max_write)
        self.regs = [0] * NUM_ARCH_REGS
        self.regs[x86_isa.SP if program.isa == "x86" else arm_isa.SP] = \
            self.kernel.stack_top
        self.pc = program.entry
        self._decode_cache: dict[int, object] = {}
        self.stats = {"instrs": 0, "uops": 0, "loads": 0, "stores": 0,
                      "branches": 0, "taken": 0, "syscalls": 0}

    # -- kernel accessors: the functional model has no caches ---------------

    def _kread(self, addr: int, size: int) -> int:
        return self.mem.read(addr, size, kernel=True)

    def _kwrite(self, addr: int, size: int, value: int) -> None:
        self.mem.write(addr, size, value, kernel=True)

    def _uread(self, addr: int, size: int) -> int:
        return self.mem.read(addr, size)

    # -- execution -----------------------------------------------------------

    def _decode(self, pc: int):
        instr = self._decode_cache.get(pc)
        if instr is None:
            window = self.mem.fetch_window(pc, self.isa.MAX_ILEN)
            if len(window) < self.isa.MAX_ILEN:
                window = window + bytes(self.isa.MAX_ILEN - len(window))
            instr = self.isa.decode_window(window, pc)
            self._decode_cache[pc] = instr
        return instr

    def step(self) -> None:
        """Execute one architectural instruction."""
        pc = self.pc
        instr = self._decode(pc)
        if instr.mnemonic == "<ud>":
            self.kernel.deliver_fault("ud", pc)
        regs = self.regs
        next_pc = pc + instr.length
        st = self.stats
        st["instrs"] += 1
        for uop in instr.uops:
            st["uops"] += 1
            kind = uop.kind
            if kind == "alu":
                a = None if uop.rs1 is None else regs[uop.rs1]
                b = uop.imm if uop.rs2 is None else regs[uop.rs2]
                try:
                    res = alu_exec(uop.op, a, b,
                                   regs[uop.rd] if uop.rd is not None else 0)
                except ArithFault:
                    self.kernel.deliver_fault("div0", pc)
                    return
                if uop.op == "cmp":
                    regs[REG_FLAGS] = res
                else:
                    regs[uop.rd] = res
            elif kind == "load":
                addr = u32(regs[uop.rs1] + uop.imm)
                if self.kernel.needs_align_fixup(addr, uop.size):
                    self.kernel.deliver_fault("align", pc)
                try:
                    regs[uop.rd] = self.mem.read(addr, uop.size)
                except MemFault as mf:
                    self.kernel.deliver_fault(mf.kind, pc)
                    return
                st["loads"] += 1
            elif kind == "store":
                addr = u32(regs[uop.rs1] + uop.imm)
                if self.kernel.needs_align_fixup(addr, uop.size):
                    self.kernel.deliver_fault("align", pc)
                try:
                    self.mem.write(addr, uop.size, regs[uop.rs2])
                except MemFault as mf:
                    self.kernel.deliver_fault(mf.kind, pc)
                    return
                st["stores"] += 1
            elif kind == "br":
                st["branches"] += 1
                if cond_holds(uop.op, regs[REG_FLAGS]):
                    st["taken"] += 1
                    next_pc = uop.imm
            elif kind == "jmp":
                st["branches"] += 1
                st["taken"] += 1
                next_pc = uop.imm
            elif kind == "ijmp":
                st["branches"] += 1
                st["taken"] += 1
                next_pc = u32(regs[uop.rs1] + uop.imm)
            elif kind == "sys":
                st["syscalls"] += 1
                self.kernel.syscall(regs, self._kread, self._kwrite,
                                    self._uread)
            # "nop": nothing
        self.pc = next_pc

    def run(self, max_instrs: int = 50_000_000) -> FunctionalResult:
        """Run to completion (or the instruction limit)."""
        try:
            while self.stats["instrs"] < max_instrs:
                self.step()
        except ProcessExit as ex:
            return FunctionalResult("exit", ex.code, bytes(self.kernel.output),
                                    list(self.kernel.events), dict(self.stats))
        except ProcessKilled as pk:
            return FunctionalResult(f"killed:{pk.signal}", None,
                                    bytes(self.kernel.output),
                                    list(self.kernel.events), dict(self.stats))
        return FunctionalResult("limit", None, bytes(self.kernel.output),
                                list(self.kernel.events), dict(self.stats))


def run_program(program: Program, **kwargs) -> FunctionalResult:
    """Convenience wrapper: build a :class:`FunctionalSim` and run it."""
    return FunctionalSim(program, **kwargs).run()
