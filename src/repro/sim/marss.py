"""MARSS-like simulator (the substrate of MaFIN).

Personality traits (each one is a divergence mechanism the paper
identifies — see DESIGN.md §4):

* unified 32-entry LSQ in which **both** loads and stores carry data;
* **aggressive load issue**: loads go to the cache before older store
  addresses are known, replaying on memory-order violations, so issued
  loads substantially exceed committed loads (Remark 3);
* a **QEMU hypervisor stand-in**: syscalls and page-table walks access
  memory directly, bypassing the cache data arrays (Remark 3's L1D
  masking; Remark 6 notes the L1I is *not* shielded because QEMU enters
  at decode, after fetch);
* **mirror-mode caches**: the data arrays added to MARSS mirror
  architecturally-current memory, so evictions discard (never write
  back) resident faults;
* PC-indexed tournament predictor, dual BTBs, added L1D/L1I stride
  prefetchers (Table IV "New");
* **dense assertion checking**: corrupted microarchitectural state stops
  the simulation with :class:`~repro.errors.SimAssertError` (Remark 8).
"""

from __future__ import annotations

from repro.errors import SimAssertError
from repro.sim.base import OoOCore
from repro.sim.config import SimConfig, paper_config, scaled_config


class MarssSim(OoOCore):
    """MARSS-flavoured out-of-order x86 machine."""

    def __init__(self, program, config: SimConfig | None = None,
                 scaled: bool = True):
        if config is None:
            config = (scaled_config if scaled else paper_config)(
                "marss", "x86")
        if config.name != "marss":
            raise ValueError(f"MarssSim needs a marss config, got "
                             f"{config.name!r}")
        super().__init__(program, config)

    def check(self, cond: bool, msg: str) -> None:
        if not cond:
            raise SimAssertError(msg)
