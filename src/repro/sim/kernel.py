"""Minimal full-system layer: syscalls, exceptions, kernel state.

The paper's injectors are *full-system*: faults can disturb not only the
user program but also OS activity, and the two simulators differ in how
that activity touches the memory hierarchy (MARSS delegates it to the
QEMU hypervisor which bypasses the modeled caches; gem5 executes it
through them).  This kernel model captures exactly that surface:

* syscalls (``WRITE``/``EXIT``) with Linux-like error behaviour — unknown
  syscall numbers log an ``enosys`` event and continue (a DUE source),
  bad buffers return ``EFAULT``, oversized writes are truncated;
* a checksummed kernel bookkeeping structure updated on every syscall
  through a *kernel memory accessor* supplied by the simulator (direct
  memory for MARSS/hypervisor, through the L1D for gem5) — corruption of
  the structure raises :class:`KernelPanic` (the ``Crash (system)``
  class);
* an exception policy: undefined instruction / page fault / protection /
  divide-by-zero are fatal signals (``Crash (process)``), ARM unaligned
  word accesses are fixed up and logged (another DUE source).
"""

from __future__ import annotations

import struct

from repro.sim.memory import (Memory, MemFault, PAGE_SIZE, PERM_KERNEL,
                              PERM_R, PERM_W)

KMAGIC = 0x4B524E4C  # "KRNL"

SYS_WRITE = 1
SYS_EXIT = 2

EFAULT = 0xFFFFFFF2
ENOSYS = 0xFFFFFFDA

FATAL_FAULTS = {"ud": "SIGILL", "pf": "SIGSEGV", "gp": "SIGSEGV",
                "div0": "SIGFPE"}


class KernelPanic(Exception):
    """The kernel's own state was found corrupted (system crash)."""


class ProcessExit(Exception):
    """The workload called ``EXIT``; carries the exit code."""

    def __init__(self, code: int):
        super().__init__(f"exit({code})")
        self.code = code


class ProcessKilled(Exception):
    """A fatal signal terminated the workload (process crash)."""

    def __init__(self, signal: str, pc: int):
        super().__init__(f"{signal} at pc={pc:#x}")
        self.signal = signal
        self.pc = pc


class Kernel:
    """Kernel/OS state for one simulated run."""

    STACK_PAGES = 16

    def __init__(self, memory: Memory, isa: str, max_write: int = 4096):
        self.mem = memory
        self.isa = isa
        self.max_write = max_write
        self.output = bytearray()
        self.events: list[str] = []
        self.exit_code: int | None = None
        # Layout: one kernel-only page below the stack region.
        self.stack_top = memory.size - 16
        stack_base = memory.size - self.STACK_PAGES * PAGE_SIZE
        self.kdata_base = stack_base - PAGE_SIZE
        memory.map_region(stack_base, self.STACK_PAGES * PAGE_SIZE,
                          PERM_R | PERM_W)
        memory.map_region(self.kdata_base, PAGE_SIZE,
                          PERM_R | PERM_W | PERM_KERNEL)
        self._init_kstruct()

    def _init_kstruct(self) -> None:
        wc, bc = 0, 0
        ck = KMAGIC ^ wc ^ bc
        struct.pack_into("<IIII", self.mem.data, self.kdata_base,
                         KMAGIC, wc, bc, ck)

    # -- syscall dispatch ---------------------------------------------------

    def syscall(self, regs, kread, kwrite, uread) -> None:
        """Execute the syscall selected by ``regs`` (called at commit).

        ``kread``/``kwrite`` access kernel data the way this simulator's
        system model does (hypervisor → raw memory, gem5 → through the
        caches); ``uread`` reads user memory the same way for the
        ``WRITE`` payload.  Return value is placed in ``r0``.
        """
        num = regs[0]
        if num == SYS_WRITE:
            buf, length = regs[1], regs[2]
            if length > self.max_write:
                self.events.append("write-trunc")
                length = self.max_write
            try:
                self.mem.check(buf, max(length, 1), PERM_R)
            except MemFault:
                self.events.append("efault")
                regs[0] = EFAULT
                return
            chunk = bytearray()
            for i in range(length):
                chunk.append(uread(buf + i, 1) & 0xFF)
            self.output += chunk
            self._account_write(length, kread, kwrite)
            regs[0] = length
            return
        if num == SYS_EXIT:
            self.exit_code = regs[1] & 0xFF
            raise ProcessExit(self.exit_code)
        self.events.append("enosys")
        regs[0] = ENOSYS

    def _account_write(self, length: int, kread, kwrite) -> None:
        base = self.kdata_base
        magic = kread(base, 4)
        wc = kread(base + 4, 4)
        bc = kread(base + 8, 4)
        ck = kread(base + 12, 4)
        if magic != KMAGIC or ck != (magic ^ wc ^ bc):
            raise KernelPanic(
                f"kernel bookkeeping corrupted (magic={magic:#x})")
        wc = (wc + 1) & 0xFFFFFFFF
        bc = (bc + length) & 0xFFFFFFFF
        kwrite(base + 4, 4, wc)
        kwrite(base + 8, 4, bc)
        kwrite(base + 12, 4, magic ^ wc ^ bc)

    # -- exceptions -----------------------------------------------------------

    def deliver_fault(self, kind: str, pc: int) -> None:
        """Handle an architectural fault reaching commit.

        Fatal kinds raise :class:`ProcessKilled`; recoverable kinds only
        log an event (the caller then re-executes / continues).
        """
        if kind in FATAL_FAULTS:
            raise ProcessKilled(FATAL_FAULTS[kind], pc)
        if kind == "align":
            self.events.append("align-fixup")
            return
        raise ValueError(f"unknown fault kind {kind!r}")

    def needs_align_fixup(self, addr: int, size: int) -> bool:
        """ARM word accesses must be aligned; the kernel emulates others."""
        return self.isa == "arm" and size == 4 and addr % 4 != 0

    # -- snapshot protocol ------------------------------------------------------

    def snapshot(self):
        # The kstruct lives in simulated memory, which snapshots itself;
        # stack_top/kdata_base are layout constants.
        return (bytes(self.output), tuple(self.events), self.exit_code)

    def restore(self, state) -> None:
        output, events, exit_code = state
        self.output[:] = output
        self.events = list(events)
        self.exit_code = exit_code
