"""gem5-like simulator (the substrate of GeFIN), for x86 and ARM.

Personality traits (the counterparts of :mod:`repro.sim.marss`):

* split 16/16 load/store queues in which **only the store queue holds
  data** (Remark 1);
* **conservative load issue**: a load waits until every older store
  address is known, forwarding from the store queue on a match;
* the **complete system runs inside the simulator**: syscalls, kernel
  bookkeeping and page-table walks all go through the cache data arrays,
  so resident faults reach OS activity too (Remark 3, system crashes);
* true **write-back caches**: dirty (possibly corrupted) lines propagate
  downwards on eviction;
* history-indexed (gshare-style) tournament predictor and a single
  direct-mapped 2K BTB;
* **sparse assertion checking**: corrupted state propagates until the
  simulator itself dies (:class:`~repro.errors.SimCrashError` → the
  Crash/simulator sub-class, Remark 8).
"""

from __future__ import annotations

from repro.sim.base import OoOCore
from repro.sim.config import SimConfig, paper_config, scaled_config


class Gem5Sim(OoOCore):
    """gem5-flavoured out-of-order machine (x86 or ARM)."""

    def __init__(self, program, config: SimConfig | None = None,
                 scaled: bool = True):
        if config is None:
            config = (scaled_config if scaled else paper_config)(
                "gem5", program.isa)
        if config.name != "gem5":
            raise ValueError(f"Gem5Sim needs a gem5 config, got "
                             f"{config.name!r}")
        super().__init__(program, config)

    def check(self, cond: bool, msg: str) -> None:
        # gem5's checking is compact and infrequent (Remark 8): corrupted
        # state flows on and surfaces later as a simulator crash.
        return


def build_sim(program, config: SimConfig):
    """Instantiate the right simulator personality for *config*."""
    from repro.sim.marss import MarssSim
    if config.name == "marss":
        return MarssSim(program, config)
    return Gem5Sim(program, config)
