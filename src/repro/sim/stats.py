"""Runtime-statistics definitions shared by both timing simulators.

The paper explains every divergence between MaFIN and GeFIN with runtime
statistics (issued vs committed loads, hit/miss rates, replacements,
mispredictions — Remarks 1-11).  Both cores count the same events so the
remark-stats bench can print the paper's ratio tables.
"""

from __future__ import annotations

COUNTERS = (
    "cycles", "committed_instrs", "committed_uops",
    "fetched_instrs", "squashed_uops",
    "issued_loads", "committed_loads", "committed_stores",
    "load_replays", "store_forwards",
    "l1d_read_hit", "l1d_read_miss", "l1d_write_hit", "l1d_write_miss",
    "l1d_replacements", "l1d_writebacks",
    "l1i_hit", "l1i_miss", "l1i_replacements",
    "l2_read_hit", "l2_read_miss", "l2_write_hit", "l2_write_miss",
    "l2_replacements", "l2_writebacks",
    "branches", "branch_mispredicts", "ras_predictions",
    "itlb_miss", "dtlb_miss",
    "syscalls", "hypervisor_ops", "kernel_cache_accesses",
    "prefetches_issued",
)


def new_stats() -> dict:
    return dict.fromkeys(COUNTERS, 0)


def ipc(stats: dict) -> float:
    return stats["committed_instrs"] / max(stats["cycles"], 1)


def ratio(a: dict, b: dict, counter: str) -> float:
    """a[counter] / b[counter], guarding empty denominators."""
    return a[counter] / max(b[counter], 1)
