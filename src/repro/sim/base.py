"""Cycle-level out-of-order core shared by the two simulators.

This module is the substrate the fault injectors run on: a full-system,
cycle-level OoO pipeline (fetch/decode with branch prediction through a
real L1I, rename onto a physical register file, issue queue scheduling,
split/unified LSQ with store-to-load forwarding, precise squash on
mispredictions and memory-order violations, commit with architectural
exceptions and syscalls) in which *every array-shaped structure* is an
injectable :class:`~repro.uarch.array.StorageArray`.

The MARSS-like and gem5-like personalities subclass this core and differ
only in the knobs of :class:`~repro.sim.config.SimConfig` — write-policy
(mirror vs write-back), hypervisor vs in-simulator system activity, load
issue aggressiveness, predictor indexing, BTB organization, assertion
density, prefetchers — exactly the implementation differences the paper
identifies as the sources of diverging reliability reports.
"""

from __future__ import annotations

import struct

from repro.errors import SimAssertError, SimCrashError
from repro.isa import arm as arm_isa
from repro.isa import x86 as x86_isa
from repro.isa.common import (NUM_ARCH_REGS, ArithFault, Instr, UOp,
                              alu_exec, cond_holds, u32)
from repro.sim.kernel import Kernel, KernelPanic, ProcessExit, ProcessKilled
from repro.sim.memory import MemFault, Memory, PAGE_SHIFT, PERM_R, PERM_W, \
    PERM_X
from repro.sim.stats import new_stats
from repro.uarch.array import FaultSite, WordArray
from repro.uarch.btb import BTB
from repro.uarch.cache import Cache
from repro.uarch.issueq import IssueQueue
from repro.uarch.predictor import TournamentPredictor
from repro.uarch.prefetcher import StridePrefetcher
from repro.uarch.ras import RAS
from repro.uarch.tlb import TLB

_ISA_MODULES = {"x86": x86_isa, "arm": arm_isa}

_ALU_LAT = {"mul": 3, "div": 12, "mod": 12}

# Module-level decode memo: decoding is a pure function of the fetched
# bytes, so entries are safe to share across runs and simulators.
_DECODE_CACHE: dict = {}
_DECODE_CACHE_MAX = 1 << 16


class RobEntry:
    __slots__ = (
        "seq", "uop", "pc", "instr", "state", "value", "dst_arch",
        "dst_phys", "old_phys", "iq_idx", "lsq", "fault", "fault_addr",
        "pred", "taken", "target", "fallthrough", "snapshot", "first",
        "last", "align_event", "is_wrongpath_marker", "retry_epoch",
    )

    def __init__(self, seq, uop, pc, instr):
        self.seq = seq
        self.uop = uop
        self.pc = pc
        self.instr = instr
        self.state = 0            # 0 waiting, 1 executing, 2 done
        self.value = None
        self.dst_arch = None
        self.dst_phys = None
        self.old_phys = None
        self.iq_idx = None
        self.lsq = None
        self.fault = None
        self.fault_addr = 0
        self.pred = None          # (taken, target) recorded at fetch
        self.taken = None         # actual outcome at execute
        self.target = None
        self.fallthrough = 0
        self.snapshot = None      # (map copy, ras_top, ras_depth) at instr
        self.first = False
        self.last = False
        self.align_event = False
        self.is_wrongpath_marker = False
        self.retry_epoch = -1


class LsqEntry:
    __slots__ = ("seq", "is_store", "addr", "size", "slot", "resolved",
                 "executed", "rob", "kernel")

    def __init__(self, seq, is_store, slot, rob):
        self.seq = seq
        self.is_store = is_store
        self.addr = None
        self.size = 4
        self.slot = slot
        self.resolved = False
        self.executed = False
        self.rob = rob
        self.kernel = False


def _copy_rob_entry(entry, memo):
    """Copy one in-flight ROB entry, preserving graph identity via *memo*.

    The in-flight object graph is cyclic (RobEntry.lsq ↔ LsqEntry.rob,
    and the ROB, event queues and IQ slots alias the same entries), so
    snapshot and restore both route every entry reference through one
    memo per pass.  `uop`/`instr` are immutable and `pred`/`snapshot`
    tuples are copied-on-use by the core, so all four are shared.
    """
    if entry is None:
        return None
    dup = memo.get(id(entry))
    if dup is not None:
        return dup
    dup = RobEntry.__new__(RobEntry)
    memo[id(entry)] = dup
    dup.seq = entry.seq
    dup.uop = entry.uop
    dup.pc = entry.pc
    dup.instr = entry.instr
    dup.state = entry.state
    dup.value = entry.value
    dup.dst_arch = entry.dst_arch
    dup.dst_phys = entry.dst_phys
    dup.old_phys = entry.old_phys
    dup.iq_idx = entry.iq_idx
    dup.lsq = _copy_lsq_entry(entry.lsq, memo)
    dup.fault = entry.fault
    dup.fault_addr = entry.fault_addr
    dup.pred = entry.pred
    dup.taken = entry.taken
    dup.target = entry.target
    dup.fallthrough = entry.fallthrough
    dup.snapshot = entry.snapshot
    dup.first = entry.first
    dup.last = entry.last
    dup.align_event = entry.align_event
    dup.is_wrongpath_marker = entry.is_wrongpath_marker
    dup.retry_epoch = entry.retry_epoch
    return dup


def _copy_lsq_entry(entry, memo):
    if entry is None:
        return None
    dup = memo.get(id(entry))
    if dup is not None:
        return dup
    dup = LsqEntry.__new__(LsqEntry)
    memo[id(entry)] = dup
    dup.seq = entry.seq
    dup.is_store = entry.is_store
    dup.addr = entry.addr
    dup.size = entry.size
    dup.slot = entry.slot
    dup.resolved = entry.resolved
    dup.executed = entry.executed
    dup.rob = _copy_rob_entry(entry.rob, memo)
    dup.kernel = entry.kernel
    return dup


class RunOutcome:
    """Result of a timing-simulator run (consumed by the injectors)."""

    def __init__(self, reason, exit_code, output, events, stats, cycles,
                 signal=None, detail=""):
        self.reason = reason      # exit|killed|panic|deadlock|cycle-limit
        self.exit_code = exit_code
        self.output = output
        self.events = events
        self.stats = stats
        self.cycles = cycles
        self.signal = signal
        self.detail = detail

    @property
    def ok(self) -> bool:
        return self.reason == "exit"

    def __repr__(self):
        return (f"RunOutcome({self.reason}, exit={self.exit_code}, "
                f"cycles={self.cycles})")


class OoOCore:
    """One simulated machine instance running one program."""

    def __init__(self, program, config):
        if program.isa != config.isa:
            raise ValueError(
                f"program is {program.isa}, config wants {config.isa}")
        self.config = config
        self.program = program
        self.max_ilen = _ISA_MODULES[config.isa].MAX_ILEN

        self.mem = Memory(config.mem_size)
        self.mem.load_program(program.sections)
        self.kernel = Kernel(self.mem, config.isa)
        self._init_page_table()

        # Memory hierarchy.
        mirror = config.mirror_caches
        self.l1i = Cache("l1i", config.l1i.size, config.l1i.assoc,
                         config.l1i.line_size, mirror=mirror)
        self.l1d = Cache("l1d", config.l1d.size, config.l1d.assoc,
                         config.l1d.line_size, mirror=mirror)
        self.l2 = Cache("l2", config.l2.size, config.l2.assoc,
                        config.l2.line_size, mirror=mirror)
        self.itlb = TLB("itlb", config.itlb_entries)
        self.dtlb = TLB("dtlb", config.dtlb_entries)

        # Front end.
        self.predictor = TournamentPredictor(
            config.predictor_local, config.predictor_global,
            scheme=config.predictor_scheme)
        self.btb = BTB("btb", config.btb_direct.entries,
                       config.btb_direct.assoc)
        self.btb_ind = (BTB("btb_ind", config.btb_indirect.entries,
                            config.btb_indirect.assoc)
                        if config.btb_indirect else None)
        self.ras = RAS(entries=config.ras_entries)
        if config.prefetchers:
            self.l1d_pref = StridePrefetcher("l1d_pref",
                                             line_size=config.l1d.line_size)
            self.l1i_pref = StridePrefetcher("l1i_pref",
                                             line_size=config.l1i.line_size)
        else:
            self.l1d_pref = None
            self.l1i_pref = None

        # Register files and renaming.
        n = config.phys_int_regs
        self.prf = WordArray("int_rf", n, 32)
        self.prf_ready = [False] * n
        self.fp_rf = WordArray("fp_rf", config.phys_fp_regs, 32)
        self.map = [0] * NUM_ARCH_REGS
        self.committed_map = [0] * NUM_ARCH_REGS
        self.free_list = list(range(n - 1, NUM_ARCH_REGS - 1, -1))
        for areg in range(NUM_ARCH_REGS):
            self.map[areg] = areg
            self.committed_map[areg] = areg
            self.prf_ready[areg] = True
        sp = x86_isa.SP if config.isa == "x86" else arm_isa.SP
        self.prf.write(self.map[sp], self.kernel.stack_top)

        # Back end.
        self.iq = IssueQueue("iq", config.iq_size)
        self.rob: list[RobEntry] = []
        self.seq = 0
        self.lsq: list[LsqEntry] = []
        if config.lsq_unified:
            self.lsq_data = WordArray("lsq", config.lsq_size, 32)
            self._lsq_free = list(range(config.lsq_size - 1, -1, -1))
            self._sq_free = None
        else:
            # Split queues: only the store queue holds data (Remark 1).
            self.lsq_data = WordArray("lsq", config.lsq_size, 32)
            self._sq_free = list(range(config.lsq_size - 1, -1, -1))
            self._lq_count = 0

        # Execution bookkeeping.
        self.events: dict[int, list] = {}
        self.fu_busy = {"alu": 0, "mul": 0, "mem": 0}
        self.cycle = 0
        self.fetch_pc = program.entry
        self.fetch_resume = 0
        self.fetch_halted = False
        self.commit_stall_until = 0
        self.last_commit_cycle = 0
        self.stats = new_stats()
        self.finished: RunOutcome | None = None
        self._store_epoch = 0     # bumped when stores resolve/retire
        self._fetch_buf = None    # (pc, instr) pending for resources
        self._fetch_missed = False
        self._kernel_lat = 0
        self._faulty = False      # set by the injector; gates crash policy
        self._fault_sites = None  # lazily built by fault_sites()

    @property
    def isa(self):
        """ISA module (resolved dynamically so machines stay picklable)."""
        return _ISA_MODULES[self.config.isa]

    # ------------------------------------------------------------------
    # Setup helpers
    # ------------------------------------------------------------------

    def _init_page_table(self) -> None:
        """Write identity PTEs into the kernel page.

        gem5-style TLB walks read these through the data cache, so cached
        PTE corruption causes wrong translations; MARSS-style walks go to
        the hypervisor's memory directly.
        """
        self.pte_base = self.kernel.kdata_base + 256
        npages = self.mem.size >> PAGE_SHIFT
        for vpn in range(npages):
            struct.pack_into("<I", self.mem.data, self.pte_base + vpn * 4,
                             vpn)

    # ------------------------------------------------------------------
    # Simulator-identity hooks
    # ------------------------------------------------------------------

    def check(self, cond: bool, msg: str) -> None:
        """Dense (MARSS) assertion checking; sparse in gem5 subclass."""
        raise NotImplementedError

    def sites_extra(self) -> list[FaultSite]:
        return []

    # ------------------------------------------------------------------
    # Fault-site registry
    # ------------------------------------------------------------------

    def fault_sites(self) -> dict[str, FaultSite]:
        """All injectable structures of this machine (Table IV).

        Built once per machine and cached: the sites close over this
        machine and its arrays, both of which :meth:`restore` updates in
        place, so the cache stays valid across checkpoint restores.
        """
        if self._fault_sites is not None:
            return self._fault_sites

        def reg_live(entry: int) -> bool:
            return entry not in self._free_set()

        sites = [
            FaultSite("int_rf", self.prf, live=reg_live,
                      desc=f"integer physical register file "
                           f"({self.prf.entries}x32)"),
            FaultSite("fp_rf", self.fp_rf, live=lambda e: False,
                      desc=f"FP physical register file "
                           f"({self.fp_rf.entries}x32)"),
            self.l1d.data_site(), self.l1d.tag_site(),
            self.l1i.data_site(), self.l1i.tag_site(),
            self.l2.data_site(), self.l2.tag_site(),
            FaultSite("lsq", self.lsq_data, live=self._lsq_slot_live,
                      desc="load/store queue data field"),
            self.iq.site(),
            self.itlb.site(), self.dtlb.site(),
            self.btb.site(), self.ras.site(),
        ]
        if self.btb_ind:
            sites.append(self.btb_ind.site())
        if self.l1d_pref:
            sites.append(self.l1d_pref.site())
            sites.append(self.l1i_pref.site())
        sites.extend(self.sites_extra())
        self._fault_sites = {s.name: s for s in sites}
        return self._fault_sites

    def _free_set(self):
        return set(self.free_list)

    def _lsq_slot_live(self, slot: int) -> bool:
        return any(e.slot == slot and e.resolved for e in self.lsq)

    # ------------------------------------------------------------------
    # Memory hierarchy
    # ------------------------------------------------------------------

    def _translate(self, va: int, tlb: TLB, instruction: bool) -> tuple[int, int]:
        """(physical address, latency); inserts on miss."""
        pa = tlb.translate(va, self.cycle)
        if pa is not None:
            return pa, 0
        self.stats["itlb_miss" if instruction else "dtlb_miss"] += 1
        lat, pfn = self._walk(va)
        pa = (pfn << PAGE_SHIFT) | (va & ((1 << PAGE_SHIFT) - 1))
        tlb.insert(va, pa)
        return pa, lat

    def _walk(self, va: int) -> tuple[int, int]:
        """Page-table walk; returns (latency, pfn)."""
        vpn = (va >> PAGE_SHIFT) % (self.mem.size >> PAGE_SHIFT)
        pte_addr = self.pte_base + vpn * 4
        if self.config.hypervisor:
            # QEMU services the walk against its own memory image.
            self.stats["hypervisor_ops"] += 1
            pfn = self.mem.read(pte_addr, 4, kernel=True)
            return self.config.hypervisor_latency // 4, pfn & 0xFFFFF
        # The walker uses physical addresses directly (no recursion into
        # the TLB), but reads the PTE through the data-cache hierarchy —
        # gem5-style cached walks, so cached PTE corruption mistranslates.
        lat, pfn = self._cached_access_pa(pte_addr, 4, False)
        self.stats["kernel_cache_accesses"] += 1
        return lat + 2, pfn & 0xFFFFF

    def _line_present_l1(self, cache: Cache, pa: int, is_write: bool,
                         instruction: bool = False) -> int:
        """Ensure the line holding *pa* is in *cache*; return latency."""
        cfg = self.config
        way = cache.lookup(pa, self.cycle)
        stats = self.stats
        if way is not None:
            cache.touch(cache.set_of(pa), way)
            if instruction:
                stats["l1i_hit"] += 1
            elif is_write:
                stats["l1d_write_hit"] += 1
            else:
                stats["l1d_read_hit"] += 1
            return cfg.l1_latency
        if instruction:
            stats["l1i_miss"] += 1
        elif is_write:
            stats["l1d_write_miss"] += 1
        else:
            stats["l1d_read_miss"] += 1
        line_addr = cache.line_base(pa)
        lat, line_data = self._l2_fetch_line(line_addr, is_write)
        evicted = cache.fill(line_addr, line_data, self.cycle)
        if evicted is not None:
            stats["l1i_replacements" if instruction
                  else "l1d_replacements"] += 1
            self._handle_eviction(evicted, from_l1=True)
        return cfg.l1_latency + lat

    def _l2_fetch_line(self, line_addr: int, is_write: bool):
        """Line bytes for an L1 fill, from L2 or memory; (latency, data)."""
        cfg = self.config
        stats = self.stats
        way = self.l2.lookup(line_addr, self.cycle)
        if way is not None:
            self.l2.touch(self.l2.set_of(line_addr), way)
            stats["l2_write_hit" if is_write else "l2_read_hit"] += 1
            data = self.l2.read_data(line_addr, self.l2.line_size, way,
                                     self.cycle)
            return cfg.l2_latency, data
        stats["l2_write_miss" if is_write else "l2_read_miss"] += 1
        data = self.mem.read_block(line_addr, self.l2.line_size)
        evicted = self.l2.fill(line_addr, data, self.cycle)
        if evicted is not None:
            stats["l2_replacements"] += 1
            self._handle_eviction(evicted, from_l1=False)
        return cfg.l2_latency + cfg.mem_latency, data

    def _handle_eviction(self, evicted, from_l1: bool) -> None:
        addr, data, dirty = evicted
        if not dirty or data is None:
            return  # clean line, or mirror mode (memory already current)
        if from_l1:
            # Write the victim line back into L2 (allocating if needed).
            self.stats["l1d_writebacks"] += 1
            way = self.l2.lookup(addr, self.cycle)
            if way is None:
                ev2 = self.l2.fill(addr, data, self.cycle)
                line = self.l2.line_index(self.l2.set_of(addr),
                                          self.l2.lookup(addr, self.cycle))
                self.l2.tags.write(line, self.l2.tags.peek(line) |
                                   self.l2._dirty_bit)
                if ev2 is not None:
                    self.stats["l2_replacements"] += 1
                    self._handle_eviction(ev2, from_l1=False)
            else:
                self.l2.write_data(addr, data, way, set_dirty=True)
        else:
            self.stats["l2_writebacks"] += 1
            self.mem.write_block(addr, data)

    def _cached_access(self, va: int, size: int, is_write: bool,
                       value: int = 0, kernel: bool = False):
        """One data access through dTLB + L1D/L2; returns (lat, value).

        Handles line-crossing accesses by splitting.  Mirror mode keeps
        every resident copy plus memory current on writes.
        """
        pa, tlat = self._translate(va, self.dtlb, instruction=False)
        lat, value = self._cached_access_pa(pa, size, is_write, value)
        if self.l1d_pref is not None and not kernel:
            self._train_prefetcher(self.l1d_pref, self.l1d, va,
                                   pa & (self.mem.size - 1))
        return lat + tlat, value

    def _cached_access_pa(self, pa: int, size: int, is_write: bool,
                          value: int = 0):
        """Physically-addressed access through L1D/L2; (lat, value)."""
        pa &= self.mem.size - 1   # corrupted translations stay on-chip
        lat = 0
        line_size = self.l1d.line_size
        total = b""
        remaining = size
        addr = pa
        data_bytes = value.to_bytes(size, "little") if is_write else None
        off_in_value = 0
        while remaining > 0:
            in_line = min(remaining, line_size - (addr & (line_size - 1)))
            lat += self._line_present_l1(self.l1d, addr, is_write)
            way = self.l1d.lookup(addr, self.cycle)
            self.check(way is not None, "L1D line vanished during access")
            if way is None:
                raise SimCrashError("L1D line vanished during access")
            if is_write:
                chunk = data_bytes[off_in_value:off_in_value + in_line]
                self.l1d.write_data(addr, chunk, way)
                if self.config.mirror_caches:
                    # Mirror semantics: update L2 copy and memory too.
                    l2way = self.l2.lookup(addr, self.cycle)
                    if l2way is not None:
                        self.l2.write_data(addr, chunk, l2way,
                                           set_dirty=False)
                    self.mem.write_block(addr, chunk)
            else:
                total += self.l1d.read_data(addr, in_line, way, self.cycle)
            addr += in_line
            off_in_value += in_line
            remaining -= in_line
        if is_write:
            return lat, None
        return lat, int.from_bytes(total, "little")

    def _train_prefetcher(self, pref: StridePrefetcher, cache: Cache,
                          key_addr: int, pa: int) -> None:
        target = pref.train((key_addr >> 4) & 0xFFFF,
                            cache.line_base(pa), self.cycle)
        if target is None:
            return
        target &= self.mem.size - 1
        if cache.lookup(target, self.cycle) is None:
            self.stats["prefetches_issued"] += 1
            _lat, data = self._l2_fetch_line(cache.line_base(target), False)
            evicted = cache.fill(cache.line_base(target), data, self.cycle)
            if evicted is not None:
                self._handle_eviction(evicted, from_l1=True)

    # -- kernel accessors (syscall-time) --------------------------------------

    def _kread_hyper(self, addr: int, size: int) -> int:
        self.stats["hypervisor_ops"] += 1
        return self.mem.read(addr, size, kernel=True)

    def _kwrite_hyper(self, addr: int, size: int, value: int) -> None:
        self.stats["hypervisor_ops"] += 1
        self.mem.write(addr, size, value, kernel=True)

    def _kread_cached(self, addr: int, size: int) -> int:
        self.stats["kernel_cache_accesses"] += 1
        lat, value = self._cached_access(addr, size, False, kernel=True)
        self._kernel_lat += lat
        return value

    def _kwrite_cached(self, addr: int, size: int, value: int) -> None:
        self.stats["kernel_cache_accesses"] += 1
        lat, _ = self._cached_access(addr, size, True, value, kernel=True)
        self._kernel_lat += lat

    # ------------------------------------------------------------------
    # Fetch / decode / rename / dispatch
    # ------------------------------------------------------------------

    def _decode_at(self, pc: int):
        """Fetch bytes through the L1I and decode; (instr, lat, fault).

        ``lat`` exceeding ``l1_latency * lines_touched`` means at least
        one line missed; the caller stalls fetch and retries (the fill
        already happened, so the retry hits).
        """
        pa, lat = self._translate(pc, self.itlb, instruction=True)
        pa &= self.mem.size - 1
        line_size = self.l1i.line_size
        window = b""
        addr = pa
        missed = lat > 0
        remaining = min(self.max_ilen, self.mem.size - pa)
        if remaining <= 0:
            return None, lat, "pf"
        while remaining > 0:
            in_line = min(remaining, line_size - (addr & (line_size - 1)))
            line_lat = self._line_present_l1(self.l1i, addr, is_write=False,
                                             instruction=True)
            if line_lat > self.config.l1_latency:
                missed = True
            lat += line_lat
            way = self.l1i.lookup(addr, self.cycle)
            if way is None:
                raise SimCrashError("L1I line vanished during fetch")
            window += self.l1i.read_data(addr, in_line, way, self.cycle)
            addr += in_line
            remaining -= in_line
        self._fetch_missed = missed
        if len(window) < self.max_ilen:
            window += bytes(self.max_ilen - len(window))
        if self.l1i_pref is not None:
            self._train_prefetcher(self.l1i_pref, self.l1i, pc & ~63, pa)
        key = (self.config.isa, pc, window)
        instr = _DECODE_CACHE.get(key)
        if instr is None:
            if len(_DECODE_CACHE) >= _DECODE_CACHE_MAX:
                _DECODE_CACHE.clear()
            instr = self.isa.decode_window(window, pc)
            _DECODE_CACHE[key] = instr
        return instr, lat, None

    def _rename_srcs(self, uop):
        m = self.map
        return [m[a] for a in uop.srcs_cached()]

    def _alloc_phys(self, arch: int):
        if not self.free_list:
            return None
        phys = self.free_list.pop()
        self.prf_ready[phys] = False
        return phys

    def _has_resources(self, instr) -> bool:
        """Check ROB/IQ/LSQ/free-list space without side effects."""
        needs = instr.needs
        if needs is None:
            uops = instr.uops
            needs = (max(len(uops), 1),
                     sum(1 for u in uops if u.kind not in ("sys", "nop")),
                     sum(1 for u in uops if u.kind == "load"),
                     sum(1 for u in uops if u.kind == "store"),
                     sum(1 for u in uops if u.dst_cached() is not None))
            instr.needs = needs
        nuops, need_iq, nloads, nstores, ndst = needs
        cfg = self.config
        if len(self.rob) + nuops > cfg.rob_size:
            return False
        if self.iq.count + need_iq > self.iq.size:
            return False
        if cfg.lsq_unified:
            if len(self._lsq_free) < nloads + nstores:
                return False
        else:
            if len(self._sq_free) < nstores:
                return False
            if self._lq_count + nloads > cfg.lsq_size:
                return False
        if len(self.free_list) < ndst + 2:
            return False
        return True

    def _dispatch_instr(self, instr, pc, pred) -> None:
        """Rename and insert all µops of one instruction.

        Resources must have been checked with :meth:`_has_resources`.
        An undefined instruction dispatches as a single bubble entry and
        halts fetch (the decoder cannot trust any later bytes); commit
        turns it into an assert (MARSS) or an architectural #UD (gem5).
        """
        uops = instr.uops
        if not uops:
            entry = RobEntry(self.seq, UOp("nop"), pc, instr)
            self.seq += 1
            entry.first = entry.last = True
            entry.snapshot = (self.map.copy(), self.ras.top, self.ras.depth)
            entry.state = 2
            self.rob.append(entry)
            self.fetch_halted = True
            return
        snapshot = (self.map.copy(), self.ras.top, self.ras.depth)
        fallthrough = (pc + instr.length) & 0xFFFFFFFF
        for i, uop in enumerate(uops):
            entry = RobEntry(self.seq, uop, pc, instr)
            self.seq += 1
            entry.fallthrough = fallthrough
            entry.first = (i == 0)
            entry.last = (i == len(uops) - 1)
            if entry.first:
                entry.snapshot = snapshot
            src_tags = self._rename_srcs(uop)
            dst_arch = uop.dst_cached()
            if dst_arch is not None:
                phys = self._alloc_phys(dst_arch)
                entry.dst_arch = dst_arch
                entry.dst_phys = phys
                entry.old_phys = self.map[dst_arch]
                self.map[dst_arch] = phys
            if uop.kind == "sys":
                # Syscalls serialize at commit; reserve the r0 result reg.
                phys = self._alloc_phys(0)
                entry.dst_arch = 0
                entry.dst_phys = phys
                entry.old_phys = self.map[0]
                self.map[0] = phys
                entry.state = 2
            elif uop.kind == "nop":
                entry.state = 2
            else:
                s1 = src_tags[0] if len(src_tags) > 0 else None
                s2 = src_tags[1] if len(src_tags) > 1 else None
                r1 = self.prf_ready[s1] if s1 is not None else True
                r2 = self.prf_ready[s2] if s2 is not None else True
                idx = self.iq.insert(
                    entry, uop.kind, uop.op, entry.dst_phys,
                    s1, r1, s2, r2, uop.size, uop.imm)
                self.check(idx is not None, "IQ overflow at dispatch")
                entry.iq_idx = idx
                if uop.kind in ("load", "store"):
                    entry.lsq = self._alloc_lsq(entry, uop.kind == "store")
            if entry.last and instr.is_branch:
                entry.pred = pred
            self.rob.append(entry)

    def _alloc_lsq(self, entry: RobEntry, is_store: bool) -> LsqEntry:
        if self.config.lsq_unified:
            slot = self._lsq_free.pop()
        elif is_store:
            slot = self._sq_free.pop()
        else:
            slot = -1  # gem5 load-queue entries carry no data field
            self._lq_count += 1
        lsq_entry = LsqEntry(entry.seq, is_store, slot, entry)
        self.lsq.append(lsq_entry)
        return lsq_entry

    def _release_lsq(self, lsq_entry: LsqEntry) -> None:
        if self.config.lsq_unified:
            self._lsq_free.append(lsq_entry.slot)
        elif lsq_entry.is_store:
            self._sq_free.append(lsq_entry.slot)
        else:
            self._lq_count -= 1

    def _fetch_cycle(self) -> None:
        cfg = self.config
        if self.fetch_halted or self.cycle < self.fetch_resume:
            return
        fetched = 0
        while fetched < cfg.fetch_width:
            pc = self.fetch_pc
            perms = self.mem.page_perms(pc)
            if not perms & PERM_X:
                self._dispatch_fetch_fault(pc)
                return
            if self._fetch_buf is not None and self._fetch_buf[0] == pc:
                instr = self._fetch_buf[1]
                self._fetch_buf = None
            else:
                try:
                    instr, lat, fault = self._decode_at(pc)
                except MemFault:
                    self._dispatch_fetch_fault(pc)
                    return
                if fault is not None:
                    self._dispatch_fetch_fault(pc)
                    return
                if self._fetch_missed:
                    # I-miss or iTLB walk: charge it; the retry hits.
                    self.fetch_resume = self.cycle + lat
                    return
            if not self._has_resources(instr):
                self._fetch_buf = (pc, instr)
                return
            pred = None
            next_pc = (pc + instr.length) & 0xFFFFFFFF
            if instr.is_branch:
                pred = self._predict(instr, pc, next_pc)
            self._dispatch_instr(instr, pc, pred)
            if not instr.uops:
                return  # undefined instruction halted fetch
            self.stats["fetched_instrs"] += 1
            fetched += 1
            if pred is not None and pred[0]:
                self.fetch_pc = pred[1]
                return
            self.fetch_pc = next_pc

    def _dispatch_fetch_fault(self, pc: int) -> None:
        """Insert a faulting bubble for an unfetchable pc, halt fetch."""
        if self.rob and not self.rob[-1].last:
            return  # wait for a clean instruction boundary
        if len(self.rob) >= self.config.rob_size:
            return
        dummy = Instr("<fetchfault>", 1, [])
        entry = RobEntry(self.seq, UOp("nop"), pc, dummy)
        self.seq += 1
        entry.first = entry.last = True
        entry.snapshot = (self.map.copy(), self.ras.top, self.ras.depth)
        entry.state = 2
        entry.fault = "pf"
        entry.fault_addr = pc
        self.rob.append(entry)
        self.fetch_halted = True

    def _predict(self, instr, pc: int, fallthrough: int):
        """(predicted_taken, predicted_target) and RAS maintenance."""
        self.stats["branches"] += 1
        if instr.is_ret:
            target = self.ras.pop(self.cycle)
            self.stats["ras_predictions"] += 1
            if target is None:
                target = fallthrough
            return (True, u32(target))
        if instr.is_call:
            self.ras.push(fallthrough)
            if instr.target is not None:
                return (True, instr.target)
        if instr.is_indirect:
            btb = self.btb_ind if self.btb_ind is not None else self.btb
            target = btb.lookup(pc, self.cycle)
            if target is None:
                return (False, fallthrough)
            return (True, u32(target))
        if instr.is_cond:
            taken = self.predictor.predict(pc)
            return (taken, instr.target if taken else fallthrough)
        # Unconditional direct (jmp / bl / call handled above).
        return (True, instr.target if instr.target is not None
                else fallthrough)

    # ------------------------------------------------------------------
    # Issue / execute
    # ------------------------------------------------------------------

    def _issue_cycle(self) -> None:
        cfg = self.config
        budget = cfg.issue_width
        alu_free = cfg.int_alus + cfg.complex_alus
        mul_free = cfg.complex_alus
        mem_free = cfg.mem_ports
        # Oldest-first select among ready IQ entries.  The decoded slot
        # cache is authoritative unless a fault touched the packed array.
        iq = self.iq
        arr = iq.array
        fault_mode = bool(arr.stuck) or arr.watch is not None
        epoch = arr.fault_epoch
        valid = iq.valid
        slots = iq.slots
        candidates = []
        for idx in range(iq.size):
            if not valid[idx]:
                continue
            slot = slots[idx]
            entry = slot.rob
            if entry is None or entry.state != 0:
                continue
            if fault_mode or slot.epoch != epoch:
                slot = iq.view(idx, self.cycle)
            if not (slot.rdy1 and slot.rdy2):
                continue
            if slot.kind == "load" and \
                    entry.retry_epoch == self._store_epoch:
                continue  # still blocked by the same unresolved stores
            candidates.append((entry.seq, idx))
        candidates.sort()
        for _seq, idx in candidates:
            if budget == 0:
                break
            # A squash triggered by an earlier candidate (memory-order
            # violation replay) may have released this slot meanwhile.
            if not valid[idx]:
                continue
            slot = slots[idx]
            entry = slot.rob
            if entry is None or entry.state != 0:
                continue
            kind = slot.kind
            if kind in ("load", "store"):
                if mem_free == 0:
                    continue
            elif slot.op in ("mul", "div", "mod"):
                if mul_free == 0:
                    continue
            else:
                if alu_free == 0:
                    continue
            issued = self._execute(entry, slot)
            if not issued:
                continue
            budget -= 1
            if kind in ("load", "store"):
                mem_free -= 1
            elif slot.op in ("mul", "div", "mod"):
                mul_free -= 1
            else:
                alu_free -= 1

    def _read_phys(self, tag: int | None) -> int | None:
        if tag is None:
            return None
        if tag >= self.prf.entries or tag < 0:
            self.check(False, f"physical tag {tag} out of range")
            raise SimCrashError(f"physical register index {tag} invalid")
        return self.prf.read(tag, self.cycle)

    def _complete_at(self, cycle: int, entry: RobEntry) -> None:
        self.events.setdefault(cycle, []).append(entry)

    def _execute(self, entry: RobEntry, slot) -> bool:
        """Begin execution of one issued µop; returns False to retry."""
        kind = slot.kind
        cycle = self.cycle
        if kind == "alu":
            a = self._read_phys(slot.src1)
            b = slot.imm if slot.src2 is None else self._read_phys(slot.src2)
            op = slot.op
            if op in ("eq", "ne", "lt", "le", "gt", "ge", "ult", "ule",
                      "ugt", "uge", "none"):
                # Only reachable via a corrupted IQ entry.
                self.check(False, f"invalid ALU op {op!r} in issue queue")
                raise SimCrashError(f"cannot execute ALU op {op!r}")
            old = 0
            if op == "movt":
                old = a if a is not None else 0
                a = None
            try:
                value = alu_exec(op, a, b, old)
            except ArithFault:
                entry.fault = "div0"
                value = 0
            entry.value = value
            entry.state = 1
            self._complete_at(cycle + _ALU_LAT.get(op, 1), entry)
            return True
        if kind == "br":
            flags = self._read_phys(slot.src1)
            cond = slot.op
            self.check(cond in ("eq", "ne", "lt", "le", "gt", "ge", "ult",
                                "ule", "ugt", "uge"),
                       f"invalid branch condition {cond!r}")
            try:
                taken = cond_holds(cond, flags)
            except ValueError as exc:
                raise SimCrashError(str(exc)) from None
            entry.taken = taken
            entry.target = u32(slot.imm) if taken else entry.fallthrough
            entry.state = 1
            self._complete_at(cycle + 1, entry)
            return True
        if kind == "jmp":
            entry.taken = True
            entry.target = u32(slot.imm)
            entry.state = 1
            self._complete_at(cycle + 1, entry)
            return True
        if kind == "ijmp":
            base = self._read_phys(slot.src1)
            entry.taken = True
            entry.target = u32((base or 0) + slot.imm)
            entry.state = 1
            self._complete_at(cycle + 1, entry)
            return True
        if kind == "store":
            base = self._read_phys(slot.src1)
            value = self._read_phys(slot.src2)
            addr = u32((base or 0) + slot.imm)
            lsq = entry.lsq
            self.check(lsq is not None, "store issued without LSQ entry")
            if lsq is None:
                raise SimCrashError("store issued without LSQ entry")
            lsq.addr = addr
            lsq.size = slot.size if slot.size in (1, 2, 4) else 4
            lsq.resolved = True
            self._store_epoch += 1
            if lsq.slot >= 0:
                self.lsq_data.write(lsq.slot, value or 0)
            entry.value = value or 0
            self._precheck_mem(entry, addr, lsq.size, is_write=True)
            entry.state = 1
            self._complete_at(cycle + 1, entry)
            if self.config.aggressive_loads:
                self._check_order_violation(lsq)
            return True
        if kind == "load":
            return self._execute_load(entry, slot)
        raise SimCrashError(f"unexecutable µop kind {kind!r}")

    def _precheck_mem(self, entry: RobEntry, addr: int, size: int,
                      is_write: bool) -> None:
        """Architectural permission check; faults deliver at commit."""
        try:
            self.mem.check(addr, size, PERM_W if is_write else PERM_R)
        except MemFault as mf:
            entry.fault = mf.kind
            entry.fault_addr = addr
            return
        if self.kernel.needs_align_fixup(addr, size):
            entry.align_event = True

    def _older_store_blocks(self, lsq: LsqEntry):
        """(blocked, forward_entry) per this simulator's load policy.

        Scans youngest-older-store first so forwarding always comes from
        the most recent producer, and an unresolved store younger than
        any match correctly blocks a conservative (gem5-style) load.
        """
        for other in reversed(self.lsq):
            if other.seq >= lsq.seq or not other.is_store:
                continue
            if not other.resolved:
                if self.config.aggressive_loads:
                    continue    # MARSS: issue anyway, replay on conflict
                return True, None
            if other.addr is None:
                continue
            if other.addr == lsq.addr and other.size == lsq.size:
                return False, other
            if not (other.addr + other.size <= lsq.addr or
                    lsq.addr + lsq.size <= other.addr):
                # Partial overlap: MARSS asserts, gem5 stalls until the
                # store leaves the queue.
                self.check(other.addr == lsq.addr,
                           "partial store-to-load overlap in LSQ")
                return True, None
        return False, None

    def _execute_load(self, entry: RobEntry, slot) -> bool:
        base = self._read_phys(slot.src1)
        addr = u32((base or 0) + slot.imm)
        size = slot.size if slot.size in (1, 2, 4) else 4
        lsq = entry.lsq
        self.check(lsq is not None, "load issued without LSQ entry")
        if lsq is None:
            raise SimCrashError("load issued without LSQ entry")
        lsq.addr = addr
        lsq.size = size
        lsq.resolved = True
        blocked, fwd = self._older_store_blocks(lsq)
        if blocked:
            lsq.resolved = False
            entry.retry_epoch = self._store_epoch
            return False    # retry when the store picture changes
        self.stats["issued_loads"] += 1
        self._precheck_mem(entry, addr, size, is_write=False)
        if entry.fault is not None:
            entry.state = 1
            lsq.executed = True
            self._complete_at(self.cycle + 1, entry)
            return True
        if fwd is not None:
            self.stats["store_forwards"] += 1
            value = self.lsq_data.read(fwd.slot, self.cycle) \
                if fwd.slot >= 0 else (fwd.rob.value or 0)
            mask = (1 << (8 * size)) - 1
            latency = 2
            value &= mask
        else:
            latency, value = self._cached_access(addr, size, False)
        lsq.executed = True
        entry.state = 1
        if self.config.lsq_unified and lsq.slot >= 0:
            # MARSS: the load's value parks in the unified queue's data
            # field and is read back at writeback (an injectable window).
            self.lsq_data.write(lsq.slot, value)
            entry.value = None
        else:
            entry.value = value
        self._complete_at(self.cycle + latency, entry)
        return True

    def _check_order_violation(self, store: LsqEntry) -> None:
        """MARSS-style replay: a younger load ran before this store."""
        victim = None
        for other in self.lsq:
            if other.seq <= store.seq or other.is_store:
                continue
            if not other.executed or other.addr is None:
                continue
            if not (store.addr + store.size <= other.addr or
                    other.addr + other.size <= store.addr):
                if victim is None or other.seq < victim.seq:
                    victim = other
        if victim is not None:
            self.stats["load_replays"] += 1
            self._squash_from_seq(victim.rob.seq, victim.rob.pc)

    # ------------------------------------------------------------------
    # Writeback
    # ------------------------------------------------------------------

    def _writeback_cycle(self) -> None:
        entries = self.events.pop(self.cycle, None)
        if not entries:
            return
        for entry in entries:
            if entry.state != 1:
                continue  # squashed after scheduling
            entry.state = 2
            uop = entry.uop
            if uop.kind == "load" and entry.value is None and \
                    entry.lsq is not None and entry.lsq.slot >= 0 and \
                    entry.fault is None:
                entry.value = self.lsq_data.read(entry.lsq.slot, self.cycle)
            if entry.dst_phys is not None and entry.value is not None:
                self.prf.write(entry.dst_phys, entry.value)
                self.prf_ready[entry.dst_phys] = True
                self.iq.wake(entry.dst_phys)
            elif entry.dst_phys is not None:
                # Faulting load: produce a zero so dependents can drain.
                self.prf.write(entry.dst_phys, 0)
                self.prf_ready[entry.dst_phys] = True
                self.iq.wake(entry.dst_phys)
            if entry.iq_idx is not None:
                self.iq.release(entry.iq_idx)
                entry.iq_idx = None
            if entry.last and entry.instr.is_branch and entry.pred is not None:
                self._resolve_branch(entry)

    def _resolve_branch(self, entry: RobEntry) -> None:
        pred_taken, pred_target = entry.pred
        actual_taken = bool(entry.taken)
        actual_target = entry.target if actual_taken else entry.fallthrough
        if (actual_taken, actual_target) != (pred_taken, pred_target):
            self.stats["branch_mispredicts"] += 1
            self._squash_after_seq(entry.seq, actual_target)

    # ------------------------------------------------------------------
    # Squash machinery
    # ------------------------------------------------------------------

    def _squash_entries(self, start_idx: int) -> None:
        """Remove rob[start_idx:] and roll back rename/IQ/LSQ state."""
        doomed = self.rob[start_idx:]
        if not doomed:
            return
        first = doomed[0]
        self.check(first.first, "squash not at instruction boundary")
        snap_map, ras_top, ras_depth = first.snapshot
        self.map = snap_map.copy()
        self.ras.top = ras_top
        self.ras.depth = ras_depth
        for entry in reversed(doomed):
            self.stats["squashed_uops"] += 1
            entry.state = -1
            if entry.iq_idx is not None:
                self.iq.release(entry.iq_idx)
                entry.iq_idx = None
            if entry.lsq is not None:
                if entry.lsq in self.lsq:
                    self.lsq.remove(entry.lsq)
                    self._release_lsq(entry.lsq)
                entry.lsq = None
            if entry.dst_phys is not None:
                self.free_list.append(entry.dst_phys)
                entry.dst_phys = None
        del self.rob[start_idx:]
        self.fetch_halted = False

    def _squash_after_seq(self, seq: int, redirect: int) -> None:
        """Squash everything younger than *seq*; refetch at *redirect*."""
        idx = len(self.rob)
        for i, entry in enumerate(self.rob):
            if entry.seq > seq:
                idx = i
                break
        self._squash_entries(idx)
        self.fetch_pc = u32(redirect)
        self.fetch_resume = self.cycle + self.config.redirect_penalty

    def _squash_from_seq(self, seq: int, redirect_pc: int) -> None:
        """Squash *seq*'s whole instruction and everything younger."""
        idx = None
        for i, entry in enumerate(self.rob):
            if entry.seq >= seq:
                idx = i
                break
        if idx is None:
            return
        while idx > 0 and not self.rob[idx].first:
            idx -= 1
        self._squash_entries(idx)
        self.fetch_pc = u32(redirect_pc)
        self.fetch_resume = self.cycle + self.config.redirect_penalty

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------

    class _RegView:
        """Committed architectural register view for the kernel."""

        def __init__(self, core):
            self.core = core

        def __getitem__(self, areg: int) -> int:
            return self.core.prf.read(self.core.committed_map[areg],
                                      self.core.cycle)

        def __setitem__(self, areg: int, value: int) -> None:
            self.core.prf.write(self.core.committed_map[areg], value)

    def _commit_cycle(self) -> None:
        if self.cycle < self.commit_stall_until:
            return
        cfg = self.config
        committed = 0
        while self.rob and committed < cfg.commit_width:
            entry = self.rob[0]
            if entry.state != 2:
                break
            if entry.fault is not None:
                self._commit_fault(entry)
                return
            mnemonic = entry.instr.mnemonic
            if entry.first and cfg.dense_asserts:
                if mnemonic == "<ud>":
                    raise SimAssertError(
                        f"decoder: unimplemented opcode at {entry.pc:#x}")
                if mnemonic.endswith("!"):
                    raise SimAssertError(
                        f"decoder: reserved encoding bits set at "
                        f"{entry.pc:#x}")
            if entry.first and mnemonic == "<ud>" and not cfg.dense_asserts:
                entry.fault = "ud"
                self._commit_fault(entry)
                return
            uop = entry.uop
            if uop.kind == "sys":
                if not self._commit_syscall(entry):
                    return
            elif uop.kind == "store":
                self._commit_store(entry)
            elif uop.kind == "load":
                self.stats["committed_loads"] += 1
            if entry.align_event:
                self.kernel.deliver_fault("align", entry.pc)
            if entry.dst_phys is not None:
                self.committed_map[entry.dst_arch] = entry.dst_phys
                if entry.old_phys is not None:
                    self.free_list.append(entry.old_phys)
            if entry.lsq is not None:
                if entry.lsq in self.lsq:
                    self.lsq.remove(entry.lsq)
                    self._release_lsq(entry.lsq)
                if entry.lsq.is_store:
                    self._store_epoch += 1
            if entry.last and entry.instr.is_cond:
                self.predictor.update(entry.pc, bool(entry.taken))
            if entry.last and entry.instr.is_branch and entry.taken:
                if entry.instr.is_indirect and not entry.instr.is_ret:
                    btb = self.btb_ind if self.btb_ind else self.btb
                    btb.update(entry.pc, entry.target)
                elif entry.instr.is_cond:
                    self.btb.update(entry.pc, entry.target)
            self.rob.pop(0)
            self.stats["committed_uops"] += 1
            if entry.last:
                self.stats["committed_instrs"] += 1
            self.last_commit_cycle = self.cycle
            committed += 1

    def _commit_fault(self, entry: RobEntry) -> None:
        self.kernel.deliver_fault(entry.fault, entry.pc)
        # deliver_fault raises ProcessKilled for every fatal kind; only
        # recoverable kinds return.
        entry.fault = None

    def _commit_syscall(self, entry: RobEntry) -> bool:
        self.stats["syscalls"] += 1
        regs = self._RegView(self)
        self._kernel_lat = 0
        if self.config.hypervisor:
            self.kernel.syscall(regs, self._kread_hyper, self._kwrite_hyper,
                                lambda a, s: self._kread_hyper(a, s))
            self.commit_stall_until = self.cycle + \
                self.config.hypervisor_latency
        else:
            self.kernel.syscall(regs, self._kread_cached,
                                self._kwrite_cached, self._uread_cached)
            self.commit_stall_until = self.cycle + 8 + self._kernel_lat
        # The syscall's r0 result lives in the entry's reserved phys reg.
        result = self.prf.read(self.committed_map[0], self.cycle)
        self.prf.write(entry.dst_phys, result)
        self.prf_ready[entry.dst_phys] = True
        self.iq.wake(entry.dst_phys)
        return True

    def _uread_cached(self, addr: int, size: int) -> int:
        self.stats["kernel_cache_accesses"] += 1
        lat, value = self._cached_access(addr, size, False, kernel=True)
        self._kernel_lat += lat
        return value

    def _commit_store(self, entry: RobEntry) -> None:
        self.stats["committed_stores"] += 1
        lsq = entry.lsq
        self.check(lsq is not None and lsq.resolved,
                   "committing unresolved store")
        if lsq is None or lsq.addr is None:
            raise SimCrashError("committing store without address")
        value = self.lsq_data.read(lsq.slot, self.cycle) \
            if lsq.slot >= 0 else (entry.value or 0)
        self._cached_access(lsq.addr, lsq.size, True, value)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def step(self) -> None:
        """Advance the machine one cycle."""
        self.cycle += 1
        self.stats["cycles"] = self.cycle
        self._writeback_cycle()
        self._issue_cycle()
        self._commit_cycle()
        self._fetch_cycle()

    def run(self, max_cycles: int = 5_000_000,
            deadlock_window: int = 20_000) -> RunOutcome:
        """Run to program exit, crash, or the cycle/deadlock limits."""
        try:
            while self.cycle < max_cycles:
                self.step()
                if self.cycle - self.last_commit_cycle > deadlock_window:
                    return self._outcome("deadlock")
            return self._outcome("cycle-limit")
        except ProcessExit as ex:
            return self._outcome("exit", exit_code=ex.code)
        except ProcessKilled as pk:
            return self._outcome("killed", signal=pk.signal,
                                 detail=str(pk))
        except KernelPanic as kp:
            return self._outcome("panic", detail=str(kp))

    def _outcome(self, reason, exit_code=None, signal=None,
                 detail="") -> RunOutcome:
        out = RunOutcome(reason, exit_code, bytes(self.kernel.output),
                         list(self.kernel.events), dict(self.stats),
                         self.cycle, signal=signal, detail=detail)
        self.finished = out
        return out

    # ------------------------------------------------------------------
    # Snapshot protocol
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Structured copy of all mutable machine state.

        Returns a flat dict of cheap containers (bytes, lists, tuples,
        dicts) that :meth:`restore` loads back into this machine — or any
        machine built from the same (program, config) — reproducing the
        captured execution bit-for-bit.  Immutable objects (decoded
        ``Instr``/``UOp``, the program image, the config) are shared by
        reference; the in-flight ROB/LSQ/IQ/event graph is copied through
        one memo so aliasing between the queues is preserved.

        This is the hot path that replaced whole-machine ``deepcopy``
        checkpointing; the blob is also picklable, which is how the
        parallel runner ships parent checkpoints to its workers.
        """
        memo: dict = {}

        def copy_entry(entry):
            return _copy_rob_entry(entry, memo)

        return {
            "mem": self.mem.snapshot(),
            "kernel": self.kernel.snapshot(),
            "l1i": self.l1i.snapshot(),
            "l1d": self.l1d.snapshot(),
            "l2": self.l2.snapshot(),
            "itlb": self.itlb.snapshot(),
            "dtlb": self.dtlb.snapshot(),
            "predictor": self.predictor.snapshot(),
            "btb": self.btb.snapshot(),
            "btb_ind": self.btb_ind.snapshot() if self.btb_ind else None,
            "ras": self.ras.snapshot(),
            "l1d_pref": self.l1d_pref.snapshot() if self.l1d_pref else None,
            "l1i_pref": self.l1i_pref.snapshot() if self.l1i_pref else None,
            "prf": self.prf.snapshot(),
            "prf_ready": self.prf_ready.copy(),
            "fp_rf": self.fp_rf.snapshot(),
            "map": self.map.copy(),
            "committed_map": self.committed_map.copy(),
            "free_list": self.free_list.copy(),
            "rob": [_copy_rob_entry(e, memo) for e in self.rob],
            "lsq": [_copy_lsq_entry(e, memo) for e in self.lsq],
            "iq": self.iq.snapshot(copy_entry),
            "lsq_data": self.lsq_data.snapshot(),
            "lsq_free": (self._lsq_free.copy()
                         if self.config.lsq_unified else None),
            "sq_free": (self._sq_free.copy()
                        if self._sq_free is not None else None),
            "lq_count": getattr(self, "_lq_count", 0),
            "events": {cyc: [_copy_rob_entry(e, memo) for e in pend]
                       for cyc, pend in self.events.items()},
            "seq": self.seq,
            "cycle": self.cycle,
            "fetch_pc": self.fetch_pc,
            "fetch_resume": self.fetch_resume,
            "fetch_halted": self.fetch_halted,
            "commit_stall_until": self.commit_stall_until,
            "last_commit_cycle": self.last_commit_cycle,
            "stats": dict(self.stats),
            "store_epoch": self._store_epoch,
            "fetch_buf": self._fetch_buf,
            "fetch_missed": self._fetch_missed,
            "kernel_lat": self._kernel_lat,
            "faulty": self._faulty,
        }

    def restore(self, state: dict) -> "OoOCore":
        """Load a :meth:`snapshot` blob into this machine, in place.

        The blob is never aliased: the entry graph is re-copied through a
        fresh memo on every call, so one stored checkpoint can seed any
        number of (mutating) injection runs.  Component objects keep
        their identity — fault sites, liveness closures and the kernel's
        memory reference all remain valid.  Returns ``self``.
        """
        memo: dict = {}

        def copy_entry(entry):
            return _copy_rob_entry(entry, memo)

        self.mem.restore(state["mem"])
        self.kernel.restore(state["kernel"])
        self.l1i.restore(state["l1i"])
        self.l1d.restore(state["l1d"])
        self.l2.restore(state["l2"])
        self.itlb.restore(state["itlb"])
        self.dtlb.restore(state["dtlb"])
        self.predictor.restore(state["predictor"])
        self.btb.restore(state["btb"])
        if self.btb_ind is not None:
            self.btb_ind.restore(state["btb_ind"])
        self.ras.restore(state["ras"])
        if self.l1d_pref is not None:
            self.l1d_pref.restore(state["l1d_pref"])
            self.l1i_pref.restore(state["l1i_pref"])
        self.prf.restore(state["prf"])
        self.prf_ready = state["prf_ready"].copy()
        self.fp_rf.restore(state["fp_rf"])
        self.map = state["map"].copy()
        self.committed_map = state["committed_map"].copy()
        self.free_list = state["free_list"].copy()
        self.rob = [_copy_rob_entry(e, memo) for e in state["rob"]]
        self.lsq = [_copy_lsq_entry(e, memo) for e in state["lsq"]]
        self.iq.restore(state["iq"], copy_entry)
        self.lsq_data.restore(state["lsq_data"])
        if self.config.lsq_unified:
            self._lsq_free = state["lsq_free"].copy()
        else:
            self._sq_free = state["sq_free"].copy()
            self._lq_count = state["lq_count"]
        self.events = {cyc: [_copy_rob_entry(e, memo) for e in pend]
                       for cyc, pend in state["events"].items()}
        self.seq = state["seq"]
        self.cycle = state["cycle"]
        self.fetch_pc = state["fetch_pc"]
        self.fetch_resume = state["fetch_resume"]
        self.fetch_halted = state["fetch_halted"]
        self.commit_stall_until = state["commit_stall_until"]
        self.last_commit_cycle = state["last_commit_cycle"]
        self.stats = dict(state["stats"])
        self.finished = None
        self._store_epoch = state["store_epoch"]
        self._fetch_buf = state["fetch_buf"]
        self._fetch_missed = state["fetch_missed"]
        self._kernel_lat = state["kernel_lat"]
        self._faulty = state["faulty"]
        return self

    def __deepcopy__(self, memo):
        """Compatibility shim over the snapshot protocol.

        Campaign code restores snapshots in place; cloning survives only
        for callers that genuinely want a second machine.
        """
        clone = self.__class__(self.program, self.config)
        memo[id(self)] = clone
        clone.restore(self.snapshot())
        return clone

    def __getstate__(self):
        # FaultSite liveness closures are unpicklable; drop the cache and
        # let the unpickled machine rebuild it on first use.
        state = dict(self.__dict__)
        state["_fault_sites"] = None
        return state
