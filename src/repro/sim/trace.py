"""Commit-trace recording for differential debugging and validation.

A :class:`TracingMixin` wraps any simulator personality and records the
committed-instruction PC stream (and optionally committed store
addresses/values).  The test suite uses it to prove that both timing
simulators commit exactly the functional reference's architectural
instruction sequence — the strongest cheap equivalence check between
three independently-written executors.
"""

from __future__ import annotations

from repro.sim.functional import FunctionalSim
from repro.sim.gem5 import Gem5Sim
from repro.sim.kernel import KernelPanic, ProcessExit, ProcessKilled
from repro.sim.marss import MarssSim


class TracingMixin:
    """Records the PC of every committed instruction."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.commit_trace: list[int] = []

    def _commit_cycle(self):
        before = len(self.rob)
        pending = [(e.pc, e.last) for e in
                   self.rob[:self.config.commit_width * 4]]
        super()._commit_cycle()
        committed = before - len(self.rob)
        for pc, last in pending[:committed]:
            if last:
                self.commit_trace.append(pc)


class TracingMarss(TracingMixin, MarssSim):
    pass


class TracingGem5(TracingMixin, Gem5Sim):
    pass


def timing_commit_trace(program, config, max_cycles: int = 2_000_000):
    """(trace, outcome) for a traced timing run of *program*."""
    cls = TracingMarss if config.name == "marss" else TracingGem5
    sim = cls(program, config)
    outcome = sim.run(max_cycles)
    return sim.commit_trace, outcome


def functional_trace(program, max_instrs: int = 2_000_000):
    """The architectural PC stream from the functional reference."""
    sim = FunctionalSim(program)
    trace: list[int] = []
    try:
        while len(trace) < max_instrs:
            trace.append(sim.pc)
            sim.step()
    except (ProcessExit, ProcessKilled, KernelPanic):
        pass
    return trace


def first_divergence(a: list[int], b: list[int]) -> int | None:
    """Index of the first mismatch between two traces, or None."""
    for i, (x, y) in enumerate(zip(a, b)):
        if x != y:
            return i
    if len(a) != len(b):
        return min(len(a), len(b))
    return None
