"""Crash containment: treat the faulty machine as fully adversarial.

ZOFI's lesson is that a fault injector must assume the corrupted target
can do *anything* — recurse forever, allocate without bound, spin inside
one step — and still keep campaign statistics sound.  The
:func:`contained` scope wraps the dispatcher's drive loop with three
defenses:

* a **recursion ceiling** (never raised above the interpreter's current
  limit) so runaway recursion dies as a contained ``RecursionError``
  instead of exhausting the C stack;
* a **Python-op budget**: a ``sys.setprofile`` hook counting call
  events; exceeding the budget raises :class:`OpBudgetExceeded`, which
  the dispatcher records as reason ``"op-budget"`` (a Timeout/livelock
  to the Parser).  The budget polices allocation/call-heavy runaways
  that make progress too slowly for the cycle budget to catch;
* a **watchdog**: ``SIGALRM`` armed at a hard per-run deadline, so a
  hang *inside* one ``sim.step()`` — where the dispatcher's cooperative
  between-steps deadline check never runs — raises
  :class:`WatchdogTimeout` and classifies as Timeout instead of
  stalling the campaign (or a sched worker's lease).  Armed only on the
  main thread of a process with ``signal.setitimer`` (POSIX); the sched
  worker's unit entry point is exactly that.

Everything is restored on exit, so containment composes with pytest,
coverage and nested campaigns.
"""

from __future__ import annotations

import signal
import sys
import threading

from repro.errors import ReproError


class OpBudgetExceeded(ReproError):
    """The per-run Python-op budget ran out inside the drive loop."""


class WatchdogTimeout(ReproError):
    """The hard per-run deadline fired inside a simulator step."""


class _Contained:
    """One armed containment scope (see :func:`contained`)."""

    def __init__(self, policy, watchdog_s: float | None):
        self._policy = policy
        self._watchdog_s = watchdog_s
        self._old_limit = None
        self._old_profile = None
        self._old_handler = None
        self._calls = 0

    # -- op budget (profile hook) -----------------------------------------

    def _profile(self, frame, event, arg):
        if event in ("call", "c_call"):
            self._calls += 1
            if self._calls > self._policy.op_budget:
                # Raising here unsets the profile hook and propagates
                # into the drive loop, where inject() contains it.
                raise OpBudgetExceeded(
                    f"op budget of {self._policy.op_budget} call events "
                    f"exhausted")

    # -- watchdog (SIGALRM) -------------------------------------------------

    @staticmethod
    def _on_alarm(signum, frame):
        raise WatchdogTimeout("hard deadline fired inside a step")

    def _can_arm_watchdog(self) -> bool:
        return (self._watchdog_s is not None
                and hasattr(signal, "setitimer")
                and threading.current_thread() is threading.main_thread())

    # -- scope --------------------------------------------------------------

    def __enter__(self):
        policy = self._policy
        if policy.recursion_limit is not None:
            old = sys.getrecursionlimit()
            ceiling = min(old, policy.recursion_limit)
            if ceiling != old:
                try:
                    sys.setrecursionlimit(ceiling)
                    self._old_limit = old
                except RecursionError:
                    pass  # already deeper than the ceiling; keep old
        if self._can_arm_watchdog():
            self._old_handler = signal.signal(signal.SIGALRM,
                                              self._on_alarm)
            signal.setitimer(signal.ITIMER_REAL, self._watchdog_s)
        if policy.op_budget is not None:
            self._old_profile = sys.getprofile()
            sys.setprofile(self._profile)
        return self

    def __exit__(self, exc_type, exc, tb):
        if self._policy.op_budget is not None:
            sys.setprofile(self._old_profile)
        if self._old_handler is not None:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, self._old_handler)
            self._old_handler = None
        if self._old_limit is not None:
            sys.setrecursionlimit(self._old_limit)
            self._old_limit = None
        return False


class _Null:
    """Zero-cost scope used when containment is off."""

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL = _Null()


def contained(policy, watchdog_s: float | None = None):
    """The execution scope for one injection run under *policy*.

    Returns a no-op scope when the policy disables containment, so the
    dispatcher can use it unconditionally.
    """
    if policy is None or not policy.containment:
        return _NULL
    return _Contained(policy, watchdog_s)
