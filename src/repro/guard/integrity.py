"""Cross-run contamination defense: digest, detect, condemn, rebuild.

The dispatcher reuses one machine per campaign and restores it in place
from shared state blobs (PR 2).  If a wild faulty run — or a snapshot
engine bug — mutates an object reachable from the pristine state or a
checkpoint, every later run silently starts from corrupted "golden"
state and the campaign's classifications drift.  The verifier closes
that hole:

* :func:`state_digest` computes a stable structural SHA-256 over a
  ``OoOCore.snapshot()`` blob (cycle-safe over the ROB/LSQ entry graph,
  identity-free, insensitive to shared-immutable aliasing);
* :meth:`IntegrityVerifier.seal` runs once after ``run_golden()`` /
  ``adopt_golden()``: it digests the pristine state and every
  checkpoint, and stows a compressed pickle **vault** of all of them;
* at a configurable cadence the dispatcher re-digests the restored
  machine and compares against the sealed digest of the restore source;
  on drift the machine is **condemned** — a fresh machine is built, the
  stores are reinstalled from the vault, a ``guard.contamination``
  event/counter is emitted, and the affected record is re-run from
  clean state.  A second drift right after a rebuild is unexplainable
  and raises :class:`~repro.errors.CampaignError`.

Chaos hook (tests/CI only): ``REPRO_GUARD_CHAOS="leak:N"`` corrupts the
stored pristine and checkpoint states just before the *N*-th restore —
the deliberate state leak the contamination drill uses to prove the
condemn → rebuild → re-run path keeps classifications byte-identical to
a clean campaign.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import zlib

from repro.core.checkpoint import CheckpointStore
from repro.errors import CampaignError

# Mutable memo caches on shared-immutable decode objects: excluded from
# digests so a later run lazily filling a cache (Instr.needs, UOp src
# tuples) cannot read as contamination of an older sealed state.
_TYPED_ATTRS = {
    "Instr": ("mnemonic", "length", "raw", "is_branch", "is_call",
              "is_ret", "is_indirect", "is_cond", "target"),
    "UOp": ("kind", "op", "rd", "rs1", "rs2", "imm", "size"),
}


def _object_attrs(obj) -> list:
    names = set()
    for klass in type(obj).__mro__:
        slots = getattr(klass, "__slots__", ())
        names.update((slots,) if isinstance(slots, str) else slots)
    if hasattr(obj, "__dict__"):
        names.update(obj.__dict__)
    return sorted(n for n in names if not n.startswith("__"))


def _feed(h, obj, memo: dict) -> None:
    t = type(obj)
    if obj is None:
        h.update(b"N;")
    elif t is bool:
        h.update(b"T;" if obj else b"F;")
    elif t is int:
        h.update(b"i%d;" % obj)
    elif t is float:
        h.update(("f%r;" % obj).encode())
    elif t is str:
        raw = obj.encode()
        h.update(b"s%d:" % len(raw))
        h.update(raw)
    elif t is bytes:
        h.update(b"b%d:" % len(obj))
        h.update(obj)
    elif t is bytearray:
        h.update(b"B%d:" % len(obj))
        h.update(bytes(obj))
    elif t is list or t is tuple:
        h.update(b"l%d:" % len(obj))
        for item in obj:
            _feed(h, item, memo)
    elif t is dict:
        h.update(b"d%d:" % len(obj))
        try:
            items = sorted(obj.items())
        except TypeError:
            items = list(obj.items())
        for k, v in items:
            _feed(h, k, memo)
            _feed(h, v, memo)
    elif t is set or t is frozenset:
        h.update(b"e%d:" % len(obj))
        for item in sorted(obj):
            _feed(h, item, memo)
    else:
        # Graph node (RobEntry, LsqEntry, StuckBit, faults...): walk the
        # instance attributes; break cycles with a traversal-order memo
        # so structurally equal graphs digest equal regardless of ids.
        key = id(obj)
        if key in memo:
            h.update(b"r%d;" % memo[key])
            return
        memo[key] = len(memo)
        cls = t.__name__
        h.update(("O%s:" % cls).encode())
        attrs = _TYPED_ATTRS.get(cls)
        if attrs is None:
            attrs = _object_attrs(obj)
        for name in attrs:
            h.update(name.encode() + b"=")
            _feed(h, getattr(obj, name, None), memo)


def state_digest(state: dict) -> str:
    """Stable hex digest of one machine snapshot blob."""
    h = hashlib.sha256()
    _feed(h, state, {})
    return h.hexdigest()


class IntegrityVerifier:
    """Sealed digests + vault for one dispatcher's golden stores."""

    def __init__(self, every: int):
        self.every = max(int(every), 0)
        self.checks = 0            # digests actually computed
        self.contaminations = 0    # condemn/rebuild incidents
        self._digests: dict = {}   # source cycle -> sealed digest
        self._restores = 0
        self._vault: bytes | None = None

    def seal(self, pristine: dict, checkpoints: CheckpointStore) -> None:
        """Digest the golden stores once and stow the rebuild vault."""
        self._digests = {pristine["cycle"]: state_digest(pristine)}
        for _, state in checkpoints.snapshots:
            self._digests[state["cycle"]] = state_digest(state)
        self._vault = zlib.compress(pickle.dumps({
            "pristine": pristine,
            "snapshots": checkpoints.snapshots,
            "interval": checkpoints.interval,
            "max_snaps": checkpoints.max_snaps,
        }, protocol=pickle.HIGHEST_PROTOCOL), 1)

    @property
    def sealed(self) -> bool:
        return self._vault is not None

    def due(self) -> bool:
        """Cadence gate; call once per restore."""
        if not self.every:
            return False
        self._restores += 1
        return self._restores % self.every == 0

    def verify(self, sim) -> bool:
        """Digest the restored machine against its sealed source."""
        expected = self._digests.get(sim.cycle)
        if expected is None:       # restore source unknown: nothing sealed
            return True
        self.checks += 1
        return state_digest(sim.snapshot()) == expected

    def rebuild(self):
        """Clean (pristine, CheckpointStore) pair from the vault."""
        if self._vault is None:
            raise CampaignError("integrity verifier was never sealed")
        self.contaminations += 1
        payload = pickle.loads(zlib.decompress(self._vault))
        store = CheckpointStore.from_snapshots(
            payload["snapshots"], interval=payload["interval"],
            max_snaps=payload["max_snaps"])
        return payload["pristine"], store


def chaos_leak_due(n_restores: int) -> bool:
    """True when ``REPRO_GUARD_CHAOS="leak:N"`` targets this restore."""
    directive = os.environ.get("REPRO_GUARD_CHAOS", "")
    if not directive.startswith("leak"):
        return False
    _, _, bound = directive.partition(":")
    try:
        n = int(bound) if bound else 1
    except ValueError:
        return False
    return n_restores == n


def chaos_leak(pristine: dict, checkpoints: CheckpointStore) -> None:
    """Deliberately corrupt the stored golden states (tests/CI only).

    Flips the first byte of the memory image in the pristine state and
    every checkpoint, emulating a faulty run's mutation leaking into the
    shared stores.  ``Memory.snapshot()`` returns ``(bytes, perms)`` —
    bytes are immutable, so the tuple is replaced in place in each
    state dict, exactly the aliased-container mutation the verifier is
    built to catch.
    """
    states = [pristine] + [state for _, state in checkpoints.snapshots]
    for state in states:
        data, perms = state["mem"]
        state["mem"] = (bytes([data[0] ^ 0xFF]) + data[1:], perms)
