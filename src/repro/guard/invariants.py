"""Microarchitectural invariant checks (the Assert class, on demand).

gem5 leans on sparse internal assertions to surface corrupted state as
Assert-class outcomes; MARSS checks densely.  Our dense setups raise
:class:`~repro.errors.SimAssertError` from ``OoOCore.check``, but the
sparse (GeFIN-style) setups deliberately let corruption flow.  This
module is the middle ground the guard layer adds: a registry of cheap
structural invariants the dispatcher evaluates at a configurable cycle
cadence *on faulty runs only*, regardless of the setup's own checking
density.

Every check reads machine state through watch-safe accessors
(``peek``, plain attribute reads) so evaluating an invariant can never
perturb the §III.B early-stop watch machinery or the run itself.

A violation raises :class:`InvariantViolation` — a
:class:`~repro.errors.SimAssertError` subclass, so it lands in the
Assert class even on code paths that predate the guard — carrying the
invariant name and the cycle it tripped at; the dispatcher stamps both
into the injection record.
"""

from __future__ import annotations

from repro.errors import SimAssertError


class InvariantViolation(SimAssertError):
    """A guard invariant failed on a faulty machine."""

    def __init__(self, invariant: str, cycle: int, detail: str):
        super().__init__(
            f"invariant {invariant} violated at cycle {cycle}: {detail}")
        self.invariant = invariant
        self.cycle = cycle
        self.detail = detail


def _rob_age_order(sim):
    """ROB entries are age-ordered: seq strictly increases head→tail."""
    prev = None
    for e in sim.rob:
        if e.state not in (0, 1, 2):
            return f"entry seq {e.seq} has state {e.state!r}"
        if prev is not None and e.seq <= prev:
            return f"seq {e.seq} follows {prev}"
        prev = e.seq
    return None


def _rename_disjoint(sim):
    """Free list holds no duplicates and no currently-mapped registers."""
    free = sim.free_list
    nregs = sim.prf.entries
    fs = set(free)
    if len(fs) != len(free):
        return "duplicate physical register in free list"
    for tag in fs:
        if not 0 <= tag < nregs:
            return f"free-list tag {tag} outside 0..{nregs - 1}"
    for label, table in (("map", sim.map),
                         ("committed map", sim.committed_map)):
        for tag in table:
            if not 0 <= tag < nregs:
                return f"{label} tag {tag} outside 0..{nregs - 1}"
        overlap = fs.intersection(table)
        if overlap:
            return (f"free list overlaps {label}: "
                    f"{sorted(overlap)[:4]}")
    return None


def _cache_sanity(sim):
    """Tag/LRU/dirty-line sanity across all three cache levels."""
    for c in (sim.l1i, sim.l1d, sim.l2):
        for set_idx in range(c.sets):
            order = c.lru[set_idx]
            if sorted(order) != list(range(c.assoc)):
                return f"{c.name} set {set_idx} LRU is not a permutation"
            seen = {}
            for way in range(c.assoc):
                line = c.line_index(set_idx, way)
                word = c.tags.peek(line)
                valid = bool(word & c._valid_bit)
                dirty = bool(word & c._dirty_bit)
                if dirty and not valid:
                    return f"{c.name} line {line} dirty but invalid"
                if dirty and c.mirror:
                    return f"{c.name} line {line} dirty in mirror mode"
                if valid:
                    tag = word & (c._valid_bit - 1)
                    if tag in seen:
                        return (f"{c.name} set {set_idx} ways "
                                f"{seen[tag]}/{way} share tag {tag:#x}")
                    seen[tag] = way
    return None


def _lsq_age_order(sim):
    """LSQ entries are age-ordered and back-linked to live ROB entries."""
    prev = None
    for e in sim.lsq:
        if prev is not None and e.seq <= prev:
            return f"seq {e.seq} follows {prev}"
        prev = e.seq
        if e.rob is None or e.rob.lsq is not e:
            return f"seq {e.seq} has a broken ROB back-link"
    return None


def _iq_wakeup(sim):
    """IQ occupancy bookkeeping and wakeup index are self-consistent."""
    iq = sim.iq
    n_valid = sum(iq.valid)
    if iq.count != n_valid:
        return f"count {iq.count} != {n_valid} valid slots"
    free = iq.free
    fs = set(free)
    if len(fs) != len(free):
        return "duplicate slot in free stack"
    for idx in fs:
        if not 0 <= idx < iq.size:
            return f"free slot {idx} outside 0..{iq.size - 1}"
        if iq.valid[idx]:
            return f"slot {idx} is both free and valid"
    if len(fs) + n_valid != iq.size:
        return (f"{len(fs)} free + {n_valid} valid != {iq.size} slots")
    for tag, slots in iq.waiters.items():
        for idx in slots:
            if not 0 <= idx < iq.size:
                return (f"wakeup index for tag {tag} names slot {idx} "
                        f"outside 0..{iq.size - 1}")
    return None


#: The registry, in evaluation order (cheapest first).  Each entry is
#: ``(name, check)``; a check returns ``None`` or a detail string.
INVARIANTS = (
    ("rob-age-order", _rob_age_order),
    ("lsq-age-order", _lsq_age_order),
    ("iq-wakeup-consistency", _iq_wakeup),
    ("rename-freelist-disjoint", _rename_disjoint),
    ("cache-tag-sanity", _cache_sanity),
)


def check_invariants(sim) -> None:
    """Evaluate every registered invariant; raise on the first failure."""
    for name, check in INVARIANTS:
        detail = check(sim)
        if detail is not None:
            raise InvariantViolation(name, sim.cycle, detail)
