"""repro.guard — hardened injection execution.

The paper's Crash/Assert/DUE classes only mean something if the
*injector* survives whatever a corrupted machine does: MaFIN/GeFIN ran
300k injections where the faulty simulator could assert, hang, or wreck
shared state, and the campaign had to keep going with trustworthy
results.  This package is the hardening layer wrapped around the
dispatcher's injection loop:

``guard.invariants``
    Cheap microarchitectural invariants (ROB age order, rename
    free-list disjointness, cache tag/LRU sanity, LSQ age order, IQ
    wakeup consistency) evaluated at a cycle cadence on faulty runs —
    the moral equivalent of gem5's sparse internal assertions.  A
    violation classifies the run as **Assert** with the invariant name
    and cycle in the record.

``guard.containment``
    A ``contained()`` execution scope around the drive loop: widened
    crash capture (``MemoryError``/``RecursionError``/arbitrary
    ``Exception`` map to Crash, never propagate), a recursion ceiling,
    a per-run Python-op budget, and a SIGALRM watchdog so a hang
    *inside* one ``sim.step()`` still classifies as Timeout.

``guard.integrity``
    A stable digest of pristine/checkpoint state sealed once after the
    golden run and re-checked after restores: on drift the machine is
    condemned, rebuilt from a compressed vault of the golden payload,
    the incident surfaces as a ``guard.contamination`` event/counter,
    and the affected record is re-run from clean state.

All knobs live on :class:`GuardPolicy`; ``off``/``basic``/``strict``
presets surface on ``run_campaign``/``run_campaign_parallel``/
``repro.sched`` and the CLI (``repro.tools campaign --guard``).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GuardPolicy:
    """Knobs of the hardening layer (see docs/robustness.md).

    ``invariant_every`` / ``integrity_every`` are cadences: check every
    N faulty cycles / every Nth restore.  ``op_budget`` counts Python
    call events inside one drive loop (a profile-hook budget; pure
    C-level spins are policed by the watchdog instead).  ``watchdog_s``
    is an absolute per-run hard deadline; when unset, containment arms
    the watchdog at twice the dispatcher's soft ``timeout_s`` so the
    cooperative between-steps check wins unless a single ``sim.step()``
    wedges.
    """

    name: str = "off"
    invariants: bool = False
    invariant_every: int = 256
    containment: bool = False
    recursion_limit: int | None = 20_000
    op_budget: int | None = None
    watchdog_s: float | None = None
    integrity_every: int = 0

    @property
    def enabled(self) -> bool:
        return bool(self.invariants or self.containment
                    or self.integrity_every)

    def watchdog_deadline(self, timeout_s: float | None) -> float | None:
        """Effective hard deadline for one injection run (seconds)."""
        if not self.containment:
            return None
        if self.watchdog_s is not None:
            return self.watchdog_s
        if timeout_s is not None:
            return timeout_s * 2
        return None

    @staticmethod
    def of(value) -> "GuardPolicy":
        """Coerce ``None`` / preset name / policy into a policy."""
        if value is None:
            return OFF
        if isinstance(value, GuardPolicy):
            return value
        if isinstance(value, str):
            try:
                return PRESETS[value]
            except KeyError:
                raise ValueError(
                    f"unknown guard preset {value!r}; "
                    f"choose from {sorted(PRESETS)}") from None
        raise TypeError(f"guard must be None, a preset name or a "
                        f"GuardPolicy, not {type(value).__name__}")


#: No hardening — the historical dispatcher behaviour (plus the
#: always-on widened crash-capture tuple; see dispatcher.inject).
OFF = GuardPolicy()

#: Cheap always-reasonable hardening: containment plus invariants at a
#: relaxed cadence and occasional integrity checks.
BASIC = GuardPolicy(name="basic", invariants=True, invariant_every=512,
                    containment=True, integrity_every=32)

#: Full paranoia: tight invariant cadence, an op budget, and an
#: integrity check after every restore.
STRICT = GuardPolicy(name="strict", invariants=True, invariant_every=128,
                     containment=True, op_budget=100_000_000,
                     integrity_every=1)

PRESETS = {"off": OFF, "basic": BASIC, "strict": STRICT}

from repro.guard.containment import (OpBudgetExceeded,  # noqa: E402
                                     WatchdogTimeout, contained)
from repro.guard.integrity import (IntegrityVerifier,  # noqa: E402
                                   state_digest)
from repro.guard.invariants import (INVARIANTS,  # noqa: E402
                                    InvariantViolation, check_invariants)

__all__ = [
    "BASIC", "GuardPolicy", "INVARIANTS", "IntegrityVerifier",
    "InvariantViolation", "OFF", "OpBudgetExceeded", "PRESETS", "STRICT",
    "WatchdogTimeout", "check_invariants", "contained", "state_digest",
]
