"""Benchmark registry — the study's 10 MiBench-like workloads.

The paper (§IV.B) uses *djpeg, search, smooth, edge, corner, sha, fft,
qsort, cjpeg, caes* from MiBench; these are scaled-down but
algorithmically faithful MiniC versions of the same kernels, compiled
from a single source per benchmark to both ISAs.
"""

from __future__ import annotations

from functools import lru_cache

from repro.bench.programs import (caes, cjpeg, corner, djpeg, edge, fft,
                                  qsort, search, sha, smooth)
from repro.isa.common import Program
from repro.lang.compiler import compile_program, compile_source

# Paper order (Figs. 2-6 x-axis).
BENCHMARKS = ("djpeg", "search", "smooth", "edge", "corner",
              "sha", "fft", "qsort", "cjpeg", "caes")

_MODULES = {m.NAME: m for m in
            (djpeg, search, smooth, edge, corner, sha, fft, qsort, cjpeg,
             caes)}


def benchmark_names() -> tuple[str, ...]:
    return BENCHMARKS


def describe(name: str) -> str:
    return _MODULES[name].DESCRIPTION


def minic_source(name: str, scale: int = 1) -> str:
    """The MiniC source of benchmark *name*."""
    if name not in _MODULES:
        raise KeyError(f"unknown benchmark {name!r}; "
                       f"available: {', '.join(BENCHMARKS)}")
    return _MODULES[name].source(scale)


@lru_cache(maxsize=None)
def assembly(name: str, isa: str, scale: int = 1) -> str:
    return compile_source(minic_source(name, scale), isa)


@lru_cache(maxsize=None)
def program(name: str, isa: str, scale: int = 1) -> Program:
    """Compiled program image for (benchmark, ISA), memoized."""
    return compile_program(minic_source(name, scale), isa)
