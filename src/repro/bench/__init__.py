"""The study's 10 MiBench-like workloads and their input data.
"""
