"""Deterministic input data for the benchmark kernels.

The paper feeds each MiBench benchmark a fixed input set; we bake
deterministic pseudo-random data straight into the MiniC data section so
every simulator sees byte-identical workloads.  A plain LCG keeps the
generator dependency-free and stable across Python versions.
"""

from __future__ import annotations

_LCG_A = 6364136223846793005
_LCG_C = 1442695040888963407
_MASK = (1 << 64) - 1


def lcg_stream(seed: int):
    """Infinite stream of pseudo-random 32-bit values."""
    state = (seed * 2862933555777941757 + 3037000493) & _MASK
    while True:
        state = (state * _LCG_A + _LCG_C) & _MASK
        yield (state >> 33) & 0xFFFFFFFF


def rand_ints(n: int, lo: int, hi: int, seed: int) -> list[int]:
    """*n* values uniform in [lo, hi] (inclusive), deterministic in *seed*."""
    span = hi - lo + 1
    stream = lcg_stream(seed)
    return [lo + next(stream) % span for _ in range(n)]


def rand_bytes(n: int, seed: int) -> list[int]:
    return rand_ints(n, 0, 255, seed)


def format_array(name: str, values, pad_to: int | None = None) -> str:
    """Render a MiniC global array declaration."""
    values = list(values)
    size = pad_to if pad_to is not None else len(values)
    body = ", ".join(str(v) for v in values)
    return f"int {name}[{size}] = {{{body}}};"


def image(width: int, height: int, seed: int) -> list[int]:
    """A synthetic grayscale image with smooth structure plus noise.

    Pure noise has no edges or corners to detect; blend low-frequency
    gradients with noise so the image kernels (smooth/edge/corner) have
    realistic feature content.
    """
    noise = rand_ints(width * height, 0, 60, seed)
    pixels = []
    for y in range(height):
        for x in range(width):
            base = (x * 7 + y * 5) % 160
            blob = 80 if (x // 6 + y // 6) % 2 == 0 else 0
            pixels.append(min(255, base + blob + noise[y * width + x]))
    return pixels


def text_corpus(n: int, seed: int) -> list[int]:
    """Byte text with word structure for the string-search benchmark."""
    words = [b"the", b"quick", b"brown", b"fox", b"jumps", b"over", b"lazy",
             b"dog", b"pack", b"my", b"box", b"with", b"five", b"dozen",
             b"liquor", b"jugs", b"sphinx", b"of", b"black", b"quartz"]
    stream = lcg_stream(seed)
    out = bytearray()
    while len(out) < n:
        out += words[next(stream) % len(words)]
        out += b" "
    return list(out[:n])
