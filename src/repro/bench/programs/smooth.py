"""``smooth`` — 3×3 box smoothing (MiBench automotive/susan -s stand-in)."""

from __future__ import annotations

from repro.bench.inputs import format_array, image

NAME = "smooth"
DESCRIPTION = "3x3 box filter over a synthetic grayscale image"

_W = 16
_H = 16


def source(scale: int = 1) -> str:
    w, h = _W, _H * scale
    img = image(w, h, seed=0x1316)
    return f"""
// smooth: mean of the 3x3 neighbourhood, borders copied through.
{format_array("img", img)}
int dst[{w * h}];
int W = {w};
int H = {h};

func main() {{
  var x;
  var y;
  for (y = 0; y < H; y = y + 1) {{
    var base = y * W;
    for (x = 0; x < W; x = x + 1) {{
      var p = base + x;
      if (x == 0 || y == 0 || x == W - 1 || y == H - 1) {{
        dst[p] = img[p];
      }} else {{
        var s = img[p - W - 1] + img[p - W] + img[p - W + 1]
              + img[p - 1] + img[p] + img[p + 1]
              + img[p + W - 1] + img[p + W] + img[p + W + 1];
        dst[p] = s / 9;
      }}
    }}
  }}
  var sum = 0;
  var i;
  for (i = 0; i < W * H; i = i + 1) {{
    sum = sum + dst[i] * (1 + (i & 7));
  }}
  out(sum);
  for (y = 0; y < H; y = y + 4) {{
    var rowsum = 0;
    for (x = 0; x < W; x = x + 1) {{
      rowsum = rowsum + dst[y * W + x];
    }}
    out(rowsum);
  }}
  return 0;
}}
"""
