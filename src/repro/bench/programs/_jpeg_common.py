"""Shared integer-DCT machinery for the cjpeg/djpeg benchmark pair.

The MiniC kernels and this Python mirror implement the *same* integer
math (truncating division, 64-scaled orthonormal DCT basis), so the
djpeg benchmark's input coefficients are produced here by running the
cjpeg forward path on the host.
"""

from __future__ import annotations

import math

# Standard JPEG luminance quantization table (Annex K), zigzag-free.
QTABLE = [
    16, 11, 10, 16, 24, 40, 51, 61,
    12, 12, 14, 19, 26, 58, 60, 55,
    14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62,
    18, 22, 37, 56, 68, 109, 103, 77,
    24, 35, 55, 64, 81, 104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101,
    72, 92, 95, 98, 112, 100, 103, 99,
]

ZIGZAG = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6, 7, 14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
]


def dct_matrix() -> list[int]:
    """Orthonormal 8x8 DCT basis scaled by 64, row-major T[u*8+x]."""
    t = []
    for u in range(8):
        alpha = math.sqrt(1 / 8) if u == 0 else math.sqrt(2 / 8)
        for x in range(8):
            t.append(round(64 * alpha * math.cos((2 * x + 1) * u *
                                                 math.pi / 16)))
    return t


def tdiv(a: int, b: int) -> int:
    """C-style truncating division (matches the µop executor)."""
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def forward_block(pixels: list[int], t: list[int]) -> list[int]:
    """Integer forward DCT + quantization of one 8x8 block.

    Mirrors the MiniC cjpeg kernel exactly: level shift by 128,
    ``tmp = T*X``, ``F = tmp*T' / 4096``, then truncating quantization.
    """
    shifted = [p - 128 for p in pixels]
    tmp = [0] * 64
    for u in range(8):
        for x in range(8):
            acc = 0
            for k in range(8):
                acc += t[u * 8 + k] * shifted[k * 8 + x]
            tmp[u * 8 + x] = acc
    coeff = [0] * 64
    for u in range(8):
        for v in range(8):
            acc = 0
            for k in range(8):
                acc += tmp[u * 8 + k] * t[v * 8 + k]
            coeff[u * 8 + v] = tdiv(acc, 4096)
    return [tdiv(coeff[i], QTABLE[i]) for i in range(64)]


def blocks_of(img: list[int], width: int, height: int):
    """Yield 8x8 blocks of *img* in raster block order."""
    for by in range(height // 8):
        for bx in range(width // 8):
            block = []
            for y in range(8):
                row = (by * 8 + y) * width + bx * 8
                block.extend(img[row:row + 8])
            yield block
