"""MiniC sources of the 10 benchmark kernels (one module each).
"""
