"""``fft`` — fixed-point radix-2 FFT (MiBench telecomm/fft stand-in)."""

from __future__ import annotations

import math

from repro.bench.inputs import format_array, rand_ints

NAME = "fft"
DESCRIPTION = "64-point in-place radix-2 FFT in Q14 fixed point"

_N = 32
_Q = 14
_SCALE = 1 << _Q


def _twiddles(n: int) -> tuple[list[int], list[int]]:
    half = n // 2
    cos = [round(math.cos(2 * math.pi * k / n) * (1 << _Q))
           for k in range(half)]
    sin = [round(math.sin(2 * math.pi * k / n) * (1 << _Q))
           for k in range(half)]
    return cos, sin


def source(scale: int = 1) -> str:
    n = _N  # fixed-size transform; *scale* repeats it on fresh data
    reps = scale
    cos, sin = _twiddles(n)
    signal = []
    noise = rand_ints(n * reps, -200, 200, seed=0xF0F0)
    for i in range(n * reps):
        tone = round(3000 * math.sin(2 * math.pi * 3 * i / n))
        signal.append(tone + noise[i])
    return f"""
// fft: iterative radix-2 decimation-in-time, bit-reversal permutation,
// Q14 twiddle tables; outputs energies of the first 8 bins.
{format_array("sig", signal)}
{format_array("cosT", cos)}
{format_array("sinT", sin)}
int re[{n}];
int im[{n}];
int N = {n};
int REPS = {reps};

func bitrev(x, bits) {{
  var r = 0;
  var i;
  for (i = 0; i < bits; i = i + 1) {{
    r = (r << 1) | (x & 1);
    x = x >> 1;
  }}
  return r;
}}

func fft() {{
  var size = 2;
  while (size <= N) {{
    var half = size / 2;
    var step = N / size;
    var i = 0;
    while (i < N) {{
      var j;
      var k = 0;
      for (j = i; j < i + half; j = j + 1) {{
        var c = cosT[k];
        var s = 0 - sinT[k];
        var tr = (re[j + half] * c - im[j + half] * s) / {_SCALE};
        var ti = (re[j + half] * s + im[j + half] * c) / {_SCALE};
        re[j + half] = re[j] - tr;
        im[j + half] = im[j] - ti;
        re[j] = re[j] + tr;
        im[j] = im[j] + ti;
        k = k + step;
      }}
      i = i + size;
    }}
    size = size * 2;
  }}
  return 0;
}}

func main() {{
  var rep;
  var acc = 0;
  for (rep = 0; rep < REPS; rep = rep + 1) {{
    var i;
    for (i = 0; i < N; i = i + 1) {{
      var r = bitrev(i, 5);
      re[r] = sig[rep * N + i];
      im[r] = 0;
    }}
    fft();
    for (i = 0; i < 8; i = i + 1) {{
      var e = (re[i] / 16) * (re[i] / 16) + (im[i] / 16) * (im[i] / 16);
      out(e);
      acc = acc + e;
    }}
  }}
  out(acc);
  return 0;
}}
"""
