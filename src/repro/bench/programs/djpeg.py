"""``djpeg`` — JPEG-style decompression (MiBench consumer/djpeg stand-in)."""

from __future__ import annotations

from repro.bench.inputs import format_array, image
from repro.bench.programs._jpeg_common import (QTABLE, blocks_of, dct_matrix,
                                               forward_block)

NAME = "djpeg"
DESCRIPTION = "dequantize + 8x8 integer inverse DCT + pixel reconstruction"

_W = 8
_H = 8


def source(scale: int = 1) -> str:
    w, h = _W, _H * scale
    img = image(w, h, seed=0xD3C0)
    t = dct_matrix()
    coeffs: list[int] = []
    for block in blocks_of(img, w, h):
        coeffs.extend(forward_block(block, t))
    nblocks = (w // 8) * (h // 8)
    return f"""
// djpeg: for each stored quantized block — dequantize, X = T'*F*T/4096
// inverse DCT, level unshift, clamp to [0,255], emit block checksums.
{format_array("qcoef", coeffs)}
{format_array("dctT", t)}
{format_array("qtab", QTABLE)}
int fr[64];
int tmp[64];
int px[64];
int NBLOCKS = {nblocks};

func clamp(v) {{
  if (v < 0) {{
    return 0;
  }}
  if (v > 255) {{
    return 255;
  }}
  return v;
}}

func idct() {{
  var x;
  var v;
  var k;
  for (x = 0; x < 8; x = x + 1) {{
    var x8 = x * 8;
    for (v = 0; v < 8; v = v + 1) {{
      var acc = 0;
      var ox = x;
      var ov = v;
      for (k = 0; k < 8; k = k + 1) {{
        acc = acc + dctT[ox] * fr[ov];
        ox = ox + 8;
        ov = ov + 8;
      }}
      tmp[x8 + v] = acc;
    }}
  }}
  var y;
  for (x = 0; x < 8; x = x + 1) {{
    var x8b = x * 8;
    for (y = 0; y < 8; y = y + 1) {{
      var acc2 = 0;
      var oy = y;
      for (k = 0; k < 8; k = k + 1) {{
        acc2 = acc2 + tmp[x8b + k] * dctT[oy];
        oy = oy + 8;
      }}
      px[x8b + y] = clamp(acc2 / 4096 + 128);
    }}
  }}
  return 0;
}}

func main() {{
  var b;
  var grand = 0;
  for (b = 0; b < NBLOCKS; b = b + 1) {{
    var i;
    for (i = 0; i < 64; i = i + 1) {{
      fr[i] = qcoef[b * 64 + i] * qtab[i];
    }}
    idct();
    var sum = 0;
    var wsum = 0;
    for (i = 0; i < 64; i = i + 1) {{
      sum = sum + px[i];
      wsum = wsum + px[i] * (i + 1);
    }}
    out(sum);
    out(wsum);
    grand = grand + sum;
  }}
  out(grand);
  return 0;
}}
"""
