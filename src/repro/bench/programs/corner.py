"""``corner`` — corner detection (MiBench automotive/susan -c stand-in)."""

from __future__ import annotations

from repro.bench.inputs import format_array, image

NAME = "corner"
DESCRIPTION = "SUSAN-style corner response over a synthetic image"

_W = 12
_H = 12
_SIM = 20          # brightness similarity threshold
_MAX_USAN = 3      # corners have few similar neighbours


def source(scale: int = 1) -> str:
    w, h = _W, _H * scale
    img = image(w, h, seed=0xC04E4)
    return f"""
// corner: count 8-neighbourhood pixels within SIM of the centre (the
// USAN area); few similar neighbours plus high contrast marks a corner.
{format_array("img", img)}
int W = {w};
int H = {h};
int SIM = {_SIM};
int MAXU = {_MAX_USAN};

func near(p, c) {{
  var d = img[p] - c;
  if (d < 0) {{
    d = 0 - d;
  }}
  if (d <= SIM) {{
    return 1;
  }}
  return 0;
}}

func dist(p, c) {{
  var d = img[p] - c;
  if (d < 0) {{
    return 0 - d;
  }}
  return d;
}}

func main() {{
  var x;
  var y;
  var corners = 0;
  var hash = 0;
  var response = 0;
  for (y = 1; y < H - 1; y = y + 1) {{
    var base = y * W;
    for (x = 1; x < W - 1; x = x + 1) {{
      var p = base + x;
      var c = img[p];
      var u = near(p - W - 1, c) + near(p - W, c) + near(p - W + 1, c)
            + near(p - 1, c) + near(p + 1, c)
            + near(p + W - 1, c) + near(p + W, c) + near(p + W + 1, c);
      if (u <= MAXU) {{
        var ct = dist(p - 1, c) + dist(p + 1, c)
               + dist(p - W, c) + dist(p + W, c);
        if (ct > 120) {{
          corners = corners + 1;
          hash = (hash * 31 + p) ^ (hash >> 16);
          response = response + ct;
        }}
      }}
    }}
  }}
  out(corners);
  out(hash);
  out(response);
  return 0;
}}
"""
