"""``qsort`` — recursive quicksort (MiBench automotive/qsort stand-in)."""

from __future__ import annotations

from repro.bench.inputs import format_array, rand_ints

NAME = "qsort"
DESCRIPTION = "recursive quicksort over a pseudo-random integer array"


def source(scale: int = 1) -> str:
    n = 64 * scale
    data = rand_ints(n, 0, 1_000_000, seed=0xC0FFEE)
    return f"""
// qsort: Lomuto-partition quicksort, then an order-sensitive checksum.
{format_array("a", data)}
int N = {n};

func swap(i, j) {{
  var t = a[i];
  a[i] = a[j];
  a[j] = t;
  return 0;
}}

func part(lo, hi) {{
  var p = a[hi];
  var i = lo - 1;
  var j;
  for (j = lo; j < hi; j = j + 1) {{
    if (a[j] <= p) {{
      i = i + 1;
      swap(i, j);
    }}
  }}
  swap(i + 1, hi);
  return i + 1;
}}

func qs(lo, hi) {{
  if (lo < hi) {{
    var m = part(lo, hi);
    qs(lo, m - 1);
    qs(m + 1, hi);
  }}
  return 0;
}}

func main() {{
  qs(0, N - 1);
  var s = 0;
  var i;
  for (i = 0; i < N; i = i + 1) {{
    s = s + a[i] * (i + 1);
  }}
  out(s);
  out(a[0]);
  out(a[N / 2]);
  out(a[N - 1]);
  return 0;
}}
"""
